//! Property-based tests (proptest) on the core data structures and
//! invariants: Morton codes, permutations, box geometry, the redistribution
//! operations, and the parallel sorts under arbitrary inputs.

use proptest::collection::vec;
use proptest::prelude::*;

use particles::{invert_permutation, scatter, SystemBox, Vec3};

proptest! {
    /// Morton encode/decode round-trips for arbitrary 21-bit coordinates.
    #[test]
    fn zorder_roundtrip(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
        let k = particles::zorder::encode(x, y, z);
        prop_assert_eq!(particles::zorder::decode(k), (x, y, z));
    }

    /// Parent/child relations are consistent for any key and child index.
    #[test]
    fn zorder_parent_child(x in 0u32..(1 << 20), y in 0u32..(1 << 20), z in 0u32..(1 << 20), c in 0u8..8) {
        let k = particles::zorder::encode(x, y, z);
        prop_assert_eq!(particles::zorder::parent(particles::zorder::child(k, c)), k);
    }

    /// Morton order restricted to one axis is monotone.
    #[test]
    fn zorder_axis_monotone(a in 0u32..(1 << 21), b in 0u32..(1 << 21)) {
        prop_assume!(a < b);
        prop_assert!(particles::zorder::encode(a, 0, 0) < particles::zorder::encode(b, 0, 0));
    }

    /// Wrapping always lands inside the box; wrapping twice is idempotent.
    #[test]
    fn box_wrap_idempotent(
        px in -1e3f64..1e3, py in -1e3f64..1e3, pz in -1e3f64..1e3,
        l in 1.0f64..100.0,
    ) {
        let bbox = SystemBox::cubic(l);
        let w = bbox.wrap(Vec3::new(px, py, pz));
        prop_assert!(bbox.contains(w), "{w:?} not in box of edge {l}");
        let w2 = bbox.wrap(w);
        prop_assert!((w - w2).norm() < 1e-9 * l);
    }

    /// Minimum-image displacement components never exceed half the box.
    #[test]
    fn min_image_bounded(
        ax in 0.0f64..50.0, ay in 0.0f64..50.0, az in 0.0f64..50.0,
        bx in 0.0f64..50.0, by in 0.0f64..50.0, bz in 0.0f64..50.0,
    ) {
        let bbox = SystemBox::cubic(50.0);
        let d = bbox.min_image(Vec3::new(ax, ay, az), Vec3::new(bx, by, bz));
        prop_assert!(d.max_abs() <= 25.0 + 1e-9);
    }

    /// scatter by a permutation then by its inverse is the identity.
    #[test]
    fn permutation_roundtrip(perm_seed in vec(0u64..1_000_000, 1..200)) {
        // Build a permutation by arg-sorting random values.
        let mut idx: Vec<usize> = (0..perm_seed.len()).collect();
        idx.sort_by_key(|&i| (perm_seed[i], i));
        let perm = invert_permutation(&idx); // idx is a permutation; invert for variety
        let data: Vec<u64> = (0..perm_seed.len() as u64).collect();
        let there = scatter(&data, &perm);
        let back = scatter(&there, &invert_permutation(&perm));
        prop_assert_eq!(back, data);
    }

    /// Resort-index encoding round-trips.
    #[test]
    fn resort_index_roundtrip(rank in 0usize..(u32::MAX as usize), pos in 0usize..(u32::MAX as usize)) {
        let ix = atasp::encode_index(rank, pos);
        prop_assert_eq!(atasp::decode_index(ix), (rank, pos));
        prop_assert!(!atasp::is_ghost(ix) || rank == u32::MAX as usize && pos == u32::MAX as usize);
    }

    /// The balanced factorization covers the world for any size/dims.
    #[test]
    fn balanced_dims_product(n in 1usize..10_000, nd in 1usize..6) {
        let dims = simcomm::balanced_dims(n, nd);
        prop_assert_eq!(dims.iter().product::<usize>(), n);
        prop_assert_eq!(dims.len(), nd);
    }

    /// B-spline stencils are a partition of unity for any position and order.
    #[test]
    fn bspline_partition_of_unity(u in 0.0f64..1e4, p in 1usize..6) {
        let mut w = vec![0.0; p];
        pmsolver::stencil(p, u, &mut w);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "order {p}, u {u}: {w:?}");
        prop_assert!(w.iter().all(|&x| x >= -1e-12));
    }

    /// The local radix sort sorts any input and carries its payload.
    #[test]
    fn radix_sort_correct(keys in vec(any::<u64>(), 0..500)) {
        let vals: Vec<u64> = keys.iter().map(|k| k.wrapping_mul(3)).collect();
        let mut k = keys.clone();
        let mut v = vals;
        psort::radix_sort_by_key(&mut k, &mut v);
        prop_assert!(k.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = keys;
        expect.sort_unstable();
        prop_assert_eq!(&k, &expect);
        for (key, val) in k.iter().zip(&v) {
            prop_assert_eq!(*val, key.wrapping_mul(3));
        }
    }
}

// Parallel-sort property: arbitrary per-rank data is globally sorted and
// remains a permutation of the input, for both algorithms. (World creation
// is relatively expensive, so proptest cases are bounded.)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_sorts_sort_anything(
        data in vec(vec(any::<u64>(), 0..120), 1..6),
    ) {
        let p = data.len();
        let data2 = data.clone();
        let out = simcomm::run(p, simcomm::MachineModel::ideal(), move |comm| {
            let keys = data2[comm.rank()].clone();
            let vals = keys.clone();
            let (pk, _, _) = psort::partition_sort_by_key(comm, keys.clone(), vals.clone());
            let (mk, _, _) = psort::merge_exchange_sort_by_key(comm, keys, vals);
            (pk, mk)
        });
        let mut expect: Vec<u64> = data.into_iter().flatten().collect();
        expect.sort_unstable();
        let mut got_p: Vec<u64> = Vec::new();
        let mut got_m: Vec<u64> = Vec::new();
        let mut prev_p: Option<u64> = None;
        let mut prev_m: Option<u64> = None;
        for (pk, mk) in out.results {
            prop_assert!(pk.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(mk.windows(2).all(|w| w[0] <= w[1]));
            if let (Some(l), Some(&f)) = (prev_p, pk.first()) {
                prop_assert!(l <= f);
            }
            if let (Some(l), Some(&f)) = (prev_m, mk.first()) {
                prop_assert!(l <= f);
            }
            prev_p = pk.last().copied().or(prev_p);
            prev_m = mk.last().copied().or(prev_m);
            got_p.extend(pk);
            got_m.extend(mk);
        }
        got_p.sort_unstable();
        got_m.sort_unstable();
        prop_assert_eq!(&got_p, &expect);
        prop_assert_eq!(&got_m, &expect);
    }

    /// alltoall_specific delivers every element to its target exactly once.
    #[test]
    fn alltoall_specific_is_exact(
        targets in vec(vec(0usize..4, 0..80), 4),
    ) {
        let targets2 = targets.clone();
        let out = simcomm::run(4, simcomm::MachineModel::ideal(), move |comm| {
            let me = comm.rank();
            let t = &targets2[me];
            let elements: Vec<u64> = (0..t.len())
                .map(|i| ((me as u64) << 32) | i as u64)
                .collect();
            atasp::alltoall_specific(comm, &elements, t, &atasp::ExchangeMode::Collective)
        });
        // Every sent element appears exactly once, at its target.
        let mut received: Vec<u64> = Vec::new();
        for (rank, res) in out.results.iter().enumerate() {
            for &e in res {
                let src = (e >> 32) as usize;
                let idx = (e & 0xffff_ffff) as usize;
                prop_assert_eq!(targets[src][idx], rank, "element {:#x} misrouted", e);
                received.push(e);
            }
        }
        received.sort_unstable();
        let mut expect: Vec<u64> = Vec::new();
        for (src, t) in targets.iter().enumerate() {
            for i in 0..t.len() {
                expect.push(((src as u64) << 32) | i as u64);
            }
        }
        prop_assert_eq!(received, expect);
    }
}
