//! Property-style tests on the core data structures and invariants: Morton
//! codes, permutations, box geometry, the redistribution operations, the
//! parallel sorts under arbitrary inputs, and phase-span attribution.
//!
//! Cases are generated from a deterministic splitmix64 stream (the workspace
//! builds offline with no external crates, so no proptest): every run checks
//! the same inputs, and a failing case is reproducible from its loop index.

use particles::systems::splitmix64;
use particles::{invert_permutation, scatter, SystemBox, Vec3};

/// Deterministic generator for test case construction.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }
    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        splitmix64(self.0)
    }
    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.u64() % n.max(1)
    }
    /// Uniform in `[lo, hi)`.
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
    fn vec_u64(&mut self, max_len: u64) -> Vec<u64> {
        let len = self.below(max_len + 1) as usize;
        (0..len).map(|_| self.u64()).collect()
    }
}

#[test]
fn zorder_roundtrip() {
    let mut g = Gen::new(1);
    for _ in 0..512 {
        let (x, y, z) = (g.below(1 << 21) as u32, g.below(1 << 21) as u32, g.below(1 << 21) as u32);
        let k = particles::zorder::encode(x, y, z);
        assert_eq!(particles::zorder::decode(k), (x, y, z));
    }
}

#[test]
fn zorder_parent_child() {
    let mut g = Gen::new(2);
    for _ in 0..512 {
        let k = particles::zorder::encode(
            g.below(1 << 20) as u32,
            g.below(1 << 20) as u32,
            g.below(1 << 20) as u32,
        );
        let c = g.below(8) as u8;
        assert_eq!(particles::zorder::parent(particles::zorder::child(k, c)), k);
    }
}

#[test]
fn zorder_axis_monotone() {
    let mut g = Gen::new(3);
    for _ in 0..512 {
        let a = g.below(1 << 21) as u32;
        let b = g.below(1 << 21) as u32;
        if a == b {
            continue;
        }
        let (a, b) = (a.min(b), a.max(b));
        assert!(particles::zorder::encode(a, 0, 0) < particles::zorder::encode(b, 0, 0));
    }
}

#[test]
fn box_wrap_idempotent() {
    let mut g = Gen::new(4);
    for _ in 0..512 {
        let l = g.f64(1.0, 100.0);
        let bbox = SystemBox::cubic(l);
        let p = Vec3::new(g.f64(-1e3, 1e3), g.f64(-1e3, 1e3), g.f64(-1e3, 1e3));
        let w = bbox.wrap(p);
        assert!(bbox.contains(w), "{w:?} not in box of edge {l}");
        let w2 = bbox.wrap(w);
        assert!((w - w2).norm() < 1e-9 * l);
    }
}

#[test]
fn min_image_bounded() {
    let mut g = Gen::new(5);
    let bbox = SystemBox::cubic(50.0);
    for _ in 0..512 {
        let a = Vec3::new(g.f64(0.0, 50.0), g.f64(0.0, 50.0), g.f64(0.0, 50.0));
        let b = Vec3::new(g.f64(0.0, 50.0), g.f64(0.0, 50.0), g.f64(0.0, 50.0));
        let d = bbox.min_image(a, b);
        assert!(d.max_abs() <= 25.0 + 1e-9);
    }
}

#[test]
fn permutation_roundtrip() {
    let mut g = Gen::new(6);
    for _ in 0..128 {
        let n = 1 + g.below(200) as usize;
        let seed: Vec<u64> = (0..n).map(|_| g.below(1_000_000)).collect();
        // Build a permutation by arg-sorting random values.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (seed[i], i));
        let perm = invert_permutation(&idx); // idx is a permutation; invert for variety
        let data: Vec<u64> = (0..n as u64).collect();
        let there = scatter(&data, &perm);
        let back = scatter(&there, &invert_permutation(&perm));
        assert_eq!(back, data);
    }
}

#[test]
fn resort_index_roundtrip() {
    let mut g = Gen::new(7);
    for _ in 0..512 {
        let rank = g.below(u32::MAX as u64) as usize;
        let pos = g.below(u32::MAX as u64) as usize;
        let ix = atasp::encode_index(rank, pos);
        assert_eq!(atasp::decode_index(ix), (rank, pos));
        assert!(!atasp::is_ghost(ix) || rank == u32::MAX as usize && pos == u32::MAX as usize);
    }
}

#[test]
fn balanced_dims_product() {
    let mut g = Gen::new(8);
    for _ in 0..512 {
        let n = 1 + g.below(10_000) as usize;
        let nd = 1 + g.below(5) as usize;
        let dims = simcomm::balanced_dims(n, nd);
        assert_eq!(dims.iter().product::<usize>(), n);
        assert_eq!(dims.len(), nd);
    }
}

#[test]
fn bspline_partition_of_unity() {
    let mut g = Gen::new(9);
    for _ in 0..512 {
        let p = 1 + g.below(5) as usize;
        let u = g.f64(0.0, 1e4);
        let mut w = vec![0.0; p];
        pmsolver::stencil(p, u, &mut w);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "order {p}, u {u}: {w:?}");
        assert!(w.iter().all(|&x| x >= -1e-12));
    }
}

#[test]
fn radix_sort_correct() {
    let mut g = Gen::new(10);
    for _ in 0..64 {
        let keys = g.vec_u64(500);
        let vals: Vec<u64> = keys.iter().map(|k| k.wrapping_mul(3)).collect();
        let mut k = keys.clone();
        let mut v = vals;
        psort::radix_sort_by_key(&mut k, &mut v);
        assert!(k.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(&k, &expect);
        for (key, val) in k.iter().zip(&v) {
            assert_eq!(*val, key.wrapping_mul(3));
        }
    }
}

/// Parallel-sort property: arbitrary per-rank data is globally sorted and
/// remains a permutation of the input, for both algorithms. (World creation
/// is relatively expensive, so the case count is bounded.)
#[test]
fn parallel_sorts_sort_anything() {
    let mut g = Gen::new(11);
    for case in 0..12 {
        let p = 1 + g.below(5) as usize;
        let data: Vec<Vec<u64>> = (0..p).map(|_| g.vec_u64(120)).collect();
        let data2 = data.clone();
        let out = simcomm::run(p, simcomm::MachineModel::ideal(), move |comm| {
            let keys = data2[comm.rank()].clone();
            let vals = keys.clone();
            let (pk, _, _) = psort::partition_sort_by_key(comm, keys.clone(), vals.clone());
            let (mk, _, _) = psort::merge_exchange_sort_by_key(comm, keys, vals);
            (pk, mk)
        });
        let mut expect: Vec<u64> = data.into_iter().flatten().collect();
        expect.sort_unstable();
        let mut got_p: Vec<u64> = Vec::new();
        let mut got_m: Vec<u64> = Vec::new();
        let mut prev_p: Option<u64> = None;
        let mut prev_m: Option<u64> = None;
        for (pk, mk) in out.results {
            assert!(pk.windows(2).all(|w| w[0] <= w[1]), "case {case}");
            assert!(mk.windows(2).all(|w| w[0] <= w[1]), "case {case}");
            if let (Some(l), Some(&f)) = (prev_p, pk.first()) {
                assert!(l <= f, "case {case}");
            }
            if let (Some(l), Some(&f)) = (prev_m, mk.first()) {
                assert!(l <= f, "case {case}");
            }
            prev_p = pk.last().copied().or(prev_p);
            prev_m = mk.last().copied().or(prev_m);
            got_p.extend(pk);
            got_m.extend(mk);
        }
        got_p.sort_unstable();
        got_m.sort_unstable();
        assert_eq!(&got_p, &expect, "case {case}");
        assert_eq!(&got_m, &expect, "case {case}");
    }
}

/// alltoall_specific delivers every element to its target exactly once.
#[test]
fn alltoall_specific_is_exact() {
    let mut g = Gen::new(12);
    for case in 0..16 {
        let targets: Vec<Vec<usize>> = (0..4)
            .map(|_| {
                let len = g.below(81) as usize;
                (0..len).map(|_| g.below(4) as usize).collect()
            })
            .collect();
        let targets2 = targets.clone();
        let out = simcomm::run(4, simcomm::MachineModel::ideal(), move |comm| {
            let me = comm.rank();
            let t = &targets2[me];
            let elements: Vec<u64> = (0..t.len()).map(|i| ((me as u64) << 32) | i as u64).collect();
            atasp::alltoall_specific(comm, &elements, t, &atasp::ExchangeMode::Collective)
        });
        // Every sent element appears exactly once, at its target.
        let mut received: Vec<u64> = Vec::new();
        for (rank, res) in out.results.iter().enumerate() {
            for &e in res {
                let src = (e >> 32) as usize;
                let idx = (e & 0xffff_ffff) as usize;
                assert_eq!(targets[src][idx], rank, "case {case}: element {e:#x} misrouted");
                received.push(e);
            }
        }
        received.sort_unstable();
        let mut expect: Vec<u64> = Vec::new();
        for (src, t) in targets.iter().enumerate() {
            for i in 0..t.len() {
                expect.push(((src as u64) << 32) | i as u64);
            }
        }
        assert_eq!(received, expect, "case {case}");
    }
}

/// Phase attribution property: under arbitrary interleavings of nested phase
/// spans, communication, and modelled compute, the recorded attribution
/// segments of every rank are time-ordered, non-overlapping, and within the
/// rank's clock — and the per-phase aggregates decompose the clock exactly.
#[test]
fn phase_spans_never_overlap() {
    let mut g = Gen::new(13);
    for case in 0..8 {
        let p = 2 + g.below(3) as usize; // 2..=4 ranks
        let script: Vec<u64> = (0..40).map(|_| g.u64()).collect();
        let script2 = script.clone();
        let out = simcomm::run_traced(p, simcomm::MachineModel::juropa_like(), move |comm| {
            const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
            let mut depth = 0usize;
            for (i, &op) in script2.iter().enumerate() {
                match op % 5 {
                    0 => {
                        comm.enter_phase(NAMES[(op >> 8) as usize % NAMES.len()]);
                        depth += 1;
                    }
                    1 if depth > 0 => {
                        comm.exit_phase();
                        depth -= 1;
                    }
                    2 => comm.compute(simcomm::Work::ParticleOp, (op % 1000) as f64),
                    3 => {
                        // Ring exchange: every rank sends and receives.
                        let right = (comm.rank() + 1) % comm.size();
                        let left = (comm.rank() + comm.size() - 1) % comm.size();
                        let _ =
                            comm.sendrecv(right, vec![op; 1 + (op % 7) as usize], left, i as u64);
                    }
                    _ => {
                        let _ = comm.allreduce(op, u64::wrapping_add);
                    }
                }
            }
            // Leave any open phases for rank-exit auto-close.
        });
        for (rank, prof) in out.phases.iter().enumerate() {
            let clock = out.clocks[rank];
            let segs = &prof.segments;
            for s in segs {
                assert!(
                    s.t_start <= s.t_end && s.t_start >= 0.0 && s.t_end <= clock + 1e-12,
                    "case {case} rank {rank}: segment {s:?} outside [0, {clock}]"
                );
            }
            for w in segs.windows(2) {
                assert!(
                    w[0].t_end <= w[1].t_start + 1e-12,
                    "case {case} rank {rank}: overlapping segments {w:?}"
                );
            }
            // Exhaustive decomposition: tagged + untagged == totals.
            let tagged = prof.tagged_total();
            let untagged = prof.untagged(&out.stats[rank]);
            let sum = tagged.seconds() + untagged.seconds();
            assert!(
                (sum - clock).abs() < 1e-9 * clock.max(1.0),
                "case {case} rank {rank}: phases sum to {sum}, clock {clock}"
            );
            // Segment time of each phase never exceeds its aggregate seconds.
            for ph in &prof.phases {
                let seg_sum: f64 =
                    segs.iter().filter(|s| s.name == ph.name).map(|s| s.t_end - s.t_start).sum();
                assert!(
                    (seg_sum - ph.seconds()).abs() < 1e-9 * clock.max(1.0),
                    "case {case} rank {rank} phase {}: segments {seg_sum} vs stats {}",
                    ph.name,
                    ph.seconds()
                );
            }
        }
    }
}
