//! Cross-crate integration tests: the full coupling pipeline (application ->
//! fcs interface -> solver -> redistribution -> application) exercised
//! end-to-end, checking the paper's semantic guarantees across solvers,
//! methods, distributions and world sizes.

use fcs::{Fcs, SolverKind};
use particles::{local_set, InitialDistribution, IonicCrystal, Vec3};
use simcomm::{run, CartGrid, MachineModel};

/// The total energy must be independent of: the solver execution method
/// (A/B), the initial distribution, and the number of processes.
#[test]
fn energy_invariant_across_methods_distributions_and_world_sizes() {
    let crystal = IonicCrystal::cubic(6, 1.0, 0.15, 13);
    let bbox = crystal.system_box();
    let mut energies: Vec<(String, f64)> = Vec::new();
    for kind in [SolverKind::Fmm, SolverKind::P2Nfft] {
        let mut kind_energies: Vec<f64> = Vec::new();
        for p in [1usize, 4, 8] {
            for dist in [
                InitialDistribution::SingleProcess,
                InitialDistribution::Random,
                InitialDistribution::Grid,
            ] {
                for resort in [false, true] {
                    let crystal = crystal.clone();
                    let out = run(p, MachineModel::ideal(), move |comm| {
                        let dims = CartGrid::balanced(p).dims();
                        let set = local_set(&crystal, dist, comm.rank(), p, dims);
                        let mut h = Fcs::init(kind, p);
                        h.set_common(bbox);
                        h.set_tolerance(1e-3);
                        h.tune(comm, set.pos(), set.charge());
                        h.set_resort(resort);
                        let o = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
                        0.5 * o.potential.iter().zip(&o.charge).map(|(a, q)| a * q).sum::<f64>()
                    });
                    let e: f64 = out.results.iter().sum();
                    energies.push((format!("{kind:?}/p{p}/{dist:?}/resort={resort}"), e));
                    kind_energies.push(e);
                }
            }
        }
        // Within one solver, all configurations must agree tightly (identical
        // physics, different data handling).
        let base = kind_energies[0];
        for (label, e) in energies.iter().filter(|(l, _)| l.starts_with(&format!("{kind:?}"))) {
            assert!((e - base).abs() < 5e-6 * base.abs(), "{label}: {e} deviates from {base}");
        }
    }
}

/// Method A must return every array bit-identically ordered to the input,
/// for both solvers, even with hostile (single-process) input distributions.
#[test]
fn method_a_is_bit_transparent() {
    let crystal = IonicCrystal::cubic(6, 1.5, 0.3, 99);
    let bbox = crystal.system_box();
    for kind in [SolverKind::Fmm, SolverKind::P2Nfft] {
        let crystal = crystal.clone();
        run(6, MachineModel::juropa_like(), move |comm| {
            let set =
                local_set(&crystal, InitialDistribution::SingleProcess, comm.rank(), 6, [3, 2, 1]);
            let mut h = Fcs::init(kind, 6);
            h.set_common(bbox);
            h.tune(comm, set.pos(), set.charge());
            let o = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
            assert_eq!(o.pos, set.pos());
            assert_eq!(o.charge, set.charge());
            assert_eq!(o.id, set.id());
            assert_eq!(o.potential.len(), set.len());
            assert!(o.resort_indices.is_empty());
        });
    }
}

/// Method B round-trip: running B, then resorting a second data channel,
/// then routing everything back by origin, must reproduce the original data.
#[test]
fn method_b_full_roundtrip() {
    let crystal = IonicCrystal::cubic(8, 1.0, 0.2, 5);
    let bbox = crystal.system_box();
    let p = 8;
    for kind in [SolverKind::Fmm, SolverKind::P2Nfft] {
        let crystal = crystal.clone();
        run(p, MachineModel::ideal(), move |comm| {
            let dims = CartGrid::balanced(p).dims();
            let set = local_set(&crystal, InitialDistribution::Random, comm.rank(), p, dims);
            let mut h = Fcs::init(kind, p);
            h.set_common(bbox);
            h.tune(comm, set.pos(), set.charge());
            h.set_resort(true);
            let o = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
            assert!(h.resorted());
            // Forward: a payload tagged by global id follows its particle.
            let payload: Vec<f64> = set.id().iter().map(|&i| (i as f64).sqrt()).collect();
            let moved = h.resort_floats(comm, &payload);
            for (v, id) in moved.iter().zip(&o.id) {
                assert_eq!(*v, (*id as f64).sqrt());
            }
            // The positions returned under B are the same particles (match by
            // id against the deterministic source).
            for (x, id) in o.pos.iter().zip(&o.id) {
                let (want, _) = crystal.particle(*id);
                assert_eq!(*x, want, "position of particle {id}");
            }
        });
    }
}

/// Repeated Method B runs in a simulation loop keep the particle set
/// consistent: nothing is lost or duplicated across many redistributions.
#[test]
fn repeated_method_b_conserves_particles() {
    let crystal = IonicCrystal::cubic(6, 1.0, 0.2, 21);
    let bbox = crystal.system_box();
    let p = 4;
    let out = run(p, MachineModel::ideal(), move |comm| {
        let dims = CartGrid::balanced(p).dims();
        let set = local_set(&crystal, InitialDistribution::Grid, comm.rank(), p, dims);
        let mut h = Fcs::init(SolverKind::P2Nfft, p);
        h.set_common(bbox);
        h.tune(comm, set.pos(), set.charge());
        h.set_resort(true);
        let (mut pos, mut charge, mut id) = set.into_parts();
        for step in 0..5 {
            // Drift all particles deterministically by id.
            for (x, pid) in pos.iter_mut().zip(&id) {
                let h = particles::systems::splitmix64(pid ^ (step as u64) << 32);
                *x = bbox.wrap(
                    *x + Vec3::new(
                        ((h & 0xff) as f64 - 127.5) * 0.002,
                        (((h >> 8) & 0xff) as f64 - 127.5) * 0.002,
                        (((h >> 16) & 0xff) as f64 - 127.5) * 0.002,
                    ),
                );
            }
            let o = h.run(comm, &pos, &charge, &id, usize::MAX);
            pos = o.pos;
            charge = o.charge;
            id = o.id;
        }
        let mut ids = id;
        ids.sort_unstable();
        ids
    });
    let mut all: Vec<u64> = out.results.into_iter().flatten().collect();
    all.sort_unstable();
    let expect: Vec<u64> = (0..216u64).collect();
    assert_eq!(all, expect, "all particles exactly once after 5 redistributions");
}

/// The movement-exploiting paths must be bit-identical to the plain paths in
/// their *results* (they only change the communication strategy).
#[test]
fn movement_exploitation_identical_results() {
    let crystal = IonicCrystal::cubic(6, 1.0, 0.1, 77);
    let bbox = crystal.system_box();
    let p = 8;
    for kind in [SolverKind::Fmm, SolverKind::P2Nfft] {
        let crystal = crystal.clone();
        run(p, MachineModel::juqueen_like(), move |comm| {
            let dims = CartGrid::balanced(p).dims();
            let set = local_set(&crystal, InitialDistribution::Grid, comm.rank(), p, dims);
            let mut h = Fcs::init(kind, p);
            h.set_common(bbox);
            h.tune(comm, set.pos(), set.charge());
            h.set_resort(true);
            let o1 = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
            // Re-run from the solver distribution, with and without the hint.
            let plain = h.run(comm, &o1.pos, &o1.charge, &o1.id, usize::MAX);
            h.set_max_particle_move(Some(1e-9));
            let hinted = h.run(comm, &o1.pos, &o1.charge, &o1.id, usize::MAX);
            assert_eq!(plain.id, hinted.id, "{kind:?}");
            assert_eq!(plain.pos, hinted.pos);
            for (a, b) in plain.potential.iter().zip(&hinted.potential) {
                assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{kind:?}: {a} vs {b}");
            }
        });
    }
}

/// Virtual time is deterministic: the same program produces the identical
/// makespan on every execution (a property real clusters lack, and the basis
/// of reproducible benchmarking in this repo).
#[test]
fn virtual_time_reproducible_end_to_end() {
    let run_once = || {
        let crystal = IonicCrystal::cubic(4, 1.0, 0.1, 3);
        let bbox = crystal.system_box();
        let out = run(4, MachineModel::juropa_like(), move |comm| {
            let set = local_set(
                &crystal,
                InitialDistribution::Random,
                comm.rank(),
                4,
                CartGrid::balanced(4).dims(),
            );
            let mut h = Fcs::init(SolverKind::Fmm, 4);
            h.set_common(bbox);
            h.tune(comm, set.pos(), set.charge());
            let _ = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
            comm.clock()
        });
        out.clocks
    };
    assert_eq!(run_once(), run_once());
}
