//! Engine equivalence on the full MD workloads: the discrete-event engine
//! must reproduce the thread-per-rank engine **bit for bit** on every
//! figure-style configuration — same per-rank virtual clocks, same traffic
//! statistics, same step records (physics *and* timing fields), same final
//! particle state — with and without an injected [`simcomm::FaultPlan`].
//!
//! The simcomm crate's own `engine_equivalence` suite checks the primitives
//! (sends, collectives, traces, payload bytes); this integration suite
//! closes the loop at the application layer, where the solvers, the resort
//! paths, the plan cache, and the recovery driver all run on top of the
//! engine under test.

use fcs::SolverKind;
use mdsim::{simulate, SimConfig, SimResult, StepRecord};
use particles::{local_set, InitialDistribution, IonicCrystal};
use simcomm::{CartGrid, Engine, FaultPlan, MachineModel, RunOutput, Runner};

fn config(solver: SolverKind, resort: bool, exploit: bool, steps: usize) -> SimConfig {
    SimConfig {
        solver,
        resort,
        exploit_movement: exploit,
        steps,
        tolerance: 1e-2,
        dt: mdsim::suggested_dt(1.0, 1.0),
        ..SimConfig::default()
    }
}

/// Every field of a step record, floats projected to raw bits: "identical"
/// here means identical timing, not just identical physics.
#[allow(clippy::type_complexity)]
fn record_bits(records: &[StepRecord]) -> Vec<(usize, u64, u64, u64, u64, u64, u64, bool)> {
    records
        .iter()
        .map(|r| {
            (
                r.step,
                r.sort.to_bits(),
                r.restore.to_bits(),
                r.resort.to_bits(),
                r.total.to_bits(),
                r.max_move.to_bits(),
                r.energy.to_bits(),
                r.resorted,
            )
        })
        .collect()
}

/// Assert two MD worlds are bitwise identical: clocks, traffic statistics,
/// step records, plan-cache counters, recoveries, and final states.
fn assert_worlds_identical(a: &RunOutput<SimResult>, b: &RunOutput<SimResult>, what: &str) {
    for (rank, (ca, cb)) in a.clocks.iter().zip(&b.clocks).enumerate() {
        assert_eq!(ca.to_bits(), cb.to_bits(), "{what}: rank {rank} final clock differs");
    }
    assert_eq!(a.stats, b.stats, "{what}: rank statistics differ");
    for (rank, (ra, rb)) in a.results.iter().zip(&b.results).enumerate() {
        assert_eq!(
            record_bits(&ra.records),
            record_bits(&rb.records),
            "{what}: rank {rank} step records differ"
        );
        assert_eq!(ra.final_local, rb.final_local, "{what}: rank {rank} final count differs");
        assert_eq!(
            ra.rms_displacement.to_bits(),
            rb.rms_displacement.to_bits(),
            "{what}: rank {rank} drift differs"
        );
        assert_eq!(
            (ra.plan_builds, ra.plan_hits, ra.recoveries),
            (rb.plan_builds, rb.plan_hits, rb.recoveries),
            "{what}: rank {rank} plan/recovery counters differ"
        );
        assert_eq!(ra.final_state, rb.final_state, "{what}: rank {rank} final state differs");
    }
    for (rank, (pa, pb)) in a.phases.iter().zip(&b.phases).enumerate() {
        assert_eq!(pa.phases, pb.phases, "{what}: rank {rank} phase aggregates differ");
    }
}

/// Run one MD configuration under the given runner.
fn md_world(
    runner: &Runner,
    p: usize,
    model: MachineModel,
    crystal: &IonicCrystal,
    dist: InitialDistribution,
    cfg: &SimConfig,
) -> RunOutput<SimResult> {
    let bbox = crystal.system_box();
    let crystal = crystal.clone();
    let cfg = cfg.clone();
    runner.run(p, model, move |comm| {
        let dims = CartGrid::balanced(p).dims();
        let set = local_set(&crystal, dist, comm.rank(), p, dims);
        simulate(comm, bbox, set, &cfg)
    })
}

#[test]
fn md_configs_bitwise_identical_across_engines() {
    let crystal = IonicCrystal::cubic(5, 1.0, 0.15, 7);
    let p = 8;
    // Fig. 6/7-style (random init, Method A vs B) and fig8-style (grid init,
    // movement-exploiting Method B) configurations, both solvers.
    let cases = [
        (SolverKind::Fmm, false, false, InitialDistribution::Random),
        (SolverKind::Fmm, true, true, InitialDistribution::Grid),
        (SolverKind::P2Nfft, true, false, InitialDistribution::Random),
        (SolverKind::P2Nfft, true, true, InitialDistribution::Grid),
    ];
    for model in [MachineModel::juropa_like(), MachineModel::juqueen_like()] {
        for (solver, resort, exploit, dist) in cases {
            let cfg = config(solver, resort, exploit, 3);
            let threaded =
                md_world(&Runner::new(Engine::Threaded), p, model.clone(), &crystal, dist, &cfg);
            let discrete = md_world(
                &Runner::new(Engine::DiscreteEvent),
                p,
                model.clone(),
                &crystal,
                dist,
                &cfg,
            );
            assert_worlds_identical(
                &threaded,
                &discrete,
                &format!("{} {solver:?} resort={resort} exploit={exploit}", model.name),
            );
        }
    }
}

#[test]
fn faulted_md_bitwise_identical_across_engines() {
    // The fault layer draws from seeded per-rank streams keyed by operation
    // counts — all schedule-independent state — so even under latency
    // spikes, send losses and a straggler the two engines must agree on
    // every bit, including the fault counters themselves.
    let crystal = IonicCrystal::cubic(5, 1.0, 0.15, 19);
    let p = 8;
    let cfg = config(SolverKind::P2Nfft, true, true, 3);
    let plan = FaultPlan {
        seed: 0xfab,
        latency_spike_prob: 0.1,
        latency_spike_seconds: 25e-6,
        send_loss_prob: 0.08,
        retry_backoff_seconds: 5e-6,
        straggler_ranks: vec![1],
        straggler_factor: 1.4,
        ..FaultPlan::none()
    };
    let threaded = Runner::new(Engine::Threaded).faulted(plan.clone());
    let discrete = Runner::new(Engine::DiscreteEvent).faulted(plan);
    let model = MachineModel::juqueen_like();
    let a = md_world(&threaded, p, model.clone(), &crystal, InitialDistribution::Grid, &cfg);
    let b = md_world(&discrete, p, model.clone(), &crystal, InitialDistribution::Grid, &cfg);
    let injected: u64 = a.stats.iter().map(|s| s.faults_injected).sum();
    assert!(injected > 0, "the fault plan must actually inject faults");
    assert_worlds_identical(&a, &b, "faulted P2NFFT");
}
