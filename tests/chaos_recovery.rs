//! Fault-masking integration: every figure-style configuration (fig6/7/8 —
//! Method A, Method B, and the movement-exploiting Method B variant, both
//! solvers) must complete under an adverse `FaultPlan` and reproduce the
//! unfaulted trajectory **bit for bit**. Faults delay — they never corrupt
//! payloads — and the movement-bound guards plus the driver's
//! rollback-and-replay recovery mask every injected violation.

use fcs::SolverKind;
use mdsim::{simulate, SimConfig, StepRecord};
use particles::{local_set, InitialDistribution, IonicCrystal};
use simcomm::{run, run_faulted, CartGrid, FaultPlan, MachineModel, StallSpec};

fn config(solver: SolverKind, resort: bool, exploit: bool, steps: usize) -> SimConfig {
    SimConfig {
        solver,
        resort,
        exploit_movement: exploit,
        steps,
        tolerance: 1e-2,
        dt: mdsim::suggested_dt(1.0, 1.0),
        ..SimConfig::default()
    }
}

/// Transient losses, latency spikes and a straggler — time-only faults that
/// every configuration must mask without any trajectory deviation.
fn adverse_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        latency_spike_prob: 0.1,
        latency_spike_seconds: 25e-6,
        send_loss_prob: 0.08,
        retry_backoff_seconds: 5e-6,
        straggler_ranks: vec![1],
        straggler_factor: 1.4,
        ..FaultPlan::none()
    }
}

/// The physical (non-timing) content of a step record: energy and measured
/// movement must be bitwise identical between faulted and clean runs; the
/// timing fields legitimately differ (faults cost virtual time).
fn physical_bits(records: &[StepRecord]) -> Vec<(usize, u64, u64, bool)> {
    records.iter().map(|r| (r.step, r.energy.to_bits(), r.max_move.to_bits(), r.resorted)).collect()
}

#[test]
fn faulted_fig_configs_reproduce_unfaulted_trajectories() {
    let crystal = IonicCrystal::cubic(6, 1.0, 0.15, 23);
    let bbox = crystal.system_box();
    let p = 8;
    // Method A (fig6/7), Method B (fig7), and the movement-exploiting Method
    // B variant of fig8. The exploit configuration additionally suffers
    // movement-hint lies: the hint handed to the solver under-reports the
    // true movement by 1000x, so the movement-bound guard must detect the
    // violation and fall back to the general path instead of mis-routing.
    let configs = [
        (SolverKind::Fmm, false, false, false),
        (SolverKind::Fmm, true, false, false),
        (SolverKind::P2Nfft, true, false, false),
        (SolverKind::P2Nfft, true, true, true),
    ];
    for (solver, resort, exploit, lie) in configs {
        let cfg = config(solver, resort, exploit, 4);
        let mut plan = adverse_plan(0x5eed ^ solver as u64);
        if lie {
            plan.hint_lie_prob = 0.75;
            plan.hint_lie_factor = 1e-3;
        }

        let worker = {
            let crystal = crystal.clone();
            let cfg = cfg.clone();
            move |comm: &mut simcomm::Comm| {
                let dims = CartGrid::balanced(p).dims();
                let set = local_set(&crystal, InitialDistribution::Grid, comm.rank(), p, dims);
                let out = simulate(comm, bbox, set, &cfg);
                (out.records, out.final_state, out.recoveries)
            }
        };
        let clean = run(p, MachineModel::juropa_like(), worker.clone());
        let faulted = run_faulted(p, MachineModel::juropa_like(), plan, worker);

        let injected: u64 = faulted.stats.iter().map(|s| s.faults_injected).sum();
        assert!(injected > 0, "{solver:?} resort={resort}: the plan must actually inject faults");
        for ((c_recs, c_state, _), (f_recs, f_state, _)) in
            clean.results.iter().zip(&faulted.results)
        {
            assert_eq!(
                physical_bits(c_recs),
                physical_bits(f_recs),
                "{solver:?} resort={resort} exploit={exploit}: faulted trajectory deviates"
            );
            assert_eq!(c_state, f_state, "{solver:?} resort={resort}: final state deviates");
        }
    }
}

#[test]
fn stall_and_timeouts_trigger_recovery_and_are_masked() {
    // An injected rank stall plus an aggressive wait-timeout threshold force
    // the driver's rollback-and-replay loop to fire; the replay must land on
    // the exact same trajectory (faults only perturb virtual time).
    let crystal = IonicCrystal::cubic(5, 1.0, 0.15, 41);
    let bbox = crystal.system_box();
    let p = 8;
    let cfg = config(SolverKind::P2Nfft, true, true, 5);
    let plan = FaultPlan {
        stall: Some(StallSpec { rank: 2, after_ops: 150, seconds: 0.2 }),
        wait_timeout_seconds: Some(1e-9),
        ..adverse_plan(97)
    };

    let worker = {
        let crystal = crystal.clone();
        let cfg = cfg.clone();
        move |comm: &mut simcomm::Comm| {
            let dims = CartGrid::balanced(p).dims();
            let set = local_set(&crystal, InitialDistribution::Grid, comm.rank(), p, dims);
            let out = simulate(comm, bbox, set, &cfg);
            (out.records, out.final_state, out.recoveries)
        }
    };
    let clean = run(p, MachineModel::juropa_like(), worker.clone());
    let faulted = run_faulted(p, MachineModel::juropa_like(), plan, worker);

    let recoveries = faulted.results[0].2;
    assert!(recoveries >= 1, "the stall/timeouts must trigger at least one recovery");
    for (_, _, r) in &faulted.results {
        assert_eq!(*r, recoveries, "the recovery count is collective");
    }
    for ((c_recs, c_state, _), (f_recs, f_state, _)) in clean.results.iter().zip(&faulted.results) {
        assert_eq!(physical_bits(c_recs), physical_bits(f_recs));
        assert_eq!(c_state, f_state, "recovered trajectory deviates from the unfaulted run");
    }
}

#[test]
fn inert_fault_plan_matches_plain_run_bit_for_bit() {
    // `run_faulted(FaultPlan::none())` is the plain runtime: identical
    // results, records (including every timing field) and final clocks.
    let crystal = IonicCrystal::cubic(5, 1.0, 0.15, 13);
    let bbox = crystal.system_box();
    let p = 8;
    let cfg = config(SolverKind::P2Nfft, true, true, 4);
    let worker = {
        let crystal = crystal.clone();
        let cfg = cfg.clone();
        move |comm: &mut simcomm::Comm| {
            let dims = CartGrid::balanced(p).dims();
            let set = local_set(&crystal, InitialDistribution::Grid, comm.rank(), p, dims);
            let out = simulate(comm, bbox, set, &cfg);
            (out.records, out.final_state, out.final_clock, out.recoveries)
        }
    };
    let plain = run(p, MachineModel::juropa_like(), worker.clone());
    let inert = run_faulted(p, MachineModel::juropa_like(), FaultPlan::none(), worker);

    for ((p_recs, p_state, p_clock, p_rec), (i_recs, i_state, i_clock, i_rec)) in
        plain.results.iter().zip(&inert.results)
    {
        assert_eq!(p_recs, i_recs, "records (timings included) must be identical");
        assert_eq!(p_state, i_state);
        assert_eq!(p_clock.to_bits(), i_clock.to_bits(), "clocks must be bitwise identical");
        assert_eq!(*p_rec, 0);
        assert_eq!(*i_rec, 0);
    }
}
