//! Checkpoint/restart integration: a simulation split into two halves via a
//! saved snapshot must reproduce the uninterrupted run exactly — a strong
//! end-to-end determinism check of the whole redistribution pipeline.

use fcs::SolverKind;
use mdsim::{simulate, simulate_from, SimConfig};
use particles::{local_set, InitialDistribution, IonicCrystal};
use simcomm::{run, CartGrid, MachineModel};

fn config(solver: SolverKind, resort: bool, steps: usize) -> SimConfig {
    SimConfig {
        solver,
        resort,
        steps,
        tolerance: 1e-2,
        dt: mdsim::suggested_dt(1.0, 1.0),
        track_displacement: true,
        ..SimConfig::default()
    }
}

#[test]
fn split_run_reproduces_continuous_run() {
    let crystal = IonicCrystal::cubic(6, 1.0, 0.15, 31);
    let bbox = crystal.system_box();
    let p = 4;
    for (solver, resort) in
        [(SolverKind::Fmm, false), (SolverKind::Fmm, true), (SolverKind::P2Nfft, true)]
    {
        let crystal = crystal.clone();
        let out = run(p, MachineModel::ideal(), move |comm| {
            let dims = CartGrid::balanced(p).dims();
            let set = local_set(&crystal, InitialDistribution::Grid, comm.rank(), p, dims);

            // Continuous run: 6 steps.
            let full = simulate(comm, bbox, set.clone(), &config(solver, resort, 6));

            // Split run: 3 steps, checkpoint, then 3 more.
            let first = simulate(comm, bbox, set, &config(solver, resort, 3));
            let snap = first.final_state.clone();
            assert_eq!(snap.step, 3);
            let second = simulate_from(comm, snap, &config(solver, resort, 3));
            assert_eq!(second.final_state.step, 6);
            (full.final_state, second.final_state, full.records, second.records)
        });
        for (full, resumed, full_recs, resumed_recs) in out.results {
            // Identical particle state, element by element (positions are
            // bitwise deterministic; the restart recomputes the same
            // accelerations from the same positions).
            assert_eq!(full.id, resumed.id, "{solver:?} resort={resort}");
            assert_eq!(full.pos, resumed.pos);
            for (a, b) in full.vel.iter().zip(&resumed.vel) {
                assert!((*a - *b).norm() < 1e-12);
            }
            // Energies of the overlapping steps agree.
            let full_e: Vec<f64> = full_recs.iter().skip(4).map(|r| r.energy).collect();
            let res_e: Vec<f64> = resumed_recs.iter().skip(1).map(|r| r.energy).collect();
            assert_eq!(full_e.len(), res_e.len());
            for (a, b) in full_e.iter().zip(&res_e) {
                assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }
}

#[test]
fn snapshot_file_roundtrip_preserves_simulation() {
    // Save each rank's snapshot to disk, reload, continue — same as in-memory.
    let crystal = IonicCrystal::cubic(4, 1.0, 0.1, 7);
    let bbox = crystal.system_box();
    let p = 2;
    let dir = std::env::temp_dir().join("cpr_restart_test");
    std::fs::create_dir_all(&dir).unwrap();
    let dir2 = dir.clone();
    let out = run(p, MachineModel::ideal(), move |comm| {
        let set = local_set(
            &crystal,
            InitialDistribution::Grid,
            comm.rank(),
            p,
            CartGrid::balanced(p).dims(),
        );
        let cfg = config(SolverKind::P2Nfft, true, 2);
        let first = simulate(comm, bbox, set, &cfg);
        let path = dir2.join(format!("rank{}.snap", comm.rank()));
        first.final_state.save(&path).unwrap();
        let loaded = mdsim::io::Snapshot::load(&path).unwrap();
        assert_eq!(loaded, first.final_state, "exact text round-trip");
        let resumed = simulate_from(comm, loaded, &cfg);
        let direct = simulate_from(comm, first.final_state.clone(), &cfg);
        assert_eq!(resumed.final_state.pos, direct.final_state.pos);
        resumed.final_state.id.len()
    });
    let total: usize = out.results.iter().sum();
    assert_eq!(total, 64);
    std::fs::remove_dir_all(&dir).ok();
}
