//! Campaign crash-safety integration: an interrupted campaign — whether
//! halted cleanly, killed with a torn journal tail, or missing payload
//! files — must resume to an aggregated result **bitwise identical** to an
//! uninterrupted campaign over the same spec.

use std::path::{Path, PathBuf};
use std::time::Duration;

use campaign::{run_campaign, CampaignOutcome, Policy, RunCtx, RunDef, RunOutcome};
use simcomm::{Engine, MachineModel, Runner, WorldError};

/// Per-run config: a seed, plus fault bits.
#[derive(Clone, Copy)]
struct Cfg {
    seed: u64,
    /// Fail attempt 1 with an injected rank panic, succeed from attempt 2.
    flaky: bool,
    /// Fail every attempt (terminal failure record).
    poisoned: bool,
}

/// The campaign spec: 10 runs, one deterministically flaky, one poisoned.
fn spec() -> Vec<RunDef<Cfg>> {
    (0..10u64)
        .map(|i| RunDef {
            name: format!("run/{i}"),
            config: Cfg { seed: 0x9e37_79b9 ^ (i * 0x85eb_ca6b), flaky: i == 3, poisoned: i == 7 },
        })
        .collect()
}

/// Deterministic world: 4 ranks fold the seed through an allreduce; the
/// payload is the reduced value plus every rank's final clock bits, so any
/// divergence between an original and a retried/resumed execution shows up
/// as a byte difference.
fn exec(cfg: &Cfg, ctx: &RunCtx) -> Result<String, WorldError> {
    let inject = cfg.poisoned || (cfg.flaky && ctx.attempt == 1);
    let seed = cfg.seed;
    let out = Runner::new(Engine::DiscreteEvent).try_run(
        4,
        MachineModel::juropa_like(),
        move |comm| {
            if inject && comm.rank() == 2 {
                panic!("injected fault");
            }
            let mine = seed.wrapping_mul(comm.rank() as u64 + 1);
            let data: Vec<(usize, Vec<u8>)> =
                (0..comm.size()).map(|q| (q, mine.to_le_bytes().to_vec())).collect();
            let got = comm.alltoallv(data);
            got.iter()
                .map(|(_, v)| u64::from_le_bytes(v.as_slice().try_into().unwrap()))
                .fold(0u64, u64::wrapping_add)
        },
    )?;
    let clocks: Vec<String> = out.clocks.iter().map(|c| format!("{:016x}", c.to_bits())).collect();
    Ok(format!("{:016x} {}", out.results[0], clocks.join(" ")))
}

/// Canonical aggregation of a finished campaign — the analogue of the bench
/// bin's report: input order, payloads and attempt counts for completions,
/// kind/detail for failures. Excludes the `resumed` bookkeeping flag, which
/// legitimately differs between a fresh and a resumed invocation.
fn aggregate(outcome: &CampaignOutcome) -> String {
    let mut doc = String::new();
    for row in &outcome.runs {
        let line = match row.outcome.as_ref().expect("campaign finished") {
            RunOutcome::Completed { payload, attempts, .. } => {
                format!("{} ok attempts={attempts} {payload}\n", row.name)
            }
            RunOutcome::Failed { kind, detail, attempts, .. } => {
                format!("{} failed attempts={attempts} {kind}: {detail}\n", row.name)
            }
        };
        doc.push_str(&line);
    }
    doc
}

fn policy(halt_after: Option<usize>) -> Policy {
    Policy {
        workers: 3,
        max_attempts: 2,
        backoff: Duration::from_millis(1),
        deadline: None,
        halt_after,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaign_resume_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The uninterrupted reference aggregation.
fn reference(dir: &Path) -> String {
    let outcome = run_campaign(dir, &policy(None), &spec(), exec).expect("reference campaign");
    assert!(!outcome.halted);
    assert_eq!(outcome.failed().count(), 1, "exactly the poisoned run fails");
    assert_eq!(outcome.completed().count(), 9);
    aggregate(&outcome)
}

#[test]
fn halted_campaign_resumes_bitwise_identical() {
    let ref_dir = tmp_dir("ref");
    let expected = reference(&ref_dir);

    // Interrupt after 4 terminal runs, then resume in the same dir.
    let dir = tmp_dir("halt");
    let halted = run_campaign(&dir, &policy(Some(4)), &spec(), exec).expect("halted campaign");
    assert!(halted.halted);
    assert!(halted.runs.iter().any(|r| r.outcome.is_none()), "some runs still pending");
    let resumed = run_campaign(&dir, &policy(None), &spec(), exec).expect("resumed campaign");
    assert!(!resumed.halted);
    assert!(resumed.reused >= 4, "terminal runs were reused, not re-executed");
    assert_eq!(aggregate(&resumed).as_bytes(), expected.as_bytes());

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_journal_and_lost_payload_resume_bitwise_identical() {
    let ref_dir = tmp_dir("ref2");
    let expected = reference(&ref_dir);

    // Simulate a kill -9: run to completion, then tear the journal mid-file
    // (a partially flushed record) and delete one completed payload.
    let dir = tmp_dir("torn");
    let full = run_campaign(&dir, &policy(None), &spec(), exec).expect("first campaign");
    assert!(!full.halted);

    let journal = dir.join("journal.log");
    let bytes = std::fs::read(&journal).expect("read journal");
    // Cut at 60% of the file, landing mid-record with near certainty; the
    // torn tail must be detected and the affected runs re-executed.
    std::fs::write(&journal, &bytes[..bytes.len() * 6 / 10]).expect("tear journal");
    // Also lose a payload whose `completed` record may have survived the
    // tear: resume must notice the missing file and re-run that config.
    let lost = dir.join("payloads").join(format!("{}.json", campaign::mangle("run/1")));
    std::fs::remove_file(&lost).ok();

    let resumed = run_campaign(&dir, &policy(None), &spec(), exec).expect("resumed campaign");
    assert!(!resumed.halted);
    assert!(resumed.executed > 0, "torn runs were re-executed");
    assert_eq!(aggregate(&resumed).as_bytes(), expected.as_bytes());

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}
