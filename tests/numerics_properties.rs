//! Property-based tests on the numerical kernels: FFT algebra, FMM expansion
//! operators, Ewald-family identities and the soft-core potential.

use proptest::collection::vec;
use proptest::prelude::*;

use particles::Vec3;
use pmsolver::{dft_reference, fft_in_place, Complex, Direction};

fn signal_strategy(max_log: u32) -> impl Strategy<Value = Vec<Complex>> {
    (0..=max_log).prop_flat_map(|log_n| {
        let n = 1usize << log_n;
        vec((-1.0f64..1.0, -1.0f64..1.0), n..=n)
            .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FFT matches the naive DFT for any power-of-two signal.
    #[test]
    fn fft_matches_dft(x in signal_strategy(7)) {
        let mut fast = x.clone();
        fft_in_place(&mut fast, Direction::Forward);
        let slow = dft_reference(&x, Direction::Forward);
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((*f - *s).norm2().sqrt() < 1e-8 * (x.len() as f64 + 1.0));
        }
    }

    /// Forward-then-inverse recovers the signal (scaled by N).
    #[test]
    fn fft_roundtrip(x in signal_strategy(8)) {
        let n = x.len() as f64;
        let mut y = x.clone();
        fft_in_place(&mut y, Direction::Forward);
        fft_in_place(&mut y, Direction::Inverse);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - b.scale(1.0 / n)).norm2().sqrt() < 1e-10);
        }
    }

    /// Parseval: energy preserved up to the 1/N convention.
    #[test]
    fn fft_parseval(x in signal_strategy(8)) {
        let time: f64 = x.iter().map(|c| c.norm2()).sum();
        let mut y = x.clone();
        fft_in_place(&mut y, Direction::Forward);
        let freq: f64 = y.iter().map(|c| c.norm2()).sum::<f64>() / x.len() as f64;
        prop_assert!((time - freq).abs() < 1e-9 * time.max(1.0));
    }

    /// A multipole expansion of a random near-origin cluster evaluated far
    /// away approximates the direct potential, and M2M translation preserves
    /// the evaluation.
    #[test]
    fn fmm_expansion_far_field(
        srcs in vec(((-0.4f64..0.4), (-0.4f64..0.4), (-0.4f64..0.4), (-1.0f64..1.0)), 1..8),
        dir in ((0.6f64..1.0), (-1.0f64..1.0), (-1.0f64..1.0)),
    ) {
        let ops = fmm::ExpansionOps::new(6);
        let z = Vec3::ZERO;
        let mut m = vec![0.0; ops.len()];
        for &(x, y, zz, q) in &srcs {
            ops.p2m(&mut m, z, Vec3::new(x, y, zz), q);
        }
        // Far evaluation point at distance ~6 (cluster radius < 0.7).
        let d = Vec3::new(dir.0, dir.1, dir.2);
        let y_pt = d * (6.0 / d.norm());
        let (phi, _) = ops.m2p(&m, z, y_pt);
        let mut want = 0.0;
        for &(x, y, zz, q) in &srcs {
            want += q / (y_pt - Vec3::new(x, y, zz)).norm();
        }
        prop_assert!(
            (phi - want).abs() < 1e-5 * want.abs().max(0.05),
            "phi {phi} vs direct {want}"
        );
        // M2M to a shifted center evaluates identically within truncation.
        let zp = Vec3::new(0.3, -0.2, 0.1);
        let mut mp = vec![0.0; ops.len()];
        ops.m2m(&mut mp, &m, z, zp);
        let (phi2, _) = ops.m2p(&mp, zp, y_pt);
        prop_assert!((phi - phi2).abs() < 1e-4 * phi.abs().max(0.05));
    }

    /// The soft core is positive, decreasing, and steeper than Coulomb.
    #[test]
    fn soft_core_properties(a in 0.5f64..5.0, r_frac in 0.2f64..1.5) {
        let core = particles::SoftCore::for_spacing(a);
        let r = r_frac * a;
        let u = core.energy(r);
        let f = core.force(r);
        prop_assert!(u > 0.0 && f > 0.0);
        // Numerical derivative check: f = -du/dr.
        let h = r * 1e-6;
        let slope = (core.energy(r + h) - core.energy(r - h)) / (2.0 * h);
        prop_assert!((f + slope).abs() < 1e-4 * f.max(1e-12), "f {f} vs -slope {}", -slope);
        // Negligible at twice the spacing.
        prop_assert!(core.energy(2.0 * a) < 1e-3);
    }

    /// erfc decreases monotonically and obeys the complement identity.
    #[test]
    fn erfc_properties(x in -4.0f64..4.0) {
        let e = particles::math::erfc(x);
        prop_assert!((0.0..=2.0).contains(&e));
        prop_assert!((particles::math::erfc(-x) - (2.0 - e)).abs() < 1e-9);
        prop_assert!(particles::math::erfc(x + 0.1) <= e + 1e-12);
    }
}
