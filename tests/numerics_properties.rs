//! Property-style tests on the numerical kernels: FFT algebra, FMM expansion
//! operators, Ewald-family identities and the soft-core potential.
//!
//! Cases come from a deterministic splitmix64 stream (no external crates; see
//! `property_tests.rs`), so failures are reproducible from the loop index.

use particles::systems::splitmix64;
use particles::Vec3;
use pmsolver::{dft_reference, fft_in_place, Complex, Direction};

struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }
    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        splitmix64(self.0)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.u64() % n.max(1)
    }
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
    /// A complex signal whose length is a random power of two `<= 2^max_log`.
    fn signal(&mut self, max_log: u64) -> Vec<Complex> {
        let n = 1usize << self.below(max_log + 1);
        (0..n).map(|_| Complex::new(self.f64(-1.0, 1.0), self.f64(-1.0, 1.0))).collect()
    }
}

#[test]
fn fft_matches_dft() {
    let mut g = Gen::new(21);
    for _ in 0..32 {
        let x = g.signal(7);
        let mut fast = x.clone();
        fft_in_place(&mut fast, Direction::Forward);
        let slow = dft_reference(&x, Direction::Forward);
        for (f, s) in fast.iter().zip(&slow) {
            assert!((*f - *s).norm2().sqrt() < 1e-8 * (x.len() as f64 + 1.0));
        }
    }
}

#[test]
fn fft_roundtrip() {
    let mut g = Gen::new(22);
    for _ in 0..32 {
        let x = g.signal(8);
        let n = x.len() as f64;
        let mut y = x.clone();
        fft_in_place(&mut y, Direction::Forward);
        fft_in_place(&mut y, Direction::Inverse);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - b.scale(1.0 / n)).norm2().sqrt() < 1e-10);
        }
    }
}

#[test]
fn fft_parseval() {
    let mut g = Gen::new(23);
    for _ in 0..32 {
        let x = g.signal(8);
        let time: f64 = x.iter().map(|c| c.norm2()).sum();
        let mut y = x.clone();
        fft_in_place(&mut y, Direction::Forward);
        let freq: f64 = y.iter().map(|c| c.norm2()).sum::<f64>() / x.len() as f64;
        assert!((time - freq).abs() < 1e-9 * time.max(1.0));
    }
}

/// A multipole expansion of a random near-origin cluster evaluated far away
/// approximates the direct potential, and M2M translation preserves the
/// evaluation.
#[test]
fn fmm_expansion_far_field() {
    let mut g = Gen::new(24);
    let ops = fmm::ExpansionOps::new(6);
    for case in 0..32 {
        let nsrc = 1 + g.below(7) as usize;
        let srcs: Vec<(f64, f64, f64, f64)> = (0..nsrc)
            .map(|_| (g.f64(-0.4, 0.4), g.f64(-0.4, 0.4), g.f64(-0.4, 0.4), g.f64(-1.0, 1.0)))
            .collect();
        let dir = (g.f64(0.6, 1.0), g.f64(-1.0, 1.0), g.f64(-1.0, 1.0));
        let z = Vec3::ZERO;
        let mut m = vec![0.0; ops.len()];
        for &(x, y, zz, q) in &srcs {
            ops.p2m(&mut m, z, Vec3::new(x, y, zz), q);
        }
        // Far evaluation point at distance ~6 (cluster radius < 0.7).
        let d = Vec3::new(dir.0, dir.1, dir.2);
        let y_pt = d * (6.0 / d.norm());
        let (phi, _) = ops.m2p(&m, z, y_pt);
        let mut want = 0.0;
        for &(x, y, zz, q) in &srcs {
            want += q / (y_pt - Vec3::new(x, y, zz)).norm();
        }
        assert!(
            (phi - want).abs() < 1e-5 * want.abs().max(0.05),
            "case {case}: phi {phi} vs direct {want}"
        );
        // M2M to a shifted center evaluates identically within truncation.
        let zp = Vec3::new(0.3, -0.2, 0.1);
        let mut mp = vec![0.0; ops.len()];
        ops.m2m(&mut mp, &m, z, zp);
        let (phi2, _) = ops.m2p(&mp, zp, y_pt);
        assert!((phi - phi2).abs() < 1e-4 * phi.abs().max(0.05), "case {case}");
    }
}

/// The soft core is positive, decreasing, and steeper than Coulomb.
#[test]
fn soft_core_properties() {
    let mut g = Gen::new(25);
    for _ in 0..128 {
        let a = g.f64(0.5, 5.0);
        let r = g.f64(0.2, 1.5) * a;
        let core = particles::SoftCore::for_spacing(a);
        let u = core.energy(r);
        let f = core.force(r);
        assert!(u > 0.0 && f > 0.0);
        // Numerical derivative check: f = -du/dr.
        let h = r * 1e-6;
        let slope = (core.energy(r + h) - core.energy(r - h)) / (2.0 * h);
        assert!((f + slope).abs() < 1e-4 * f.max(1e-12), "f {f} vs -slope {}", -slope);
        // Negligible at twice the spacing.
        assert!(core.energy(2.0 * a) < 1e-3);
    }
}

/// erfc decreases monotonically and obeys the complement identity.
#[test]
fn erfc_properties() {
    let mut g = Gen::new(26);
    for _ in 0..512 {
        let x = g.f64(-4.0, 4.0);
        let e = particles::math::erfc(x);
        assert!((0.0..=2.0).contains(&e));
        assert!((particles::math::erfc(-x) - (2.0 - e)).abs() < 1e-9);
        assert!(particles::math::erfc(x + 0.1) <= e + 1e-12);
    }
}
