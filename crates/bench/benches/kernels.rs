//! Criterion micro-benchmarks of the computational kernels (real wall time,
//! as opposed to the figure harnesses' virtual time): local sorting, Morton
//! encoding, FFT, B-spline stencils, FMM expansion operators, special
//! functions and the linked-cell near field.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn bench_local_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_sort");
    for n in [1_000usize, 100_000] {
        let keys: Vec<u64> = (0..n as u64).map(splitmix).collect();
        let vals: Vec<u64> = keys.clone();
        g.bench_with_input(BenchmarkId::new("radix_u64", n), &n, |b, _| {
            b.iter(|| {
                let mut k = keys.clone();
                let mut v = vals.clone();
                psort::radix_sort_by_key(&mut k, &mut v);
                black_box(k.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("std_sort_by_key", n), &n, |b, _| {
            b.iter(|| {
                let mut pairs: Vec<(u64, u64)> =
                    keys.iter().copied().zip(vals.iter().copied()).collect();
                pairs.sort_unstable_by_key(|&(k, _)| k);
                black_box(pairs.len())
            })
        });
        // Almost sorted input: the radix early-exit pass skip.
        let sorted_keys: Vec<u64> = (0..n as u64).collect();
        g.bench_with_input(BenchmarkId::new("radix_sorted_input", n), &n, |b, _| {
            b.iter(|| {
                let mut k = sorted_keys.clone();
                let mut v = vals.clone();
                psort::radix_sort_by_key(&mut k, &mut v);
                black_box(k.len())
            })
        });
    }
    g.finish();
}

fn bench_zorder(c: &mut Criterion) {
    let mut g = c.benchmark_group("zorder");
    let coords: Vec<(u32, u32, u32)> = (0..4096u64)
        .map(|i| {
            let h = splitmix(i);
            (
                (h & 0x1fffff) as u32,
                ((h >> 21) & 0x1fffff) as u32,
                ((h >> 42) & 0x1fffff) as u32,
            )
        })
        .collect();
    g.bench_function("encode_4096", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y, z) in &coords {
                acc ^= particles::zorder::encode(x, y, z);
            }
            black_box(acc)
        })
    });
    let keys: Vec<u64> = coords
        .iter()
        .map(|&(x, y, z)| particles::zorder::encode(x, y, z))
        .collect();
    g.bench_function("decode_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &k in &keys {
                let (x, y, z) = particles::zorder::decode(k);
                acc ^= x ^ y ^ z;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [256usize, 4096] {
        let data: Vec<pmsolver::Complex> = (0..n as u64)
            .map(|i| {
                let h = splitmix(i);
                pmsolver::Complex::new(
                    (h & 0xffff) as f64 / 65536.0,
                    ((h >> 16) & 0xffff) as f64 / 65536.0,
                )
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("complex_1d", n), &n, |b, _| {
            b.iter(|| {
                let mut x = data.clone();
                pmsolver::fft_in_place(&mut x, pmsolver::Direction::Forward);
                black_box(x[0].re)
            })
        });
    }
    g.finish();
}

fn bench_bspline(c: &mut Criterion) {
    let mut g = c.benchmark_group("bspline");
    for order in [2usize, 3, 4] {
        g.bench_with_input(BenchmarkId::new("stencil", order), &order, |b, &p| {
            let mut w = vec![0.0; p];
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..1000 {
                    let u = 5.0 + i as f64 * 0.137;
                    pmsolver::stencil(p, u, &mut w);
                    acc += w[0];
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_expansion_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("fmm_expansion");
    for order in [2usize, 4, 6] {
        let ops = fmm::ExpansionOps::new(order);
        let nc = ops.len();
        let z = particles::Vec3::new(0.5, 0.5, 0.5);
        let w = particles::Vec3::new(3.5, 0.5, 0.5);
        let mut m = vec![0.0; nc];
        ops.p2m(&mut m, z, particles::Vec3::new(0.4, 0.6, 0.5), 1.0);
        g.bench_with_input(BenchmarkId::new("m2l", order), &order, |b, _| {
            let t = ops.derivative_tensor(w - z);
            b.iter(|| {
                let mut l = vec![0.0; nc];
                ops.m2l_with_tensor(&mut l, &m, &t);
                black_box(l[0])
            })
        });
        g.bench_with_input(BenchmarkId::new("derivative_tensor", order), &order, |b, _| {
            b.iter(|| black_box(ops.derivative_tensor(w - z)[0]))
        });
        g.bench_with_input(BenchmarkId::new("p2m", order), &order, |b, _| {
            b.iter(|| {
                let mut mm = vec![0.0; nc];
                for i in 0..100 {
                    ops.p2m(
                        &mut mm,
                        z,
                        particles::Vec3::new(0.4, 0.5 + i as f64 * 1e-3, 0.5),
                        1.0,
                    );
                }
                black_box(mm[0])
            })
        });
    }
    g.finish();
}

fn bench_special_functions(c: &mut Criterion) {
    c.bench_function("erfc_1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                acc += particles::math::erfc(i as f64 * 0.003);
            }
            black_box(acc)
        })
    });
}

fn bench_near_field(c: &mut Criterion) {
    let bbox = particles::SystemBox::cubic(10.0);
    let gas = particles::RandomGas { n: 2000, bbox, seed: 5 };
    let mut pos = Vec::new();
    let mut charge = Vec::new();
    for i in 0..2000u64 {
        let (x, q) = particles::distributions::ParticleSource::particle(&gas, i);
        pos.push(x);
        charge.push(q);
    }
    c.bench_function("linked_cell_2000_rcut1.5", |b| {
        b.iter(|| {
            let (p, _, pairs) = pmsolver::near_field(
                &bbox,
                1.0,
                1.5,
                None,
                (particles::Vec3::ZERO, particles::Vec3::splat(10.0)),
                &pos,
                &charge,
                &[],
                &[],
            );
            black_box((p[0], pairs))
        })
    });
}

criterion_group!(
    benches,
    bench_local_sort,
    bench_zorder,
    bench_fft,
    bench_bspline,
    bench_expansion_ops,
    bench_special_functions,
    bench_near_field
);
criterion_main!(benches);
