//! Micro-benchmarks of the computational kernels (real wall time, as opposed
//! to the figure harnesses' virtual time): local sorting, Morton encoding,
//! FFT, B-spline stencils, FMM expansion operators, special functions and the
//! linked-cell near field.
//!
//! Plain binary (`harness = false`); run with `cargo bench -p bench`.

use bench::microbench::bench_case;
use std::hint::black_box;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn bench_local_sort() {
    for n in [1_000usize, 100_000] {
        let keys: Vec<u64> = (0..n as u64).map(splitmix).collect();
        let vals: Vec<u64> = keys.clone();
        bench_case("local_sort", &format!("radix_u64/{n}"), || {
            let mut k = keys.clone();
            let mut v = vals.clone();
            psort::radix_sort_by_key(&mut k, &mut v);
            k.len()
        });
        bench_case("local_sort", &format!("std_sort_by_key/{n}"), || {
            let mut pairs: Vec<(u64, u64)> =
                keys.iter().copied().zip(vals.iter().copied()).collect();
            pairs.sort_unstable_by_key(|&(k, _)| k);
            pairs.len()
        });
        // Almost sorted input: the radix early-exit pass skip.
        let sorted_keys: Vec<u64> = (0..n as u64).collect();
        bench_case("local_sort", &format!("radix_sorted_input/{n}"), || {
            let mut k = sorted_keys.clone();
            let mut v = vals.clone();
            psort::radix_sort_by_key(&mut k, &mut v);
            k.len()
        });
    }
}

fn bench_zorder() {
    let coords: Vec<(u32, u32, u32)> = (0..4096u64)
        .map(|i| {
            let h = splitmix(i);
            ((h & 0x1fffff) as u32, ((h >> 21) & 0x1fffff) as u32, ((h >> 42) & 0x1fffff) as u32)
        })
        .collect();
    bench_case("zorder", "encode_4096", || {
        let mut acc = 0u64;
        for &(x, y, z) in &coords {
            acc ^= particles::zorder::encode(x, y, z);
        }
        acc
    });
    let keys: Vec<u64> =
        coords.iter().map(|&(x, y, z)| particles::zorder::encode(x, y, z)).collect();
    bench_case("zorder", "decode_4096", || {
        let mut acc = 0u32;
        for &k in &keys {
            let (x, y, z) = particles::zorder::decode(k);
            acc ^= x ^ y ^ z;
        }
        acc
    });
}

fn bench_fft() {
    for n in [256usize, 4096] {
        let data: Vec<pmsolver::Complex> = (0..n as u64)
            .map(|i| {
                let h = splitmix(i);
                pmsolver::Complex::new(
                    (h & 0xffff) as f64 / 65536.0,
                    ((h >> 16) & 0xffff) as f64 / 65536.0,
                )
            })
            .collect();
        bench_case("fft", &format!("complex_1d/{n}"), || {
            let mut x = data.clone();
            pmsolver::fft_in_place(&mut x, pmsolver::Direction::Forward);
            x[0].re
        });
    }
}

fn bench_bspline() {
    for order in [2usize, 3, 4] {
        bench_case("bspline", &format!("stencil/{order}"), || {
            let mut w = vec![0.0; order];
            let mut acc = 0.0;
            for i in 0..1000 {
                let u = 5.0 + i as f64 * 0.137;
                pmsolver::stencil(order, u, &mut w);
                acc += w[0];
            }
            acc
        });
    }
}

fn bench_expansion_ops() {
    for order in [2usize, 4, 6] {
        let ops = fmm::ExpansionOps::new(order);
        let nc = ops.len();
        let z = particles::Vec3::new(0.5, 0.5, 0.5);
        let w = particles::Vec3::new(3.5, 0.5, 0.5);
        let mut m = vec![0.0; nc];
        ops.p2m(&mut m, z, particles::Vec3::new(0.4, 0.6, 0.5), 1.0);
        let t = ops.derivative_tensor(w - z);
        bench_case("fmm_expansion", &format!("m2l/{order}"), || {
            let mut l = vec![0.0; nc];
            ops.m2l_with_tensor(&mut l, &m, &t);
            l[0]
        });
        bench_case("fmm_expansion", &format!("derivative_tensor/{order}"), || {
            ops.derivative_tensor(w - z)[0]
        });
        bench_case("fmm_expansion", &format!("p2m/{order}"), || {
            let mut mm = vec![0.0; nc];
            for i in 0..100 {
                ops.p2m(&mut mm, z, particles::Vec3::new(0.4, 0.5 + i as f64 * 1e-3, 0.5), 1.0);
            }
            mm[0]
        });
    }
}

fn bench_special_functions() {
    bench_case("special", "erfc_1000", || {
        let mut acc = 0.0;
        for i in 0..1000 {
            acc += particles::math::erfc(i as f64 * 0.003);
        }
        acc
    });
}

fn bench_near_field() {
    let bbox = particles::SystemBox::cubic(10.0);
    let gas = particles::RandomGas { n: 2000, bbox, seed: 5 };
    let mut pos = Vec::new();
    let mut charge = Vec::new();
    for i in 0..2000u64 {
        let (x, q) = particles::distributions::ParticleSource::particle(&gas, i);
        pos.push(x);
        charge.push(q);
    }
    bench_case("near_field", "linked_cell_2000_rcut1.5", || {
        let (p, _, pairs) = pmsolver::near_field(
            &bbox,
            1.0,
            1.5,
            None,
            (particles::Vec3::ZERO, particles::Vec3::splat(10.0)),
            &pos,
            &charge,
            &[],
            &[],
        );
        black_box((p[0], pairs))
    });
}

fn main() {
    bench_local_sort();
    bench_zorder();
    bench_fft();
    bench_bspline();
    bench_expansion_ops();
    bench_special_functions();
    bench_near_field();
}
