//! Micro-benchmarks of the redistribution operations themselves (real wall
//! time of the simulated implementation on small worlds): the fine-grained
//! all-to-all-specific exchange, the two parallel sorts, and one full solver
//! execution per solver.
//!
//! Plain binary (`harness = false`); run with `cargo bench -p bench`.

use bench::microbench::bench_case;
use simcomm::MachineModel;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn bench_alltoall_specific() {
    for p in [4usize, 16] {
        bench_case("alltoall_specific", &format!("world/{p}"), || {
            let out = simcomm::run(p, MachineModel::ideal(), move |comm| {
                let me = comm.rank();
                let n = 1000;
                let elements: Vec<u64> = (0..n).map(|i| (me * n + i) as u64).collect();
                let targets: Vec<usize> =
                    (0..n).map(|i| splitmix((me * n + i) as u64) as usize % p).collect();
                atasp::alltoall_specific(
                    comm,
                    &elements,
                    &targets,
                    &atasp::ExchangeMode::Collective,
                )
                .len()
            });
            out.results[0]
        });
    }
}

fn bench_parallel_sorts() {
    let p = 8;
    for (name, sorted) in [("random", false), ("almost_sorted", true)] {
        bench_case("parallel_sort", &format!("partition/{name}"), || {
            let out = simcomm::run(p, MachineModel::ideal(), move |comm| {
                let me = comm.rank();
                let n = 2000usize;
                let keys: Vec<u64> =
                    (0..n)
                        .map(|i| {
                            if sorted {
                                (me * n + i) as u64
                            } else {
                                splitmix((me * n + i) as u64)
                            }
                        })
                        .collect();
                let vals = keys.clone();
                let (k, _, _) = psort::partition_sort_by_key(comm, keys, vals);
                k.len()
            });
            out.results[0]
        });
        bench_case("parallel_sort", &format!("merge_exchange/{name}"), || {
            let out = simcomm::run(p, MachineModel::ideal(), move |comm| {
                let me = comm.rank();
                let n = 2000usize;
                let keys: Vec<u64> =
                    (0..n)
                        .map(|i| {
                            if sorted {
                                (me * n + i) as u64
                            } else {
                                splitmix((me * n + i) as u64)
                            }
                        })
                        .collect();
                let vals = keys.clone();
                let (k, _, _) = psort::merge_exchange_sort_by_key(comm, keys, vals);
                k.len()
            });
            out.results[0]
        });
    }
}

fn bench_solver_execution() {
    let crystal = particles::IonicCrystal::cubic(8, 1.0, 0.15, 3);
    let bbox = particles::ParticleSource::system_box(&crystal);
    for kind in [fcs::SolverKind::Fmm, fcs::SolverKind::P2Nfft] {
        let crystal = crystal.clone();
        bench_case("solver_run", &format!("method_b/{kind:?}"), move || {
            let crystal = crystal.clone();
            let out = simcomm::run(4, MachineModel::ideal(), move |comm| {
                let set = particles::local_set(
                    &crystal,
                    particles::InitialDistribution::Grid,
                    comm.rank(),
                    4,
                    simcomm::CartGrid::balanced(4).dims(),
                );
                let mut h = fcs::Fcs::init(kind, 4);
                h.set_common(bbox);
                h.set_tolerance(1e-2);
                h.tune(comm, set.pos(), set.charge());
                h.set_resort(true);
                let o = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
                o.potential.len()
            });
            out.results[0]
        });
    }
}

fn main() {
    bench_alltoall_specific();
    bench_parallel_sorts();
    bench_solver_execution();
}
