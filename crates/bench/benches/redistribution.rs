//! Criterion micro-benchmarks of the redistribution operations themselves
//! (real wall time of the simulated implementation on small worlds): the
//! fine-grained all-to-all-specific exchange, resort, the two parallel sorts,
//! and one full solver execution per solver.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simcomm::MachineModel;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn bench_alltoall_specific(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoall_specific");
    g.sample_size(20);
    for p in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("world", p), &p, |b, &p| {
            b.iter(|| {
                let out = simcomm::run(p, MachineModel::ideal(), |comm| {
                    let me = comm.rank();
                    let n = 1000;
                    let elements: Vec<u64> = (0..n).map(|i| (me * n + i) as u64).collect();
                    let targets: Vec<usize> =
                        (0..n).map(|i| splitmix((me * n + i) as u64) as usize % p).collect();
                    atasp::alltoall_specific(
                        comm,
                        &elements,
                        &targets,
                        &atasp::ExchangeMode::Collective,
                    )
                    .len()
                });
                black_box(out.results[0])
            })
        });
    }
    g.finish();
}

fn bench_parallel_sorts(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_sort");
    g.sample_size(15);
    let p = 8;
    for (name, sorted) in [("random", false), ("almost_sorted", true)] {
        g.bench_with_input(BenchmarkId::new("partition", name), &sorted, |b, &sorted| {
            b.iter(|| {
                let out = simcomm::run(p, MachineModel::ideal(), move |comm| {
                    let me = comm.rank();
                    let n = 2000usize;
                    let keys: Vec<u64> = (0..n)
                        .map(|i| {
                            if sorted {
                                (me * n + i) as u64
                            } else {
                                splitmix((me * n + i) as u64)
                            }
                        })
                        .collect();
                    let vals = keys.clone();
                    let (k, _, _) = psort::partition_sort_by_key(comm, keys, vals);
                    k.len()
                });
                black_box(out.results[0])
            })
        });
        g.bench_with_input(BenchmarkId::new("merge_exchange", name), &sorted, |b, &sorted| {
            b.iter(|| {
                let out = simcomm::run(p, MachineModel::ideal(), move |comm| {
                    let me = comm.rank();
                    let n = 2000usize;
                    let keys: Vec<u64> = (0..n)
                        .map(|i| {
                            if sorted {
                                (me * n + i) as u64
                            } else {
                                splitmix((me * n + i) as u64)
                            }
                        })
                        .collect();
                    let vals = keys.clone();
                    let (k, _, _) = psort::merge_exchange_sort_by_key(comm, keys, vals);
                    k.len()
                });
                black_box(out.results[0])
            })
        });
    }
    g.finish();
}

fn bench_solver_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver_run");
    g.sample_size(10);
    let crystal = particles::IonicCrystal::cubic(8, 1.0, 0.15, 3);
    let bbox = particles::ParticleSource::system_box(&crystal);
    for kind in [fcs::SolverKind::Fmm, fcs::SolverKind::P2Nfft] {
        g.bench_with_input(
            BenchmarkId::new("method_b", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let crystal = crystal.clone();
                b.iter(|| {
                    let crystal = crystal.clone();
                    let out = simcomm::run(4, MachineModel::ideal(), move |comm| {
                        let set = particles::local_set(
                            &crystal,
                            particles::InitialDistribution::Grid,
                            comm.rank(),
                            4,
                            simcomm::CartGrid::balanced(4).dims(),
                        );
                        let mut h = fcs::Fcs::init(kind, 4);
                        h.set_common(bbox);
                        h.set_tolerance(1e-2);
                        h.tune(comm, &set.pos, &set.charge);
                        h.set_resort(true);
                        let o = h.run(comm, &set.pos, &set.charge, &set.id, usize::MAX);
                        o.potential.len()
                    });
                    black_box(out.results[0])
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_alltoall_specific, bench_parallel_sorts, bench_solver_execution);
criterion_main!(benches);
