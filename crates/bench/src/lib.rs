//! # bench — harnesses reproducing the paper's evaluation
//!
//! One binary per figure of the paper's Sect. IV (`fig6`, `fig7`, `fig8`,
//! `fig9`), an `ablation` binary for the design-choice comparisons, and
//! Criterion micro-benchmarks for the computational kernels.
//!
//! The figure binaries print the same rows/series the paper plots and write
//! CSV files. Runtimes are **virtual seconds** of the simulated machine
//! models (`juropa_like`, `juqueen_like`); see `DESIGN.md` for the
//! substitution rationale. Default workload sizes are scaled down from the
//! paper's 829 440-particle system so every figure regenerates on a laptop in
//! minutes; `--cells`/`--steps`/`--procs` restore paper scale.

#![warn(missing_docs)]

pub mod cli;
pub mod gate;
pub mod json;
pub mod microbench;
pub mod report;
pub mod selftime;

use std::collections::HashMap;
use std::io::Write;

use mdsim::StepRecord;
pub use report::{
    format_phase_table, BlameRow, CritPath, PhaseRow, RankRow, RunEntry, RunReport, SelftimeRow,
};
pub use selftime::{alloc_counters, CountingAlloc, Selftime};

/// Every binary of this crate counts its heap allocations (see
/// [`selftime`]): the `harness_selftime` report section is how the CI
/// perf-smoke job catches per-step allocation regressions.
#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

/// A tiny command-line flag parser: `--key value` pairs plus `--flag`
/// booleans. Unknown keys panic with a usage hint.
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
    allowed: Vec<&'static str>,
}

impl Args {
    /// Parse `std::env::args`, allowing only the given keys.
    pub fn parse(allowed: &[&'static str]) -> Args {
        Self::try_parse(allowed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Parse `std::env::args`, returning a usage error instead of panicking
    /// on an unknown or malformed option. Binaries with a real `--help` (like
    /// `commstats`) use this to print usage and exit nonzero gracefully.
    pub fn try_parse(allowed: &[&'static str]) -> Result<Args, String> {
        Self::try_parse_from(std::env::args().skip(1).collect(), allowed)
    }

    /// [`Args::try_parse`] over an explicit argument vector (testable form).
    pub fn try_parse_from(argv: Vec<String>, allowed: &[&'static str]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument '{a}' (allowed: {allowed:?})"))?;
            if !allowed.contains(&key) {
                return Err(format!("unknown option '--{key}' (allowed: {allowed:?})"));
            }
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                values.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(Args { values, flags, allowed: allowed.to_vec() })
    }

    /// Get a typed value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.try_get(key, default).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Args::get`], returning a usage error instead of panicking on an
    /// unparsable value (the `cli` wrapper turns this into exit code 2).
    pub fn try_get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Debug,
    {
        assert!(self.allowed.contains(&key), "option '{key}' not declared");
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad value for --{key}: {e:?}")),
        }
    }

    /// Was a boolean flag given?
    pub fn flag(&self, key: &str) -> bool {
        assert!(self.allowed.contains(&key), "flag '{key}' not declared");
        self.flags.iter().any(|f| f == key)
    }

    /// Comma-separated list of usizes.
    pub fn list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        self.try_list(key, default).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Args::list`], returning a usage error instead of panicking on an
    /// unparsable entry.
    pub fn try_list(&self, key: &str, default: &[usize]) -> Result<Vec<usize>, String> {
        assert!(self.allowed.contains(&key), "option '{key}' not declared");
        match self.values.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim().parse().map_err(|e| format!("bad entry '{x}' for --{key}: {e:?}"))
                })
                .collect(),
        }
    }

    /// The `--engine` selection every harness accepts:
    /// `threaded` (one OS thread per rank, the historical default) or
    /// `discrete` (the cooperative discrete-event scheduler for paper-scale
    /// rank counts). Both produce bitwise-identical results, clocks and
    /// reports; see `docs/ARCHITECTURE.md`.
    pub fn engine(&self, default: simcomm::Engine) -> simcomm::Engine {
        self.try_engine(default).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Args::engine`], returning a usage error instead of panicking on an
    /// unknown engine name.
    pub fn try_engine(&self, default: simcomm::Engine) -> Result<simcomm::Engine, String> {
        assert!(self.allowed.contains(&"engine"), "option 'engine' not declared");
        match self.values.get("engine") {
            None => Ok(default),
            Some(v) => simcomm::Engine::from_name(v).ok_or_else(|| {
                format!("bad value for --engine: '{v}' (use 'threaded' or 'discrete')")
            }),
        }
    }
}

/// Run a full MD simulation world and return the per-step records aggregated
/// over ranks (component-wise maxima), the global RMS drift, and a report
/// entry (makespan, per-phase and per-rank aggregates — see [`RunEntry`])
/// ready to be pushed into a [`RunReport`].
pub fn run_md_world(
    model: simcomm::MachineModel,
    engine: simcomm::Engine,
    p: usize,
    crystal: &particles::IonicCrystal,
    dist: particles::InitialDistribution,
    cfg: &mdsim::SimConfig,
) -> (Vec<StepRecord>, f64, RunEntry) {
    let (agg, rms, _, entry, _) =
        run_md_world_inner(model, engine, p, crystal, dist, cfg, None, false);
    (agg, rms, entry)
}

/// Analyzed variant of [`run_md_world`]: when `analyze` is set the world runs
/// traced, the entry's [`RunEntry::critpath`] is filled from the
/// happens-before analysis, and the per-rank traces are returned (e.g. for a
/// [`TimelineSink`]). With `analyze == false` this is exactly
/// [`run_md_world`] (traces empty, `critpath` `None`) — harnesses call this
/// unconditionally and let the flag decide.
pub fn run_md_world_analyzed(
    model: simcomm::MachineModel,
    engine: simcomm::Engine,
    p: usize,
    crystal: &particles::IonicCrystal,
    dist: particles::InitialDistribution,
    cfg: &mdsim::SimConfig,
    analyze: bool,
) -> (Vec<StepRecord>, f64, RunEntry, Vec<simcomm::Trace>) {
    let (agg, rms, _, entry, traces) =
        run_md_world_inner(model, engine, p, crystal, dist, cfg, None, analyze);
    (agg, rms, entry, traces)
}

/// Faulted variant of [`run_md_world`]: the same MD workload executed under
/// a [`simcomm::FaultPlan`]. Additionally returns the number of
/// rollback-and-replay recoveries the driver performed (collective —
/// identical on every rank).
pub fn run_md_world_faulted(
    model: simcomm::MachineModel,
    engine: simcomm::Engine,
    p: usize,
    crystal: &particles::IonicCrystal,
    dist: particles::InitialDistribution,
    cfg: &mdsim::SimConfig,
    fault: simcomm::FaultPlan,
) -> (Vec<StepRecord>, u64, RunEntry) {
    let (agg, _, recoveries, entry, _) =
        run_md_world_inner(model, engine, p, crystal, dist, cfg, Some(fault), false);
    (agg, recoveries, entry)
}

/// Faulted **and** analyzed variant of [`run_md_world`] (see
/// [`run_md_world_analyzed`] for the `analyze` contract).
#[allow(clippy::too_many_arguments)]
pub fn run_md_world_faulted_analyzed(
    model: simcomm::MachineModel,
    engine: simcomm::Engine,
    p: usize,
    crystal: &particles::IonicCrystal,
    dist: particles::InitialDistribution,
    cfg: &mdsim::SimConfig,
    fault: simcomm::FaultPlan,
    analyze: bool,
) -> (Vec<StepRecord>, u64, RunEntry, Vec<simcomm::Trace>) {
    let (agg, _, recoveries, entry, traces) =
        run_md_world_inner(model, engine, p, crystal, dist, cfg, Some(fault), analyze);
    (agg, recoveries, entry, traces)
}

/// Supervised variant of the `run_md_world*` family: the typed-error entry
/// point campaign runs use. Failures (a rank panic, a virtual deadlock, a
/// refused thread spawn, or an elapsed `deadline`) come back as a
/// [`simcomm::WorldError`] value instead of a panic, so a supervisor can
/// classify, journal and retry the run.
#[allow(clippy::too_many_arguments)]
pub fn try_run_md_world(
    model: simcomm::MachineModel,
    engine: simcomm::Engine,
    p: usize,
    crystal: &particles::IonicCrystal,
    dist: particles::InitialDistribution,
    cfg: &mdsim::SimConfig,
    fault: Option<simcomm::FaultPlan>,
    deadline: Option<std::time::Duration>,
) -> Result<(Vec<StepRecord>, f64, u64, RunEntry), simcomm::WorldError> {
    let (agg, rms, recoveries, entry, _) =
        try_run_md_world_inner(model, engine, p, crystal, dist, cfg, fault, false, deadline)?;
    Ok((agg, rms, recoveries, entry))
}

/// Shared core of the `run_md_world*` family. Tracing is clock-invisible, so
/// the records, clocks and report entry are bitwise-identical whether or not
/// `traced` is set — the traced run merely also yields the event streams.
#[allow(clippy::too_many_arguments)]
fn run_md_world_inner(
    model: simcomm::MachineModel,
    engine: simcomm::Engine,
    p: usize,
    crystal: &particles::IonicCrystal,
    dist: particles::InitialDistribution,
    cfg: &mdsim::SimConfig,
    fault: Option<simcomm::FaultPlan>,
    traced: bool,
) -> (Vec<StepRecord>, f64, u64, RunEntry, Vec<simcomm::Trace>) {
    try_run_md_world_inner(model, engine, p, crystal, dist, cfg, fault, traced, None)
        .unwrap_or_else(|e| panic!("simcomm world failed: {e}"))
}

/// Everything an MD world run yields: aggregated step records, the RMS
/// displacement, the recovery count, the report entry, and (when traced)
/// the event streams.
type MdWorldOutput = (Vec<StepRecord>, f64, u64, RunEntry, Vec<simcomm::Trace>);

/// Result-returning core: build the world, run it (optionally supervised by
/// a wall-clock deadline), and condense the output into step records and a
/// report entry.
#[allow(clippy::too_many_arguments)]
fn try_run_md_world_inner(
    model: simcomm::MachineModel,
    engine: simcomm::Engine,
    p: usize,
    crystal: &particles::IonicCrystal,
    dist: particles::InitialDistribution,
    cfg: &mdsim::SimConfig,
    fault: Option<simcomm::FaultPlan>,
    traced: bool,
    deadline: Option<std::time::Duration>,
) -> Result<MdWorldOutput, simcomm::WorldError> {
    let bbox = particles::ParticleSource::system_box(crystal);
    let crystal = crystal.clone();
    let cfg = cfg.clone();
    let mut runner = simcomm::Runner::new(engine).traced(traced).deadline(deadline);
    if let Some(fault) = fault {
        runner = runner.faulted(fault);
    }
    let out = runner.try_run(p, model, move |comm| {
        let dims = simcomm::CartGrid::balanced(p).dims();
        let set = particles::local_set(&crystal, dist, comm.rank(), p, dims);
        mdsim::simulate(comm, bbox, set, &cfg)
    })?;
    let per_rank: Vec<Vec<StepRecord>> = out.results.iter().map(|r| r.records.clone()).collect();
    let agg = aggregate_steps(&per_rank);
    let rms = out.results[0].rms_displacement;
    let recoveries = out.results[0].recoveries;
    let mut entry = RunEntry::from_run(&out);
    let traces = out.traces;
    if traced {
        attach_analysis(&mut entry, &traces);
    }
    Ok((agg, rms, recoveries, entry, traces))
}

/// Run the happens-before trace analysis and record its condensed form
/// (critical-path split + top blame rows) on the report entry. Returns the
/// full [`simtrace::Analysis`] for harnesses that print more detail.
pub fn attach_analysis(entry: &mut RunEntry, traces: &[simcomm::Trace]) -> simtrace::Analysis {
    let analysis = simtrace::analyze(traces);
    entry.critpath = Some(CritPath::from_analysis(&analysis));
    analysis
}

/// Finish one raw [`simcomm::Runner`] run: build its report entry, attach the
/// critical-path analysis when the run was traced, feed the timeline sink,
/// and push the entry under `label`. The shared tail of every run site in the
/// harnesses that drive worlds directly (ablation, redistribution, plancache,
/// scale).
pub fn record_run<R>(
    label: String,
    out: simcomm::RunOutput<R>,
    report: &mut RunReport,
    timeline: &mut TimelineSink,
) {
    let mut entry = RunEntry::from_run(&out);
    if !out.traces.is_empty() {
        attach_analysis(&mut entry, &out.traces);
    }
    timeline.push(label.clone(), out.traces);
    report.push(label, entry);
}

/// Accumulates the labelled traces of a harness's runs and writes them as a
/// single Chrome/Perfetto timeline on [`TimelineSink::finish`] — the
/// `--perfetto <path>` behaviour every figure binary shares. Inactive (all
/// methods no-ops) when the flag was not given.
pub struct TimelineSink {
    path: Option<std::path::PathBuf>,
    runs: Vec<(String, Vec<simcomm::Trace>)>,
}

impl TimelineSink {
    /// Build from the harness arguments (`--perfetto <path>`; the key must be
    /// in the allowed set).
    pub fn from_args(args: &Args) -> TimelineSink {
        let path: String = args.get("perfetto", String::new());
        Self::from_path(path)
    }

    /// Build from an explicit `--perfetto` value (empty = inactive) — the
    /// [`cli`] module's construction path.
    pub fn from_path(path: String) -> TimelineSink {
        TimelineSink { path: (!path.is_empty()).then(|| path.into()), runs: Vec::new() }
    }

    /// Is a timeline being collected? (Harnesses fold this into their
    /// `--analyze` decision: `--perfetto` implies tracing.)
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    /// Record one run's traces under a timeline label (one Perfetto process
    /// per pushed run). Drops the traces when inactive.
    pub fn push(&mut self, label: impl Into<String>, traces: Vec<simcomm::Trace>) {
        if self.active() {
            self.runs.push((label.into(), traces));
        }
    }

    /// Write the collected timeline (no-op when inactive).
    pub fn finish(self) {
        let Some(path) = self.path else { return };
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        let runs: Vec<(&str, &[simcomm::Trace])> =
            self.runs.iter().map(|(l, t)| (l.as_str(), t.as_slice())).collect();
        simtrace::write_perfetto(std::io::BufWriter::new(file), &runs)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        let events: usize = self.runs.iter().flat_map(|(_, t)| t).map(|t| t.events.len()).sum();
        println!(
            "wrote Perfetto timeline {} ({} runs, {events} events) — open at \
             https://ui.perfetto.dev",
            path.display(),
            self.runs.len()
        );
    }
}

/// Print the one-line report summary every harness emits after writing its
/// JSON report: path, entry count, and the worst accounting error (see
/// [`RunEntry::decomposition_error`]).
pub fn report_summary(path: &std::path::Path, report: &RunReport) {
    println!(
        "wrote {} ({} runs; phase times sum to rank clocks within {:.1e} s)",
        path.display(),
        report.runs.len(),
        report.decomposition_error().max(1e-15)
    );
}

/// Aggregate per-rank step records into per-step maxima (the slowest rank
/// determines the parallel runtime of each component).
pub fn aggregate_steps(per_rank: &[Vec<StepRecord>]) -> Vec<StepRecord> {
    assert!(!per_rank.is_empty());
    let steps = per_rank[0].len();
    (0..steps)
        .map(|s| {
            let mut agg = StepRecord { step: per_rank[0][s].step, ..StepRecord::default() };
            for r in per_rank {
                agg.sort = agg.sort.max(r[s].sort);
                agg.restore = agg.restore.max(r[s].restore);
                agg.resort = agg.resort.max(r[s].resort);
                agg.total = agg.total.max(r[s].total);
                agg.max_move = agg.max_move.max(r[s].max_move);
                agg.energy = r[s].energy; // identical on every rank
                agg.resorted = r[s].resorted;
            }
            agg
        })
        .collect()
}

/// Sum of a field over records `from..` (skipping warm-up entries).
pub fn sum_from(records: &[StepRecord], from: usize, f: impl Fn(&StepRecord) -> f64) -> f64 {
    records[from.min(records.len())..].iter().map(f).sum()
}

/// Write CSV rows to `results/<name>.csv` (header + rows of f64 columns).
pub fn write_csv(name: &str, header: &str, rows: &[Vec<f64>]) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(f, "{}", line.join(",")).unwrap();
    }
    path
}

/// Format a duration in seconds with engineering-style precision.
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".into()
    } else if s >= 0.1 {
        format!("{s:.3}")
    } else if s >= 1e-4 {
        format!("{:.3}m", s * 1e3)
    } else {
        format!("{:.3}u", s * 1e6)
    }
}

/// Print a header banner for a figure harness.
pub fn banner(title: &str, detail: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("{detail}");
    println!("(virtual seconds on the simulated machine model; shapes, not");
    println!(" absolute values, are comparable to the paper — see DESIGN.md)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_takes_maxima() {
        let r1 = vec![StepRecord { step: 0, sort: 1.0, total: 5.0, ..Default::default() }];
        let r2 = vec![StepRecord { step: 0, sort: 2.0, total: 4.0, ..Default::default() }];
        let agg = aggregate_steps(&[r1, r2]);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].sort, 2.0);
        assert_eq!(agg[0].total, 5.0);
    }

    #[test]
    fn sum_from_skips_prefix() {
        let recs = vec![
            StepRecord { total: 1.0, ..Default::default() },
            StepRecord { total: 2.0, ..Default::default() },
            StepRecord { total: 4.0, ..Default::default() },
        ];
        assert_eq!(sum_from(&recs, 1, |r| r.total), 6.0);
        assert_eq!(sum_from(&recs, 0, |r| r.total), 7.0);
        assert_eq!(sum_from(&recs, 10, |r| r.total), 0.0);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.0), "0");
        assert_eq!(fmt_secs(1.5), "1.500");
        assert!(fmt_secs(0.0015).ends_with('m'));
        assert!(fmt_secs(1.5e-6).ends_with('u'));
    }
}
