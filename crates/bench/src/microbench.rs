//! Minimal wall-clock micro-benchmark runner used by the `benches/` targets.
//!
//! The bench targets have `harness = false` and run as plain binaries via
//! `cargo bench -p bench`: each case is warmed up once, then iterated until a
//! minimum wall time elapses, and the mean time per iteration is printed.
//! This measures real host time, unlike the figure harnesses, which report
//! virtual time of the simulated machine model.

use std::time::{Duration, Instant};

/// Smallest total measurement window per case.
const MIN_WINDOW: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 1_000_000;

/// Run `f` repeatedly and print the mean wall time per iteration.
///
/// The closure's return value is passed through [`std::hint::black_box`] so
/// the measured work is not optimised away.
pub fn bench_case<R>(group: &str, name: &str, mut f: impl FnMut() -> R) {
    std::hint::black_box(f()); // warm-up (and cold-path code paths)
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed() < MIN_WINDOW && iters < MAX_ITERS {
        std::hint::black_box(f());
        iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / iters.max(1) as f64;
    println!("{group:<24} {name:<28} {:>14}/iter  ({iters} iters)", fmt_duration(per_iter));
}

fn fmt_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_duration;

    #[test]
    fn durations_format_with_matching_unit() {
        assert_eq!(fmt_duration(2.5), "2.500 s");
        assert_eq!(fmt_duration(3.25e-3), "3.250 ms");
        assert_eq!(fmt_duration(4.5e-6), "4.500 us");
        assert_eq!(fmt_duration(7.0e-9), "7.0 ns");
    }
}
