//! A minimal JSON value type with serializer and parser.
//!
//! The workspace is intentionally dependency-free (offline builds, see the
//! workspace `Cargo.toml`), so the run reports are serialized with this small
//! hand-rolled implementation instead of serde. It supports the full JSON
//! data model except that all numbers are `f64` (sufficient here: every
//! counter in a report fits a 53-bit mantissa).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved from parsing/construction.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejecting negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns an error message with a byte offset on
    /// malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; reports encode them as null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Shortest representation that round-trips through f64.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            let mut seen: BTreeMap<String, ()> = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                if seen.insert(key.clone(), ()).is_some() {
                    return Err(format!("duplicate key '{key}'"));
                }
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed for report content;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume a maximal run of unescaped content in one step
                // (validating per character would make parsing quadratic).
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(s);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("fig8 \"grid\"\n".into())),
            ("count", Json::Num(12345.0)),
            ("ratio", Json::Num(0.125)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("rows", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Str("x".into())])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_plain_json() {
        let v = Json::parse(r#"{"a": [1, -2.5e3, "bA"], "c": {"d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(-2500.0));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Str("bA".into()));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("{\"a\": 1, \"a\": 2}").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(3.0).pretty().trim(), "3");
        assert_eq!(Json::Num(0.5).pretty().trim(), "0.5");
        assert_eq!(Json::Num(f64::NAN).pretty().trim(), "null");
    }
}
