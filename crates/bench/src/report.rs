//! Machine-readable run reports.
//!
//! Every figure harness and the ablation binary emit a [`RunReport`] as
//! `results/<name>_report.json` next to their CSV output. A report captures
//! the workload parameters, the machine model, and for every world executed a
//! [`RunEntry`]: makespan, per-phase aggregate table (critical path, mean,
//! imbalance, traffic) and per-rank totals. All times are **virtual seconds**
//! of the simulated machine model; all sizes are bytes. See
//! `docs/OBSERVABILITY.md` for the full field reference.

use std::path::PathBuf;

use simcomm::{PhaseAgg, RankStats, RunOutput};

use crate::json::Json;

/// Current report schema version (bumped on breaking field changes).
///
/// History: **1** — initial format (`schema` field only). **2** — adds the
/// explicit `schema_version` field (serialized alongside `schema` for old
/// readers) and the optional per-run `critpath` object (critical-path
/// decomposition + wait-blame rows, present when the harness ran with
/// `--analyze`). Parsers accept `1..=REPORT_SCHEMA` and reject anything
/// newer or unknown.
pub const REPORT_SCHEMA: u64 = 2;

/// One JSON report file: workload description plus one entry per world run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Schema version ([`REPORT_SCHEMA`]).
    pub schema: u64,
    /// Which harness produced the report (`"fig6"` … `"ablation"`).
    pub figure: String,
    /// Machine model name (`"juropa_like"`, `"juqueen_like"`, `"ideal"`, or
    /// `"mixed"` when entries use different models).
    pub machine: String,
    /// Workload parameters as key/value strings (cells, steps, tolerance, …).
    pub params: Vec<(String, String)>,
    /// One entry per simulated world, in execution order.
    pub runs: Vec<RunEntry>,
    /// Harness self-timing: **real** wall-clock and heap-allocation deltas
    /// per harness phase (everything above is virtual machine-model time).
    /// Serialized as `"harness_selftime"`; absent in older reports, which
    /// parse as an empty list. See [`crate::Selftime`].
    pub selftime: Vec<SelftimeRow>,
}

/// One harness self-timing lap: real elapsed time and process-wide heap
/// allocation deltas over one phase of the benchmark binary itself.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SelftimeRow {
    /// Phase label (`"run:md/planned"`, `"steady-resort-probe"`, …).
    pub name: String,
    /// Real elapsed wall-clock seconds of the phase.
    pub wall_seconds: f64,
    /// Heap allocations performed by the whole process during the phase.
    pub allocs: u64,
    /// Bytes of heap newly allocated during the phase.
    pub alloc_bytes: u64,
    /// Steady-state repetitions the phase covered (0 = not a per-step
    /// phase). `commstats --check --alloc-budget` divides `allocs` by this
    /// before comparing against the budget.
    pub steps: u64,
}

/// Aggregates of one simulated world execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunEntry {
    /// What this run was (`"fmm/methodA"`, `"p=256 random"`, …).
    pub label: String,
    /// World size (number of simulated ranks).
    pub nranks: usize,
    /// Maximum final rank clock — the run's makespan in virtual seconds.
    pub makespan: f64,
    /// Mean final rank clock in virtual seconds. The per-phase
    /// `mean_seconds` (including `"(untagged)"`) sum to this within rounding.
    pub mean_clock: f64,
    /// Per-phase cross-rank aggregates, `"(untagged)"` last.
    pub phases: Vec<PhaseRow>,
    /// Per-rank totals, indexed by rank.
    pub ranks: Vec<RankRow>,
    /// Critical-path decomposition and wait-blame attribution, filled when
    /// the harness ran its worlds traced (`--analyze` / `--perfetto`).
    /// `None` in plain runs and in schema-1 reports.
    pub critpath: Option<CritPath>,
}

/// Critical-path decomposition of one run, produced by `simtrace::analyze`
/// from the happens-before trace graph. The three time components are an
/// exact partition of the makespan: `compute_seconds` is stored as the
/// remainder `makespan - (comm_seconds + wait_seconds)`, so the identity
/// holds bit-for-bit after a JSON round trip.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CritPath {
    /// Virtual seconds of the critical path spent in message transfer.
    pub comm_seconds: f64,
    /// Virtual seconds of the critical path spent blocked on another rank.
    pub wait_seconds: f64,
    /// Virtual seconds of the critical path spent computing (exact remainder
    /// of the makespan after comm and wait).
    pub compute_seconds: f64,
    /// Number of segments in the critical-path chain.
    pub segments: u64,
    /// Heaviest wait-blame rows (waiter ← blamed), largest first; truncated
    /// to [`CritPath::TOP_BLAME`] rows.
    pub blame: Vec<BlameRow>,
}

/// One aggregated wait-blame cell: total virtual seconds `waiter` spent
/// blocked waiting on `blamed` across the whole run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlameRow {
    /// Rank that was blocked.
    pub waiter: usize,
    /// Rank whose lateness caused the block.
    pub blamed: usize,
    /// Total blocked virtual seconds attributed to this pair.
    pub seconds: f64,
}

/// Cross-rank aggregate of one phase (the serialized form of
/// [`simcomm::PhaseAgg`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseRow {
    /// Phase name (`"(untagged)"` for the remainder row).
    pub name: String,
    /// Spans entered, summed over ranks.
    pub spans: u64,
    /// Critical path: maximum over ranks of the attributed virtual seconds.
    pub max_seconds: f64,
    /// Mean over ranks of the attributed virtual seconds.
    pub mean_seconds: f64,
    /// Imbalance ratio `max/mean` (1.0 when the mean is zero).
    pub imbalance: f64,
    /// Mean over ranks of the communication-transfer virtual seconds.
    pub mean_comm_seconds: f64,
    /// Mean over ranks of the rendezvous-wait virtual seconds.
    pub mean_wait_seconds: f64,
    /// Mean over ranks of the modelled-compute virtual seconds.
    pub mean_compute_seconds: f64,
    /// Point-to-point messages sent, summed over ranks.
    pub p2p_msgs: u64,
    /// Point-to-point bytes sent, summed over ranks.
    pub p2p_bytes: u64,
    /// Collective operations entered, summed over ranks.
    pub coll_ops: u64,
    /// Bytes contributed to collectives, summed over ranks.
    pub coll_bytes: u64,
}

/// Totals of one rank (the serialized form of [`simcomm::RankStats`] plus the
/// final clock).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankRow {
    /// Rank index.
    pub rank: usize,
    /// Final virtual clock in seconds
    /// (= `comm_seconds + wait_seconds + compute_seconds`).
    pub clock: f64,
    /// Virtual seconds of modelled communication transfer cost.
    pub comm_seconds: f64,
    /// Virtual seconds idle in rendezvous.
    pub wait_seconds: f64,
    /// Virtual seconds of modelled computation.
    pub compute_seconds: f64,
    /// Point-to-point messages sent.
    pub p2p_sent_msgs: u64,
    /// Point-to-point bytes sent.
    pub p2p_sent_bytes: u64,
    /// Point-to-point messages received.
    pub p2p_recv_msgs: u64,
    /// Point-to-point bytes received.
    pub p2p_recv_bytes: u64,
    /// Collective operations entered.
    pub coll_ops: u64,
    /// Bytes contributed to collective operations.
    pub coll_bytes: u64,
    /// Persistent communication plans built (or rebuilt) on this rank.
    pub plan_builds: u64,
    /// Executions of payload through previously built plans.
    pub plan_execs: u64,
    /// Faults injected on this rank (lost sends, latency spikes, straggler
    /// slowdown, a scheduled stall) — zero unless the run used a
    /// [`simcomm::FaultPlan`].
    pub faults_injected: u64,
    /// Retransmissions of transiently lost sends.
    pub retries: u64,
    /// Wait-timeout cycles (waits exceeding the fault plan's threshold).
    pub timeouts: u64,
    /// Scheduled stalls that fired on this rank (0 or 1 per run).
    pub stalls: u64,
    /// Message-buffer bytes served from the rank's arena pool instead of the
    /// allocator (see [`simcomm::RankStats::bytes_reused`]).
    pub bytes_reused: u64,
    /// Message-buffer capacity the allocator had to grow pooled buffers by
    /// (see [`simcomm::RankStats::bytes_grown`]).
    pub bytes_grown: u64,
}

impl CritPath {
    /// How many wait-blame rows a report keeps (the heaviest ones).
    pub const TOP_BLAME: usize = 8;

    /// Condense a full trace analysis into the report form: exact makespan
    /// partition plus the top-[`CritPath::TOP_BLAME`] blame rows.
    pub fn from_analysis(a: &simtrace::Analysis) -> CritPath {
        CritPath {
            comm_seconds: a.critpath_comm,
            wait_seconds: a.critpath_wait,
            compute_seconds: a.critpath_compute,
            segments: a.segments.len() as u64,
            blame: a
                .blame
                .iter()
                .take(Self::TOP_BLAME)
                .map(|b| BlameRow { waiter: b.waiter, blamed: b.blamed, seconds: b.seconds })
                .collect(),
        }
    }

    /// Largest violation of the critical-path invariants against the run's
    /// makespan, in virtual seconds: the components must partition the
    /// makespan exactly and each lie in `[0, makespan]`.
    pub fn partition_error(&self, makespan: f64) -> f64 {
        let sum_err =
            ((self.comm_seconds + self.wait_seconds + self.compute_seconds) - makespan).abs();
        let range_err = [self.comm_seconds, self.wait_seconds, self.compute_seconds]
            .iter()
            .map(|&c| (-c).max(c - makespan).max(0.0))
            .fold(0.0, f64::max);
        sum_err.max(range_err)
    }
}

impl RunEntry {
    /// Build an entry from a finished world run (label set to `""`; fill it
    /// in before pushing the entry into a report).
    pub fn from_run<R>(out: &RunOutput<R>) -> RunEntry {
        Self::from_parts(&out.phase_table(), &out.stats, &out.clocks)
    }

    /// Build an entry from the world's aggregate pieces.
    pub fn from_parts(table: &[PhaseAgg], stats: &[RankStats], clocks: &[f64]) -> RunEntry {
        let nranks = clocks.len();
        RunEntry {
            label: String::new(),
            nranks,
            makespan: clocks.iter().cloned().fold(0.0, f64::max),
            mean_clock: clocks.iter().sum::<f64>() / nranks.max(1) as f64,
            phases: table
                .iter()
                .map(|a| PhaseRow {
                    name: a.name.to_string(),
                    spans: a.spans,
                    max_seconds: a.max_seconds,
                    mean_seconds: a.mean_seconds,
                    imbalance: a.imbalance,
                    mean_comm_seconds: a.mean_comm_seconds,
                    mean_wait_seconds: a.mean_wait_seconds,
                    mean_compute_seconds: a.mean_compute_seconds,
                    p2p_msgs: a.p2p_msgs,
                    p2p_bytes: a.p2p_bytes,
                    coll_ops: a.coll_ops,
                    coll_bytes: a.coll_bytes,
                })
                .collect(),
            ranks: stats
                .iter()
                .zip(clocks)
                .enumerate()
                .map(|(rank, (s, &clock))| RankRow {
                    rank,
                    clock,
                    comm_seconds: s.comm_seconds,
                    wait_seconds: s.wait_seconds,
                    compute_seconds: s.compute_seconds,
                    p2p_sent_msgs: s.p2p_sent_msgs,
                    p2p_sent_bytes: s.p2p_sent_bytes,
                    p2p_recv_msgs: s.p2p_recv_msgs,
                    p2p_recv_bytes: s.p2p_recv_bytes,
                    coll_ops: s.coll_ops,
                    coll_bytes: s.coll_bytes,
                    plan_builds: s.plan_builds,
                    plan_execs: s.plan_execs,
                    faults_injected: s.faults_injected,
                    retries: s.retries,
                    timeouts: s.timeouts,
                    stalls: s.stalls,
                    bytes_reused: s.bytes_reused,
                    bytes_grown: s.bytes_grown,
                })
                .collect(),
            critpath: None,
        }
    }

    /// Largest violation of the accounting invariants, in virtual seconds:
    /// per rank `|clock − (comm + wait + compute)|`, and across phases
    /// `|Σ mean_seconds − mean_clock|`. Zero up to floating-point rounding
    /// for every entry the harnesses produce.
    pub fn decomposition_error(&self) -> f64 {
        let rank_err = self
            .ranks
            .iter()
            .map(|r| (r.clock - (r.comm_seconds + r.wait_seconds + r.compute_seconds)).abs())
            .fold(0.0, f64::max);
        let phase_sum: f64 = self.phases.iter().map(|p| p.mean_seconds).sum();
        rank_err.max((phase_sum - self.mean_clock).abs())
    }

    /// Virtual seconds attributed to phases whose name starts with `prefix`
    /// (mean over ranks). E.g. `share_of("sort")` covers `sort`,
    /// `sort:exchange`, ….
    pub fn mean_seconds_of(&self, prefix: &str) -> f64 {
        self.phases.iter().filter(|p| p.name.starts_with(prefix)).map(|p| p.mean_seconds).sum()
    }

    /// Serialize this entry alone (the element format of a report's `runs`
    /// array). Round-trips exactly through [`RunEntry::from_json`] — campaign
    /// payloads rely on this to stream per-run entries through durable
    /// storage without losing a bit.
    pub fn to_json(&self) -> Json {
        run_to_json(self)
    }

    /// Parse an entry serialized by [`RunEntry::to_json`].
    pub fn from_json(v: &Json) -> Result<RunEntry, String> {
        run_from_json(v)
    }
}

impl RunReport {
    /// Create an empty report.
    pub fn new(figure: &str, machine: &str) -> RunReport {
        RunReport {
            schema: REPORT_SCHEMA,
            figure: figure.to_string(),
            machine: machine.to_string(),
            params: Vec::new(),
            runs: Vec::new(),
            selftime: Vec::new(),
        }
    }

    /// Record a workload parameter.
    pub fn param(&mut self, key: &str, value: impl std::fmt::Display) {
        self.params.push((key.to_string(), value.to_string()));
    }

    /// Add a run entry under the given label.
    pub fn push(&mut self, label: impl Into<String>, mut entry: RunEntry) {
        entry.label = label.into();
        self.runs.push(entry);
    }

    /// Largest [`RunEntry::decomposition_error`] across entries.
    pub fn decomposition_error(&self) -> f64 {
        self.runs.iter().map(|r| r.decomposition_error()).fold(0.0, f64::max)
    }

    /// Serialize to the JSON document structure.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            // `schema` predates `schema_version` and is kept so schema-1
            // readers fail with a clear version message instead of a missing
            // field; both carry the same value.
            ("schema", Json::Num(self.schema as f64)),
            ("schema_version", Json::Num(self.schema as f64)),
            ("figure", Json::Str(self.figure.clone())),
            ("machine", Json::Str(self.machine.clone())),
            (
                "params",
                Json::Obj(
                    self.params.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect(),
                ),
            ),
            ("runs", Json::Arr(self.runs.iter().map(run_to_json).collect())),
        ];
        if !self.selftime.is_empty() {
            fields.push((
                "harness_selftime",
                Json::Arr(
                    self.selftime
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::Str(s.name.clone())),
                                ("wall_seconds", Json::Num(s.wall_seconds)),
                                ("allocs", Json::Num(s.allocs as f64)),
                                ("alloc_bytes", Json::Num(s.alloc_bytes as f64)),
                                ("steps", Json::Num(s.steps as f64)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::obj(fields)
    }

    /// Parse a report back from JSON (inverse of [`RunReport::to_json`]).
    pub fn from_json(v: &Json) -> Result<RunReport, String> {
        // Schema-1 reports carry only `schema`; schema-2 reports carry both
        // (with `schema_version` authoritative).
        let schema = match v.get("schema_version").and_then(Json::as_u64) {
            Some(s) => s,
            None => field_u64(v, "schema")?,
        };
        if schema == 0 || schema > REPORT_SCHEMA {
            return Err(format!(
                "unsupported report schema_version {schema} (this build reads 1..={REPORT_SCHEMA})"
            ));
        }
        Ok(RunReport {
            schema,
            figure: field_str(v, "figure")?,
            machine: field_str(v, "machine")?,
            params: match v.get("params") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, val)| {
                        val.as_str()
                            .map(|s| (k.clone(), s.to_string()))
                            .ok_or_else(|| format!("param '{k}' is not a string"))
                    })
                    .collect::<Result<_, _>>()?,
                _ => return Err("missing 'params' object".into()),
            },
            runs: v
                .get("runs")
                .and_then(Json::as_arr)
                .ok_or("missing 'runs' array")?
                .iter()
                .map(run_from_json)
                .collect::<Result<_, _>>()?,
            selftime: match v.get("harness_selftime").and_then(Json::as_arr) {
                None => Vec::new(),
                Some(rows) => rows
                    .iter()
                    .map(|s| {
                        Ok(SelftimeRow {
                            name: field_str(s, "name")?,
                            wall_seconds: field_f64(s, "wall_seconds")?,
                            allocs: field_u64(s, "allocs")?,
                            alloc_bytes: field_u64(s, "alloc_bytes")?,
                            steps: field_u64_or_zero(s, "steps"),
                        })
                    })
                    .collect::<Result<_, String>>()?,
            },
        })
    }

    /// Write the report to `results/<name>_report.json`; returns the path.
    pub fn write(&self, name: &str) -> PathBuf {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = dir.join(format!("{name}_report.json"));
        std::fs::write(&path, self.to_json().pretty()).expect("write report");
        path
    }
}

fn run_to_json(r: &RunEntry) -> Json {
    let mut fields = vec![
        ("label", Json::Str(r.label.clone())),
        ("nranks", Json::Num(r.nranks as f64)),
        ("makespan", Json::Num(r.makespan)),
        ("mean_clock", Json::Num(r.mean_clock)),
        (
            "phases",
            Json::Arr(
                r.phases
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("name", Json::Str(p.name.clone())),
                            ("spans", Json::Num(p.spans as f64)),
                            ("max_seconds", Json::Num(p.max_seconds)),
                            ("mean_seconds", Json::Num(p.mean_seconds)),
                            ("imbalance", Json::Num(p.imbalance)),
                            ("mean_comm_seconds", Json::Num(p.mean_comm_seconds)),
                            ("mean_wait_seconds", Json::Num(p.mean_wait_seconds)),
                            ("mean_compute_seconds", Json::Num(p.mean_compute_seconds)),
                            ("p2p_msgs", Json::Num(p.p2p_msgs as f64)),
                            ("p2p_bytes", Json::Num(p.p2p_bytes as f64)),
                            ("coll_ops", Json::Num(p.coll_ops as f64)),
                            ("coll_bytes", Json::Num(p.coll_bytes as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "ranks",
            Json::Arr(
                r.ranks
                    .iter()
                    .map(|k| {
                        Json::obj(vec![
                            ("rank", Json::Num(k.rank as f64)),
                            ("clock", Json::Num(k.clock)),
                            ("comm_seconds", Json::Num(k.comm_seconds)),
                            ("wait_seconds", Json::Num(k.wait_seconds)),
                            ("compute_seconds", Json::Num(k.compute_seconds)),
                            ("p2p_sent_msgs", Json::Num(k.p2p_sent_msgs as f64)),
                            ("p2p_sent_bytes", Json::Num(k.p2p_sent_bytes as f64)),
                            ("p2p_recv_msgs", Json::Num(k.p2p_recv_msgs as f64)),
                            ("p2p_recv_bytes", Json::Num(k.p2p_recv_bytes as f64)),
                            ("coll_ops", Json::Num(k.coll_ops as f64)),
                            ("coll_bytes", Json::Num(k.coll_bytes as f64)),
                            ("plan_builds", Json::Num(k.plan_builds as f64)),
                            ("plan_execs", Json::Num(k.plan_execs as f64)),
                            ("faults_injected", Json::Num(k.faults_injected as f64)),
                            ("retries", Json::Num(k.retries as f64)),
                            ("timeouts", Json::Num(k.timeouts as f64)),
                            ("stalls", Json::Num(k.stalls as f64)),
                            ("bytes_reused", Json::Num(k.bytes_reused as f64)),
                            ("bytes_grown", Json::Num(k.bytes_grown as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(cp) = &r.critpath {
        fields.push((
            "critpath",
            Json::obj(vec![
                ("comm_seconds", Json::Num(cp.comm_seconds)),
                ("wait_seconds", Json::Num(cp.wait_seconds)),
                ("compute_seconds", Json::Num(cp.compute_seconds)),
                ("segments", Json::Num(cp.segments as f64)),
                (
                    "blame",
                    Json::Arr(
                        cp.blame
                            .iter()
                            .map(|b| {
                                Json::obj(vec![
                                    ("waiter", Json::Num(b.waiter as f64)),
                                    ("blamed", Json::Num(b.blamed as f64)),
                                    ("seconds", Json::Num(b.seconds)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    Json::obj(fields)
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing number field '{key}'"))
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing integer field '{key}'"))
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

/// Integer field that may be absent (fields added after schema 1 reports were
/// first written; old reports parse as zero).
fn field_u64_or_zero(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn run_from_json(v: &Json) -> Result<RunEntry, String> {
    Ok(RunEntry {
        label: field_str(v, "label")?,
        nranks: field_u64(v, "nranks")? as usize,
        makespan: field_f64(v, "makespan")?,
        mean_clock: field_f64(v, "mean_clock")?,
        phases: v
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or("missing 'phases' array")?
            .iter()
            .map(|p| {
                Ok(PhaseRow {
                    name: field_str(p, "name")?,
                    spans: field_u64(p, "spans")?,
                    max_seconds: field_f64(p, "max_seconds")?,
                    mean_seconds: field_f64(p, "mean_seconds")?,
                    imbalance: field_f64(p, "imbalance")?,
                    mean_comm_seconds: field_f64(p, "mean_comm_seconds")?,
                    mean_wait_seconds: field_f64(p, "mean_wait_seconds")?,
                    mean_compute_seconds: field_f64(p, "mean_compute_seconds")?,
                    p2p_msgs: field_u64(p, "p2p_msgs")?,
                    p2p_bytes: field_u64(p, "p2p_bytes")?,
                    coll_ops: field_u64(p, "coll_ops")?,
                    coll_bytes: field_u64(p, "coll_bytes")?,
                })
            })
            .collect::<Result<_, String>>()?,
        ranks: v
            .get("ranks")
            .and_then(Json::as_arr)
            .ok_or("missing 'ranks' array")?
            .iter()
            .map(|k| {
                Ok(RankRow {
                    rank: field_u64(k, "rank")? as usize,
                    clock: field_f64(k, "clock")?,
                    comm_seconds: field_f64(k, "comm_seconds")?,
                    wait_seconds: field_f64(k, "wait_seconds")?,
                    compute_seconds: field_f64(k, "compute_seconds")?,
                    p2p_sent_msgs: field_u64(k, "p2p_sent_msgs")?,
                    p2p_sent_bytes: field_u64(k, "p2p_sent_bytes")?,
                    p2p_recv_msgs: field_u64(k, "p2p_recv_msgs")?,
                    p2p_recv_bytes: field_u64(k, "p2p_recv_bytes")?,
                    coll_ops: field_u64(k, "coll_ops")?,
                    coll_bytes: field_u64(k, "coll_bytes")?,
                    plan_builds: field_u64_or_zero(k, "plan_builds"),
                    plan_execs: field_u64_or_zero(k, "plan_execs"),
                    faults_injected: field_u64_or_zero(k, "faults_injected"),
                    retries: field_u64_or_zero(k, "retries"),
                    timeouts: field_u64_or_zero(k, "timeouts"),
                    stalls: field_u64_or_zero(k, "stalls"),
                    bytes_reused: field_u64_or_zero(k, "bytes_reused"),
                    bytes_grown: field_u64_or_zero(k, "bytes_grown"),
                })
            })
            .collect::<Result<_, String>>()?,
        critpath: match v.get("critpath") {
            None => None,
            Some(cp) => Some(CritPath {
                comm_seconds: field_f64(cp, "comm_seconds")?,
                wait_seconds: field_f64(cp, "wait_seconds")?,
                compute_seconds: field_f64(cp, "compute_seconds")?,
                segments: field_u64(cp, "segments")?,
                blame: cp
                    .get("blame")
                    .and_then(Json::as_arr)
                    .ok_or("missing 'blame' array in critpath")?
                    .iter()
                    .map(|b| {
                        Ok(BlameRow {
                            waiter: field_u64(b, "waiter")? as usize,
                            blamed: field_u64(b, "blamed")? as usize,
                            seconds: field_f64(b, "seconds")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            }),
        },
    })
}

/// Render an entry's phase table as aligned human-readable text (the format
/// the `commstats` binary prints).
pub fn format_phase_table(entry: &RunEntry) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>11} {:>11} {:>7} {:>11} {:>11} {:>11} {:>10} {:>12} {:>8} {:>12}",
        "phase",
        "spans",
        "max[s]",
        "mean[s]",
        "imbal",
        "comm[s]",
        "wait[s]",
        "compute[s]",
        "p2p msgs",
        "p2p bytes",
        "colls",
        "coll bytes"
    );
    for p in &entry.phases {
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>11} {:>11} {:>7.2} {:>11} {:>11} {:>11} {:>10} {:>12} {:>8} {:>12}",
            p.name,
            p.spans,
            crate::fmt_secs(p.max_seconds),
            crate::fmt_secs(p.mean_seconds),
            p.imbalance,
            crate::fmt_secs(p.mean_comm_seconds),
            crate::fmt_secs(p.mean_wait_seconds),
            crate::fmt_secs(p.mean_compute_seconds),
            p.p2p_msgs,
            p.p2p_bytes,
            p.coll_ops,
            p.coll_bytes
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>11} {:>11}",
        "(total)",
        "",
        crate::fmt_secs(entry.makespan),
        crate::fmt_secs(entry.mean_clock)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut report = RunReport::new("figX", "juropa_like");
        report.param("cells", 24);
        report.param("tolerance", 1e-3);
        let entry = RunEntry {
            label: String::new(),
            nranks: 2,
            makespan: 3.5,
            mean_clock: 3.0,
            phases: vec![
                PhaseRow {
                    name: "sort".into(),
                    spans: 4,
                    max_seconds: 2.0,
                    mean_seconds: 1.75,
                    imbalance: 1.14,
                    mean_comm_seconds: 0.5,
                    mean_wait_seconds: 0.25,
                    mean_compute_seconds: 1.0,
                    p2p_msgs: 12,
                    p2p_bytes: 4096,
                    coll_ops: 3,
                    coll_bytes: 128,
                },
                PhaseRow { name: "(untagged)".into(), mean_seconds: 1.25, ..Default::default() },
            ],
            ranks: vec![
                RankRow {
                    rank: 0,
                    clock: 2.5,
                    comm_seconds: 1.0,
                    wait_seconds: 0.5,
                    compute_seconds: 1.0,
                    p2p_sent_msgs: 6,
                    p2p_sent_bytes: 2048,
                    p2p_recv_msgs: 6,
                    p2p_recv_bytes: 2048,
                    coll_ops: 3,
                    coll_bytes: 64,
                    plan_builds: 1,
                    plan_execs: 4,
                    faults_injected: 2,
                    retries: 1,
                    timeouts: 1,
                    stalls: 0,
                    bytes_reused: 512,
                    bytes_grown: 2048,
                },
                RankRow {
                    rank: 1,
                    clock: 3.5,
                    comm_seconds: 1.5,
                    wait_seconds: 0.5,
                    compute_seconds: 1.5,
                    ..Default::default()
                },
            ],
            critpath: Some(CritPath {
                comm_seconds: 1.25,
                wait_seconds: 0.75,
                compute_seconds: 1.5,
                segments: 9,
                blame: vec![
                    BlameRow { waiter: 0, blamed: 1, seconds: 0.5 },
                    BlameRow { waiter: 1, blamed: 0, seconds: 0.25 },
                ],
            }),
        };
        report.push("methodA", entry);
        report.selftime.push(SelftimeRow {
            name: "run:methodA".into(),
            wall_seconds: 0.125,
            allocs: 4321,
            alloc_bytes: 1 << 20,
            steps: 30,
        });
        report
    }

    #[test]
    fn json_round_trip_preserves_report() {
        let report = sample_report();
        let text = report.to_json().pretty();
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn schema_one_reports_still_parse_and_unknown_versions_fail() {
        let report = sample_report();
        let mut text = report.to_json().pretty();
        // A schema-1 report: no `schema_version`, no `critpath`.
        text = text.replace("\"schema\": 2", "\"schema\": 1");
        text = {
            let v1 = Json::parse(&text).unwrap();
            match v1 {
                Json::Obj(pairs) => {
                    Json::Obj(pairs.into_iter().filter(|(k, _)| k != "schema_version").collect())
                        .pretty()
                }
                _ => unreachable!(),
            }
        };
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.schema, 1);
        // Future versions are rejected with a clear message.
        let future = text.replace("\"schema\": 1", "\"schema\": 99");
        let err = RunReport::from_json(&Json::parse(&future).unwrap()).unwrap_err();
        assert!(err.contains("schema_version 99"), "got: {err}");
    }

    #[test]
    fn critpath_partition_error_detects_violations() {
        let cp = CritPath {
            comm_seconds: 1.25,
            wait_seconds: 0.75,
            compute_seconds: 1.5,
            ..Default::default()
        };
        assert_eq!(cp.partition_error(3.5), 0.0);
        assert!(cp.partition_error(3.4) > 0.05);
        // Components summing to the makespan but leaving the valid range.
        let negative = CritPath { wait_seconds: -0.1, compute_seconds: 2.35, ..cp.clone() };
        assert!(negative.partition_error(3.5) + 1e-12 >= 0.1);
    }

    #[test]
    fn decomposition_error_detects_violations() {
        let mut report = sample_report();
        // The sample is exactly consistent.
        assert!(report.decomposition_error() < 1e-12);
        report.runs[0].ranks[1].wait_seconds += 0.25;
        assert!(report.decomposition_error() > 0.2);
    }

    #[test]
    fn mean_seconds_of_matches_prefix() {
        let report = sample_report();
        assert!((report.runs[0].mean_seconds_of("sort") - 1.75).abs() < 1e-12);
        assert_eq!(report.runs[0].mean_seconds_of("nosuch"), 0.0);
    }

    #[test]
    fn phase_table_renders_all_rows() {
        let report = sample_report();
        let text = format_phase_table(&report.runs[0]);
        assert!(text.contains("sort"));
        assert!(text.contains("(untagged)"));
        assert!(text.contains("(total)"));
    }

    #[test]
    fn from_run_collects_phase_and_rank_tables() {
        let out = simcomm::run(2, simcomm::MachineModel::juropa_like(), |comm| {
            comm.enter_phase("work");
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1u8; 64]);
            } else {
                let _: Vec<u8> = comm.recv(0, 0);
            }
            comm.exit_phase();
            comm.barrier();
        });
        let entry = RunEntry::from_run(&out);
        assert_eq!(entry.nranks, 2);
        assert!(entry.makespan > 0.0);
        assert_eq!(entry.phases.first().map(|p| p.name.as_str()), Some("work"));
        assert_eq!(entry.phases.last().map(|p| p.name.as_str()), Some("(untagged)"));
        assert!(entry.decomposition_error() < 1e-9);
    }
}
