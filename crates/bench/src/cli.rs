//! Shared command-line front end for the figure/harness binaries.
//!
//! Every binary used to hand-roll the same preamble: an [`Args::parse`] call
//! with a duplicated allowed-key list, panicking accessors, and no `--help`.
//! This module centralizes that into one declarative option table per binary
//! and gives all of them the contract `commstats` established in PR 7:
//!
//! - `--help` prints a generated usage text and exits 0;
//! - any usage error (unknown option, bad value) prints a one-line error
//!   plus the usage text on **stderr** and exits **2** — no panic backtrace;
//! - the common observability options (`--engine`, `--analyze`,
//!   `--perfetto`) are declared once ([`OBS_OPTS`]) and parsed uniformly.
//!
//! ```no_run
//! use bench::cli::{Cli, Opt, OBS_OPTS};
//!
//! let cli = Cli::parse(
//!     "fig6",
//!     "influence of the initial particle distribution",
//!     &[
//!         Opt::new("cells", "N", "crystal cells per dimension (default 44)"),
//!         Opt::new("procs", "P", "simulated process count (default 256)"),
//!     ],
//!     OBS_OPTS,
//! );
//! let cells: usize = cli.get("cells", 44);
//! let engine = cli.engine(simcomm::Engine::Threaded);
//! ```

use crate::{Args, TimelineSink};

/// One declared option of a binary: key, value placeholder (empty for a
/// boolean flag) and help line.
#[derive(Clone, Copy)]
pub struct Opt {
    /// Option key (without the `--`).
    pub key: &'static str,
    /// Value placeholder shown in usage (e.g. `"N"`); empty means the option
    /// is a boolean flag.
    pub value: &'static str,
    /// One-line help text.
    pub help: &'static str,
}

impl Opt {
    /// Declare a value option.
    pub const fn new(key: &'static str, value: &'static str, help: &'static str) -> Opt {
        Opt { key, value, help }
    }

    /// Declare a boolean flag.
    pub const fn flag(key: &'static str, help: &'static str) -> Opt {
        Opt { key, value: "", help }
    }
}

/// The observability options every world-running harness accepts.
pub const OBS_OPTS: &[Opt] = &[
    Opt::new("engine", "NAME", "execution engine: 'threaded' (default) or 'discrete'"),
    Opt::flag("analyze", "run traced and print the critical-path analysis"),
    Opt::new("perfetto", "PATH", "write a Perfetto timeline of all runs to PATH"),
];

/// Parsed command line of a harness binary: panicking-free accessors that
/// exit with code 2 (and the usage text) on bad values.
pub struct Cli {
    name: &'static str,
    usage: String,
    args: Args,
}

impl Cli {
    /// Parse `std::env::args` against the binary's declared options plus
    /// `common` (typically [`OBS_OPTS`], or `&[]` for a world-less tool).
    /// Handles `--help` (exit 0) and usage errors (stderr + exit 2).
    pub fn parse(name: &'static str, about: &str, opts: &[Opt], common: &[Opt]) -> Cli {
        Self::parse_from(name, about, opts, common, std::env::args().skip(1).collect())
    }

    /// [`Cli::parse`] over an explicit argument vector. Exits the process on
    /// `--help` and usage errors exactly like [`Cli::parse`].
    pub fn parse_from(
        name: &'static str,
        about: &str,
        opts: &[Opt],
        common: &[Opt],
        argv: Vec<String>,
    ) -> Cli {
        let all: Vec<Opt> = opts.iter().chain(common).copied().collect();
        let usage = render_usage(name, about, &all);
        // The allowed-key list drives Args; `help` rides along implicitly.
        let allowed: Vec<&'static str> =
            all.iter().map(|o| o.key).chain(std::iter::once("help")).collect();
        match Args::try_parse_from(argv, &allowed) {
            Ok(args) => {
                if args.flag("help") {
                    println!("{usage}");
                    std::process::exit(0);
                }
                Cli { name, usage, args }
            }
            Err(e) => {
                eprintln!("{name}: {e}\n\n{usage}");
                std::process::exit(2);
            }
        }
    }

    /// Report a usage/input error: one line on stderr, the usage text, exit 2.
    pub fn fail(&self, msg: impl std::fmt::Display) -> ! {
        eprintln!("{}: {msg}\n\n{}", self.name, self.usage);
        std::process::exit(2)
    }

    /// Typed value with a default; bad values exit 2.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.args.try_get(key, default).unwrap_or_else(|e| self.fail(e))
    }

    /// Was a boolean flag given?
    pub fn flag(&self, key: &str) -> bool {
        self.args.flag(key)
    }

    /// Comma-separated list of usizes; bad entries exit 2.
    pub fn list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        self.args.try_list(key, default).unwrap_or_else(|e| self.fail(e))
    }

    /// The `--engine` selection (see [`Args::engine`]); bad names exit 2.
    pub fn engine(&self, default: simcomm::Engine) -> simcomm::Engine {
        self.args.try_engine(default).unwrap_or_else(|e| self.fail(e))
    }

    /// The `--perfetto` timeline sink (inactive when the flag was not given).
    pub fn timeline(&self) -> TimelineSink {
        TimelineSink::from_path(self.get("perfetto", String::new()))
    }

    /// The shared `--analyze` decision: analysis was requested explicitly or
    /// is implied by an active `--perfetto` timeline (which needs traces).
    pub fn analyze(&self, timeline: &TimelineSink) -> bool {
        self.flag("analyze") || timeline.active()
    }

    /// The generated usage text (what `--help` prints).
    pub fn usage(&self) -> &str {
        &self.usage
    }
}

/// Render the `--help`/usage text from the option table.
fn render_usage(name: &str, about: &str, opts: &[Opt]) -> String {
    use std::fmt::Write as _;
    let mut u = format!("{name} — {about}\n\nUSAGE:\n  {name}");
    for o in opts {
        if o.value.is_empty() {
            let _ = write!(u, " [--{}]", o.key);
        } else {
            let _ = write!(u, " [--{} {}]", o.key, o.value);
        }
    }
    u.push_str("\n\nOPTIONS:\n");
    let left: Vec<String> = opts
        .iter()
        .map(|o| {
            if o.value.is_empty() {
                format!("--{}", o.key)
            } else {
                format!("--{} {}", o.key, o.value)
            }
        })
        .chain(std::iter::once("--help".to_string()))
        .collect();
    let width = left.iter().map(String::len).max().unwrap_or(0);
    for (l, help) in left.iter().zip(opts.iter().map(|o| o.help).chain(["print this text"])) {
        let _ = writeln!(u, "  {l:width$}  {help}");
    }
    u.push_str(
        "\nAll times are virtual seconds of the simulated machine model; see\n\
         docs/OBSERVABILITY.md for the report schema and DESIGN.md for the\n\
         virtual-time rationale.",
    );
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_lists_every_option_and_help() {
        let opts =
            [Opt::new("cells", "N", "crystal cells"), Opt::flag("fresh", "discard prior state")];
        let u = render_usage("figx", "a test harness", &opts);
        assert!(u.starts_with("figx — a test harness"));
        assert!(u.contains("[--cells N]"));
        assert!(u.contains("[--fresh]"), "flags render without a placeholder: {u}");
        assert!(u.contains("--help"));
        assert!(u.contains("crystal cells"));
    }

    #[test]
    fn obs_opts_cover_the_shared_preamble() {
        let keys: Vec<&str> = OBS_OPTS.iter().map(|o| o.key).collect();
        assert_eq!(keys, ["engine", "analyze", "perfetto"]);
    }
}
