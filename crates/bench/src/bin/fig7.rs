//! Figure 7: Method A vs Method B over the initial solver execution and the
//! first eight time steps, starting from a uniformly random initial particle
//! distribution (256 processes, JuRoPA-like machine).
//!
//! Reproduces, per solver: "Sort / Restore / Total" for Method A and
//! "Sort / Resort / Total" for Method B.
//!
//! Expected shape (paper Sect. IV-C): Method A's times are constant over the
//! steps (the random distribution is restored every step and re-sorted from
//! scratch). Method B's sort and resort times drop by one to two orders of
//! magnitude after the first time step because the application keeps the
//! solver-specific order and distribution; its total runtime drops to a
//! fraction of Method A's (the paper reports ~45 % for the FMM and ~20 % for
//! the P2NFFT solver).

use bench::cli::{Cli, Opt, OBS_OPTS};
use bench::{aggregate_steps, banner, fmt_secs, report_summary, write_csv, RunReport};
use fcs::SolverKind;
use mdsim::SimConfig;
use particles::{InitialDistribution, IonicCrystal};
use simcomm::MachineModel;

fn main() {
    let cli = Cli::parse(
        "fig7",
        "Method A vs Method B over the first time steps (paper Fig. 7)",
        &[
            Opt::new("cells", "N", "crystal cells per dimension (default 32)"),
            Opt::new("procs", "P", "simulated process count (default 256)"),
            Opt::new("tolerance", "T", "solver tolerance (default 1e-2)"),
            Opt::new("steps", "N", "time steps after the initial solve (default 8)"),
            Opt::new("seed", "S", "crystal perturbation seed (default 1)"),
        ],
        OBS_OPTS,
    );
    let cells: usize = cli.get("cells", 32);
    let procs: usize = cli.get("procs", 256);
    let tolerance: f64 = cli.get("tolerance", 1e-2);
    let steps: usize = cli.get("steps", 8);
    let seed: u64 = cli.get("seed", 1);
    let engine = cli.engine(simcomm::Engine::Threaded);
    let mut timeline = cli.timeline();
    let analyze = cli.analyze(&timeline);

    let crystal = IonicCrystal::paper_like(cells, seed);
    let dt = mdsim::suggested_dt(crystal.spacing, 1.0);
    banner(
        "Figure 7 — Method A vs Method B over the first time steps",
        &format!(
            "{} particles (cells {cells}), {procs} processes, random initial \
             distribution, juropa-like machine, tolerance {tolerance:e}",
            crystal.n()
        ),
    );
    let _ = aggregate_steps; // (re-exported for doc discoverability)

    let mut report = RunReport::new("fig7", "juropa_like");
    report.param("engine", engine.name());
    report.param("cells", cells);
    report.param("procs", procs);
    report.param("tolerance", tolerance);
    report.param("steps", steps);
    report.param("seed", seed);
    let mut rows = Vec::new();
    for (si, solver) in [SolverKind::Fmm, SolverKind::P2Nfft].into_iter().enumerate() {
        println!("\n--- {} solver ---", format!("{solver:?}").to_uppercase());
        println!(
            "{:<8} {:>11} {:>11} {:>11} | {:>11} {:>11} {:>11}",
            "step", "sortA", "restoreA", "totalA", "sortB", "resortB", "totalB"
        );
        let run = |resort: bool| {
            let cfg = SimConfig { solver, resort, steps, tolerance, dt, ..SimConfig::default() };
            let (records, _, entry, traces) = bench::run_md_world_analyzed(
                MachineModel::juropa_like(),
                engine,
                procs,
                &crystal,
                InitialDistribution::Random,
                &cfg,
                analyze,
            );
            (records, entry, traces)
        };
        let (a, entry_a, traces_a) = run(false);
        let (b, entry_b, traces_b) = run(true);
        timeline.push(format!("{solver:?}/methodA"), traces_a);
        timeline.push(format!("{solver:?}/methodB"), traces_b);
        report.push(format!("{solver:?}/methodA"), entry_a);
        report.push(format!("{solver:?}/methodB"), entry_b);
        for s in 0..=steps {
            let label = if s == 0 { "initial".to_string() } else { s.to_string() };
            println!(
                "{:<8} {:>11} {:>11} {:>11} | {:>11} {:>11} {:>11}",
                label,
                fmt_secs(a[s].sort),
                fmt_secs(a[s].restore),
                fmt_secs(a[s].total),
                fmt_secs(b[s].sort),
                fmt_secs(b[s].resort),
                fmt_secs(b[s].total)
            );
            rows.push(vec![
                si as f64,
                s as f64,
                a[s].sort,
                a[s].restore,
                a[s].total,
                b[s].sort,
                b[s].resort,
                b[s].total,
            ]);
        }
        // Paper headline: the total runtime ratio B/A after the first step.
        let avg = |recs: &[mdsim::StepRecord]| {
            recs[1..].iter().map(|r| r.total).sum::<f64>() / steps.max(1) as f64
        };
        let ratio = avg(&b) / avg(&a);
        println!(
            "=> method B total is {:.0} % of method A over steps 1..{steps} \
             (paper: ~45 % FMM, ~20 % P2NFFT)",
            100.0 * ratio
        );
    }
    let path = write_csv("fig7", "solver,step,sortA,restoreA,totalA,sortB,resortB,totalB", &rows);
    println!("\nwrote {}", path.display());
    timeline.finish();
    report_summary(&report.write("fig7"), &report);
}
