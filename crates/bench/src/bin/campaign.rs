//! Supervised campaign sweep: many simulation configurations run
//! concurrently under the `campaign` crate's worker pool, with panic
//! isolation, per-run deadlines, bounded retry and crash-safe resume.
//!
//! The sweep mixes the repository's benchmark families into one campaign of
//! 27 configurations:
//!
//! * **fig8-style MD runs** — both machine models x both solvers x both
//!   redistribution methods, alternating the threaded and discrete-event
//!   engines.
//! * **plancache runs** — the movement-exploiting P2NFFT path with the
//!   exchange-plan cache on and off.
//! * **chaos runs** — the same MD workload under [`simcomm::FaultPlan::chaos`]
//!   at three intensities (faults delay, never corrupt).
//! * **straggler runs** — a 4x compute straggler on rank 0, which slows a
//!   run in *virtual* time but completes normally.
//! * **injected failures** — one config whose world panics on every attempt
//!   (`fault/panic`) and one that hangs a receive until the wall-clock
//!   deadline retires it (`fault/hang`). Both exhaust their retry budget and
//!   become typed failure records in the report; the campaign never aborts.
//! * **flaky runs** — `flaky/retry` fails its first attempt with an injected
//!   panic and then runs clean; the harness asserts its payload is **bitwise
//!   identical** to the never-faulted `clean/retry-twin` (retries are
//!   seed-stable). `flaky/checkpoint` checkpoints every rank durably at the
//!   halfway step before failing, and its retry resumes from the
//!   `mdsim::io::Snapshot` files — the in-world assertions hold the resumed
//!   trajectory to the uninterrupted one.
//!
//! Campaign state is journaled under `--dir`; killing this process (or using
//! `--halt-after N`, which exits with code 3) and re-running the same
//! command resumes: completed runs are reused from their durable payloads,
//! in-flight runs re-execute. Because every payload is a deterministic
//! function of its config, the aggregated `BENCH_campaign.json` written
//! after a resume is **byte-identical** to one from an uninterrupted
//! campaign — CI enforces this with `cmp`.
//!
//! Writes `BENCH_campaign.json` (run-report schema, one entry per completed
//! run, `failed:<name>` params for the failure records) next to a
//! `results/campaign_report.json` copy.

use std::path::PathBuf;
use std::time::Duration;

use bench::cli::{Cli, Opt};
use bench::json::Json;
use bench::{banner, fmt_secs, report_summary, RunEntry, RunReport};
use campaign::{run_campaign, Policy, RunCtx, RunDef, RunOutcome};
use fcs::SolverKind;
use mdsim::io::Snapshot;
use mdsim::{simulate, simulate_from, SimConfig};
use particles::{local_set, InitialDistribution, IonicCrystal};
use simcomm::{CartGrid, Engine, FaultPlan, MachineModel, Runner, WorldError};

/// Short machine label ("juropa-like") for run names.
fn short_name(model: &MachineModel) -> &str {
    model.name.split_whitespace().next().unwrap_or(&model.name)
}

/// One MD workload: everything `bench::try_run_md_world` needs besides the
/// shared crystal.
#[derive(Clone)]
struct MdSpec {
    model: MachineModel,
    engine: Engine,
    procs: usize,
    cfg: SimConfig,
    fault: Option<FaultPlan>,
}

/// What a campaign run does when a worker claims it.
enum Kind {
    /// A straight MD run; the payload is the serialized report entry.
    Md(MdSpec),
    /// A world whose rank 2 panics on every attempt (terminal failure).
    Panic,
    /// A world that hangs a receive; the wall-clock deadline retires it on
    /// every attempt (terminal failure).
    Hang {
        /// Per-attempt wall-clock limit handed to `Runner::deadline`.
        deadline: Duration,
    },
    /// Panics on attempt 1, runs the MD spec cleanly from attempt 2 on.
    FlakyRetry(MdSpec),
    /// Checkpoints all ranks durably at the halfway step and fails attempt
    /// 1; attempt 2 resumes from the snapshots and verifies the physics
    /// against an uninterrupted twin run in the same world.
    Checkpoint(MdSpec),
}

/// Run one MD workload and serialize its report entry as the payload.
fn md_payload(spec: &MdSpec, crystal: &IonicCrystal) -> Result<String, WorldError> {
    let (_recs, _rms, _recoveries, entry) = bench::try_run_md_world(
        spec.model.clone(),
        spec.engine,
        spec.procs,
        crystal,
        InitialDistribution::Grid,
        &spec.cfg,
        spec.fault.clone(),
        None,
    )?;
    Ok(entry.to_json().pretty())
}

/// A tiny world that panics on one rank — the injected transient/terminal
/// fault used by the `fault/panic` and `flaky/retry` configs. Always returns
/// the typed [`WorldError::RankPanic`].
fn panicking_world(rank: usize, message: &'static str) -> WorldError {
    let res: Result<simcomm::RunOutput<()>, WorldError> = Runner::new(Engine::DiscreteEvent)
        .try_run(4, MachineModel::ideal(), move |comm| {
            if comm.rank() == rank {
                panic!("{message}");
            }
            comm.barrier();
        });
    match res {
        Ok(_) => unreachable!("the injected rank panic must fail the world"),
        Err(e) => e,
    }
}

/// The `fault/hang` world: rank 1 blocks on a receive that is never sent;
/// only the deadline watchdog can retire it.
fn hung_world(deadline: Duration) -> WorldError {
    let res: Result<simcomm::RunOutput<()>, WorldError> = Runner::new(Engine::Threaded)
        .deadline(Some(deadline))
        .try_run(2, MachineModel::ideal(), |comm| {
            if comm.rank() == 1 {
                let _: Vec<u8> = comm.recv(0, 99); // never sent
            }
        });
    match res {
        Ok(_) => unreachable!("the hung world must be retired by the deadline"),
        Err(e) => e,
    }
}

/// The `flaky/checkpoint` run: attempt 1 simulates the first half, durably
/// snapshots every rank into the run's scratch dir, then fails; attempts 2+
/// resume from the snapshots, and an uninterrupted twin run inside the same
/// world pins the resumed physics to the continuous trajectory.
fn checkpoint_run(
    spec: &MdSpec,
    crystal: &IonicCrystal,
    ctx: &RunCtx,
) -> Result<String, WorldError> {
    let half = spec.cfg.steps / 2;
    let rest = spec.cfg.steps - half;
    let dims = CartGrid::balanced(spec.procs).dims();
    let bbox = crystal.system_box();
    let dir = ctx.dir.clone();
    let crystal = crystal.clone();
    let cfg_with = |steps: usize| SimConfig { steps, ..spec.cfg.clone() };
    let runner = Runner::new(spec.engine);
    if ctx.attempt == 1 {
        let cfg_half = cfg_with(half);
        let res: Result<simcomm::RunOutput<()>, WorldError> =
            runner.try_run(spec.procs, spec.model.clone(), move |comm| {
                let set =
                    local_set(&crystal, InitialDistribution::Grid, comm.rank(), comm.size(), dims);
                let first = simulate(comm, bbox, set, &cfg_half);
                let path = dir.join(format!("rank{}.snap", comm.rank()));
                first.final_state.save_durable(&path).expect("durable checkpoint write");
                // All ranks checkpoint before the fault fires, so the retry
                // always finds a complete snapshot set.
                comm.barrier();
                if comm.rank() == 0 {
                    panic!("injected post-checkpoint fault");
                }
            });
        match res {
            Ok(_) => unreachable!("attempt 1 must fail after checkpointing"),
            Err(e) => Err(e),
        }
    } else {
        let (cfg_rest, cfg_full) = (cfg_with(rest), cfg_with(spec.cfg.steps));
        let out = runner.try_run(spec.procs, spec.model.clone(), move |comm| {
            let path = dir.join(format!("rank{}.snap", comm.rank()));
            let snap = Snapshot::load(&path).expect("checkpoint read on retry");
            let resumed = simulate_from(comm, snap, &cfg_rest);
            // Uninterrupted twin in the same world: the resumed trajectory
            // must land on the identical particle state (the
            // checkpoint_restart integration test's discipline).
            let set =
                local_set(&crystal, InitialDistribution::Grid, comm.rank(), comm.size(), dims);
            let full = simulate(comm, bbox, set, &cfg_full);
            assert_eq!(full.final_state.id, resumed.final_state.id, "resumed ids diverged");
            assert_eq!(full.final_state.pos, resumed.final_state.pos, "resumed positions diverged");
            resumed.final_state.id.len()
        })?;
        Ok(RunEntry::from_run(&out).to_json().pretty())
    }
}

/// Build the 27-configuration campaign spec.
fn build_runs(
    steps: usize,
    procs: usize,
    seed: u64,
    tolerance: f64,
    hang: Duration,
) -> Vec<RunDef<Kind>> {
    let models = [MachineModel::juropa_like(), MachineModel::juqueen_like()];
    let base = |solver: SolverKind, resort: bool| SimConfig {
        solver,
        resort,
        steps,
        tolerance,
        dt: mdsim::suggested_dt(1.0, 1.0),
        track_displacement: true,
        ..SimConfig::default()
    };
    let mut runs = Vec::new();
    let mut md = |name: String, spec: MdSpec| {
        runs.push(RunDef { name, config: Kind::Md(spec) });
    };

    // fig8 family: model x solver x method, engines alternating so the sweep
    // exercises both runtimes.
    let mut idx = 0usize;
    for model in &models {
        for (solver, tag) in [(SolverKind::Fmm, "fmm"), (SolverKind::P2Nfft, "p2nfft")] {
            for (resort, method) in [(false, "a"), (true, "b")] {
                let engine =
                    if idx.is_multiple_of(2) { Engine::Threaded } else { Engine::DiscreteEvent };
                idx += 1;
                md(
                    format!("fig8/{}/{tag}-{method}", short_name(model)),
                    MdSpec {
                        model: model.clone(),
                        engine,
                        procs,
                        cfg: base(solver, resort),
                        fault: None,
                    },
                );
            }
        }
    }

    // plancache family: movement-exploiting path, plan cache on/off.
    for model in &models {
        for cache in [true, false] {
            let cfg = SimConfig {
                exploit_movement: true,
                plan_cache: cache,
                ..base(SolverKind::P2Nfft, true)
            };
            md(
                format!(
                    "plancache/{}/cache-{}",
                    short_name(model),
                    if cache { "on" } else { "off" }
                ),
                MdSpec { model: model.clone(), engine: Engine::Threaded, procs, cfg, fault: None },
            );
        }
    }

    // chaos family: deterministic injected faults at three intensities.
    for model in &models {
        for intensity in [0.25f64, 0.5, 1.0] {
            let plan = FaultPlan::chaos(seed ^ (intensity * 16.0) as u64, intensity);
            let cfg = SimConfig { exploit_movement: true, ..base(SolverKind::P2Nfft, true) };
            md(
                format!("chaos/{}/i{intensity}", short_name(model)),
                MdSpec {
                    model: model.clone(),
                    engine: Engine::Threaded,
                    procs,
                    cfg,
                    fault: Some(plan),
                },
            );
        }
    }

    // straggler family: rank 0 computes 4x slower — slow in virtual time,
    // still a clean completion (the campaign must NOT retire it).
    for model in &models {
        let plan =
            FaultPlan { straggler_ranks: vec![0], straggler_factor: 4.0, ..FaultPlan::none() };
        md(
            format!("straggler/{}", short_name(model)),
            MdSpec {
                model: model.clone(),
                engine: Engine::Threaded,
                procs,
                cfg: base(SolverKind::Fmm, true),
                fault: Some(plan),
            },
        );
    }

    // wide family: double the rank count on the discrete-event engine.
    for model in &models {
        md(
            format!("wide/{}", short_name(model)),
            MdSpec {
                model: model.clone(),
                engine: Engine::DiscreteEvent,
                procs: procs * 2,
                cfg: base(SolverKind::P2Nfft, true),
                fault: None,
            },
        );
    }

    // Injected terminal failures: exactly these two must fail.
    runs.push(RunDef { name: "fault/panic".into(), config: Kind::Panic });
    runs.push(RunDef { name: "fault/hang".into(), config: Kind::Hang { deadline: hang } });

    // Flaky pair: the retried run must be bitwise identical to its
    // never-faulted twin.
    let twin = MdSpec {
        model: models[0].clone(),
        engine: Engine::Threaded,
        procs,
        cfg: base(SolverKind::Fmm, true),
        fault: None,
    };
    runs.push(RunDef { name: "flaky/retry".into(), config: Kind::FlakyRetry(twin.clone()) });
    runs.push(RunDef { name: "clean/retry-twin".into(), config: Kind::Md(twin) });

    // Mid-run checkpoint resume.
    runs.push(RunDef {
        name: "flaky/checkpoint".into(),
        config: Kind::Checkpoint(MdSpec {
            model: models[0].clone(),
            engine: Engine::Threaded,
            procs: 4,
            cfg: SimConfig { steps: steps.max(2) * 2, ..base(SolverKind::P2Nfft, true) },
            fault: None,
        }),
    });

    runs
}

/// The completed payload of a named run, if any.
fn payload_of<'a>(rows: &'a [campaign::RunRow], name: &str) -> Option<&'a str> {
    rows.iter().find(|r| r.name == name).and_then(|r| match &r.outcome {
        Some(RunOutcome::Completed { payload, .. }) => Some(payload.as_str()),
        _ => None,
    })
}

fn main() {
    let cli = Cli::parse(
        "campaign",
        "supervised campaign: concurrent runs, retries, deadlines, crash-safe resume",
        &[
            Opt::new(
                "dir",
                "PATH",
                "campaign state dir: journal, payloads, scratch (default results/campaign)",
            ),
            Opt::new("out", "PATH", "aggregated report path (default BENCH_campaign.json)"),
            Opt::flag("fresh", "delete the campaign dir first (no resume)"),
            Opt::new("workers", "N", "concurrent worker threads (default 4)"),
            Opt::new("attempts", "N", "max attempts per run (default 3)"),
            Opt::new("backoff-ms", "MS", "base retry backoff, doubled per attempt (default 10)"),
            Opt::new(
                "hang-ms",
                "MS",
                "wall-clock deadline for the fault/hang config (default 400)",
            ),
            Opt::new(
                "halt-after",
                "N",
                "stop after N terminal runs and exit 3 (crash injection; 0 = off)",
            ),
            Opt::new("cells", "N", "crystal cells per dimension (default 4)"),
            Opt::new("steps", "N", "time steps per MD run (default 3)"),
            Opt::new("procs", "P", "simulated process count per MD run (default 8)"),
            Opt::new("seed", "S", "crystal + fault seed (default 11)"),
            Opt::new("tolerance", "T", "solver tolerance (default 1e-2)"),
        ],
        &[],
    );
    let dir = PathBuf::from(cli.get("dir", "results/campaign".to_string()));
    let out_path = cli.get("out", "BENCH_campaign.json".to_string());
    let workers: usize = cli.get("workers", 4);
    let attempts: u32 = cli.get("attempts", 3);
    let backoff_ms: u64 = cli.get("backoff-ms", 10);
    let hang_ms: u64 = cli.get("hang-ms", 400);
    let halt_after: usize = cli.get("halt-after", 0);
    let cells: usize = cli.get("cells", 4);
    let steps: usize = cli.get("steps", 3);
    let procs: usize = cli.get("procs", 8);
    let seed: u64 = cli.get("seed", 11);
    let tolerance: f64 = cli.get("tolerance", 1e-2);

    if cli.flag("fresh") {
        std::fs::remove_dir_all(&dir).ok();
    }

    let mut crystal = IonicCrystal::cubic(cells, 1.0, 0.0, seed);
    crystal.jitter = 0.15 * crystal.spacing;
    let hang = Duration::from_millis(hang_ms);
    let runs = build_runs(steps, procs, seed, tolerance, hang);

    banner(
        "Campaign — supervised concurrent sweep with retries, deadlines and resume",
        &format!(
            "{} configurations ({} particles, {procs} procs, {steps} steps), \
             {workers} workers, {attempts} attempts, state in {}",
            runs.len(),
            crystal.n(),
            dir.display()
        ),
    );

    let policy = Policy {
        workers,
        max_attempts: attempts,
        backoff: Duration::from_millis(backoff_ms),
        deadline: None,
        halt_after: if halt_after == 0 { None } else { Some(halt_after) },
    };
    let crystal_ref = &crystal;
    let outcome = run_campaign(&dir, &policy, &runs, |kind: &Kind, ctx: &RunCtx| match kind {
        Kind::Md(spec) => md_payload(spec, crystal_ref),
        Kind::Panic => Err(panicking_world(2, "injected campaign fault")),
        Kind::Hang { deadline } => Err(hung_world(*deadline)),
        Kind::FlakyRetry(spec) => {
            if ctx.attempt == 1 {
                Err(panicking_world(1, "injected transient fault"))
            } else {
                md_payload(spec, crystal_ref)
            }
        }
        Kind::Checkpoint(spec) => checkpoint_run(spec, crystal_ref, ctx),
    })
    .unwrap_or_else(|e| {
        eprintln!("campaign: {e}");
        std::process::exit(1);
    });

    if outcome.halted {
        let done = outcome.runs.iter().filter(|r| r.outcome.is_some()).count();
        println!(
            "campaign halted after {done}/{} terminal runs ({} executed here, {} reused); \
             re-run the same command without --halt-after to resume",
            outcome.runs.len(),
            outcome.executed,
            outcome.reused
        );
        std::process::exit(3);
    }

    // Aggregate: one report entry per completed run (parsed back from the
    // durable payload so the fresh and resumed paths are identical), one
    // `failed:<name>` param per failure record. Nothing wall-clock-dependent
    // enters the report — a resumed campaign writes identical bytes.
    let mut report = RunReport::new("campaign", "mixed");
    report.param("configs", runs.len());
    report.param("cells", cells);
    report.param("steps", steps);
    report.param("procs", procs);
    report.param("seed", seed);
    report.param("tolerance", tolerance);
    report.param("hang_ms", hang_ms);

    println!("{:<28} {:>10} {:>9} {:>14}", "run", "status", "attempts", "makespan");
    let mut failures: Vec<(String, String)> = Vec::new();
    for row in &outcome.runs {
        match row.outcome.as_ref().expect("non-halted campaign has only terminal rows") {
            RunOutcome::Completed { payload, attempts, .. } => {
                let v = Json::parse(payload)
                    .unwrap_or_else(|e| panic!("payload of {} is not JSON: {e}", row.name));
                let entry = RunEntry::from_json(&v)
                    .unwrap_or_else(|e| panic!("payload of {} is not a run entry: {e}", row.name));
                println!(
                    "{:<28} {:>10} {:>9} {:>14}",
                    row.name,
                    "ok",
                    attempts,
                    fmt_secs(entry.makespan)
                );
                if *attempts > 1 {
                    report.param(&format!("attempts:{}", row.name), attempts);
                }
                report.push(row.name.clone(), entry);
            }
            RunOutcome::Failed { kind, detail, attempts, .. } => {
                println!("{:<28} {:>10} {:>9} {:>14}", row.name, kind.as_str(), attempts, "-");
                failures.push((row.name.clone(), kind.clone()));
                report.param(
                    &format!("failed:{}", row.name),
                    format!("{kind} after {attempts} attempts: {detail}"),
                );
            }
        }
    }

    // Exactly the two injected terminal failures — a straggler or chaos run
    // being retired would show up here and fail the sweep.
    let mut failed_names: Vec<&str> = failures.iter().map(|(n, _)| n.as_str()).collect();
    failed_names.sort_unstable();
    assert_eq!(
        failed_names,
        ["fault/hang", "fault/panic"],
        "expected exactly the two injected failures, got {failures:?}"
    );
    for (name, kind) in &failures {
        let expect = if name == "fault/panic" { "panic" } else { "deadline" };
        assert_eq!(kind, expect, "{name}: wrong failure class");
    }

    // Seed-stable retry: the retried run's payload is bitwise identical to
    // its never-faulted twin's.
    let retried = payload_of(&outcome.runs, "flaky/retry").expect("flaky/retry completed");
    let twin = payload_of(&outcome.runs, "clean/retry-twin").expect("twin completed");
    assert_eq!(
        retried.as_bytes(),
        twin.as_bytes(),
        "retried run payload differs from its unfaulted twin"
    );

    let json = report.to_json().pretty();
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!(
        "\n{} completed ({} reused from journal, {} executed), {} failure records",
        outcome.completed().count(),
        outcome.reused,
        outcome.executed,
        failures.len()
    );
    println!("wrote {out_path}");
    report_summary(&report.write("campaign"), &report);
}
