//! Chaos benchmark: fault-rate sweep over the MD timestep loop on both
//! machine models, contrasting the guarded movement-exploiting path against
//! the always-general redistribution path under identical injected faults.
//!
//! For each machine model and each fault intensity the same melting-crystal
//! simulation (P2NFFT solver, Method B resort, process-grid initial
//! distribution) runs three times:
//!
//! * **clean** — no fault layer at all: the reference trajectory.
//! * **guarded** — `exploit_movement` on, under [`simcomm::FaultPlan::chaos`]
//!   at the given intensity: latency spikes, transient send losses, one
//!   straggler rank, wait timeouts and per-step movement-hint lies. The
//!   solvers' movement-bound guards detect hint violations and fall back to
//!   the general path for the affected step; the driver's recovery loop
//!   rolls back to an in-memory snapshot and replays on injected
//!   stalls/timeouts.
//! * **general** — `exploit_movement` off (every step pays the full general
//!   redistribution), under the *same* fault plan: the degradation baseline
//!   the guarded path is compared against.
//!
//! Faults delay — they never corrupt payloads — and the guards/recovery mask
//! every movement-bound violation, so both faulted variants must reproduce
//! the clean trajectory **bit for bit**. The harness asserts that, and that
//! the guarded makespan stays within 2x the always-general makespan at every
//! intensity (the fallback's worst case: guard collectives plus an occasional
//! double redistribution, never a corrupted or hung run).
//!
//! Writes `BENCH_chaos.json` (the run-report schema, including the per-rank
//! fault counters) next to a `results/chaos_report.json` copy.

use bench::cli::{Cli, Opt, OBS_OPTS};
use bench::{banner, fmt_secs, report_summary, RunReport};
use fcs::SolverKind;
use mdsim::SimConfig;
use particles::{InitialDistribution, IonicCrystal};
use simcomm::{FaultPlan, MachineModel};

/// Short machine label ("juropa-like") for run labels and table rows.
fn short_name(model: &MachineModel) -> &str {
    model.name.split_whitespace().next().unwrap_or(&model.name)
}

fn main() {
    let cli = Cli::parse(
        "chaos",
        "deterministic fault injection: clean vs faulted runs, bitwise physics",
        &[
            Opt::new("cells", "N", "crystal cells per dimension (default 6)"),
            Opt::new("procs", "P", "simulated process count (default 16)"),
            Opt::new("steps", "N", "time steps (default 6)"),
            Opt::new("tolerance", "T", "solver tolerance (default 1e-2)"),
            Opt::new("seed", "S", "crystal + fault seed (default 11)"),
            Opt::new("jitter", "J", "initial lattice jitter fraction (default 0.15)"),
        ],
        OBS_OPTS,
    );
    let cells: usize = cli.get("cells", 6);
    let procs: usize = cli.get("procs", 16);
    let steps: usize = cli.get("steps", 6);
    let tolerance: f64 = cli.get("tolerance", 1e-2);
    let seed: u64 = cli.get("seed", 11);
    let jitter: f64 = cli.get("jitter", 0.15);
    let engine = cli.engine(simcomm::Engine::Threaded);
    let mut timeline = cli.timeline();
    let analyze = cli.analyze(&timeline);
    let intensities = [0.0, 0.25, 0.5, 1.0];

    let mut crystal = IonicCrystal::cubic(cells, 1.0, 0.0, seed);
    crystal.jitter = jitter * crystal.spacing;
    banner(
        "Chaos — fault-rate sweep: guarded movement exploitation vs the always-general path",
        &format!(
            "{} particles (cells {cells}), {procs} processes, {steps} steps, \
             P2NFFT + Method B resort, tolerance {tolerance:e}; \
             intensities {intensities:?}",
            crystal.n()
        ),
    );

    let mut report = RunReport::new("chaos", "mixed");
    report.param("engine", engine.name());
    report.param("cells", cells);
    report.param("procs", procs);
    report.param("steps", steps);
    report.param("tolerance", tolerance);
    report.param("seed", seed);
    report.param("jitter", jitter);

    let cfg = |exploit: bool| SimConfig {
        solver: SolverKind::P2Nfft,
        resort: true,
        exploit_movement: exploit,
        steps,
        tolerance,
        ..SimConfig::default()
    };

    println!(
        "{:<14} {:>9} {:>13} {:>13} {:>13} {:>7} {:>7} {:>9} {:>9}",
        "machine",
        "intensity",
        "clean",
        "guarded",
        "general",
        "ratio",
        "faults",
        "recover",
        "timeouts"
    );
    for model in [MachineModel::juropa_like(), MachineModel::juqueen_like()] {
        let name = short_name(&model);

        // Clean reference: the trajectory every faulted variant must match.
        let (clean_recs, _, clean_entry, clean_traces) = bench::run_md_world_analyzed(
            model.clone(),
            engine,
            procs,
            &crystal,
            InitialDistribution::Grid,
            &cfg(true),
            analyze,
        );
        let clean_makespan = clean_entry.makespan;
        timeline.push(format!("{name}/clean"), clean_traces);
        report.push(format!("{name}/clean"), clean_entry);

        for &intensity in &intensities {
            let plan = FaultPlan::chaos(seed ^ (intensity * 16.0) as u64, intensity);
            let (guarded_recs, recoveries, guarded_entry, guarded_traces) =
                bench::run_md_world_faulted_analyzed(
                    model.clone(),
                    engine,
                    procs,
                    &crystal,
                    InitialDistribution::Grid,
                    &cfg(true),
                    plan.clone(),
                    analyze,
                );
            let (general_recs, _, general_entry, general_traces) =
                bench::run_md_world_faulted_analyzed(
                    model.clone(),
                    engine,
                    procs,
                    &crystal,
                    InitialDistribution::Grid,
                    &cfg(false),
                    plan,
                    analyze,
                );
            timeline.push(format!("{name}/i{intensity}/guarded"), guarded_traces);
            timeline.push(format!("{name}/i{intensity}/general"), general_traces);

            // Zero correctness deviations: the guards and the recovery loop
            // fully mask the faults — both faulted trajectories reproduce
            // the clean one bit for bit, at every step.
            for (c, g) in clean_recs.iter().zip(&guarded_recs) {
                assert_eq!(
                    c.energy.to_bits(),
                    g.energy.to_bits(),
                    "{name} intensity {intensity}: guarded energy deviates at step {}",
                    c.step
                );
                assert_eq!(c.max_move.to_bits(), g.max_move.to_bits());
            }
            for (c, g) in clean_recs.iter().zip(&general_recs) {
                assert_eq!(
                    c.energy.to_bits(),
                    g.energy.to_bits(),
                    "{name} intensity {intensity}: general energy deviates at step {}",
                    c.step
                );
            }

            let guarded = guarded_entry.makespan;
            let general = general_entry.makespan;
            let ratio = guarded / general;
            let faults: u64 = guarded_entry.ranks.iter().map(|r| r.faults_injected).sum();
            let timeouts: u64 = guarded_entry.ranks.iter().map(|r| r.timeouts).sum();
            println!(
                "{name:<14} {intensity:>9} {:>13} {:>13} {:>13} {:>6.2}x {faults:>7} {recoveries:>9} {timeouts:>9}",
                fmt_secs(clean_makespan),
                fmt_secs(guarded),
                fmt_secs(general),
                ratio,
            );
            report.push(format!("{name}/i{intensity}/guarded"), guarded_entry);
            report.push(format!("{name}/i{intensity}/general"), general_entry);

            // The degradation bound: guarded fallback never costs more than
            // twice the always-general path under the same faults.
            assert!(
                guarded <= 2.0 * general,
                "{name} intensity {intensity}: guarded makespan {guarded} s exceeds \
                 2x the always-general path ({general} s)"
            );
        }
    }

    let json = report.to_json().pretty();
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("\nwrote BENCH_chaos.json");
    timeline.finish();
    report_summary(&report.write("chaos"), &report);
}
