//! Figure 8: Method A vs Method B over a long simulation with the *process
//! grid* initial distribution (256 processes, JuRoPA-like machine).
//!
//! Reproduces, per solver: per-time-step "Sort and restore / Total" (Method
//! A) and "Sort and resort / Total" (Method B) series, plus the
//! movement-exploiting Method B variant (merge-based sorting / neighbourhood
//! communication, as in Fig. 9's third series) where the persistent
//! communication-plan cache engages across time steps.
//!
//! Expected shape (paper Sect. IV-C): initially both methods are cheap (the
//! solver decompositions barely differ from the grid distribution). As the
//! particles drift, Method A's redistribution grows steadily — by the end of
//! the paper's 1000 steps it is ~50 % of the FMM step time and up to ~75 % of
//! the P2NFFT step time — while Method B stays flat (~3 % / ~2 %).

use bench::cli::{Cli, Opt, OBS_OPTS};
use bench::{banner, fmt_secs, report_summary, sum_from, write_csv, RunReport, Selftime};
use fcs::SolverKind;
use mdsim::SimConfig;
use particles::{InitialDistribution, IonicCrystal};
use simcomm::MachineModel;

fn main() {
    let cli = Cli::parse(
        "fig8",
        "Method A vs Method B over a long simulation, grid init (paper Fig. 8)",
        &[
            Opt::new("cells", "N", "crystal cells per dimension (default 24)"),
            Opt::new("procs", "P", "simulated process count (default 256)"),
            Opt::new("tolerance", "T", "solver tolerance (default 1e-2)"),
            Opt::new("steps", "N", "time steps (default 600)"),
            Opt::new("seed", "S", "crystal perturbation seed (default 1)"),
            Opt::new("mass", "M", "particle mass scaling (default 1.0)"),
            Opt::new("every", "N", "print every N-th step (default steps/20)"),
            Opt::new("jitter", "J", "initial lattice jitter fraction (default 0.15)"),
        ],
        OBS_OPTS,
    );
    let cells: usize = cli.get("cells", 24);
    let procs: usize = cli.get("procs", 256);
    let tolerance: f64 = cli.get("tolerance", 1e-2);
    let steps: usize = cli.get("steps", 600);
    let seed: u64 = cli.get("seed", 1);
    let mass: f64 = cli.get("mass", 1.0);
    let every: usize = cli.get("every", (steps / 20).max(1));

    let jitter: f64 = cli.get("jitter", 0.15);
    let engine = cli.engine(simcomm::Engine::Threaded);
    let mut timeline = cli.timeline();
    let analyze = cli.analyze(&timeline);
    let mut crystal = IonicCrystal::paper_like(cells, seed);
    crystal.jitter = jitter * crystal.spacing;
    let dt = mdsim::suggested_dt(crystal.spacing, 1.0);
    banner(
        "Figure 8 — Method A vs Method B over a long simulation (grid init)",
        &format!(
            "{} particles (cells {cells}), {procs} processes, {steps} steps, \
             juropa-like machine, tolerance {tolerance:e}",
            crystal.n()
        ),
    );

    let mut selftime = Selftime::start();
    let mut report = RunReport::new("fig8", "juropa_like");
    report.param("engine", engine.name());
    report.param("cells", cells);
    report.param("procs", procs);
    report.param("tolerance", tolerance);
    report.param("steps", steps);
    report.param("seed", seed);
    report.param("jitter", jitter);
    let mut rows = Vec::new();
    for (si, solver) in [SolverKind::Fmm, SolverKind::P2Nfft].into_iter().enumerate() {
        println!("\n--- {} solver ---", format!("{solver:?}").to_uppercase());
        let run = |resort: bool, exploit: bool| {
            let cfg = SimConfig {
                solver,
                resort,
                // `exploit` additionally feeds the measured maximum movement
                // to the solver under Method B (merge-based sorting /
                // neighbourhood communication), as in Fig. 9's third series.
                exploit_movement: exploit,
                steps,
                tolerance,
                mass,
                dt,
                ..SimConfig::default()
            };
            bench::run_md_world_analyzed(
                MachineModel::juropa_like(),
                engine,
                procs,
                &crystal,
                InitialDistribution::Grid,
                &cfg,
                analyze,
            )
        };
        let (a, rms_a, entry_a, traces_a) = run(false, false);
        selftime.lap_steps(&format!("run:{solver:?}/methodA"), steps as u64);
        let (b, _, entry_b, traces_b) = run(true, false);
        selftime.lap_steps(&format!("run:{solver:?}/methodB"), steps as u64);
        let (bm, _, entry_bm, traces_bm) = run(true, true);
        selftime.lap_steps(&format!("run:{solver:?}/methodB+movement"), steps as u64);
        timeline.push(format!("{solver:?}/methodA"), traces_a);
        timeline.push(format!("{solver:?}/methodB"), traces_b);
        timeline.push(format!("{solver:?}/methodB+movement"), traces_bm);
        report.push(format!("{solver:?}/methodA"), entry_a);
        report.push(format!("{solver:?}/methodB"), entry_b);
        report.push(format!("{solver:?}/methodB+movement"), entry_bm);
        println!(
            "{:<8} {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12} {:>10}",
            "step", "redistA", "totalA", "redistB", "totalB", "redistBM", "totalBM", "drift"
        );
        for s in (0..=steps).step_by(every) {
            let ra = a[s].sort + a[s].restore;
            let rb = b[s].sort + b[s].resort;
            let rbm = bm[s].sort + bm[s].resort;
            println!(
                "{:<8} {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12} {:>10.2}",
                s,
                fmt_secs(ra),
                fmt_secs(a[s].total),
                fmt_secs(rb),
                fmt_secs(b[s].total),
                fmt_secs(rbm),
                fmt_secs(bm[s].total),
                a[s].max_move
            );
            rows.push(vec![si as f64, s as f64, ra, a[s].total, rb, b[s].total, rbm, bm[s].total]);
        }
        // Paper headline numbers: redistribution share near the end vs start.
        let tail = steps.saturating_sub(steps / 10).max(1);
        let share = |recs: &[mdsim::StepRecord], redist: &dyn Fn(&mdsim::StepRecord) -> f64| {
            let rsum = sum_from(recs, tail, |r| redist(r));
            let tsum = sum_from(recs, tail, |r| r.total);
            100.0 * rsum / tsum.max(f64::MIN_POSITIVE)
        };
        let share_a = share(&a, &|r| r.sort + r.restore);
        let share_b = share(&b, &|r| r.sort + r.resort);
        let share_bm = share(&bm, &|r| r.sort + r.resort);
        let grow_a =
            (a[steps].sort + a[steps].restore) / (a[1].sort + a[1].restore).max(f64::MIN_POSITIVE);
        println!(
            "=> late-run redistribution share: method A {share_a:.0} % of the step \
             (paper: ~50 % FMM / ~75 % P2NFFT), method B {share_b:.0} % (paper: ~3 % / ~2 %), \
             method B + movement {share_bm:.0} %"
        );
        println!(
            "=> method A redistribution grew {grow_a:.1}x from step 1 to step {steps} \
             (RMS particle drift {rms_a:.2} box units)"
        );
    }
    report.selftime = selftime.rows();
    println!("\nharness selftime (real wall-clock, process-wide heap allocations):");
    for row in &report.selftime {
        println!(
            "  {:<28} {:>10} wall  {:>12} allocs  {:>14} B  ({} steps)",
            row.name,
            fmt_secs(row.wall_seconds),
            row.allocs,
            row.alloc_bytes,
            row.steps
        );
    }
    let path =
        write_csv("fig8", "solver,step,redistA,totalA,redistB,totalB,redistBM,totalBM", &rows);
    println!("\nwrote {}", path.display());
    timeline.finish();
    report_summary(&report.write("fig8"), &report);
}
