//! Summarize observability output into human-readable phase tables.
//!
//! Input modes:
//!
//! * `commstats --report results/fig8_report.json` — print each run entry's
//!   per-phase aggregate table (critical path, mean, imbalance, comm/wait/
//!   compute split, traffic) and verify the accounting invariants. Several
//!   reports can be given comma-separated.
//! * `commstats --check --report <a.json>[,<b.json>…]` — verify only the
//!   accounting invariant (comm + wait + compute sums match the rank clocks)
//!   for every run entry, one quiet line per report; exits nonzero on a
//!   violation. Intended for CI. Add `--alloc-budget <name>=<count>[,…]` to
//!   additionally threshold `harness_selftime` rows: the named row's heap
//!   allocation count (divided by its `steps` when per-step) must not exceed
//!   `count` — the perf-smoke guard against per-step allocation regressions
//!   on the steady-state redistribution path.
//! * `commstats --trace results/trace_timeline.csv` — aggregate a per-event
//!   trace CSV by phase and by operation kind (with collective fan-out from
//!   the `nranks` column). Pre-observability six-column traces (without the
//!   `nranks`/`phase` columns) are accepted; their events count as untagged.
//! * `commstats --baseline <dir> --report <a.json>[,…]` — the bench
//!   regression gate: diff each fresh report against the baseline of the
//!   same file name under `<dir>`, comparing per-run makespan and (when
//!   present on both sides) the critical path's comm/wait components. A
//!   machine-readable diff is written to `--gate-out` (default
//!   `results/gate_diff.json`); exits 1 on any regression beyond
//!   `--tolerance` (default 0.05 relative).
//!
//! All times are virtual seconds of the simulated machine model; sizes are
//! bytes. See `docs/OBSERVABILITY.md` for the schema reference.

use std::collections::BTreeMap;
use std::path::Path;

use bench::gate;
use bench::json::Json;
use bench::{fmt_secs, format_phase_table, Args, RunReport};

/// The `--help` text (also printed under usage errors).
const USAGE: &str = "\
commstats — inspect and verify benchmark reports and traces

USAGE:
  commstats --report <a.json>[,<b.json>...]
      Print each run entry's per-phase table, critical-path split and
      wait-blame rows; verify the accounting invariants.

  commstats --check --report <paths> [--alloc-budget name=count[,...]]
      Quiet CI mode: verify the accounting and critical-path invariants
      (comm+wait+compute must partition the clocks/makespan exactly) and
      any selftime allocation budgets. Exits nonzero on a violation.

  commstats --baseline <dir> --report <paths> [--tolerance 0.05]
            [--gate-out results/gate_diff.json]
      Regression gate: diff each report against <dir>/<same file name>,
      comparing per-run makespan and critical-path comm/wait. Writes a
      JSON diff artifact; exits 1 when any metric regresses beyond the
      relative tolerance.

  commstats --trace results/<trace>.csv
      Aggregate a trace CSV by phase and by event kind.

  commstats --help
      Print this text.

All times are virtual seconds of the simulated machine model. See
docs/OBSERVABILITY.md for the report and trace schema reference.";

/// Report a usage/input error without a panic backtrace.
fn fail(msg: String) -> ! {
    eprintln!("commstats: {msg}");
    std::process::exit(2);
}

fn load_report(path: &str) -> RunReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let value = Json::parse(&text).unwrap_or_else(|e| fail(format!("{path}: invalid JSON: {e}")));
    RunReport::from_json(&value).unwrap_or_else(|e| fail(format!("{path}: not a run report: {e}")))
}

/// One `--alloc-budget` entry: the named `harness_selftime` row's allocation
/// count (per step, when the row covers steps) must not exceed the budget.
struct AllocBudget {
    name: String,
    max_allocs: f64,
}

/// Parse `--alloc-budget name=count[,name=count…]`.
fn parse_budgets(spec: &str) -> Vec<AllocBudget> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (name, count) = pair.split_once('=').unwrap_or_else(|| {
                fail(format!("bad --alloc-budget entry '{pair}' (want name=count)"))
            });
            AllocBudget {
                name: name.to_string(),
                max_allocs: count
                    .parse()
                    .unwrap_or_else(|e| fail(format!("bad --alloc-budget count '{count}': {e}"))),
            }
        })
        .collect()
}

/// `--check`: verify the accounting invariant (per-phase comm + wait +
/// compute sums match the rank clocks) for every run entry of a report,
/// quietly, plus any `--alloc-budget` thresholds against the report's
/// `harness_selftime` rows. Exits nonzero on the first violation.
fn check_report(path: &str, budgets: &[AllocBudget]) {
    let report = load_report(path);
    let mut max_err: f64 = 0.0;
    for run in &report.runs {
        let err = run.decomposition_error();
        if err > 1e-6 * run.makespan.max(1e-9) {
            fail(format!(
                "{path}: run '{label}': comm+wait+compute diverges from the \
                 rank clocks by {err:.3e} s (makespan {makespan:.3e} s)",
                label = run.label,
                makespan = run.makespan
            ));
        }
        max_err = max_err.max(err);
        if let Some(cp) = &run.critpath {
            // The serialized compute component must be the *exact* f64
            // remainder of the makespan — the identity survives the JSON
            // round trip bit-for-bit, so anything nonzero means the file was
            // edited or the analysis is broken.
            let remainder = run.makespan - (cp.comm_seconds + cp.wait_seconds);
            if cp.compute_seconds != remainder {
                fail(format!(
                    "{path}: run '{label}': critical-path segments do not sum to the \
                     makespan (compute {got:e} s, expected exact remainder {remainder:e} s)",
                    label = run.label,
                    got = cp.compute_seconds
                ));
            }
            let range_err = cp.partition_error(run.makespan);
            if range_err > 1e-9 * run.makespan.max(1e-9) {
                fail(format!(
                    "{path}: run '{label}': critical-path component outside \
                     [0, makespan] by {range_err:.3e} s",
                    label = run.label
                ));
            }
        }
    }
    let with_critpath = report.runs.iter().filter(|r| r.critpath.is_some()).count();
    for budget in budgets {
        let row = report.selftime.iter().find(|r| r.name == budget.name).unwrap_or_else(|| {
            fail(format!(
                "{path}: no harness_selftime row named '{}' to hold \
                     --alloc-budget against",
                budget.name
            ))
        });
        let per_step = row.allocs as f64 / row.steps.max(1) as f64;
        if per_step > budget.max_allocs {
            fail(format!(
                "{path}: selftime row '{}' performed {:.1} heap allocations per \
                 step (budget {}) — the zero-allocation redistribution path \
                 regressed",
                budget.name, per_step, budget.max_allocs
            ));
        }
        println!(
            "check {path}: selftime '{}' within budget ({:.1} <= {} allocs/step)",
            budget.name, per_step, budget.max_allocs
        );
    }
    println!(
        "check {path}: ok ({n} runs, {with_critpath} with exact critical paths, \
         max accounting error {max_err:.1e} s)",
        n = report.runs.len()
    );
}

fn summarize_report(path: &str) {
    let report = load_report(path);
    println!(
        "report {path}: figure {figure}, machine {machine}, {n} runs",
        figure = report.figure,
        machine = report.machine,
        n = report.runs.len()
    );
    if !report.params.is_empty() {
        let params: Vec<String> = report.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("params: {}", params.join(", "));
    }
    for run in &report.runs {
        println!(
            "\n== {label} ({nranks} ranks, makespan {makespan}) ==",
            label = run.label,
            nranks = run.nranks,
            makespan = fmt_secs(run.makespan)
        );
        print!("{}", format_phase_table(run));
        let builds: u64 = run.ranks.iter().map(|r| r.plan_builds).sum();
        let execs: u64 = run.ranks.iter().map(|r| r.plan_execs).sum();
        if builds + execs > 0 {
            let reuse = execs as f64 / (builds + execs) as f64;
            println!(
                "plan reuse: {builds} builds, {execs} executions ({:.1}% reuse)",
                100.0 * reuse
            );
        }
        let reused: u64 = run.ranks.iter().map(|r| r.bytes_reused).sum();
        let grown: u64 = run.ranks.iter().map(|r| r.bytes_grown).sum();
        if reused + grown > 0 {
            println!(
                "buffer pool: {reused} B served from arenas, {grown} B grown \
                 ({:.1}% reuse)",
                100.0 * reused as f64 / (reused + grown) as f64
            );
        }
        let faults: u64 = run.ranks.iter().map(|r| r.faults_injected).sum();
        if faults > 0 {
            let retries: u64 = run.ranks.iter().map(|r| r.retries).sum();
            let timeouts: u64 = run.ranks.iter().map(|r| r.timeouts).sum();
            let stalls: u64 = run.ranks.iter().map(|r| r.stalls).sum();
            println!(
                "faults: {faults} injected ({retries} retries, {timeouts} timeout cycles, \
                 {stalls} stalls)"
            );
        }
        if let Some(cp) = &run.critpath {
            println!(
                "critical path: {comm} comm + {wait} wait + {compute} compute \
                 = makespan ({segs} segments)",
                comm = fmt_secs(cp.comm_seconds),
                wait = fmt_secs(cp.wait_seconds),
                compute = fmt_secs(cp.compute_seconds),
                segs = cp.segments
            );
            for b in &cp.blame {
                println!(
                    "  blame: rank {waiter} waited {secs} on rank {blamed}",
                    waiter = b.waiter,
                    secs = fmt_secs(b.seconds),
                    blamed = b.blamed
                );
            }
        }
        let err = run.decomposition_error();
        assert!(
            err <= 1e-6 * run.makespan.max(1e-9),
            "accounting violated: phase/rank times diverge from clocks by {err} s"
        );
    }
    if !report.selftime.is_empty() {
        println!("\nharness selftime (real wall-clock, process-wide heap allocations):");
        for row in &report.selftime {
            println!(
                "  {:<28} {:>10} wall  {:>12} allocs  {:>14} B{}",
                row.name,
                fmt_secs(row.wall_seconds),
                row.allocs,
                row.alloc_bytes,
                if row.steps > 0 { format!("  ({} steps)", row.steps) } else { String::new() }
            );
        }
    }
    println!(
        "\naccounting check passed: phase times sum to rank clocks within {:.1e} s",
        report.decomposition_error().max(1e-15)
    );
}

/// Per-group aggregate of trace events (group = phase name or event kind).
#[derive(Default)]
struct Bucket {
    events: u64,
    bytes: u64,
    busy_seconds: f64,
    /// Sum and count of the communicator size over collective events, for the
    /// mean fan-out.
    coll_events: u64,
    coll_nranks_sum: u64,
}

/// Point-to-point trace kinds: excluded from collective fan-out statistics.
/// `isend` posts and `wait` completions are p2p by nature, like `send`/`recv`;
/// `plan_build`/`plan_exec` mark persistent-plan setup and replay, and
/// `fault`/`retry`/`timeout` mark injected faults and their handling — all
/// per-rank events without a collective fan-out.
const P2P_KINDS: [&str; 9] =
    ["send", "recv", "isend", "wait", "plan_build", "plan_exec", "fault", "retry", "timeout"];

fn summarize_trace(path: &str) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_else(|| fail(format!("{path}: empty file")));
    let columns: Vec<&str> = header.split(',').collect();
    if !columns.starts_with(&["rank", "kind", "t_start", "t_end", "bytes", "peer"]) {
        fail(format!("{path}: not a trace CSV (header '{header}')"));
    }
    let has_extended = columns.len() >= 8;

    let mut by_phase: BTreeMap<String, Bucket> = BTreeMap::new();
    let mut by_kind: BTreeMap<String, Bucket> = BTreeMap::new();
    let mut ranks: BTreeMap<u64, f64> = BTreeMap::new();
    let mut rows = 0u64;
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        assert!(f.len() >= 6, "{path}:{}: expected at least 6 columns", lineno + 2);
        let parse_f64 = |s: &str| -> f64 { s.parse().expect("bad number in trace") };
        let rank: u64 = f[0].parse().expect("bad rank");
        let kind = f[1];
        let t_start = parse_f64(f[2]);
        let t_end = parse_f64(f[3]);
        let bytes: u64 = f[4].parse().expect("bad bytes");
        let is_p2p = P2P_KINDS.contains(&kind);
        let nranks: Option<u64> = if has_extended { f[6].parse().ok() } else { None };
        let phase = if has_extended && !f[7].is_empty() {
            f[7].to_string()
        } else {
            "(untagged)".to_string()
        };

        for bucket in
            [by_phase.entry(phase).or_default(), by_kind.entry(kind.to_string()).or_default()]
        {
            bucket.events += 1;
            bucket.bytes += bytes;
            bucket.busy_seconds += (t_end - t_start).max(0.0);
            if !is_p2p {
                bucket.coll_events += 1;
                bucket.coll_nranks_sum += nranks.unwrap_or(0);
            }
        }
        let clock = ranks.entry(rank).or_insert(0.0);
        *clock = clock.max(t_end);
        rows += 1;
    }
    println!(
        "trace {path}: {rows} events, {nranks} ranks, last event ends at {end}",
        nranks = ranks.len(),
        end = fmt_secs(ranks.values().cloned().fold(0.0, f64::max))
    );
    if !has_extended {
        println!("(six-column legacy trace: no phase tags or communicator sizes)");
    }

    let print_table = |title: &str, table: &BTreeMap<String, Bucket>| {
        println!("\nby {title}:");
        println!(
            "{:<16} {:>8} {:>14} {:>12} {:>9} {:>9}",
            title, "events", "bytes", "busy[s]", "colls", "fan-out"
        );
        for (name, b) in table {
            let fanout = if b.coll_events > 0 && has_extended {
                format!("{:.0}", b.coll_nranks_sum as f64 / b.coll_events as f64)
            } else {
                "-".to_string()
            };
            println!(
                "{:<16} {:>8} {:>14} {:>12} {:>9} {:>9}",
                name,
                b.events,
                b.bytes,
                fmt_secs(b.busy_seconds),
                b.coll_events,
                fanout
            );
        }
    };
    print_table("phase", &by_phase);
    print_table("kind", &by_kind);
}

/// `--baseline`: the bench regression gate. Each report is diffed against
/// `<baseline_dir>/<same file name>`; the combined diff is written to
/// `gate_out` and any regression beyond `tolerance` exits 1.
fn run_gate(baseline_dir: &str, reports: &[&str], tolerance: f64, gate_out: &str) {
    let mut diffs: Vec<(String, gate::GateDiff)> = Vec::new();
    for path in reports {
        let current = load_report(path);
        let file_name = Path::new(path)
            .file_name()
            .unwrap_or_else(|| fail(format!("bad report path '{path}'")));
        let base_path = Path::new(baseline_dir).join(file_name);
        let base_path = base_path.to_str().expect("utf-8 path");
        let baseline = load_report(base_path);
        let diff = gate::diff_reports(&baseline, &current, tolerance);
        for row in &diff.rows {
            println!(
                "gate {path}: {label} {metric}: {base} -> {cur} {verdict}",
                label = row.label,
                metric = row.metric,
                base = fmt_secs(row.baseline),
                cur = fmt_secs(row.current),
                verdict = if row.regressed {
                    "REGRESSED"
                } else if row.current <= row.baseline {
                    "ok"
                } else {
                    "ok (within tolerance)"
                }
            );
        }
        for label in &diff.missing {
            println!("gate {path}: run '{label}' present in baseline only (not compared)");
        }
        for label in &diff.added {
            println!("gate {path}: run '{label}' is new (no baseline)");
        }
        diffs.push((path.to_string(), diff));
    }
    if let Some(dir) = Path::new(gate_out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(format!("cannot create {}: {e}", dir.display())));
        }
    }
    let json = gate::diffs_to_json(tolerance, &diffs).pretty();
    std::fs::write(gate_out, json)
        .unwrap_or_else(|e| fail(format!("cannot write {gate_out}: {e}")));
    let regressions: usize = diffs.iter().map(|(_, d)| d.regressions().count()).sum();
    let rows: usize = diffs.iter().map(|(_, d)| d.rows.len()).sum();
    println!("gate: {rows} metrics compared, {regressions} regressed (diff in {gate_out})");
    if regressions > 0 {
        eprintln!(
            "commstats: regression gate failed ({regressions} metrics beyond \
             tolerance {tolerance})"
        );
        std::process::exit(1);
    }
}

fn main() {
    let args = Args::try_parse(&[
        "report",
        "trace",
        "check",
        "alloc-budget",
        "baseline",
        "tolerance",
        "gate-out",
        "help",
    ])
    .unwrap_or_else(|e| {
        eprintln!("commstats: {e}");
        eprintln!("\n{USAGE}");
        std::process::exit(2);
    });
    if args.flag("help") {
        println!("{USAGE}");
        return;
    }
    let report: String = args.get("report", String::new());
    let trace: String = args.get("trace", String::new());
    let check = args.flag("check");
    let baseline: String = args.get("baseline", String::new());
    let tolerance: f64 = args.get("tolerance", gate::DEFAULT_TOLERANCE);
    let gate_out: String = args.get("gate-out", "results/gate_diff.json".to_string());
    let budgets = parse_budgets(&args.get("alloc-budget", String::new()));
    if report.is_empty() && trace.is_empty() {
        eprintln!("commstats: nothing to do (give --report and/or --trace)\n\n{USAGE}");
        std::process::exit(2);
    }
    let report_paths: Vec<&str> = report.split(',').filter(|p| !p.is_empty()).collect();
    if !baseline.is_empty() {
        if report_paths.is_empty() {
            fail("--baseline needs --report <paths> to compare".to_string());
        }
        run_gate(&baseline, &report_paths, tolerance, &gate_out);
    } else {
        for path in &report_paths {
            if check {
                check_report(path, &budgets);
            } else {
                summarize_report(path);
            }
        }
    }
    if !trace.is_empty() {
        summarize_trace(&trace);
    }
}
