//! Figure 9: total parallel runtimes of the particle dynamics simulation.
//!
//! Left panel: FMM solver on the JuRoPA-like (switched fabric) machine over
//! process counts 8..1024. Right panel: P2NFFT-style solver on the
//! Juqueen-like (torus) machine over process counts 16..16384. Three series
//! each: Method A, Method B, and Method B exploiting the maximum particle
//! movement (merge-based parallel sort for the FMM, neighbourhood
//! point-to-point communication for the particle-mesh solver).
//!
//! Expected shapes (paper Sect. IV-D):
//! * FMM/JuRoPA: Method B is fastest (biggest gap ~33 % around 256 procs);
//!   exploiting the movement *slightly increases* the runtime (the switched
//!   network gives no advantage to point-to-point neighbourhood traffic).
//! * P2NFFT/Juqueen: at large process counts plain Method B becomes *slower*
//!   than Method A (the extra resort communication dominates), while Method B
//!   with maximum movement keeps scaling and ends ~40 % below Method A at the
//!   largest machine.

use bench::cli::{Cli, Opt, OBS_OPTS};
use bench::{banner, fmt_secs, report_summary, sum_from, write_csv, RunReport, TimelineSink};
use fcs::SolverKind;
use mdsim::SimConfig;
use particles::{InitialDistribution, IonicCrystal};
use simcomm::MachineModel;

fn main() {
    let cli = Cli::parse(
        "fig9",
        "total parallel runtimes over process counts, both machines (paper Fig. 9)",
        &[
            Opt::new("cells", "N", "crystal cells per dimension (default 24)"),
            Opt::new("steps", "N", "time steps (default 10)"),
            Opt::new("tolerance", "T", "solver tolerance (default 1e-2)"),
            Opt::new("seed", "S", "crystal perturbation seed (default 1)"),
            Opt::new("left-procs", "P1,P2,...", "left panel (FMM/JuRoPA) process counts"),
            Opt::new("right-procs", "P1,P2,...", "right panel (P2NFFT/Juqueen) process counts"),
            Opt::flag("skip-left", "skip the left panel"),
            Opt::flag("skip-right", "skip the right panel"),
            Opt::new("dist", "D", "initial distribution: 'random' (default) or 'grid'"),
            Opt::flag("pencil", "use a pencil (1D) grid decomposition on the right panel"),
            Opt::new("tag", "T", "suffix for the output CSV/report names"),
        ],
        OBS_OPTS,
    );
    let cells: usize = cli.get("cells", 24);
    let steps: usize = cli.get("steps", 10);
    let tolerance: f64 = cli.get("tolerance", 1e-2);
    let seed: u64 = cli.get("seed", 1);
    let left_procs = cli.list("left-procs", &[8, 16, 32, 64, 128, 256, 512, 1024]);
    let right_procs = cli.list("right-procs", &[16, 64, 256, 1024, 4096, 16384]);
    // The paper simulates 1000 time steps from the *grid* distribution; by
    // mid-run the particles have drifted so far that Method A effectively
    // redistributes a decorrelated system every step (cf. Fig. 8). This
    // scaled-down harness runs far fewer steps, so it defaults to the
    // *random* initial distribution to operate in that same decorrelated
    // regime; pass `--dist grid --steps 1000` for the literal setup.
    let dist = match cli.get::<String>("dist", "random".into()).as_str() {
        "random" => InitialDistribution::Random,
        "grid" => InitialDistribution::Grid,
        other => cli.fail(format!("--dist must be 'random' or 'grid', got '{other}'")),
    };
    // The right panel reaches 16384 ranks — the discrete-event engine
    // (`--engine discrete`) is the practical choice there; see the `scale`
    // harness for the dedicated crossover sweep.
    let engine = cli.engine(simcomm::Engine::Threaded);
    let mut timeline = cli.timeline();
    let analyze = cli.analyze(&timeline);

    let crystal = IonicCrystal::paper_like(cells, seed);
    let dt = mdsim::suggested_dt(crystal.spacing, 1.0);
    banner(
        "Figure 9 — Total parallel runtimes vs process count",
        &format!(
            "{} particles (cells {cells}), {steps} time steps per run, {} \
             initial distribution, tolerance {tolerance:e}",
            crystal.n(),
            dist.label(),
        ),
    );

    let mut report = RunReport::new("fig9", "mixed");
    report.param("engine", engine.name());
    report.param("cells", cells);
    report.param("tolerance", tolerance);
    report.param("steps", steps);
    report.param("seed", seed);
    report.param("dist", dist.label());
    let mut rows = Vec::new();
    #[allow(clippy::too_many_arguments)]
    let panel = |name: &str,
                 solver: SolverKind,
                 model: MachineModel,
                 procs_list: &[usize],
                 panel_ix: f64,
                 rows: &mut Vec<Vec<f64>>,
                 report: &mut RunReport,
                 timeline: &mut TimelineSink| {
        println!("\n--- {name} ---");
        println!(
            "{:<8} {:>12} {:>12} {:>16} | {:>11} {:>11} {:>11}",
            "procs", "methodA", "methodB", "methodB+move", "redistA", "redistB", "redistBm"
        );
        for &p in procs_list {
            let mut totals = Vec::new();
            let mut redists = Vec::new();
            for (resort, exploit) in [(false, false), (true, false), (true, true)] {
                let method = match (resort, exploit) {
                    (false, _) => "methodA",
                    (true, false) => "methodB",
                    (true, true) => "methodB+move",
                };
                let cfg = SimConfig {
                    solver,
                    resort,
                    exploit_movement: exploit,
                    steps,
                    tolerance,
                    dt,
                    pencil_fft: cli.flag("pencil"),
                    ..SimConfig::default()
                };
                let (records, _, entry, traces) = bench::run_md_world_analyzed(
                    model.clone(),
                    engine,
                    p,
                    &crystal,
                    dist,
                    &cfg,
                    analyze,
                );
                timeline.push(format!("{solver:?}/p={p}/{method}"), traces);
                report.push(format!("{solver:?}/p={p}/{method}"), entry);
                // Total simulation runtime: sum of all solver executions
                // (including application-side resorting), like the paper's
                // "total parallel runtimes". The redistribution-only sums
                // expose the methods' difference where solver computation
                // dominates the totals.
                totals.push(sum_from(&records, 0, |r| r.total));
                redists.push(sum_from(&records, 0, |r| r.sort + r.restore + r.resort));
            }
            println!(
                "{:<8} {:>12} {:>12} {:>16} | {:>11} {:>11} {:>11}",
                p,
                fmt_secs(totals[0]),
                fmt_secs(totals[1]),
                fmt_secs(totals[2]),
                fmt_secs(redists[0]),
                fmt_secs(redists[1]),
                fmt_secs(redists[2])
            );
            rows.push(vec![
                panel_ix, p as f64, totals[0], totals[1], totals[2], redists[0], redists[1],
                redists[2],
            ]);
        }
    };

    if !cli.flag("skip-left") {
        panel(
            "FMM on the juropa-like machine (switched fabric)",
            SolverKind::Fmm,
            MachineModel::juropa_like(),
            &left_procs,
            0.0,
            &mut rows,
            &mut report,
            &mut timeline,
        );
    }
    if !cli.flag("skip-right") {
        panel(
            "P2NFFT-style solver on the juqueen-like machine (5D torus)",
            SolverKind::P2Nfft,
            MachineModel::juqueen_like(),
            &right_procs,
            1.0,
            &mut rows,
            &mut report,
            &mut timeline,
        );
    }

    // `--tag <suffix>` writes to fig9_<suffix>.csv / fig9_<suffix>_report.json
    // so special runs (e.g. the committed 16384-rank right panel) don't
    // clobber the default outputs.
    let tag: String = cli.get("tag", String::new());
    let mut name = if cli.flag("pencil") { "fig9_pencil".to_string() } else { "fig9".to_string() };
    if !tag.is_empty() {
        name = format!("{name}_{tag}");
    }
    let name = name.as_str();
    let path = write_csv(
        name,
        "panel,procs,methodA,methodB,methodB_move,redistA,redistB,redistB_move",
        &rows,
    );
    println!("\nwrote {}", path.display());
    timeline.finish();
    report_summary(&report.write(name), &report);
    println!("(panel: 0 = FMM/juropa-like, 1 = P2NFFT/juqueen-like)");
}
