//! Redistribution before/after benchmark: the hot communication paths this
//! repository optimised with nonblocking requests and multi-field resorting,
//! measured as virtual makespans on both machine models.
//!
//! Two workload families:
//!
//! * **Neighbourhood exchange** (the paper's Fig. 9 pattern): every rank
//!   exchanges a fixed-size message with its 26-neighbourhood. `blocking`
//!   posts sends one at a time and receives in partner order (the previous
//!   implementation, kept as [`simcomm::Comm::neighbor_exchange_blocking`]);
//!   `nonblocking` posts all sends up front and drains receives in arrival
//!   order; `alltoallv` is the collective alternative for reference.
//! * **Multi-field resort** (the `fcs_resort_*` path): route three
//!   per-particle fields through the redistribution either as three
//!   sequential single-field resorts (`per-field`, the previous call
//!   pattern) or in one combined byte exchange round (`combined`,
//!   [`atasp::resort_planes`] over a three-plane [`particles::PlaneSet`]).
//!
//! Writes `BENCH_redistribution.json` (the run-report schema) at the
//! repository root next to a `results/redistribution_report.json` copy, and
//! fails loudly if the nonblocking exchange is slower than the blocking one
//! on either machine model.

use atasp::{encode_index, resort, resort_planes, ExchangeMode};
use bench::cli::{Cli, Opt, OBS_OPTS};
use bench::{banner, fmt_secs, record_run, RunReport, TimelineSink};
use particles::PlaneSet;
use simcomm::{Comm, Engine, MachineModel, Runner};

/// Short machine label ("juropa-like") for run labels and table rows.
fn short_name(model: &MachineModel) -> &str {
    model.name.split_whitespace().next().unwrap_or(&model.name)
}

/// Symmetric ring neighbourhood of `reach` ranks on each side (the 26
/// distinct partners of a 3×3×3 stencil when `reach` is 13).
fn ring_partners(comm: &Comm, reach: usize) -> Vec<usize> {
    let (me, p) = (comm.rank(), comm.size());
    let mut partners: Vec<usize> =
        (1..=reach).flat_map(|d| [(me + d) % p, (me + p - d) % p]).filter(|&q| q != me).collect();
    partners.sort_unstable();
    partners.dedup();
    partners
}

#[allow(clippy::too_many_arguments)]
fn exchange_workloads(
    model: &MachineModel,
    engine: Engine,
    procs: usize,
    bytes: usize,
    analyze: bool,
    report: &mut RunReport,
    timeline: &mut TimelineSink,
) -> (f64, f64) {
    let runner = Runner::new(engine).traced(analyze);
    let payloads = |partners: &[usize]| -> Vec<(usize, Vec<u8>)> {
        partners.iter().map(|&q| (q, vec![0u8; bytes])).collect()
    };
    let blocking = runner.run(procs, model.clone(), |comm| {
        let partners = ring_partners(comm, 13);
        let _ = comm.neighbor_exchange_blocking(&partners, payloads(&partners), 1);
    });
    let nonblocking = runner.run(procs, model.clone(), |comm| {
        let partners = ring_partners(comm, 13);
        let _ = comm.neighbor_exchange(&partners, payloads(&partners), 1);
    });
    let collective = runner.run(procs, model.clone(), |comm| {
        let partners = ring_partners(comm, 13);
        let _ = comm.alltoallv(payloads(&partners));
    });
    let name = short_name(model);
    println!(
        "{name:<14} exchange   blocking {:>12}  nonblocking {:>12}  alltoallv {:>12}",
        fmt_secs(blocking.makespan()),
        fmt_secs(nonblocking.makespan()),
        fmt_secs(collective.makespan())
    );
    let spans = (blocking.makespan(), nonblocking.makespan());
    record_run(format!("{name}/exchange/blocking"), blocking, report, timeline);
    record_run(format!("{name}/exchange/nonblocking"), nonblocking, report, timeline);
    record_run(format!("{name}/exchange/alltoallv"), collective, report, timeline);
    spans
}

#[allow(clippy::too_many_arguments)]
fn resort_workloads(
    model: &MachineModel,
    engine: Engine,
    procs: usize,
    elems: usize,
    analyze: bool,
    report: &mut RunReport,
    timeline: &mut TimelineSink,
) -> (f64, f64) {
    let runner = Runner::new(engine).traced(analyze);
    // Rotate every rank's block of elements to the next rank, positions
    // reversed — a valid global permutation exercising the full path.
    let indices = |comm: &Comm| -> Vec<u64> {
        let dst = (comm.rank() + 1) % comm.size();
        (0..elems).map(|i| encode_index(dst, elems - 1 - i)).collect()
    };
    let fields = |comm: &Comm| -> [Vec<f64>; 3] {
        let base = (comm.rank() * elems) as f64;
        let a: Vec<f64> = (0..elems).map(|i| base + i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.25).collect();
        let c: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
        [a, b, c]
    };
    let per_field = runner.run(procs, model.clone(), |comm| {
        let ix = indices(comm);
        let [a, b, c] = fields(comm);
        for ch in [&a, &b, &c] {
            let _ = resort(comm, ch, &ix, elems, &ExchangeMode::Collective);
        }
    });
    let combined = runner.run(procs, model.clone(), |comm| {
        let ix = indices(comm);
        let [a, b, c] = fields(comm);
        let mut set = PlaneSet::new();
        for (name, data) in [("a", &a), ("b", &b), ("c", &c)] {
            let id = set.register::<f64>(name);
            set.resize(data.len());
            set.plane_mut::<f64>(id).copy_from_slice(data);
        }
        let mut plan = None;
        resort_planes(comm, &mut set, &ix, elems, &ExchangeMode::Collective, &mut plan);
    });
    let name = short_name(model);
    println!(
        "{name:<14} resort     per-field {:>11}  combined {:>15}",
        fmt_secs(per_field.makespan()),
        fmt_secs(combined.makespan())
    );
    let spans = (per_field.makespan(), combined.makespan());
    record_run(format!("{name}/resort/per-field"), per_field, report, timeline);
    record_run(format!("{name}/resort/combined"), combined, report, timeline);
    spans
}

fn main() {
    let cli = Cli::parse(
        "redistribution",
        "redistribution hot paths: blocking vs nonblocking, per-field vs combined",
        &[
            Opt::new("procs", "P", "simulated process count (default 64)"),
            Opt::new("bytes", "B", "payload bytes per message (default 4096)"),
            Opt::new("elems", "N", "elements per rank (default 2000)"),
        ],
        OBS_OPTS,
    );
    let procs: usize = cli.get("procs", 64);
    let bytes: usize = cli.get("bytes", 4096);
    let elems: usize = cli.get("elems", 2000);
    let engine = cli.engine(Engine::Threaded);
    let mut timeline = cli.timeline();
    let analyze = cli.analyze(&timeline);
    banner(
        "Redistribution hot paths — blocking vs nonblocking, per-field vs combined",
        &format!(
            "{procs} processes, 26-partner neighbourhood of {bytes} B messages, \
             {elems} elements x 3 fields per rank"
        ),
    );

    let mut report = RunReport::new("redistribution", "mixed");
    report.param("engine", engine.name());
    report.param("procs", procs);
    report.param("bytes", bytes);
    report.param("elems", elems);

    for model in [MachineModel::juropa_like(), MachineModel::juqueen_like()] {
        let (blocking, nonblocking) =
            exchange_workloads(&model, engine, procs, bytes, analyze, &mut report, &mut timeline);
        assert!(
            nonblocking <= blocking * (1.0 + 1e-9),
            "{}: nonblocking neighbour exchange ({nonblocking} s) must not be \
             slower than the blocking baseline ({blocking} s)",
            model.name
        );
        resort_workloads(&model, engine, procs, elems, analyze, &mut report, &mut timeline);
    }

    timeline.finish();
    let json = report.to_json().pretty();
    std::fs::write("BENCH_redistribution.json", &json).expect("write BENCH_redistribution.json");
    let path = report.write("redistribution");
    println!("\nwrote BENCH_redistribution.json and {}", path.display());
    println!(
        "accounting max error: {:.1e} s (run `commstats --check --report \
         BENCH_redistribution.json` to verify)",
        report.decomposition_error().max(1e-15)
    );
}
