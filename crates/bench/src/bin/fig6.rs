//! Figure 6: influence of the initial particle distribution.
//!
//! Reproduces: "Total runtimes and runtimes for sorting and restoring the
//! particles for the computation of particle interactions with the FMM solver
//! and the P2NFFT solver using three different initial particle
//! distributions: all particles on one single process (single process),
//! uniformly random distribution of particles among processes (random), and a
//! domain decomposition that distributes particles uniformly among a
//! Cartesian process grid (process grid)." — 256 processes on the JuRoPA
//! system, Method A.
//!
//! Expected shape (paper Sect. IV-B): single process is slowest by far (the
//! one process is the communication bottleneck); random improves it
//! substantially; process grid cuts sort/restore by at least another order of
//! magnitude, and for the P2NFFT solver (which uses the same grid
//! decomposition) the remaining redistribution cost is mainly ghost creation.

use bench::cli::{Cli, Opt, OBS_OPTS};
use bench::{banner, fmt_secs, report_summary, write_csv, RunReport};
use fcs::SolverKind;
use mdsim::SimConfig;
use particles::{InitialDistribution, IonicCrystal};
use simcomm::MachineModel;

fn main() {
    let cli = Cli::parse(
        "fig6",
        "influence of the initial particle distribution (paper Fig. 6)",
        &[
            Opt::new("cells", "N", "crystal cells per dimension (default 44)"),
            Opt::new("procs", "P", "simulated process count (default 256)"),
            Opt::new("tolerance", "T", "solver tolerance (default 1e-3)"),
            Opt::new("seed", "S", "crystal perturbation seed (default 1)"),
        ],
        OBS_OPTS,
    );
    let cells: usize = cli.get("cells", 44);
    let procs: usize = cli.get("procs", 256);
    let tolerance: f64 = cli.get("tolerance", 1e-3);
    let seed: u64 = cli.get("seed", 1);
    let engine = cli.engine(simcomm::Engine::Threaded);
    let mut timeline = cli.timeline();
    let analyze = cli.analyze(&timeline);

    let crystal = IonicCrystal::paper_like(cells, seed);
    banner(
        "Figure 6 — Influence of the initial particle distribution",
        &format!(
            "{} particles (cells {cells}), {procs} processes, method A, \
             juropa-like machine, tolerance {tolerance:e}",
            crystal.n()
        ),
    );

    let dists = [
        InitialDistribution::SingleProcess,
        InitialDistribution::Random,
        InitialDistribution::Grid,
    ];
    println!(
        "{:<8} {:<16} {:>12} {:>12} {:>12}",
        "solver", "distribution", "total", "sort", "restore"
    );
    let mut report = RunReport::new("fig6", "juropa_like");
    report.param("engine", engine.name());
    report.param("cells", cells);
    report.param("procs", procs);
    report.param("tolerance", tolerance);
    report.param("seed", seed);
    let mut rows = Vec::new();
    for (si, solver) in [SolverKind::Fmm, SolverKind::P2Nfft].into_iter().enumerate() {
        for (di, dist) in dists.into_iter().enumerate() {
            // One solver execution (steps = 0 -> only the initial
            // interactions, line 5 of the paper's Fig. 3).
            let cfg =
                SimConfig { solver, resort: false, steps: 0, tolerance, ..SimConfig::default() };
            let (records, _, entry, traces) = bench::run_md_world_analyzed(
                MachineModel::juropa_like(),
                engine,
                procs,
                &crystal,
                dist,
                &cfg,
                analyze,
            );
            timeline.push(format!("{solver:?}/{}", dist.label()), traces);
            report.push(format!("{solver:?}/{}", dist.label()), entry);
            let r = &records[0];
            println!(
                "{:<8} {:<16} {:>12} {:>12} {:>12}",
                format!("{solver:?}"),
                dist.label(),
                fmt_secs(r.total),
                fmt_secs(r.sort),
                fmt_secs(r.restore)
            );
            rows.push(vec![si as f64, di as f64, r.total, r.sort, r.restore]);
        }
    }
    let path = write_csv("fig6", "solver,distribution,total,sort,restore", &rows);
    println!("\nwrote {}", path.display());
    timeline.finish();
    report_summary(&report.write("fig6"), &report);
    println!(
        "(solver: 0 = FMM, 1 = P2NFFT; distribution: 0 = single process, 1 = random, 2 = grid)"
    );
}
