//! Plan-cache benchmark: planned vs unplanned redistribution, as the full
//! fig8-style MD loop and as the isolated neighbourhood-exchange primitive.
//!
//! Two workload families, each run on both machine models:
//!
//! * **MD timestep loop** (the fig8 workload at reduced scale): the same
//!   melting-crystal simulation (P2NFFT solver, Method B resort, movement
//!   exploitation, process-grid initial distribution) with communication-plan
//!   caching on (`planned`: ghost routes, sort probe schedules and resort
//!   schedules persist across timesteps and are re-executed while the
//!   accumulated movement stays under the plan's validity bound) and off
//!   (`unplanned`: every step replans from scratch). The physics is bitwise
//!   identical either way — the contrast is purely replanning cost against
//!   the skin-inflated ghost volume the cached plan carries.
//! * **Neighbourhood ghost exchange** (the paper's Fig. 9 stencil): every
//!   rank ships a fixed boundary payload to its 26 grid neighbours each
//!   step. `planned` freezes a [`simcomm::CommPlan`] once and re-executes
//!   it — receives complete in partner order, so the ghost sequence is
//!   deterministic with no post-processing. `unplanned` re-derives the
//!   partner list each step and uses the one-shot nonblocking exchange,
//!   whose receives complete in *arrival* order — restoring the solver's
//!   ghost order takes the full sort + dedup pass the pre-plan ghost path
//!   performed every step.
//!
//! The MD workload is sized so the tuned short-range cutoff stays below the
//! domain-cell width (`procs 64`, `cells 16`), giving the ghost-plan cache a
//! positive skin margin to absorb particle movement.
//!
//! Writes `BENCH_plancache.json` (the run-report schema) at the repository
//! root next to a `results/plancache_report.json` copy, and fails loudly if
//! a planned run is slower than its unplanned baseline on either machine
//! model, or if the planned neighbourhood exchange wins less than 5 % on
//! the torus (JUQUEEN-like) model.

use bench::cli::{Cli, Opt, OBS_OPTS};
use bench::{
    banner, fmt_secs, record_run, report_summary, RunReport, Selftime, SelftimeRow, TimelineSink,
};
use fcs::SolverKind;
use mdsim::SimConfig;
use particles::{InitialDistribution, IonicCrystal, PlaneSet, Vec3};
use simcomm::{CartGrid, Comm, MachineModel, Runner, Work};

/// Short machine label ("juropa-like") for run labels and table rows.
fn short_name(model: &MachineModel) -> &str {
    model.name.split_whitespace().next().unwrap_or(&model.name)
}

const TAG_GHOSTS: u64 = 0x706c_616e;

/// One ghost record: global id plus position/charge payload (40 B, the same
/// order of magnitude as the solvers' particle records).
type Ghost = (u64, [f64; 4]);

/// The boundary payload rank `me` ships to partner `q`: `elems` records with
/// ids unique per (owner, slot) pair.
fn ghost_payload(me: usize, elems: usize) -> Vec<Ghost> {
    (0..elems).map(|i| ((me * elems + i) as u64, [me as f64, i as f64, 0.0, 1.0])).collect()
}

/// Fig. 9-style stencil exchange, `steps` timesteps: planned (persistent
/// [`simcomm::CommPlan`], partner-order receives) vs unplanned (per-step
/// partner recomputation, arrival-order receives restored to solver order by
/// the sort + dedup pass the pre-plan ghost path ran every step). Returns
/// (planned, unplanned) makespans.
#[allow(clippy::too_many_arguments)]
fn neighborhood_workloads(
    model: &MachineModel,
    engine: simcomm::Engine,
    procs: usize,
    elems: usize,
    steps: usize,
    analyze: bool,
    report: &mut RunReport,
    timeline: &mut TimelineSink,
) -> (f64, f64) {
    let runner = Runner::new(engine).traced(analyze);
    let bytes_out = |n_partners: usize| (n_partners * elems * std::mem::size_of::<Ghost>()) as f64;
    let planned = runner.run(procs, model.clone(), move |comm: &mut Comm| {
        let partners = CartGrid::balanced(procs).neighbors26(comm.rank());
        let mut plan = comm.plan_exchange(partners, TAG_GHOSTS);
        for _ in 0..steps {
            let bufs: Vec<Vec<Ghost>> =
                plan.partners().iter().map(|_| ghost_payload(comm.rank(), elems)).collect();
            comm.compute(Work::ByteCopy, bytes_out(plan.partners().len()));
            let received = plan.execute(comm, bufs);
            // Receives are in frozen partner order: the ghost sequence is
            // already deterministic, no post-processing.
            let _ghosts: usize = received.iter().map(Vec::len).sum();
        }
    });
    let unplanned = runner.run(procs, model.clone(), move |comm: &mut Comm| {
        for _ in 0..steps {
            let partners = CartGrid::balanced(procs).neighbors26(comm.rank());
            let data: Vec<(usize, Vec<Ghost>)> =
                partners.iter().map(|&q| (q, ghost_payload(comm.rank(), elems))).collect();
            comm.compute(Work::ByteCopy, bytes_out(partners.len()));
            let received = comm.neighbor_exchange(&partners, data, TAG_GHOSTS);
            // Without a frozen plan the arrival order is nondeterministic:
            // restore the solver's ghost order with the full sort + dedup
            // pass the pre-plan ghost path performed each step.
            let mut ghosts: Vec<Ghost> = received.into_iter().flat_map(|(_, v)| v).collect();
            ghosts.sort_by_key(|g| g.0);
            let g = ghosts.len().max(2) as f64;
            comm.compute(Work::SortCmp, g * (g.log2() + 1.0));
            ghosts.dedup_by_key(|g| g.0);
        }
    });
    let name = short_name(model);
    let spans = (planned.makespan(), unplanned.makespan());
    record_run(format!("{name}/neighborhood/planned"), planned, report, timeline);
    record_run(format!("{name}/neighborhood/unplanned"), unplanned, report, timeline);
    spans
}

fn main() {
    let cli = Cli::parse(
        "plancache",
        "persistent communication-plan cache: hit rates and steady-state wins",
        &[
            Opt::new("cells", "N", "crystal cells per dimension (default 16)"),
            Opt::new("procs", "P", "simulated process count (default 64)"),
            Opt::new("steps", "N", "time steps (default 30)"),
            Opt::new("tolerance", "T", "solver tolerance (default 1e-2)"),
            Opt::new("seed", "S", "crystal perturbation seed (default 1)"),
            Opt::new("jitter", "J", "initial lattice jitter fraction (default 0.15)"),
            Opt::new("elems", "N", "elements per rank in the microbench (default 500)"),
        ],
        OBS_OPTS,
    );
    let cells: usize = cli.get("cells", 16);
    let procs: usize = cli.get("procs", 64);
    let steps: usize = cli.get("steps", 30);
    let tolerance: f64 = cli.get("tolerance", 1e-2);
    let seed: u64 = cli.get("seed", 1);
    let jitter: f64 = cli.get("jitter", 0.15);
    let elems: usize = cli.get("elems", 500);
    let engine = cli.engine(simcomm::Engine::Threaded);
    let mut timeline = cli.timeline();
    let analyze = cli.analyze(&timeline);

    let mut crystal = IonicCrystal::paper_like(cells, seed);
    crystal.jitter = jitter * crystal.spacing;
    let dt = mdsim::suggested_dt(crystal.spacing, 1.0);
    banner(
        "Plan cache — persistent communication plans vs per-step replanning",
        &format!(
            "MD: {} particles (cells {cells}), {procs} processes, {steps} steps, \
             P2NFFT + Method B resort, tolerance {tolerance:e}; \
             neighbourhood: 26 partners x {elems} ghosts/step",
            crystal.n()
        ),
    );

    let mut selftime = Selftime::start();
    let mut report = RunReport::new("plancache", "mixed");
    report.param("engine", engine.name());
    report.param("cells", cells);
    report.param("procs", procs);
    report.param("steps", steps);
    report.param("tolerance", tolerance);
    report.param("seed", seed);
    report.param("jitter", jitter);
    report.param("elems", elems);

    println!(
        "{:<14} {:<14} {:>14} {:>14} {:>8} {:>20}",
        "machine", "workload", "planned", "unplanned", "win", "plan reuse"
    );
    for model in [MachineModel::juropa_like(), MachineModel::juqueen_like()] {
        let name = short_name(&model);

        // --- MD timestep loop ---
        let run_md = |plan_cache: bool| {
            let cfg = SimConfig {
                solver: SolverKind::P2Nfft,
                resort: true,
                exploit_movement: true,
                steps,
                tolerance,
                dt,
                plan_cache,
                ..SimConfig::default()
            };
            bench::run_md_world_analyzed(
                model.clone(),
                engine,
                procs,
                &crystal,
                InitialDistribution::Grid,
                &cfg,
                analyze,
            )
        };
        let (recs_planned, _, entry_planned, traces_planned) = run_md(true);
        selftime.lap_steps(&format!("run:{name}/md/planned"), steps as u64);
        let (recs_unplanned, _, entry_unplanned, traces_unplanned) = run_md(false);
        selftime.lap_steps(&format!("run:{name}/md/unplanned"), steps as u64);
        timeline.push(format!("{name}/md/planned"), traces_planned);
        timeline.push(format!("{name}/md/unplanned"), traces_unplanned);

        // Plan caching must be invisible to the physics: same trajectory,
        // bit for bit, with and without it.
        for (a, b) in recs_planned.iter().zip(&recs_unplanned) {
            assert_eq!(
                a.energy.to_bits(),
                b.energy.to_bits(),
                "{}: step {} energy differs between planned and unplanned runs",
                model.name,
                a.step
            );
        }

        let planned = entry_planned.makespan;
        let unplanned = entry_unplanned.makespan;
        let builds: u64 = entry_planned.ranks.iter().map(|r| r.plan_builds).sum();
        let execs: u64 = entry_planned.ranks.iter().map(|r| r.plan_execs).sum();
        let reuse = 100.0 * execs as f64 / ((builds + execs) as f64).max(1.0);
        let win = 100.0 * (1.0 - planned / unplanned);
        println!(
            "{name:<14} {:<14} {:>14} {:>14} {:>7.1}% {:>7} builds {:>5.1}%",
            "md-loop",
            fmt_secs(planned),
            fmt_secs(unplanned),
            win,
            builds,
            reuse
        );
        report.push(format!("{name}/md/planned"), entry_planned);
        report.push(format!("{name}/md/unplanned"), entry_unplanned);
        assert!(
            planned <= unplanned * (1.0 + 1e-9),
            "{}: planned MD run ({planned} s) must not be slower than the \
             unplanned baseline ({unplanned} s)",
            model.name
        );
        assert!(
            builds > 0 && execs > 0,
            "{}: planned MD run recorded no plan builds/executions — the \
             cache never engaged",
            model.name
        );

        // --- Neighbourhood ghost exchange ---
        let (n_planned, n_unplanned) = neighborhood_workloads(
            &model,
            engine,
            procs,
            elems,
            steps,
            analyze,
            &mut report,
            &mut timeline,
        );
        selftime.lap_steps(&format!("run:{name}/neighborhood"), steps as u64);
        let n_win = 100.0 * (1.0 - n_planned / n_unplanned);
        println!(
            "{name:<14} {:<14} {:>14} {:>14} {:>7.1}%",
            "neighborhood",
            fmt_secs(n_planned),
            fmt_secs(n_unplanned),
            n_win
        );
        assert!(
            n_planned <= n_unplanned * (1.0 + 1e-9),
            "{}: planned neighbourhood exchange ({n_planned} s) must not be \
             slower than the unplanned baseline ({n_unplanned} s)",
            model.name
        );
        if model.name.starts_with("juqueen") {
            assert!(
                n_win >= 5.0,
                "{}: plan caching won only {n_win:.1} % on the torus \
                 neighbourhood workload (need >= 5 %)",
                model.name
            );
        }
    }

    // --- Steady-state allocation probe ---
    // The zero-per-step-allocation claim of the byte-plane resort path,
    // measured directly: one rank, a frozen `ResortPlan` over an all-local
    // permutation, three heterogeneous planes. After warm-up (plan built,
    // slabs and pooled buffers at their high-water sizes) the probe loop
    // must not touch the allocator at all — `commstats --check
    // --alloc-budget steady-resort=0` holds the line in CI.
    let probe_steps = 64u64;
    let probe = Runner::new(simcomm::Engine::Threaded).run(1, MachineModel::ideal(), move |comm| {
        let n = 2048usize;
        let mut set = PlaneSet::new();
        let vel = set.register::<Vec3>("vel");
        let charge = set.register::<f64>("charge");
        let tag = set.register::<u64>("tag");
        set.resize(n);
        for i in 0..n {
            set.plane_mut::<Vec3>(vel)[i] = Vec3::splat(i as f64);
            set.plane_mut::<f64>(charge)[i] = i as f64 * 0.5;
            set.plane_mut::<u64>(tag)[i] = i as u64;
        }
        // A fixed permutation (1031 is odd, so coprime with 2048): every
        // element moves every step, all of it rank-local.
        let ix: Vec<u64> = (0..n).map(|i| atasp::encode_index(0, (i * 1031) % n)).collect();
        let mode = atasp::ExchangeMode::Neighborhood(Vec::new());
        let mut plan = None;
        for _ in 0..4 {
            atasp::resort_planes(comm, &mut set, &ix, n, &mode, &mut plan);
        }
        let t0 = std::time::Instant::now();
        let (a0, b0) = bench::alloc_counters();
        for _ in 0..probe_steps {
            atasp::resort_planes(comm, &mut set, &ix, n, &mode, &mut plan);
        }
        let (a1, b1) = bench::alloc_counters();
        (a1 - a0, b1 - b0, t0.elapsed().as_secs_f64())
    });
    let (probe_allocs, probe_bytes, probe_wall) = probe.results[0];
    selftime.lap("probe:setup+warmup");
    let mut selftime = selftime.rows();
    selftime.push(SelftimeRow {
        name: "steady-resort".into(),
        wall_seconds: probe_wall,
        allocs: probe_allocs,
        alloc_bytes: probe_bytes,
        steps: probe_steps,
    });
    println!("\nharness selftime (real wall-clock, process-wide heap allocations):");
    for row in &selftime {
        println!(
            "  {:<28} {:>10} wall  {:>12} allocs  {:>14} B{}",
            row.name,
            fmt_secs(row.wall_seconds),
            row.allocs,
            row.alloc_bytes,
            if row.steps > 0 { format!("  ({} steps)", row.steps) } else { String::new() }
        );
    }
    // In release builds the steady-state resort path must be allocation-free
    // (debug builds carry a diagnostic duplicate-position bitmap).
    if !cfg!(debug_assertions) {
        assert_eq!(
            probe_allocs, 0,
            "steady-state resort allocated {probe_allocs} times over {probe_steps} steps"
        );
    }
    report.selftime = selftime;

    timeline.finish();
    let json = report.to_json().pretty();
    std::fs::write("BENCH_plancache.json", &json).expect("write BENCH_plancache.json");
    println!("\nwrote BENCH_plancache.json");
    report_summary(&report.write("plancache"), &report);
}
