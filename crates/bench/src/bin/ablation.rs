//! Ablation studies for the design choices the paper calls out:
//!
//! 1. **Sorting**: partition-based vs merge-based parallel sorting on random
//!    vs almost-sorted keys (the FMM's Sect. III-B switch).
//! 2. **Exchange**: collective all-to-all-v vs neighbourhood point-to-point
//!    for 26-neighbour traffic on the switched vs torus machine models (the
//!    P2NFFT's Sect. III-B switch).
//! 3. **Ghost layer**: redistribution volume as a function of the cutoff
//!    radius (ghost-layer width) in the particle-mesh solver.
//!
//! Prints one table per study; virtual seconds.

use bench::cli::{Cli, Opt, OBS_OPTS};
use bench::{banner, fmt_secs, record_run, report_summary, RunReport, TimelineSink};
use particles::systems::splitmix64;
use simcomm::{CartGrid, Engine, MachineModel, Runner};

fn sort_ablation(
    per_rank: usize,
    engine: Engine,
    analyze: bool,
    report: &mut RunReport,
    timeline: &mut TimelineSink,
) {
    let runner = Runner::new(engine).traced(analyze);
    println!("\n[1] partition-based vs merge-based parallel sort ({per_rank} keys/rank)");
    println!(
        "{:<8} {:<14} {:>14} {:>14} {:>10}",
        "procs", "input", "partition", "merge-exch", "winner"
    );
    for p in [16usize, 64, 256] {
        for sortedness in ["random", "almost-sorted"] {
            let sorted = sortedness == "almost-sorted";
            let out = runner.run(p, MachineModel::juropa_like(), move |comm| {
                let me = comm.rank();
                let keys: Vec<u64> = (0..per_rank)
                    .map(|i| {
                        if sorted {
                            // Contiguous per-rank ranges with a few strays.
                            let base = (me * per_rank) as u64;
                            if i % 97 == 0 {
                                base + i as u64 + per_rank as u64 / 2
                            } else {
                                base + i as u64
                            }
                        } else {
                            splitmix64((me * per_rank + i) as u64)
                        }
                    })
                    .collect();
                let vals = keys.clone();
                let t0 = comm.clock();
                let _ = psort::partition_sort_by_key(comm, keys.clone(), vals.clone());
                let t_part = comm.clock() - t0;
                let t1 = comm.clock();
                let _ = psort::merge_exchange_sort_by_key(comm, keys, vals);
                let t_merge = comm.clock() - t1;
                (t_part, t_merge)
            });
            let part = out.results.iter().map(|r| r.0).fold(0.0, f64::max);
            let merge = out.results.iter().map(|r| r.1).fold(0.0, f64::max);
            record_run(format!("sort/p={p}/{sortedness}"), out, report, timeline);
            println!(
                "{:<8} {:<14} {:>14} {:>14} {:>10}",
                p,
                sortedness,
                fmt_secs(part),
                fmt_secs(merge),
                if part <= merge { "partition" } else { "merge" }
            );
        }
    }
    println!("(the paper's heuristic picks merge-exchange only for almost-sorted data)");
}

fn comm_ablation(
    bytes: usize,
    engine: Engine,
    analyze: bool,
    report: &mut RunReport,
    timeline: &mut TimelineSink,
) {
    let runner = Runner::new(engine).traced(analyze);
    println!("\n[2] collective vs neighbourhood exchange (26 partners, {bytes} B each)");
    println!(
        "{:<10} {:<22} {:>14} {:>14} {:>10}",
        "procs", "machine", "alltoallv", "p2p", "winner"
    );
    for p in [64usize, 1024, 4096] {
        for (name, model) in [
            ("juropa-like/switched", MachineModel::juropa_like()),
            ("juqueen-like/torus", MachineModel::juqueen_like()),
        ] {
            let out = runner.run(p, model, move |comm| {
                let grid = CartGrid::balanced(comm.size());
                let partners = grid.neighbors26(comm.rank());
                let payload = vec![0u8; bytes];
                let t0 = comm.clock();
                let sends: Vec<(usize, Vec<u8>)> =
                    partners.iter().map(|&q| (q, payload.clone())).collect();
                let _ = comm.alltoallv(sends);
                let coll = comm.clock() - t0;
                let t1 = comm.clock();
                let data: Vec<(usize, Vec<u8>)> =
                    partners.iter().map(|&q| (q, payload.clone())).collect();
                let _ = comm.neighbor_exchange(&partners, data, 7);
                let p2p = comm.clock() - t1;
                (coll, p2p)
            });
            let coll = out.results.iter().map(|r| r.0).fold(0.0, f64::max);
            let p2p = out.results.iter().map(|r| r.1).fold(0.0, f64::max);
            record_run(format!("exchange/p={p}/{name}"), out, report, timeline);
            println!(
                "{:<10} {:<22} {:>14} {:>14} {:>10}",
                p,
                name,
                fmt_secs(coll),
                fmt_secs(p2p),
                if coll <= p2p { "coll" } else { "p2p" }
            );
        }
    }
    println!("(the torus flips to p2p at scale — the paper's Fig. 9 right crossover)");
}

fn ghost_ablation(
    engine: Engine,
    analyze: bool,
    report: &mut RunReport,
    timeline: &mut TimelineSink,
) {
    let runner = Runner::new(engine).traced(analyze);
    println!("\n[3] ghost-layer volume vs cutoff radius (particle-mesh solver)");
    println!("{:<10} {:>12} {:>14} {:>14}", "rcut", "ghosts", "sort time", "near pairs");
    let c = particles::IonicCrystal::cubic(12, 1.0, 0.15, 3);
    let bbox = particles::ParticleSource::system_box(&c);
    let p = 8;
    for rcut in [1.0f64, 2.0, 3.0, 4.0] {
        let c = c.clone();
        let out = runner.run(p, MachineModel::juropa_like(), move |comm| {
            let dims = CartGrid::balanced(p).dims();
            let set = particles::local_set(
                &c,
                particles::InitialDistribution::Grid,
                comm.rank(),
                p,
                dims,
            );
            let cfg = pmsolver::PmConfig::tuned(&bbox, 1e-2, rcut);
            let mut solver = pmsolver::PmSolver::new(bbox, cfg, p);
            let o = solver.run(
                comm,
                set.pos(),
                set.charge(),
                set.id(),
                particles::RedistMethod::RestoreOriginal,
                None,
                usize::MAX,
            );
            (solver.last_report.ghosts_received, o.timings.sort, solver.last_report.near_pairs)
        });
        let ghosts: u64 = out.results.iter().map(|r| r.0).sum();
        let sort = out.results.iter().map(|r| r.1).fold(0.0, f64::max);
        let pairs: u64 = out.results.iter().map(|r| r.2).sum();
        record_run(format!("ghost/rcut={rcut}"), out, report, timeline);
        println!("{:<10} {:>12} {:>14} {:>14}", rcut, ghosts, fmt_secs(sort), pairs);
    }
    println!("(a wider ghost layer trades redistribution volume for near-field work)");
}

fn main() {
    let cli = Cli::parse(
        "ablation",
        "design-choice ablations: sorting, exchange mode, ghost-layer width",
        &[
            Opt::new("keys", "N", "sort keys per rank (default 2000)"),
            Opt::new("bytes", "B", "payload bytes per exchange (default 4096)"),
        ],
        OBS_OPTS,
    );
    let keys: usize = cli.get("keys", 2000);
    let bytes: usize = cli.get("bytes", 4096);
    let engine = cli.engine(Engine::Threaded);
    let mut timeline = cli.timeline();
    let analyze = cli.analyze(&timeline);
    banner(
        "Ablations — design choices of the paper's Sect. III",
        "sorting algorithm switch, exchange-mode switch, ghost-layer width",
    );
    let mut report = RunReport::new("ablation", "mixed");
    report.param("engine", engine.name());
    report.param("keys", keys);
    report.param("bytes", bytes);
    sort_ablation(keys, engine, analyze, &mut report, &mut timeline);
    comm_ablation(bytes, engine, analyze, &mut report, &mut timeline);
    ghost_ablation(engine, analyze, &mut report, &mut timeline);
    timeline.finish();
    report_summary(&report.write("ablation"), &report);
}
