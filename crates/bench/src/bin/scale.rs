//! Scale sweep: the paper's Fig. 9 exchange crossover at paper-scale process
//! counts, driven by the discrete-event engine.
//!
//! For each machine model and each process count the same fig9-style stencil
//! workload runs twice: every rank ships a fixed boundary payload to its 26
//! grid neighbours each step, once through the collective `alltoallv` and
//! once through the nonblocking point-to-point `neighbor_exchange`. The
//! interesting observable is the crossover (paper Sect. IV-D): on the
//! switched (JuRoPA-like) fabric the collective stays competitive at every
//! scale, while on the 5D-torus (Juqueen-like) model the point-to-point
//! neighbourhood exchange pulls ahead as the process count grows — the same
//! effect that makes Method B + movement the winning series in Fig. 9's
//! right panel.
//!
//! The default process list reaches 4096 ranks. That is far beyond what the
//! thread-per-rank runner can host (one OS thread per rank), which is why
//! this harness defaults to `--engine discrete`: the discrete-event engine
//! multiplexes every rank onto a virtual-clock event queue and runs the
//! 4096-rank sweep in seconds. The two engines are bit-for-bit equivalent —
//! at every process count not above `--eq-procs` (default 64) this harness
//! re-runs the identical workload under the threaded engine and asserts that
//! the per-rank clocks (compared via `f64::to_bits`) and the per-rank
//! traffic statistics are identical, so CI exercises the equivalence
//! contract on every committed configuration.
//!
//! Writes `BENCH_scale.json` (the run-report schema) at the repository root
//! next to a `results/scale_report.json` copy and a `results/scale.csv`
//! table, and fails loudly if the torus crossover is absent at the largest
//! process count or if any engine-equivalence check trips.

use bench::cli::{Cli, Opt, OBS_OPTS};
use bench::{banner, fmt_secs, report_summary, write_csv, RunEntry, RunReport};
use simcomm::{CartGrid, Comm, Engine, MachineModel, RunOutput, Runner, Work};

/// Short machine label ("juropa-like") for run labels and table rows.
fn short_name(model: &MachineModel) -> &str {
    model.name.split_whitespace().next().unwrap_or(&model.name)
}

const TAG_GHOSTS: u64 = 0x7363_616c;

/// Per-rank report rows kept per run entry. A 4096-rank world would emit a
/// multi-megabyte `ranks[]` table per run; the first rows are enough for
/// spot checks (phase aggregates cover all ranks regardless).
const RANK_ROW_CAP: usize = 256;

/// Which exchange primitive a sweep series uses.
#[derive(Clone, Copy, PartialEq)]
enum Series {
    Alltoallv,
    Neighbor,
}

/// One fig9-style stencil run: `steps` rounds of a 26-neighbour boundary
/// exchange of `bytes`-sized payloads, through the chosen primitive.
#[allow(clippy::too_many_arguments)]
fn stencil(
    engine: Engine,
    series: Series,
    procs: usize,
    bytes: usize,
    steps: usize,
    model: &MachineModel,
    traced: bool,
) -> RunOutput<u64> {
    Runner::new(engine).traced(traced).run(procs, model.clone(), move |comm: &mut Comm| {
        let partners = CartGrid::balanced(procs).neighbors26(comm.rank());
        let mut received = 0u64;
        for _ in 0..steps {
            let data: Vec<(usize, Vec<u8>)> =
                partners.iter().map(|&q| (q, vec![comm.rank() as u8; bytes])).collect();
            comm.compute(Work::ByteCopy, (partners.len() * bytes) as f64);
            let got: u64 = match series {
                Series::Alltoallv => comm.alltoallv(data).iter().map(|(_, v)| v.len() as u64).sum(),
                Series::Neighbor => comm
                    .neighbor_exchange(&partners, data, TAG_GHOSTS)
                    .iter()
                    .map(|(_, v)| v.len() as u64)
                    .sum(),
            };
            received += got;
        }
        received
    })
}

/// Assert the two engines produced bit-for-bit identical worlds: same rank
/// results, same final clocks (compared as raw bits), same traffic counters.
fn assert_engines_agree(threaded: &RunOutput<u64>, discrete: &RunOutput<u64>, what: &str) {
    assert_eq!(threaded.results, discrete.results, "{what}: rank results diverged");
    for (rank, (t, d)) in threaded.clocks.iter().zip(&discrete.clocks).enumerate() {
        assert_eq!(
            t.to_bits(),
            d.to_bits(),
            "{what}: rank {rank} clock diverged (threaded {t:.12e}, discrete {d:.12e})"
        );
    }
    assert_eq!(threaded.stats, discrete.stats, "{what}: rank statistics diverged");
}

fn main() {
    let cli = Cli::parse(
        "scale",
        "exchange-mode crossover sweep at paper-scale rank counts",
        &[
            Opt::new("procs", "P1,P2,...", "process counts to sweep (default 64,256,1024,4096)"),
            Opt::new("bytes", "B", "payload bytes per message (default 4096)"),
            Opt::new("steps", "N", "exchange steps per run (default 4)"),
            Opt::new("eq-procs", "P", "largest count cross-checked against the threaded engine"),
        ],
        OBS_OPTS,
    );
    let procs_list = cli.list("procs", &[64, 256, 1024, 4096]);
    let bytes: usize = cli.get("bytes", 4096);
    let steps: usize = cli.get("steps", 4);
    // Largest process count at which the threaded engine is also run and the
    // two engines' outputs are compared bit for bit.
    let eq_procs: usize = cli.get("eq-procs", 64);
    let engine = cli.engine(Engine::DiscreteEvent);
    let mut timeline = cli.timeline();
    let analyze = cli.analyze(&timeline);

    banner(
        "Scale sweep — alltoallv vs neighbourhood p2p crossover at paper scale",
        &format!(
            "procs {procs_list:?}, 26-partner stencil of {bytes} B payloads, \
             {steps} steps, engine {}; threaded-equivalence checked up to \
             {eq_procs} ranks",
            engine.name()
        ),
    );

    let mut report = RunReport::new("scale", "mixed");
    report.param("engine", engine.name());
    report.param("bytes", bytes);
    report.param("steps", steps);
    report.param("eq_procs", eq_procs);

    println!(
        "{:<14} {:<8} {:>14} {:>14} {:>10} {:>9}",
        "machine", "procs", "alltoallv", "p2p", "winner", "eq-check"
    );
    let mut rows = Vec::new();
    let mut torus_crossover = false;
    for (mi, model) in
        [MachineModel::juropa_like(), MachineModel::juqueen_like()].into_iter().enumerate()
    {
        let name = short_name(&model);
        for &p in &procs_list {
            let mut makespans = [0.0f64; 2];
            let checked = p <= eq_procs;
            for (si, series) in [Series::Alltoallv, Series::Neighbor].into_iter().enumerate() {
                let out = stencil(engine, series, p, bytes, steps, &model, analyze);
                if checked {
                    let other = match engine {
                        Engine::Threaded => Engine::DiscreteEvent,
                        Engine::DiscreteEvent => Engine::Threaded,
                    };
                    let reference = stencil(other, series, p, bytes, steps, &model, analyze);
                    assert_engines_agree(&reference, &out, name);
                }
                let label = if series == Series::Alltoallv { "alltoallv" } else { "p2p" };
                let mut entry = RunEntry::from_run(&out);
                if !out.traces.is_empty() {
                    bench::attach_analysis(&mut entry, &out.traces);
                }
                // Keep the emitted report a sane size at paper-scale rank
                // counts: the phase aggregates (means/criticals over ALL
                // ranks) are computed before this cap, and `mean_clock` is
                // stored, so the accounting invariants survive truncation.
                if entry.ranks.len() > RANK_ROW_CAP {
                    entry.ranks.truncate(RANK_ROW_CAP);
                }
                makespans[si] = out.makespan();
                timeline.push(format!("{name}/p={p}/{label}"), out.traces);
                report.push(format!("{name}/p={p}/{label}"), entry);
            }
            let [coll, p2p] = makespans;
            if mi == 1 && p2p < coll {
                torus_crossover = true;
            }
            println!(
                "{name:<14} {p:<8} {:>14} {:>14} {:>10} {:>9}",
                fmt_secs(coll),
                fmt_secs(p2p),
                if coll <= p2p { "coll" } else { "p2p" },
                if checked { "ok" } else { "-" }
            );
            rows.push(vec![mi as f64, p as f64, coll, p2p]);
        }
    }

    // The paper's Fig. 9 right-panel effect: on the torus the neighbourhood
    // point-to-point exchange must win somewhere in the sweep.
    assert!(
        torus_crossover,
        "no crossover on the torus model: neighbourhood p2p never beat \
         alltoallv over procs {procs_list:?}"
    );

    timeline.finish();
    let json = report.to_json().pretty();
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    let csv = write_csv("scale", "machine,procs,alltoallv,p2p", &rows);
    println!("\nwrote BENCH_scale.json and {}", csv.display());
    println!("(machine: 0 = juropa-like/switched, 1 = juqueen-like/torus)");
    report_summary(&report.write("scale"), &report);
}
