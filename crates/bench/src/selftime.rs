//! Harness self-timing: real wall-clock and heap-allocation accounting for
//! the benchmark process itself.
//!
//! Everything else this crate reports is **virtual** time of the simulated
//! machine. The numbers here are the opposite: how long the harness *really*
//! took to execute each of its phases, and how many heap allocations the
//! process performed while doing so. They are what the `perf-smoke` CI job
//! thresholds — a regression in per-step allocation count on the
//! steady-state redistribution path shows up here long before it shows up
//! as wall-clock noise.
//!
//! The allocation counters come from [`CountingAlloc`], a forwarding
//! [`GlobalAlloc`] installed as the global allocator of every binary in this
//! crate (see `lib.rs`). Counters are process-global atomics: on a
//! multi-threaded phase (the threaded engine runs one OS thread per rank)
//! they attribute *all* threads' allocations to the current lap, which is
//! exactly what a zero-allocation claim needs — nothing escapes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::report::SelftimeRow;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Forwarding allocator that counts every allocation and allocated byte
/// (deallocations are not tracked — the interesting signal for a
/// zero-per-step-allocation claim is *new* heap traffic, not peak usage).
pub struct CountingAlloc;

// SAFETY: pure forwarding to `System`; the counter updates have no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is fresh heap traffic; count it like an allocation of the
        // new size. Shrinks stay free.
        if new_size > layout.size() {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Process-wide allocation counters since program start:
/// `(allocations, allocated bytes)`.
pub fn alloc_counters() -> (u64, u64) {
    (ALLOC_COUNT.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

/// Lap timer recording [`SelftimeRow`]s: real elapsed wall-clock and
/// allocation deltas between consecutive [`Selftime::lap`] calls.
///
/// ```
/// let mut st = bench::Selftime::start();
/// let v: Vec<u64> = (0..1000).collect();
/// st.lap("build");
/// drop(v);
/// st.lap("teardown");
/// let rows = st.rows();
/// assert_eq!(rows.len(), 2);
/// assert!(rows[0].allocs >= 1);
/// ```
pub struct Selftime {
    rows: Vec<SelftimeRow>,
    mark_time: Instant,
    mark_allocs: u64,
    mark_bytes: u64,
}

impl Selftime {
    /// Start timing; the first `lap` measures from here.
    pub fn start() -> Selftime {
        let (allocs, bytes) = alloc_counters();
        Selftime {
            rows: Vec::new(),
            mark_time: Instant::now(),
            mark_allocs: allocs,
            mark_bytes: bytes,
        }
    }

    /// Close the current lap under `name` and start the next one.
    pub fn lap(&mut self, name: &str) {
        self.lap_steps(name, 0);
    }

    /// Like [`Selftime::lap`] for a phase covering `steps` repetitions of a
    /// steady-state operation: `commstats --check --alloc-budget name=N`
    /// divides the lap's allocation count by `steps` before comparing.
    pub fn lap_steps(&mut self, name: &str, steps: u64) {
        let (allocs, bytes) = alloc_counters();
        self.rows.push(SelftimeRow {
            name: name.to_string(),
            wall_seconds: self.mark_time.elapsed().as_secs_f64(),
            allocs: allocs - self.mark_allocs,
            alloc_bytes: bytes - self.mark_bytes,
            steps,
        });
        self.mark_time = Instant::now();
        self.mark_allocs = allocs;
        self.mark_bytes = bytes;
    }

    /// The recorded rows, ready for [`crate::RunReport::selftime`].
    pub fn rows(self) -> Vec<SelftimeRow> {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_increase_on_allocation() {
        let (a0, b0) = alloc_counters();
        let v = vec![0u8; 4096];
        let (a1, b1) = alloc_counters();
        assert!(a1 > a0, "allocation not counted");
        assert!(b1 - b0 >= 4096, "allocated bytes not counted");
        drop(v);
    }

    #[test]
    fn laps_record_deltas() {
        let mut st = Selftime::start();
        let v: Vec<u64> = (0..100).collect();
        st.lap("alloc");
        st.lap_steps("idle", 10);
        drop(v);
        let rows = st.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "alloc");
        assert!(rows[0].allocs >= 1);
        assert!(rows[0].wall_seconds >= 0.0);
        assert_eq!(rows[1].steps, 10);
    }
}
