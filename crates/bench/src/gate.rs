//! Bench regression gate: diff a fresh sweep against committed baselines.
//!
//! The gate compares a freshly generated [`RunReport`] against the committed
//! baseline of the same file, run entry by run entry (matched by label). For
//! every matched pair it checks the **makespan** and — when both sides carry
//! a critical-path decomposition — the critical path's **comm** and **wait**
//! components, failing when the current value exceeds the baseline by more
//! than the configured relative tolerance (plus a small absolute floor
//! proportional to the baseline makespan, so near-zero components don't trip
//! on rounding noise).
//!
//! All compared quantities are *virtual* seconds of the simulated machine
//! model, so identical code produces bitwise-identical values on any host and
//! the tolerance only has to absorb intentional workload drift, not host
//! jitter. `commstats --baseline <dir>` drives this from the command line and
//! CI runs it on every push (see `.github/workflows/ci.yml`, job `gate`).

use crate::json::Json;
use crate::report::RunReport;

/// Default relative regression tolerance (5 %).
pub const DEFAULT_TOLERANCE: f64 = 0.05;

/// One compared metric of one run entry.
#[derive(Clone, Debug, PartialEq)]
pub struct GateRow {
    /// Run label the row belongs to.
    pub label: String,
    /// Metric name (`"makespan"`, `"critpath_comm"`, `"critpath_wait"`).
    pub metric: String,
    /// Baseline value in virtual seconds.
    pub baseline: f64,
    /// Current value in virtual seconds.
    pub current: f64,
    /// Did the current value exceed the allowed envelope?
    pub regressed: bool,
}

/// Outcome of diffing one current report against its baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateDiff {
    /// Per-metric comparison rows, in report order.
    pub rows: Vec<GateRow>,
    /// Labels present in the baseline but missing from the current report
    /// (reported, but not counted as regressions: the sweep's parameters
    /// changed rather than its performance).
    pub missing: Vec<String>,
    /// Labels present in the current report but not in the baseline.
    pub added: Vec<String>,
}

impl GateDiff {
    /// Rows that exceeded their envelope.
    pub fn regressions(&self) -> impl Iterator<Item = &GateRow> {
        self.rows.iter().filter(|r| r.regressed)
    }

    /// Did any metric regress?
    pub fn failed(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }
}

/// Would `current` count as a regression of `baseline` under `tolerance`?
///
/// The envelope is `baseline * (1 + tolerance)` plus an absolute floor of
/// `tolerance * scale` (with `scale` the baseline run's makespan): components
/// that are a tiny fraction of the run can't fail on relative noise alone.
fn exceeds(current: f64, baseline: f64, tolerance: f64, scale: f64) -> bool {
    current > baseline * (1.0 + tolerance) + tolerance * scale.abs().max(1e-300) * 0.01
}

/// Diff `current` against `baseline`, entry by entry (matched by label).
pub fn diff_reports(baseline: &RunReport, current: &RunReport, tolerance: f64) -> GateDiff {
    let mut diff = GateDiff::default();
    for cur in &current.runs {
        let Some(base) = baseline.runs.iter().find(|b| b.label == cur.label) else {
            diff.added.push(cur.label.clone());
            continue;
        };
        let mut push = |metric: &str, b: f64, c: f64| {
            diff.rows.push(GateRow {
                label: cur.label.clone(),
                metric: metric.to_string(),
                baseline: b,
                current: c,
                regressed: exceeds(c, b, tolerance, base.makespan),
            });
        };
        push("makespan", base.makespan, cur.makespan);
        if let (Some(bcp), Some(ccp)) = (&base.critpath, &cur.critpath) {
            push("critpath_comm", bcp.comm_seconds, ccp.comm_seconds);
            push("critpath_wait", bcp.wait_seconds, ccp.wait_seconds);
        }
    }
    for base in &baseline.runs {
        if !current.runs.iter().any(|c| c.label == base.label) {
            diff.missing.push(base.label.clone());
        }
    }
    diff
}

/// Serialize a set of per-file gate diffs as the machine-readable artifact
/// CI uploads (`results/gate_diff.json`).
pub fn diffs_to_json(tolerance: f64, diffs: &[(String, GateDiff)]) -> Json {
    Json::obj(vec![
        ("tolerance", Json::Num(tolerance)),
        ("failed", Json::Bool(diffs.iter().any(|(_, d)| d.failed()))),
        (
            "reports",
            Json::Arr(
                diffs
                    .iter()
                    .map(|(path, d)| {
                        Json::obj(vec![
                            ("report", Json::Str(path.clone())),
                            ("failed", Json::Bool(d.failed())),
                            (
                                "rows",
                                Json::Arr(
                                    d.rows
                                        .iter()
                                        .map(|r| {
                                            Json::obj(vec![
                                                ("label", Json::Str(r.label.clone())),
                                                ("metric", Json::Str(r.metric.clone())),
                                                ("baseline", Json::Num(r.baseline)),
                                                ("current", Json::Num(r.current)),
                                                ("regressed", Json::Bool(r.regressed)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            (
                                "missing",
                                Json::Arr(d.missing.iter().cloned().map(Json::Str).collect()),
                            ),
                            ("added", Json::Arr(d.added.iter().cloned().map(Json::Str).collect())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CritPath, RunEntry};

    fn report_with(labels_makespans: &[(&str, f64)]) -> RunReport {
        let mut r = RunReport::new("gate-test", "ideal");
        for &(label, makespan) in labels_makespans {
            let entry = RunEntry {
                nranks: 4,
                makespan,
                mean_clock: makespan,
                critpath: Some(CritPath {
                    comm_seconds: 0.25 * makespan,
                    wait_seconds: 0.25 * makespan,
                    compute_seconds: 0.5 * makespan,
                    segments: 3,
                    blame: Vec::new(),
                }),
                ..Default::default()
            };
            r.push(label, entry);
        }
        r
    }

    #[test]
    fn identical_reports_pass() {
        let base = report_with(&[("a", 1.0), ("b", 2.0)]);
        let diff = diff_reports(&base, &base.clone(), DEFAULT_TOLERANCE);
        assert!(!diff.failed());
        assert_eq!(diff.rows.len(), 6, "makespan + 2 critpath metrics per run");
        assert!(diff.missing.is_empty() && diff.added.is_empty());
    }

    #[test]
    fn slowed_report_fails_only_the_slow_metric() {
        let base = report_with(&[("a", 1.0), ("b", 2.0)]);
        let mut cur = base.clone();
        cur.runs[1].makespan *= 1.2; // 20 % past a 5 % tolerance
        let diff = diff_reports(&base, &cur, DEFAULT_TOLERANCE);
        assert!(diff.failed());
        let bad: Vec<_> = diff.regressions().collect();
        assert_eq!(bad.len(), 1);
        assert_eq!((bad[0].label.as_str(), bad[0].metric.as_str()), ("b", "makespan"));
    }

    #[test]
    fn critpath_wait_regression_is_caught() {
        let base = report_with(&[("a", 1.0)]);
        let mut cur = base.clone();
        let cp = cur.runs[0].critpath.as_mut().unwrap();
        cp.wait_seconds += 0.5; // well past tolerance, makespan unchanged
        let diff = diff_reports(&base, &cur, DEFAULT_TOLERANCE);
        let bad: Vec<_> = diff.regressions().collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "critpath_wait");
    }

    #[test]
    fn improvements_and_small_noise_pass() {
        let base = report_with(&[("a", 1.0)]);
        let mut cur = base.clone();
        cur.runs[0].makespan *= 0.8; // faster is never a regression
        assert!(!diff_reports(&base, &cur, DEFAULT_TOLERANCE).failed());
        let mut near = base.clone();
        near.runs[0].makespan *= 1.04; // inside a 5 % tolerance
        assert!(!diff_reports(&base, &near, DEFAULT_TOLERANCE).failed());
    }

    #[test]
    fn label_set_changes_are_reported_not_failed() {
        let base = report_with(&[("a", 1.0), ("gone", 1.0)]);
        let cur = report_with(&[("a", 1.0), ("new", 1.0)]);
        let diff = diff_reports(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!diff.failed());
        assert_eq!(diff.missing, vec!["gone".to_string()]);
        assert_eq!(diff.added, vec!["new".to_string()]);
    }

    #[test]
    fn near_zero_components_do_not_trip_on_noise() {
        let mut base = report_with(&[("a", 1.0)]);
        base.runs[0].critpath.as_mut().unwrap().wait_seconds = 0.0;
        let mut cur = base.clone();
        // A wait component appearing at 1e-5 of the makespan is noise, not a
        // regression, even though the relative change is infinite.
        cur.runs[0].critpath.as_mut().unwrap().wait_seconds = 1e-5;
        assert!(!diff_reports(&base, &cur, DEFAULT_TOLERANCE).failed());
        cur.runs[0].critpath.as_mut().unwrap().wait_seconds = 0.1;
        assert!(diff_reports(&base, &cur, DEFAULT_TOLERANCE).failed());
    }

    #[test]
    fn diff_json_is_parseable_and_flags_failure() {
        let base = report_with(&[("a", 1.0)]);
        let mut cur = base.clone();
        cur.runs[0].makespan *= 2.0;
        let diff = diff_reports(&base, &cur, DEFAULT_TOLERANCE);
        let text = diffs_to_json(DEFAULT_TOLERANCE, &[("x_report.json".into(), diff)]).pretty();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("failed").and_then(Json::as_bool), Some(true));
    }
}
