//! End-to-end observability contract: the Perfetto export is valid JSON with
//! one span per trace record, the critical-path analysis partitions the
//! makespan *exactly* (bit for bit) and survives the report JSON round-trip,
//! and the `commstats` binary enforces both the schema and the regression
//! gate from the command line.

use std::process::Command;

use bench::json::Json;
use bench::{RunReport, TimelineSink};
use simcomm::{Engine, MachineModel, Runner, Work};

/// A small traced workload exercising sends, nonblocking batches, and
/// collectives — enough shape for a non-trivial critical path.
fn traced_run(engine: Engine) -> simcomm::RunOutput<u64> {
    Runner::new(engine).traced(true).run(8, MachineModel::juropa_like(), |comm| {
        let n = comm.size();
        let rank = comm.rank();
        let mut acc = 0u64;
        for step in 0..3u64 {
            comm.compute(Work::ParticleOp, 50.0 + (rank as u64 * 13 % 40) as f64);
            let right = (rank + 1) % n;
            let left = (rank + n - 1) % n;
            let got = comm.sendrecv(right, vec![step; 16], left, 1);
            acc = acc.wrapping_add(got[0]);
            let r = comm.irecv::<u64>(left, 2);
            let s = comm.isend(right, 2, vec![acc; 8]);
            comm.waitall(vec![r, s]);
            acc = comm.allreduce(acc, |a, b| a.wrapping_add(b));
        }
        comm.barrier();
        acc
    })
}

/// Count events with the given `"ph"` in a parsed Chrome trace.
fn count_ph(trace: &Json, ph: &str) -> usize {
    trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
        .count()
}

#[test]
fn perfetto_export_is_valid_json_with_one_span_per_record() {
    let out = traced_run(Engine::Threaded);
    let records: usize = out.traces.iter().map(|t| t.events.len()).sum();
    assert!(records > 0, "workload produced no trace records");

    let mut buf = Vec::new();
    simtrace::write_perfetto(&mut buf, &[("obs test", &out.traces)]).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let parsed = Json::parse(&text).expect("perfetto output must be valid JSON");

    assert_eq!(
        count_ph(&parsed, "X"),
        records,
        "exported span count must equal the trace record count"
    );
    // Flow arrows come in matched start/finish pairs.
    assert_eq!(count_ph(&parsed, "s"), count_ph(&parsed, "f"));
    assert!(count_ph(&parsed, "s") > 0, "matched messages must produce flow arrows");
}

#[test]
fn critical_path_partitions_makespan_exactly_across_engines_and_json() {
    let mut entries = Vec::new();
    for engine in [Engine::Threaded, Engine::DiscreteEvent] {
        let out = traced_run(engine);
        let makespan = out.makespan();
        let mut entry = bench::RunEntry::from_run(&out);
        let analysis = bench::attach_analysis(&mut entry, &out.traces);

        // The three buckets partition the makespan exactly: compute is the
        // exact remainder, and comm/wait stay within range.
        let cp = entry.critpath.as_ref().expect("analysis must attach a critical path");
        assert_eq!(
            cp.compute_seconds.to_bits(),
            (makespan - (cp.comm_seconds + cp.wait_seconds)).to_bits(),
            "critical-path compute must be the exact remainder"
        );
        assert!(cp.partition_error(makespan) <= 1e-9 * makespan.max(1e-9));
        assert!(!analysis.segments.is_empty(), "critical path must have segments");
        entries.push((engine, entry, makespan));
    }

    // Both engines produce bit-identical analyses on bit-identical traces.
    let (_, a, ma) = &entries[0];
    let (_, b, mb) = &entries[1];
    assert_eq!(ma.to_bits(), mb.to_bits(), "makespans diverge across engines");
    let (ca, cb) = (a.critpath.as_ref().unwrap(), b.critpath.as_ref().unwrap());
    assert_eq!(ca.comm_seconds.to_bits(), cb.comm_seconds.to_bits());
    assert_eq!(ca.wait_seconds.to_bits(), cb.wait_seconds.to_bits());
    assert_eq!(ca.compute_seconds.to_bits(), cb.compute_seconds.to_bits());
    assert_eq!(ca.segments, cb.segments);

    // The identity survives the report JSON round-trip bit for bit.
    let mut report = RunReport::new("obs", "test");
    let (_, entry, makespan) = entries.pop().unwrap();
    report.push("run", entry);
    let back = RunReport::from_json(&Json::parse(&report.to_json().pretty()).unwrap()).unwrap();
    let cp = back.runs[0].critpath.as_ref().expect("critpath survives round-trip");
    assert_eq!(
        cp.compute_seconds.to_bits(),
        (makespan - (cp.comm_seconds + cp.wait_seconds)).to_bits(),
        "partition identity must survive JSON round-trip exactly"
    );
}

/// Build a small analyzed report on disk and return its path.
fn write_report(dir: &std::path::Path, name: &str, slow_factor: f64) -> std::path::PathBuf {
    let out = traced_run(Engine::Threaded);
    let mut entry = bench::RunEntry::from_run(&out);
    bench::attach_analysis(&mut entry, &out.traces);
    if slow_factor != 1.0 {
        entry.makespan *= slow_factor;
        if let Some(cp) = entry.critpath.as_mut() {
            // Keep the partition identity intact while slowing the run down:
            // scale the components and recompute the exact remainder.
            cp.comm_seconds *= slow_factor;
            cp.wait_seconds *= slow_factor;
            cp.compute_seconds = entry.makespan - (cp.comm_seconds + cp.wait_seconds);
        }
    }
    let mut report = RunReport::new("obs", "test");
    report.push("ring/exchange", entry);
    let path = dir.join(name);
    std::fs::write(&path, report.to_json().pretty()).unwrap();
    path
}

#[test]
fn commstats_checks_and_gates_reports_end_to_end() {
    let commstats = env!("CARGO_BIN_EXE_commstats");
    let tmp = std::env::temp_dir().join(format!("obs_gate_{}", std::process::id()));
    let baseline = tmp.join("baseline");
    std::fs::create_dir_all(&baseline).unwrap();

    let current = write_report(&tmp, "obs_report.json", 1.0);
    write_report(&baseline, "obs_report.json", 1.0);

    // --check accepts the analyzed report (schema + exact partition).
    let ok = Command::new(commstats).args(["--check", "--report"]).arg(&current).output().unwrap();
    assert!(
        ok.status.success(),
        "--check failed on a fresh report:\n{}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // Gate passes against an identical baseline.
    let pass = Command::new(commstats)
        .args(["--report"])
        .arg(&current)
        .arg("--baseline")
        .arg(&baseline)
        .arg("--gate-out")
        .arg(tmp.join("gate_pass.json"))
        .output()
        .unwrap();
    assert!(
        pass.status.success(),
        "gate failed on identical baseline:\n{}{}",
        String::from_utf8_lossy(&pass.stdout),
        String::from_utf8_lossy(&pass.stderr)
    );

    // Gate fails against a synthetically *faster* baseline (i.e. the current
    // run regressed by 1.5x), and the diff report records the regression.
    write_report(&baseline, "obs_slow.json", 1.0);
    let slowed = write_report(&tmp, "obs_slow.json", 1.5);
    let fail = Command::new(commstats)
        .args(["--report"])
        .arg(&slowed)
        .arg("--baseline")
        .arg(&baseline)
        .arg("--gate-out")
        .arg(tmp.join("gate_fail.json"))
        .output()
        .unwrap();
    assert!(!fail.status.success(), "gate must fail on a 1.5x slowdown");
    let diff = Json::parse(&std::fs::read_to_string(tmp.join("gate_fail.json")).unwrap()).unwrap();
    assert_eq!(diff.get("failed").and_then(Json::as_bool), Some(true));

    // Unknown flags exit nonzero with usage; --help exits zero.
    let bad = Command::new(commstats).args(["--no-such-flag"]).output().unwrap();
    assert!(!bad.status.success(), "unknown flag must be rejected");
    let help = Command::new(commstats).args(["--help"]).output().unwrap();
    assert!(help.status.success());
    assert!(String::from_utf8_lossy(&help.stdout).contains("USAGE"));

    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn unknown_schema_version_is_rejected_by_commstats() {
    let commstats = env!("CARGO_BIN_EXE_commstats");
    let tmp = std::env::temp_dir().join(format!("obs_schema_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let path = write_report(&tmp, "future.json", 1.0);
    let text = std::fs::read_to_string(&path).unwrap();
    let bumped = text.replacen("\"schema\": 2", "\"schema\": 99", 1).replacen(
        "\"schema_version\": 2",
        "\"schema_version\": 99",
        1,
    );
    assert_ne!(text, bumped, "expected schema fields in the report");
    std::fs::write(&path, bumped).unwrap();
    let out = Command::new(commstats).args(["--check", "--report"]).arg(&path).output().unwrap();
    assert!(!out.status.success(), "future schema_version must be rejected");
    let all =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    assert!(all.contains("schema_version 99"), "diagnostic must name the version:\n{all}");
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn timeline_sink_writes_openable_perfetto_file() {
    let tmp = std::env::temp_dir().join(format!("obs_timeline_{}.json", std::process::id()));
    let args = bench::Args::try_parse_from(
        vec!["--perfetto".into(), tmp.display().to_string()],
        &["perfetto"],
    )
    .unwrap();
    let mut sink = TimelineSink::from_args(&args);
    assert!(sink.active());
    let out = traced_run(Engine::Threaded);
    let records: usize = out.traces.iter().map(|t| t.events.len()).sum();
    sink.push("run-a".to_string(), out.traces);
    sink.finish();
    let parsed = Json::parse(&std::fs::read_to_string(&tmp).unwrap())
        .expect("TimelineSink must write valid JSON");
    assert_eq!(count_ph(&parsed, "X"), records);
    std::fs::remove_file(&tmp).ok();
}
