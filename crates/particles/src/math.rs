//! Small special-function implementations needed by the Ewald-family solvers
//! (the Rust standard library provides no `erf`/`erfc`).

/// Complementary error function, accurate to ~1.2e-7 relative error
/// everywhere (Numerical-Recipes-style Chebyshev fit). That is far below the
/// paper's 1e-3 accuracy target for the total energy.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function: `erf(x) = 1 - erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// `2/sqrt(pi)`, the derivative prefactor `d/dx erf(x) = M_2_SQRTPI * exp(-x^2)`.
pub const M_2_SQRTPI: f64 = std::f64::consts::FRAC_2_SQRT_PI;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        // Reference values (Wolfram): erfc(0)=1, erfc(0.5)=0.4795001222,
        // erfc(1)=0.1572992071, erfc(2)=0.0046777349, erfc(3)=2.20905e-5.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.479_500_122_186_953_5),
            (1.0, 0.157_299_207_050_285_13),
            (2.0, 0.004_677_734_981_063_127),
            (3.0, 2.209_049_699_858_544e-5),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!((got - want).abs() <= 2e-7 * want.max(1e-3), "erfc({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_limits_and_monotonicity() {
        // The Chebyshev fit is accurate to ~1.2e-7, not exact at 0.
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(5.0) - 1.0).abs() < 1e-10);
        assert!((erf(-5.0) + 1.0).abs() < 1e-10);
        let mut prev = -1.0;
        let mut x = -4.0;
        while x <= 4.0 {
            let v = erf(x);
            assert!(v >= prev - 1e-9, "erf must be nondecreasing at {x}");
            prev = v;
            x += 0.01;
        }
    }
}
