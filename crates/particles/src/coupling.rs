//! Types shared between the long-range solvers and the coupling library
//! interface: redistribution method selection, movement hints, per-execution
//! timing breakdowns and solver results.

use crate::vec3::Vec3;

/// Which particle data redistribution method a solver execution uses
/// (the two methods of the paper, Sect. III).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedistMethod {
    /// Method A: hide all reordering/redistribution inside the library and
    /// restore the original particle order and distribution (Sect. III-A).
    RestoreOriginal,
    /// Method B: return the changed (solver-specific) particle order and
    /// distribution together with resort indices (Sect. III-B).
    UseChanged,
}

/// Hint about the maximum distance any particle moved since the previous
/// solver execution. `None` means unknown/unbounded; solvers then use their
/// general (collective / partition-based) redistribution paths.
pub type MovementHint = Option<f64>;

/// A short-range repulsive soft core `u(r) = epsilon * (sigma / r)^12`,
/// evaluated inside the solvers' near fields alongside the Coulomb kernel.
///
/// Pure Coulomb systems of opposite charges are unstable (ions collapse into
/// each other); physical ionic systems — like the paper's melting silica —
/// carry a short-range repulsion ("additional short range interactions" in
/// the paper's wording). The range of the core must stay below the solvers'
/// near-field reach (one cell / the cutoff radius), which holds for any
/// `sigma` below the mean inter-particle spacing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoftCore {
    /// Energy scale of the repulsion.
    pub epsilon: f64,
    /// Length scale: `u(sigma) = epsilon`.
    pub sigma: f64,
}

impl SoftCore {
    /// A core sized for an ionic system with mean inter-particle spacing `a`
    /// and unit charges: strong repulsion well inside the spacing, negligible
    /// at and beyond it.
    pub fn for_spacing(a: f64) -> Self {
        SoftCore { epsilon: 1.0, sigma: 0.7 * a }
    }

    /// Pair energy at distance `r`.
    #[inline]
    pub fn energy(&self, r: f64) -> f64 {
        let s = self.sigma / r;
        let s2 = s * s;
        let s6 = s2 * s2 * s2;
        self.epsilon * s6 * s6
    }

    /// Magnitude of the (always repulsive) pair force at distance `r`.
    #[inline]
    pub fn force(&self, r: f64) -> f64 {
        12.0 * self.energy(r) / r
    }
}

/// Virtual-time breakdown of one solver execution, mirroring the quantities
/// the paper's figures report (sort / restore / resort / total).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SolverTimings {
    /// Redistributing/sorting particles into the solver's decomposition.
    pub sort: f64,
    /// The actual near/far field computation.
    pub compute: f64,
    /// Restoring the original order and distribution (Method A only).
    pub restore: f64,
    /// Creating the resort indices (Method B only).
    pub resort_create: f64,
    /// Total time of the solver execution.
    pub total: f64,
}

impl SolverTimings {
    /// The redistribution share of this execution: sort + restore +
    /// resort-index creation.
    pub fn redistribution(&self) -> f64 {
        self.sort + self.restore + self.resort_create
    }
}

/// Result of one solver execution through the coupling interface.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolverOutput {
    /// Particle positions (original order for Method A, changed order for
    /// Method B).
    pub pos: Vec<Vec3>,
    /// Particle charges, same order as `pos`.
    pub charge: Vec<f64>,
    /// Global particle ids, same order as `pos`.
    pub id: Vec<u64>,
    /// Calculated potentials, same order as `pos`.
    pub potential: Vec<f64>,
    /// Calculated field values, same order as `pos`.
    pub field: Vec<Vec3>,
    /// `true` iff the particles were returned in the changed (solver) order
    /// and distribution (Method B succeeded); `false` means the original
    /// order and distribution was restored.
    pub resorted: bool,
    /// Method B: for each particle of the *original* local array, the
    /// 64-bit (target rank << 32 | target position) resort index. Empty for
    /// Method A.
    pub resort_indices: Vec<u64>,
    /// Timing breakdown of this execution.
    pub timings: SolverTimings,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redistribution_sums_parts() {
        let t = SolverTimings {
            sort: 1.0,
            compute: 10.0,
            restore: 2.0,
            resort_create: 0.5,
            total: 13.5,
        };
        assert!((t.redistribution() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn default_output_is_empty() {
        let o = SolverOutput::default();
        assert!(o.pos.is_empty());
        assert!(!o.resorted);
    }
}
