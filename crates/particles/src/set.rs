//! Particle containers.
//!
//! A [`ParticleSet`] is the structure-of-arrays view of the particle data the
//! coupling library transports: positions and charges on input, potential and
//! field values on output. Every particle carries a global id so tests can
//! verify ordering/distribution properties exactly; ids are also the basis of
//! the "consecutive numbering" the FMM solver uses to restore the original
//! order (paper, Sect. III-A).
//!
//! Since the byte-plane rework, a `ParticleSet` is a thin typed facade over a
//! [`PlaneSet`](crate::PlaneSet) with three registered planes (`"pos"`,
//! `"charge"`, `"id"`). The typed accessors ([`ParticleSet::pos`],
//! [`ParticleSet::charge`], [`ParticleSet::id`] and their `_mut` twins) are
//! zero-copy slice views into the plane slabs, and
//! [`ParticleSet::plane_set_mut`] hands the whole storage to layout-agnostic
//! redistribution code (`atasp::resort_planes`) so all three fields travel in
//! one byte exchange.

use crate::planes::{PlaneId, PlaneSet};
use crate::vec3::Vec3;

/// Structure-of-arrays particle data: positions, charges and global ids,
/// stored as three byte planes of a [`PlaneSet`].
#[derive(Clone, PartialEq)]
pub struct ParticleSet {
    planes: PlaneSet,
    pos: PlaneId,
    charge: PlaneId,
    id: PlaneId,
}

impl Default for ParticleSet {
    fn default() -> Self {
        let mut planes = PlaneSet::new();
        let pos = planes.register::<Vec3>("pos");
        let charge = planes.register::<f64>("charge");
        let id = planes.register::<u64>("id");
        ParticleSet { planes, pos, charge, id }
    }
}

impl ParticleSet {
    /// An empty set. (Capacity is a hint retained for API compatibility; the
    /// plane slabs grow amortized on push like `Vec`.)
    pub fn with_capacity(_n: usize) -> Self {
        ParticleSet::default()
    }

    /// Build a set from its three component arrays (which must be the same
    /// length).
    pub fn from_parts(pos: Vec<Vec3>, charge: Vec<f64>, id: Vec<u64>) -> Self {
        assert_eq!(pos.len(), charge.len(), "pos/charge length mismatch");
        assert_eq!(pos.len(), id.len(), "pos/id length mismatch");
        let mut s = ParticleSet::default();
        s.planes.resize(pos.len());
        s.pos_mut().copy_from_slice(&pos);
        s.charge_mut().copy_from_slice(&charge);
        s.id_mut().copy_from_slice(&id);
        s
    }

    /// Decompose the set into its three component arrays (copies the planes
    /// out into owned `Vec`s).
    pub fn into_parts(self) -> (Vec<Vec3>, Vec<f64>, Vec<u64>) {
        (self.pos().to_vec(), self.charge().to_vec(), self.id().to_vec())
    }

    /// Number of local particles.
    #[inline]
    pub fn len(&self) -> usize {
        self.planes.len()
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.planes.is_empty()
    }

    /// Particle positions.
    #[inline]
    pub fn pos(&self) -> &[Vec3] {
        self.planes.plane::<Vec3>(self.pos)
    }

    /// Mutable particle positions.
    #[inline]
    pub fn pos_mut(&mut self) -> &mut [Vec3] {
        self.planes.plane_mut::<Vec3>(self.pos)
    }

    /// Particle charges.
    #[inline]
    pub fn charge(&self) -> &[f64] {
        self.planes.plane::<f64>(self.charge)
    }

    /// Mutable particle charges.
    #[inline]
    pub fn charge_mut(&mut self) -> &mut [f64] {
        self.planes.plane_mut::<f64>(self.charge)
    }

    /// Global particle ids (unique across all ranks).
    #[inline]
    pub fn id(&self) -> &[u64] {
        self.planes.plane::<u64>(self.id)
    }

    /// Mutable global particle ids.
    #[inline]
    pub fn id_mut(&mut self) -> &mut [u64] {
        self.planes.plane_mut::<u64>(self.id)
    }

    /// The underlying plane storage (read-only).
    pub fn plane_set(&self) -> &PlaneSet {
        &self.planes
    }

    /// The underlying plane storage, for layout-agnostic redistribution
    /// (`atasp::resort_planes`). The three core planes are registered as
    /// `"pos"`, `"charge"` and `"id"`; callers may register additional
    /// payload planes, which then travel in the same byte exchange.
    pub fn plane_set_mut(&mut self) -> &mut PlaneSet {
        &mut self.planes
    }

    /// Append one particle.
    pub fn push(&mut self, pos: Vec3, charge: f64, id: u64) {
        let n = self.planes.len();
        self.planes.resize(n + 1);
        self.pos_mut()[n] = pos;
        self.charge_mut()[n] = charge;
        self.id_mut()[n] = id;
    }

    /// Append all particles of `other`.
    pub fn extend(&mut self, other: &ParticleSet) {
        let n = self.planes.len();
        let m = other.len();
        self.planes.resize(n + m);
        self.pos_mut()[n..].copy_from_slice(other.pos());
        self.charge_mut()[n..].copy_from_slice(other.charge());
        self.id_mut()[n..].copy_from_slice(other.id());
    }

    /// Drop all particles, keeping plane capacity.
    pub fn clear(&mut self) {
        self.planes.resize(0);
    }

    /// Total charge of the local particles.
    pub fn total_charge(&self) -> f64 {
        self.charge().iter().sum()
    }

    /// Reorder all planes in place so element `i` moves to position `perm[i]`
    /// (a "scatter" permutation). `perm` must be a permutation of `0..len`.
    pub fn scatter_permute(&mut self, perm: &[usize]) {
        self.planes.scatter_permute(perm);
    }

    /// Reorder all planes in place so position `i` receives element `order[i]`
    /// (a "gather" permutation). `order` must be a permutation of `0..len`.
    pub fn gather_permute(&mut self, order: &[usize]) {
        self.planes.gather_permute(order);
    }
}

impl std::fmt::Debug for ParticleSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParticleSet")
            .field("pos", &self.pos())
            .field("charge", &self.charge())
            .field("id", &self.id())
            .finish()
    }
}

/// `out[perm[i]] = data[i]` — scatter by target position.
pub fn scatter<T: Copy + Default>(data: &[T], perm: &[usize]) -> Vec<T> {
    debug_assert_eq!(data.len(), perm.len());
    let mut out = vec![T::default(); data.len()];
    for (i, &p) in perm.iter().enumerate() {
        out[p] = data[i];
    }
    out
}

/// `out[i] = data[order[i]]` — gather by source position.
pub fn gather<T: Copy + Default>(data: &[T], order: &[usize]) -> Vec<T> {
    debug_assert_eq!(data.len(), order.len());
    order.iter().map(|&o| data[o]).collect()
}

/// Invert a permutation: if `perm[i] = j`, the result maps `j -> i`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        debug_assert!(inv[p] == usize::MAX, "not a permutation");
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParticleSet {
        let mut s = ParticleSet::default();
        for i in 0..5 {
            s.push(Vec3::splat(i as f64), (-1.0f64).powi(i), 100 + i as u64);
        }
        s
    }

    #[test]
    fn push_and_len() {
        let s = sample();
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.id(), &[100, 101, 102, 103, 104]);
        assert_eq!(s.total_charge(), 1.0);
    }

    #[test]
    fn scatter_gather_inverse() {
        let data = [10, 20, 30, 40];
        let perm = [2, 0, 3, 1];
        let scattered = scatter(&data, &perm);
        assert_eq!(scattered, vec![20, 40, 10, 30]);
        let back = gather(&scattered, &perm);
        assert_eq!(back, data.to_vec());
    }

    #[test]
    fn permutation_inversion() {
        let perm = [2, 0, 3, 1];
        let inv = invert_permutation(&perm);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        // scatter by perm == gather by inverse
        let data = [1, 2, 3, 4];
        assert_eq!(scatter(&data, &perm), gather(&data, &inv));
    }

    #[test]
    fn set_permutations_consistent_across_fields() {
        let mut s = sample();
        let perm = [4, 2, 0, 1, 3];
        s.scatter_permute(&perm);
        assert_eq!(s.id(), &[102, 103, 101, 104, 100]);
        assert_eq!(s.pos()[0], Vec3::splat(2.0));
        let inv = invert_permutation(&perm);
        s.scatter_permute(&inv);
        assert_eq!(s, sample());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = sample();
        let b = sample();
        a.extend(&b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.id()[5], 100);
    }

    #[test]
    fn parts_roundtrip() {
        let s = sample();
        let (pos, charge, id) = s.clone().into_parts();
        let back = ParticleSet::from_parts(pos, charge, id);
        assert_eq!(back, s);
    }

    #[test]
    fn core_planes_are_registered_by_name() {
        let mut s = sample();
        let ps = s.plane_set_mut();
        assert!(ps.id_of("pos").is_some());
        assert!(ps.id_of("charge").is_some());
        assert!(ps.id_of("id").is_some());
        assert_eq!(ps.element_bytes(), 24 + 8 + 8);
    }
}
