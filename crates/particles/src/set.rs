//! Particle containers.
//!
//! A [`ParticleSet`] is the structure-of-arrays view of the particle data the
//! coupling library transports: positions and charges on input, potential and
//! field values on output. Every particle carries a global id so tests can
//! verify ordering/distribution properties exactly; ids are also the basis of
//! the "consecutive numbering" the FMM solver uses to restore the original
//! order (paper, Sect. III-A).

use crate::vec3::Vec3;

/// Structure-of-arrays particle data: positions, charges and global ids.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParticleSet {
    /// Particle positions.
    pub pos: Vec<Vec3>,
    /// Particle charges.
    pub charge: Vec<f64>,
    /// Global particle ids (unique across all ranks).
    pub id: Vec<u64>,
}

impl ParticleSet {
    /// An empty set with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        ParticleSet {
            pos: Vec::with_capacity(n),
            charge: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
        }
    }

    /// Number of local particles.
    #[inline]
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.pos.len(), self.charge.len());
        debug_assert_eq!(self.pos.len(), self.id.len());
        self.pos.len()
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one particle.
    pub fn push(&mut self, pos: Vec3, charge: f64, id: u64) {
        self.pos.push(pos);
        self.charge.push(charge);
        self.id.push(id);
    }

    /// Append all particles of `other`.
    pub fn extend(&mut self, other: &ParticleSet) {
        self.pos.extend_from_slice(&other.pos);
        self.charge.extend_from_slice(&other.charge);
        self.id.extend_from_slice(&other.id);
    }

    /// Total charge of the local particles.
    pub fn total_charge(&self) -> f64 {
        self.charge.iter().sum()
    }

    /// Reorder all arrays in place so element `i` moves to position `perm[i]`
    /// (a "scatter" permutation). `perm` must be a permutation of `0..len`.
    pub fn scatter_permute(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.len());
        self.pos = scatter(&self.pos, perm);
        self.charge = scatter(&self.charge, perm);
        self.id = scatter(&self.id, perm);
    }

    /// Reorder all arrays in place so position `i` receives element `order[i]`
    /// (a "gather" permutation). `order` must be a permutation of `0..len`.
    pub fn gather_permute(&mut self, order: &[usize]) {
        assert_eq!(order.len(), self.len());
        self.pos = gather(&self.pos, order);
        self.charge = gather(&self.charge, order);
        self.id = gather(&self.id, order);
    }
}

/// `out[perm[i]] = data[i]` — scatter by target position.
pub fn scatter<T: Copy + Default>(data: &[T], perm: &[usize]) -> Vec<T> {
    debug_assert_eq!(data.len(), perm.len());
    let mut out = vec![T::default(); data.len()];
    for (i, &p) in perm.iter().enumerate() {
        out[p] = data[i];
    }
    out
}

/// `out[i] = data[order[i]]` — gather by source position.
pub fn gather<T: Copy + Default>(data: &[T], order: &[usize]) -> Vec<T> {
    debug_assert_eq!(data.len(), order.len());
    order.iter().map(|&o| data[o]).collect()
}

/// Invert a permutation: if `perm[i] = j`, the result maps `j -> i`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        debug_assert!(inv[p] == usize::MAX, "not a permutation");
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParticleSet {
        let mut s = ParticleSet::default();
        for i in 0..5 {
            s.push(Vec3::splat(i as f64), (-1.0f64).powi(i), 100 + i as u64);
        }
        s
    }

    #[test]
    fn push_and_len() {
        let s = sample();
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.id, vec![100, 101, 102, 103, 104]);
        assert_eq!(s.total_charge(), 1.0);
    }

    #[test]
    fn scatter_gather_inverse() {
        let data = [10, 20, 30, 40];
        let perm = [2, 0, 3, 1];
        let scattered = scatter(&data, &perm);
        assert_eq!(scattered, vec![20, 40, 10, 30]);
        let back = gather(&scattered, &perm);
        assert_eq!(back, data.to_vec());
    }

    #[test]
    fn permutation_inversion() {
        let perm = [2, 0, 3, 1];
        let inv = invert_permutation(&perm);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        // scatter by perm == gather by inverse
        let data = [1, 2, 3, 4];
        assert_eq!(scatter(&data, &perm), gather(&data, &inv));
    }

    #[test]
    fn set_permutations_consistent_across_fields() {
        let mut s = sample();
        let perm = [4, 2, 0, 1, 3];
        s.scatter_permute(&perm);
        assert_eq!(s.id, vec![102, 103, 101, 104, 100]);
        assert_eq!(s.pos[0], Vec3::splat(2.0));
        let inv = invert_permutation(&perm);
        s.scatter_permute(&inv);
        assert_eq!(s, sample());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = sample();
        let b = sample();
        a.extend(&b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.id[5], 100);
    }
}
