//! Periodic system-box geometry.
//!
//! The paper's library interface (`fcs_set_common`) describes the system box
//! by an offset vector and three base vectors plus per-dimension periodicity.
//! This implementation supports orthogonal (axis-aligned) boxes, which covers
//! the paper's cubic 248x248x248 benchmark system; the offset is retained so
//! boxes need not start at the origin.

use crate::vec3::Vec3;

/// An axis-aligned, optionally periodic system box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemBox {
    /// Lower corner of the box.
    pub offset: Vec3,
    /// Edge lengths (all > 0).
    pub lengths: Vec3,
    /// Per-dimension periodicity flags.
    pub periodic: [bool; 3],
}

impl SystemBox {
    /// A cube of edge `l` at the origin, periodic in all dimensions.
    pub fn cubic(l: f64) -> Self {
        assert!(l > 0.0, "box edge must be positive");
        SystemBox { offset: Vec3::ZERO, lengths: Vec3::splat(l), periodic: [true; 3] }
    }

    /// An axis-aligned box with explicit offset, lengths and periodicity.
    pub fn new(offset: Vec3, lengths: Vec3, periodic: [bool; 3]) -> Self {
        assert!(lengths.0.iter().all(|&l| l > 0.0), "box edges must be positive");
        SystemBox { offset, lengths, periodic }
    }

    /// Box volume.
    pub fn volume(&self) -> f64 {
        self.lengths.x() * self.lengths.y() * self.lengths.z()
    }

    /// Is the box periodic in every dimension?
    pub fn fully_periodic(&self) -> bool {
        self.periodic.iter().all(|&p| p)
    }

    /// Wrap a position into the box along the periodic dimensions.
    /// Non-periodic coordinates are returned unchanged.
    pub fn wrap(&self, p: Vec3) -> Vec3 {
        let mut out = p;
        for d in 0..3 {
            if self.periodic[d] {
                let l = self.lengths[d];
                let rel = (p[d] - self.offset[d]).rem_euclid(l);
                out[d] = self.offset[d] + rel;
            }
        }
        out
    }

    /// Is `p` inside the box (half-open `[offset, offset + lengths)`)?
    pub fn contains(&self, p: Vec3) -> bool {
        (0..3).all(|d| p[d] >= self.offset[d] && p[d] < self.offset[d] + self.lengths[d])
    }

    /// Minimum-image displacement `a - b` under the box's periodicity.
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let mut d = a - b;
        for k in 0..3 {
            if self.periodic[k] {
                let l = self.lengths[k];
                d[k] -= l * (d[k] / l).round();
            }
        }
        d
    }

    /// Minimum-image distance between `a` and `b`.
    pub fn distance(&self, a: Vec3, b: Vec3) -> f64 {
        self.min_image(a, b).norm()
    }

    /// Normalized coordinates of `p` in `[0, 1)^3` relative to the box
    /// (after periodic wrapping; non-periodic coordinates are clamped).
    pub fn normalized(&self, p: Vec3) -> Vec3 {
        let w = self.wrap(p);
        let mut out = Vec3::ZERO;
        for d in 0..3 {
            let t = (w[d] - self.offset[d]) / self.lengths[d];
            out[d] = t.clamp(0.0, 1.0 - f64::EPSILON);
        }
        out
    }

    /// Side length of the cube a process would own if the box volume were
    /// divided evenly among `nprocs` processes.
    ///
    /// This is the quantity in the paper's sort-switch heuristic
    /// (Sect. III-B): "The total volume of the particle system is divided by
    /// the number of parallel processes and it is assumed that the resulting
    /// volume per process represents a cube shaped subdomain […] If the
    /// maximum movement of the particles is less than the side length of such
    /// a cube, then the merge-based parallel sorting method is used."
    pub fn per_process_cube_side(&self, nprocs: usize) -> f64 {
        assert!(nprocs >= 1);
        (self.volume() / nprocs as f64).cbrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_into_box() {
        let b = SystemBox::cubic(10.0);
        assert_eq!(b.wrap(Vec3::new(11.0, -1.0, 25.0)), Vec3::new(1.0, 9.0, 5.0));
        assert_eq!(b.wrap(Vec3::new(3.0, 0.0, 9.999)), Vec3::new(3.0, 0.0, 9.999));
    }

    #[test]
    fn wrap_with_offset() {
        let b = SystemBox::new(Vec3::splat(-5.0), Vec3::splat(10.0), [true; 3]);
        assert_eq!(b.wrap(Vec3::new(6.0, -6.0, 0.0)), Vec3::new(-4.0, 4.0, 0.0));
        assert!(b.contains(Vec3::ZERO));
        assert!(!b.contains(Vec3::splat(5.0)));
    }

    #[test]
    fn non_periodic_dimensions_unwrapped() {
        let b = SystemBox::new(Vec3::ZERO, Vec3::splat(10.0), [true, false, true]);
        let w = b.wrap(Vec3::new(12.0, 12.0, 12.0));
        assert_eq!(w, Vec3::new(2.0, 12.0, 2.0));
    }

    #[test]
    fn min_image_shorter_across_boundary() {
        let b = SystemBox::cubic(10.0);
        let d = b.min_image(Vec3::new(9.5, 0.0, 0.0), Vec3::new(0.5, 0.0, 0.0));
        assert!((d.x() - -1.0).abs() < 1e-12, "wraps to -1, got {}", d.x());
        assert!(
            (b.distance(Vec3::new(9.5, 0.0, 0.0), Vec3::new(0.5, 0.0, 0.0)) - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn min_image_respects_non_periodicity() {
        let b = SystemBox::new(Vec3::ZERO, Vec3::splat(10.0), [false; 3]);
        let d = b.min_image(Vec3::new(9.5, 0.0, 0.0), Vec3::new(0.5, 0.0, 0.0));
        assert_eq!(d.x(), 9.0);
    }

    #[test]
    fn normalized_in_unit_cube() {
        let b = SystemBox::new(Vec3::splat(2.0), Vec3::splat(4.0), [true; 3]);
        let n = b.normalized(Vec3::new(2.0, 4.0, 7.0));
        assert!((n.x() - 0.0).abs() < 1e-12);
        assert!((n.y() - 0.5).abs() < 1e-12);
        assert!((n.z() - 0.25).abs() < 1e-12);
        assert!(n.z() < 1.0);
    }

    #[test]
    fn volume_and_cube_side() {
        let b = SystemBox::cubic(248.0);
        assert!((b.volume() - 248.0f64.powi(3)).abs() < 1e-6);
        let side = b.per_process_cube_side(256);
        assert!((side - (248.0f64.powi(3) / 256.0).cbrt()).abs() < 1e-9);
    }
}
