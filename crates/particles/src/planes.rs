//! Structure-of-arrays byte-plane storage: the layout layer of the
//! zero-per-step-allocation redistribution path.
//!
//! A [`PlaneSet`] holds `len` particles' worth of any number of registered
//! *planes* — one contiguous slab per per-particle field (position, velocity,
//! charge, a user payload, ...), each with a fixed element **stride** in
//! bytes. Typed access ([`PlaneSet::plane`] / [`PlaneSet::plane_mut`]) is a
//! zero-copy slice view; byte access ([`PlaneSet::bytes`] /
//! [`PlaneSet::bytes_mut`]) exposes the same memory to layout-agnostic code,
//! which is what lets the redistribution layer (`atasp::resort_planes`) pack
//! **every** registered plane into one partner-ordered byte exchange instead
//! of one monomorphized exchange per field type.
//!
//! Every plane is double-buffered: a *front* slab (the current data) and a
//! *back* slab (the landing zone of an in-flight redistribution). An exchange
//! writes received elements into the back slabs through [`PlaneMut`] views
//! and then flips all planes at once with [`PlaneSet::commit`] — a pointer
//! swap, so the steady-state resort path allocates nothing once both slabs
//! have reached their high-water size.
//!
//! ## Stride contract
//!
//! A plane's stride is `size_of::<T>()` of its registered element type, and
//! the slab layout is exactly `len` back-to-back elements with **no padding
//! between elements** — the same bytes `Vec<T>` would hold. Types register
//! through the [`PlaneElem`] marker trait, whose safety contract (no interior
//! padding, alignment ≤ 8, every bit pattern valid) is what makes the
//! byte-level views sound. Slabs are 8-byte aligned; strides need not be
//! multiples of 8 (an `f32` plane is 4 bytes per element).

use crate::vec3::Vec3;
use std::any::TypeId;

/// Marker trait for types that may live in a [`PlaneSet`] plane.
///
/// # Safety
///
/// Implementors must guarantee all of:
///
/// * **No padding**: every byte of the value is initialized (the byte views
///   read all `size_of::<T>()` bytes of each element).
/// * **Alignment ≤ 8**: slabs are backed by `u64` words, which is the
///   strongest alignment a plane can offer.
/// * **Any bit pattern is a valid value**: elements travel through untyped
///   byte exchanges and are reinterpreted on arrival (this rules out `bool`,
///   `char`, enums and types with niches).
/// * `Copy + Default + 'static`: elements are plain old data.
pub unsafe trait PlaneElem: Copy + Default + 'static {}

// SAFETY: primitive numeric types have no padding, no niches, and alignment
// of at most 8 on every supported platform.
unsafe impl PlaneElem for f32 {}
unsafe impl PlaneElem for f64 {}
unsafe impl PlaneElem for u32 {}
unsafe impl PlaneElem for u64 {}
unsafe impl PlaneElem for i32 {}
unsafe impl PlaneElem for i64 {}
// SAFETY: `Vec3` is `repr(transparent)` over `[f64; 3]` — 24 padding-free
// bytes, align 8, every bit pattern a valid (if possibly NaN) vector.
unsafe impl PlaneElem for Vec3 {}

/// Handle to one registered plane of a [`PlaneSet`] (an index; `Copy`, cheap
/// to store beside the set).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlaneId(usize);

impl PlaneId {
    /// The plane's position in registration order (also its index in
    /// [`PlaneSet::ids`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One registered plane: name, stride, element type, and the double slabs.
/// Slabs are `Vec<u64>` so every plane is 8-byte aligned regardless of its
/// element type.
#[derive(Clone)]
struct Plane {
    name: String,
    stride: usize,
    ty: TypeId,
    ty_name: &'static str,
    front: Vec<u64>,
    back: Vec<u64>,
}

/// Slab words needed to hold `bytes` bytes.
#[inline]
fn words(bytes: usize) -> usize {
    bytes.div_ceil(8)
}

/// The first `n` bytes of a slab, viewed as bytes.
#[inline]
fn slab_bytes(slab: &[u64], n: usize) -> &[u8] {
    debug_assert!(n <= slab.len() * 8);
    // SAFETY: `u64` has no padding and alignment 8 ≥ 1; the length is within
    // the slab's initialized region.
    unsafe { std::slice::from_raw_parts(slab.as_ptr().cast::<u8>(), n) }
}

/// The first `n` bytes of a slab, viewed as mutable bytes.
#[inline]
fn slab_bytes_mut(slab: &mut [u64], n: usize) -> &mut [u8] {
    debug_assert!(n <= slab.len() * 8);
    // SAFETY: as `slab_bytes`, with exclusive access inherited from `slab`.
    unsafe { std::slice::from_raw_parts_mut(slab.as_mut_ptr().cast::<u8>(), n) }
}

/// Structure-of-arrays particle storage: any number of named, typed,
/// double-buffered byte planes sharing one element count. See the module
/// docs for the layout and exchange lifecycle.
#[derive(Clone, Default)]
pub struct PlaneSet {
    len: usize,
    planes: Vec<Plane>,
}

impl PlaneSet {
    /// An empty set with no planes registered.
    pub fn new() -> PlaneSet {
        PlaneSet::default()
    }

    /// Register a new plane of element type `T` under `name`. All planes
    /// share the set's element count: a plane registered on a non-empty set
    /// starts with `len` default elements. Names are diagnostic (and
    /// resolvable via [`PlaneSet::id_of`]); duplicates are rejected.
    pub fn register<T: PlaneElem>(&mut self, name: &str) -> PlaneId {
        assert!(
            std::mem::align_of::<T>() <= 8,
            "plane element type {} has alignment {} > 8",
            std::any::type_name::<T>(),
            std::mem::align_of::<T>()
        );
        assert!(self.id_of(name).is_none(), "plane {name:?} registered twice");
        let stride = std::mem::size_of::<T>();
        assert!(stride > 0, "zero-sized plane element type");
        self.planes.push(Plane {
            name: name.to_string(),
            stride,
            ty: TypeId::of::<T>(),
            ty_name: std::any::type_name::<T>(),
            front: vec![0; words(self.len * stride)],
            back: Vec::new(),
        });
        PlaneId(self.planes.len() - 1)
    }

    /// Number of elements (particles) in every plane.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the set empty (no elements)?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of registered planes.
    #[inline]
    pub fn plane_count(&self) -> usize {
        self.planes.len()
    }

    /// All plane ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = PlaneId> + '_ {
        (0..self.planes.len()).map(PlaneId)
    }

    /// The `i`-th plane's id, in registration order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= plane_count()`.
    pub fn id_at(&self, i: usize) -> PlaneId {
        assert!(i < self.planes.len(), "plane index {i} out of range");
        PlaneId(i)
    }

    /// Resolve a plane by name.
    pub fn id_of(&self, name: &str) -> Option<PlaneId> {
        self.planes.iter().position(|p| p.name == name).map(PlaneId)
    }

    /// The plane's registered name.
    pub fn name(&self, id: PlaneId) -> &str {
        &self.planes[id.0].name
    }

    /// The plane's element stride in bytes.
    #[inline]
    pub fn stride(&self, id: PlaneId) -> usize {
        self.planes[id.0].stride
    }

    /// Sum of all plane strides: the packed payload bytes one element
    /// contributes to a full-set exchange.
    pub fn element_bytes(&self) -> usize {
        self.planes.iter().map(|p| p.stride).sum()
    }

    fn check_type<T: PlaneElem>(&self, id: PlaneId) {
        let p = &self.planes[id.0];
        assert!(
            p.ty == TypeId::of::<T>(),
            "plane {:?} holds {} elements, accessed as {}",
            p.name,
            p.ty_name,
            std::any::type_name::<T>()
        );
    }

    /// Typed view of a plane's current (front) elements.
    ///
    /// # Panics
    ///
    /// Panics if `T` is not the plane's registered element type.
    pub fn plane<T: PlaneElem>(&self, id: PlaneId) -> &[T] {
        self.check_type::<T>(id);
        let p = &self.planes[id.0];
        // SAFETY: the slab holds `len` stride-sized elements written either
        // as `T` (via `plane_mut`) or as bytes; `PlaneElem` guarantees every
        // bit pattern is valid `T`, alignment 8 ≥ align_of::<T>.
        unsafe { std::slice::from_raw_parts(p.front.as_ptr().cast::<T>(), self.len) }
    }

    /// Mutable typed view of a plane's current (front) elements.
    ///
    /// # Panics
    ///
    /// Panics if `T` is not the plane's registered element type.
    pub fn plane_mut<T: PlaneElem>(&mut self, id: PlaneId) -> &mut [T] {
        self.check_type::<T>(id);
        let len = self.len;
        let p = &mut self.planes[id.0];
        // SAFETY: as `plane`, with exclusive access inherited from `self`.
        unsafe { std::slice::from_raw_parts_mut(p.front.as_mut_ptr().cast::<T>(), len) }
    }

    /// Byte view of a plane's current (front) elements: exactly
    /// `len * stride` bytes, element `i` at `i * stride`.
    pub fn bytes(&self, id: PlaneId) -> &[u8] {
        let p = &self.planes[id.0];
        slab_bytes(&p.front, self.len * p.stride)
    }

    /// Mutable byte view of a plane's current (front) elements.
    pub fn bytes_mut(&mut self, id: PlaneId) -> &mut [u8] {
        let len = self.len;
        let p = &mut self.planes[id.0];
        slab_bytes_mut(&mut p.front, len * p.stride)
    }

    /// Simultaneous mutable access to plane `a` and shared access to a
    /// *different* plane `b` — the split borrow an integrator needs to
    /// update one field from another (`vel[i] += accel[i] * dt`) without
    /// copying either plane out of the set.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` name the same plane or a type does not match
    /// its plane's registered element type.
    pub fn plane_pair_mut<A: PlaneElem, B: PlaneElem>(
        &mut self,
        a: PlaneId,
        b: PlaneId,
    ) -> (&mut [A], &[B]) {
        assert_ne!(a.0, b.0, "plane_pair_mut requires two distinct planes");
        self.check_type::<A>(a);
        self.check_type::<B>(b);
        let len = self.len;
        let (lo, hi) = self.planes.split_at_mut(a.0.max(b.0));
        let (pa, pb) = if a.0 < b.0 { (&mut lo[a.0], &hi[0]) } else { (&mut hi[0], &lo[b.0]) };
        // SAFETY: as `plane`/`plane_mut`; the split borrow guarantees the two
        // slabs are disjoint.
        unsafe {
            (
                std::slice::from_raw_parts_mut(pa.front.as_mut_ptr().cast::<A>(), len),
                std::slice::from_raw_parts(pb.front.as_ptr().cast::<B>(), len),
            )
        }
    }

    /// Read-only accessor over all planes (stride + front bytes), for
    /// layout-agnostic packing code.
    pub fn planes(&self) -> Planes<'_> {
        Planes { set: self }
    }

    /// Resize every plane to `n` elements; new elements are zero bytes
    /// (`T::default()` for all [`PlaneElem`] implementors).
    pub fn resize(&mut self, n: usize) {
        for p in &mut self.planes {
            p.front.resize(words(n * p.stride), 0);
            if !(n * p.stride).is_multiple_of(8) {
                // Clear the tail of the last word so byte-level comparisons
                // of equal sets are deterministic after shrink/grow cycles.
                let bytes = n * p.stride;
                let total = p.front.len() * 8;
                let tail = slab_bytes_mut(&mut p.front, total);
                tail[bytes..].fill(0);
            }
        }
        self.len = n;
    }

    /// Exchange view of one plane: the front bytes of the current `len`
    /// elements to pack *from*, and the back bytes of `new_len` elements to
    /// place *into*. Call once per plane, place the received elements, then
    /// flip all planes with [`PlaneSet::commit`]`(new_len)`.
    pub fn exchange_view(&mut self, id: PlaneId, new_len: usize) -> PlaneMut<'_> {
        let len = self.len;
        let p = &mut self.planes[id.0];
        p.back.resize(words(new_len * p.stride), 0);
        PlaneMut {
            front: slab_bytes(&p.front, len * p.stride),
            back: slab_bytes_mut(&mut p.back, new_len * p.stride),
            stride: p.stride,
        }
    }

    /// Flip every plane's back slab to the front and set the element count to
    /// `new_len` — the commit point of a redistribution. A pointer swap per
    /// plane: no bytes move, nothing allocates. The old front slabs become
    /// the next exchange's landing zones (they are *not* cleared; every
    /// position must be written by the next place pass).
    pub fn commit(&mut self, new_len: usize) {
        for p in &mut self.planes {
            p.back.resize(words(new_len * p.stride), 0);
            std::mem::swap(&mut p.front, &mut p.back);
        }
        self.len = new_len;
    }

    /// Reorder every plane in place so element `i` moves to position
    /// `perm[i]` (scatter semantics, like `set::scatter`). Uses the back
    /// slabs as scratch — no allocation in steady state.
    pub fn scatter_permute(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.len, "permutation length mismatch");
        let len = self.len;
        for p in &mut self.planes {
            p.back.resize(words(len * p.stride), 0);
            let src = slab_bytes(&p.front, len * p.stride);
            let dst = slab_bytes_mut(&mut p.back, len * p.stride);
            let s = p.stride;
            for (i, &t) in perm.iter().enumerate() {
                dst[t * s..(t + 1) * s].copy_from_slice(&src[i * s..(i + 1) * s]);
            }
            std::mem::swap(&mut p.front, &mut p.back);
        }
    }

    /// Reorder every plane in place so position `i` receives element
    /// `order[i]` (gather semantics, like `set::gather`). Uses the back
    /// slabs as scratch — no allocation in steady state.
    pub fn gather_permute(&mut self, order: &[usize]) {
        assert_eq!(order.len(), self.len, "permutation length mismatch");
        let len = self.len;
        for p in &mut self.planes {
            p.back.resize(words(len * p.stride), 0);
            let src = slab_bytes(&p.front, len * p.stride);
            let dst = slab_bytes_mut(&mut p.back, len * p.stride);
            let s = p.stride;
            for (i, &o) in order.iter().enumerate() {
                dst[i * s..(i + 1) * s].copy_from_slice(&src[o * s..(o + 1) * s]);
            }
            std::mem::swap(&mut p.front, &mut p.back);
        }
    }
}

impl PartialEq for PlaneSet {
    /// Logical equality: same element count, same planes (name, stride, type)
    /// in the same order, same front bytes. Back slabs and slab tail padding
    /// are storage details and do not participate.
    fn eq(&self, other: &PlaneSet) -> bool {
        self.len == other.len
            && self.planes.len() == other.planes.len()
            && self.planes.iter().zip(&other.planes).all(|(a, b)| {
                a.name == b.name
                    && a.stride == b.stride
                    && a.ty == b.ty
                    && slab_bytes(&a.front, self.len * a.stride)
                        == slab_bytes(&b.front, other.len * b.stride)
            })
    }
}

impl std::fmt::Debug for PlaneSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("PlaneSet");
        d.field("len", &self.len);
        for p in &self.planes {
            d.field(&p.name, &format_args!("{} x{}B", p.ty_name, p.stride));
        }
        d.finish()
    }
}

/// Read-only accessor over all planes of a [`PlaneSet`]: the layout-agnostic
/// face the packing side of a byte exchange programs against.
pub struct Planes<'a> {
    set: &'a PlaneSet,
}

impl Planes<'_> {
    /// Number of planes.
    pub fn count(&self) -> usize {
        self.set.plane_count()
    }

    /// Element count shared by all planes.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Is the underlying set empty?
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The `i`-th plane's stride in bytes (registration order).
    pub fn stride(&self, i: usize) -> usize {
        self.set.stride(PlaneId(i))
    }

    /// The `i`-th plane's front bytes (registration order).
    pub fn bytes(&self, i: usize) -> &[u8] {
        self.set.bytes(PlaneId(i))
    }

    /// Sum of all plane strides (packed payload bytes per element).
    pub fn element_bytes(&self) -> usize {
        self.set.element_bytes()
    }
}

/// Exchange view of one plane: pack outgoing elements from `front`, place
/// received elements into `back`, then [`PlaneSet::commit`]. Element `i` of
/// either side occupies `stride` bytes at offset `i * stride`.
pub struct PlaneMut<'a> {
    /// Current elements (the pack source), `len * stride` bytes.
    pub front: &'a [u8],
    /// Landing zone for the incoming elements, `new_len * stride` bytes.
    pub back: &'a mut [u8],
    /// Bytes per element.
    pub stride: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_typed_roundtrip() {
        let mut set = PlaneSet::new();
        let pos = set.register::<Vec3>("pos");
        let q = set.register::<f64>("charge");
        let id = set.register::<u64>("id");
        set.resize(3);
        set.plane_mut::<Vec3>(pos).copy_from_slice(&[
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::splat(4.0),
            Vec3::ZERO,
        ]);
        set.plane_mut::<f64>(q).copy_from_slice(&[-1.0, 1.0, 0.5]);
        set.plane_mut::<u64>(id).copy_from_slice(&[7, 8, 9]);
        assert_eq!(set.plane::<Vec3>(pos)[1], Vec3::splat(4.0));
        assert_eq!(set.plane::<f64>(q), &[-1.0, 1.0, 0.5]);
        assert_eq!(set.plane::<u64>(id), &[7, 8, 9]);
        assert_eq!(set.stride(pos), 24);
        assert_eq!(set.stride(q), 8);
        assert_eq!(set.element_bytes(), 24 + 8 + 8);
        assert_eq!(set.id_of("charge"), Some(q));
        assert_eq!(set.name(id), "id");
    }

    #[test]
    fn byte_view_matches_typed_view() {
        let mut set = PlaneSet::new();
        let q = set.register::<f64>("q");
        set.resize(2);
        set.plane_mut::<f64>(q).copy_from_slice(&[1.5, -2.5]);
        let bytes = set.bytes(q);
        assert_eq!(bytes.len(), 16);
        assert_eq!(&bytes[0..8], &1.5f64.to_le_bytes());
        assert_eq!(&bytes[8..16], &(-2.5f64).to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "accessed as")]
    fn typed_access_checks_element_type() {
        let mut set = PlaneSet::new();
        let q = set.register::<f64>("q");
        set.resize(1);
        let _ = set.plane::<u64>(q);
    }

    #[test]
    fn odd_stride_planes_pack_densely() {
        let mut set = PlaneSet::new();
        let a = set.register::<f32>("a");
        set.resize(3); // 12 bytes: not a multiple of the 8-byte slab word
        set.plane_mut::<f32>(a).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(set.bytes(a).len(), 12);
        assert_eq!(set.plane::<f32>(a), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn exchange_view_and_commit_flip_slabs() {
        let mut set = PlaneSet::new();
        let q = set.register::<f64>("q");
        let id = set.register::<u64>("id");
        set.resize(2);
        set.plane_mut::<f64>(q).copy_from_slice(&[10.0, 20.0]);
        set.plane_mut::<u64>(id).copy_from_slice(&[1, 2]);
        // "Exchange": reverse the elements into the back slabs, one extra row.
        for pid in [q, id] {
            let v = set.exchange_view(pid, 3);
            let s = v.stride;
            v.back[0..s].copy_from_slice(&v.front[s..2 * s]);
            v.back[s..2 * s].copy_from_slice(&v.front[0..s]);
            v.back[2 * s..3 * s].fill(0);
        }
        set.commit(3);
        assert_eq!(set.len(), 3);
        assert_eq!(set.plane::<f64>(q), &[20.0, 10.0, 0.0]);
        assert_eq!(set.plane::<u64>(id), &[2, 1, 0]);
    }

    #[test]
    fn permutations_match_set_module_semantics() {
        let mut set = PlaneSet::new();
        let id = set.register::<u64>("id");
        set.resize(4);
        set.plane_mut::<u64>(id).copy_from_slice(&[10, 20, 30, 40]);
        let perm = [2, 0, 3, 1];
        set.scatter_permute(&perm);
        assert_eq!(set.plane::<u64>(id), &[20, 40, 10, 30]);
        set.gather_permute(&perm);
        assert_eq!(set.plane::<u64>(id), &[10, 20, 30, 40]);
    }

    #[test]
    fn equality_is_logical_not_physical() {
        let mut a = PlaneSet::new();
        let qa = a.register::<f64>("q");
        a.resize(1);
        a.plane_mut::<f64>(qa)[0] = 3.5;
        // b reaches the same state through a grow/shrink cycle, leaving
        // different slab capacities behind.
        let mut b = PlaneSet::new();
        let qb = b.register::<f64>("q");
        b.resize(64);
        b.resize(1);
        b.plane_mut::<f64>(qb)[0] = 3.5;
        assert_eq!(a, b);
        b.plane_mut::<f64>(qb)[0] = -3.5;
        assert_ne!(a, b);
    }

    #[test]
    fn plane_pair_mut_splits_in_either_order() {
        let mut set = PlaneSet::new();
        let v = set.register::<Vec3>("vel");
        let q = set.register::<f64>("q");
        set.resize(2);
        set.plane_mut::<f64>(q).copy_from_slice(&[2.0, 3.0]);
        let (vel, charge) = set.plane_pair_mut::<Vec3, f64>(v, q);
        for (x, c) in vel.iter_mut().zip(charge) {
            *x = Vec3::splat(*c);
        }
        assert_eq!(set.plane::<Vec3>(v), &[Vec3::splat(2.0), Vec3::splat(3.0)]);
        let (charge, vel) = set.plane_pair_mut::<f64, Vec3>(q, v);
        for (c, x) in charge.iter_mut().zip(vel) {
            *c += x.x();
        }
        assert_eq!(set.plane::<f64>(q), &[4.0, 6.0]);
    }

    #[test]
    fn registering_on_nonempty_set_zero_fills() {
        let mut set = PlaneSet::new();
        let q = set.register::<f64>("q");
        set.resize(2);
        set.plane_mut::<f64>(q).copy_from_slice(&[1.0, 2.0]);
        let v = set.register::<Vec3>("vel");
        assert_eq!(set.plane::<Vec3>(v), &[Vec3::ZERO, Vec3::ZERO]);
        assert_eq!(set.plane::<f64>(q), &[1.0, 2.0]);
    }
}
