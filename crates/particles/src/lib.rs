//! # particles — particle data, geometry and synthetic systems
//!
//! Shared substrate for the coupled-particle-code reproduction: a minimal 3D
//! vector type, periodic box geometry, Z-Morton ordering (the FMM solver's
//! domain decomposition key), structure-of-arrays particle containers, the
//! synthetic ionic-crystal workload standing in for the paper's "melting
//! silica" trace, the three initial distributions of Sect. IV-B, and slow
//! reference solvers (direct summation, Ewald) used to validate the fast ones.

#![warn(missing_docs)]

mod boxgeom;
pub mod coupling;
pub mod distributions;
pub mod math;
pub mod planes;
pub mod reference;
mod set;
pub mod systems;
mod vec3;
pub mod zorder;

pub use boxgeom::SystemBox;
pub use coupling::{MovementHint, RedistMethod, SoftCore, SolverOutput, SolverTimings};
pub use distributions::{
    grid_cell_bounds, grid_rank_of, local_set, InitialDistribution, ParticleSource,
};
pub use planes::{PlaneElem, PlaneId, PlaneMut, PlaneSet, Planes};
pub use set::{gather, invert_permutation, scatter, ParticleSet};
pub use systems::{IonicCrystal, RandomGas, MADELUNG_NACL};
pub use vec3::Vec3;
