//! A minimal 3D vector of `f64`, sized and laid out like `[f64; 3]` so whole
//! particle buffers can be shipped between ranks without conversion.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3D vector (position, velocity, acceleration, field value, ...).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(transparent)]
pub struct Vec3(pub [f64; 3]);

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3([0.0; 3]);

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3([x, y, z])
    }

    /// All components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3([v, v, v])
    }

    /// The x component.
    #[inline]
    pub fn x(&self) -> f64 {
        self.0[0]
    }

    /// The y component.
    #[inline]
    pub fn y(&self) -> f64 {
        self.0[1]
    }

    /// The z component.
    #[inline]
    pub fn z(&self) -> f64 {
        self.0[2]
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, o: &Vec3) -> f64 {
        self.0[0] * o.0[0] + self.0[1] * o.0[1] + self.0[2] * o.0[2]
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(&self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm2().sqrt()
    }

    /// Component-wise product.
    #[inline]
    pub fn mul_elem(&self, o: &Vec3) -> Vec3 {
        Vec3([self.0[0] * o.0[0], self.0[1] * o.0[1], self.0[2] * o.0[2]])
    }

    /// Maximum absolute component (Chebyshev norm).
    #[inline]
    pub fn max_abs(&self) -> f64 {
        self.0.iter().map(|c| c.abs()).fold(0.0, f64::max)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3([self.0[0] + o.0[0], self.0[1] + o.0[1], self.0[2] + o.0[2]])
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.0[0] += o.0[0];
        self.0[1] += o.0[1];
        self.0[2] += o.0[2];
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3([self.0[0] - o.0[0], self.0[1] - o.0[1], self.0[2] - o.0[2]])
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        self.0[0] -= o.0[0];
        self.0[1] -= o.0[1];
        self.0[2] -= o.0[2];
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3([self.0[0] / s, self.0[1] / s, self.0[2] / s])
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3([-self.0[0], -self.0[1], -self.0[2]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(&b), 32.0);
        assert_eq!(a.norm2(), 14.0);
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < 1e-15);
        assert_eq!(Vec3::new(-7.0, 2.0, 3.0).max_abs(), 7.0);
    }

    #[test]
    fn layout_matches_array() {
        assert_eq!(std::mem::size_of::<Vec3>(), 24);
        assert_eq!(std::mem::align_of::<Vec3>(), std::mem::align_of::<f64>());
    }

    #[test]
    fn index_access() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[1], 2.0);
        v[2] = 9.0;
        assert_eq!(v.z(), 9.0);
    }
}
