//! Z-Morton ordering for three dimensions.
//!
//! The FMM solver numbers the boxes of its recursive subdivision according to
//! a Z-Morton ordering (paper, Sect. II-B) and sorts particles by box number;
//! the resulting per-process particle sets correspond to segments of a Z-order
//! space-filling curve. Up to 21 bits per dimension are supported, so a full
//! 63-bit key fits in a `u64`.

/// Maximum supported bits per dimension.
pub const MAX_BITS: u32 = 21;

/// Spread the low 21 bits of `v` so that bit `i` moves to bit `3*i`.
#[inline]
fn spread(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread`]: gather bits `0, 3, 6, ...` into the low 21 bits.
#[inline]
fn compact(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x
}

/// Interleave three 21-bit cell indices into a 63-bit Morton key.
/// Bit layout: key bit `3*i` comes from `x` bit `i`, `3*i + 1` from `y`,
/// `3*i + 2` from `z`, so `z` is the most significant dimension.
#[inline]
pub fn encode(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << MAX_BITS) && y < (1 << MAX_BITS) && z < (1 << MAX_BITS));
    spread(x as u64) | (spread(y as u64) << 1) | (spread(z as u64) << 2)
}

/// Inverse of [`encode`].
#[inline]
pub fn decode(key: u64) -> (u32, u32, u32) {
    (compact(key) as u32, compact(key >> 1) as u32, compact(key >> 2) as u32)
}

/// Morton key of a normalized position `t` in `[0,1)^3` on a grid of
/// `2^level` cells per dimension.
#[inline]
pub fn key_of_normalized(t: [f64; 3], level: u32) -> u64 {
    debug_assert!(level <= MAX_BITS);
    let cells = (1u64 << level) as f64;
    let clamp = |v: f64| -> u32 {
        let c = (v * cells).floor();
        (c.max(0.0) as u64).min((1u64 << level) - 1) as u32
    };
    encode(clamp(t[0]), clamp(t[1]), clamp(t[2]))
}

/// The key of the parent cell, one level coarser.
#[inline]
pub fn parent(key: u64) -> u64 {
    key >> 3
}

/// The key of child `c` (0..8) of `key`, one level finer.
#[inline]
pub fn child(key: u64, c: u8) -> u64 {
    debug_assert!(c < 8);
    (key << 3) | c as u64
}

/// Cell coordinates of a key interpreted at a given `level`.
#[inline]
pub fn cell_at_level(key: u64, level: u32) -> (u32, u32, u32) {
    debug_assert!(level <= MAX_BITS);
    decode(key)
}

/// Keys of cells adjacent (Chebyshev distance 1, including diagonals) to the
/// cell of `key` at the given `level`, with periodic wraparound; excludes the
/// cell itself. Cells that alias due to tiny grids are deduplicated.
pub fn neighbor_keys_periodic(key: u64, level: u32) -> Vec<u64> {
    let n = 1i64 << level;
    let (x, y, z) = decode(key);
    let mut out = Vec::with_capacity(26);
    for dx in -1..=1i64 {
        for dy in -1..=1i64 {
            for dz in -1..=1i64 {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                let nx = (x as i64 + dx).rem_euclid(n) as u32;
                let ny = (y as i64 + dy).rem_euclid(n) as u32;
                let nz = (z as i64 + dz).rem_euclid(n) as u32;
                let k = encode(nx, ny, nz);
                if k != key {
                    out.push(k);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_exhaustive_small() {
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    let k = encode(x, y, z);
                    assert_eq!(decode(k), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_large_values() {
        let max = (1u32 << MAX_BITS) - 1;
        for &(x, y, z) in
            &[(max, 0, 0), (0, max, 0), (0, 0, max), (max, max, max), (123456, 654321, 999999)]
        {
            assert_eq!(decode(encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn z_curve_locality_order() {
        // The first 8 cells of a 2x2x2 grid follow the Z pattern:
        // (0,0,0), (1,0,0), (0,1,0), (1,1,0), (0,0,1), ...
        let expected = [
            (0, 0, 0),
            (1, 0, 0),
            (0, 1, 0),
            (1, 1, 0),
            (0, 0, 1),
            (1, 0, 1),
            (0, 1, 1),
            (1, 1, 1),
        ];
        for (k, &(x, y, z)) in expected.iter().enumerate() {
            assert_eq!(encode(x, y, z), k as u64);
        }
    }

    #[test]
    fn keys_preserve_containment_hierarchy() {
        let k = encode(5, 3, 7);
        for c in 0..8 {
            assert_eq!(parent(child(k, c)), k);
        }
    }

    #[test]
    fn key_of_normalized_maps_unit_cube() {
        assert_eq!(key_of_normalized([0.0, 0.0, 0.0], 3), 0);
        let last = key_of_normalized([0.999, 0.999, 0.999], 3);
        assert_eq!(decode(last), (7, 7, 7));
        // Values at or above 1.0 clamp to the last cell instead of overflowing.
        let clamped = key_of_normalized([1.0, 2.0, 1.5], 3);
        assert_eq!(decode(clamped), (7, 7, 7));
    }

    #[test]
    fn key_monotone_in_each_dimension_at_fixed_others() {
        // Along any single axis with other coords 0, keys strictly increase.
        let mut prev = encode(0, 0, 0);
        for x in 1..64 {
            let k = encode(x, 0, 0);
            assert!(k > prev);
            prev = k;
        }
    }

    #[test]
    fn neighbors_periodic_count_and_symmetry() {
        let level = 3;
        let k = encode(0, 0, 0);
        let ns = neighbor_keys_periodic(k, level);
        assert_eq!(ns.len(), 26);
        for &n in &ns {
            assert!(neighbor_keys_periodic(n, level).contains(&k));
        }
    }

    #[test]
    fn neighbors_on_tiny_grid_dedup() {
        let ns = neighbor_keys_periodic(encode(0, 0, 0), 1);
        assert_eq!(ns.len(), 7); // 2x2x2 grid: everyone else is a neighbour
    }
}
