//! Reference solvers for validation: direct O(n^2) summation for open
//! boundaries, and classical Ewald summation for fully periodic boxes.
//!
//! These are deliberately simple and slow; the test suites use them to pin the
//! accuracy of the FMM and particle-mesh solvers (the paper requires a
//! relative error below 1e-3 for the total energy, Sect. IV-A).
//!
//! Units are Gaussian (`4*pi*eps0 = 1`): the potential of a unit charge at
//! distance `r` is `1/r` and the interaction energy of charges `q1, q2` is
//! `q1*q2/r`.

use crate::boxgeom::SystemBox;
use crate::math::{erfc, M_2_SQRTPI};
use crate::vec3::Vec3;

/// Potentials and field values of a charge configuration, plus total energy.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldSolution {
    /// Per-particle electrostatic potential (excluding self-interaction).
    pub potential: Vec<f64>,
    /// Per-particle electric field (negative potential gradient).
    pub field: Vec<Vec3>,
    /// Total electrostatic energy `0.5 * sum_i q_i phi_i`.
    pub energy: f64,
}

impl FieldSolution {
    /// Relative difference of total energies.
    pub fn energy_rel_error(&self, other: &FieldSolution) -> f64 {
        (self.energy - other.energy).abs() / other.energy.abs().max(f64::MIN_POSITIVE)
    }

    /// Root-mean-square relative error of the potentials, normalized by the
    /// RMS magnitude of the reference potentials.
    pub fn potential_rms_error(&self, other: &FieldSolution) -> f64 {
        assert_eq!(self.potential.len(), other.potential.len());
        let scale =
            other.potential.iter().map(|p| p * p).sum::<f64>().sqrt().max(f64::MIN_POSITIVE);
        let diff = self
            .potential
            .iter()
            .zip(&other.potential)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        diff / scale
    }
}

/// Direct pairwise summation with open (non-periodic) boundaries.
pub fn direct_open(pos: &[Vec3], charge: &[f64]) -> FieldSolution {
    assert_eq!(pos.len(), charge.len());
    let n = pos.len();
    let mut potential = vec![0.0; n];
    let mut field = vec![Vec3::ZERO; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = pos[i] - pos[j];
            let r2 = d.norm2();
            let r = r2.sqrt();
            let inv_r = 1.0 / r;
            let inv_r3 = inv_r / r2;
            potential[i] += charge[j] * inv_r;
            potential[j] += charge[i] * inv_r;
            field[i] += d * (charge[j] * inv_r3);
            field[j] -= d * (charge[i] * inv_r3);
        }
    }
    let energy = 0.5 * potential.iter().zip(charge).map(|(p, q)| p * q).sum::<f64>();
    FieldSolution { potential, field, energy }
}

/// Parameters of a classical Ewald summation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EwaldParams {
    /// Splitting parameter (1/length): larger pushes work to reciprocal space.
    pub alpha: f64,
    /// Real-space cutoff; must be at most half the shortest box edge.
    pub rcut: f64,
    /// Reciprocal-space cutoff: integer k-vectors with `|k|_inf <= kmax`.
    pub kmax: i32,
}

impl EwaldParams {
    /// Conservative parameters for a cubic box of edge `l`, aiming at <=1e-5
    /// relative accuracy for typical homogeneous neutral systems.
    pub fn for_cubic_box(l: f64) -> Self {
        let rcut = 0.45 * l;
        // erfc(alpha*rcut) ~ 1e-7 -> alpha*rcut ~ 3.8
        let alpha = 3.8 / rcut;
        // exp(-(pi*kmax/(alpha*l))^2) small -> kmax ~ alpha*l*3.5/pi
        let kmax = ((alpha * l * 3.5) / std::f64::consts::PI).ceil() as i32;
        EwaldParams { alpha, rcut, kmax }
    }
}

/// Classical Ewald summation for a fully periodic orthogonal box.
///
/// Returns per-particle potentials/fields and the total energy, all excluding
/// each particle's self-interaction (the self term is subtracted).
pub fn ewald(pos: &[Vec3], charge: &[f64], bbox: &SystemBox, params: EwaldParams) -> FieldSolution {
    assert_eq!(pos.len(), charge.len());
    assert!(bbox.fully_periodic(), "Ewald needs a fully periodic box");
    let n = pos.len();
    let l = bbox.lengths;
    assert!(
        params.rcut <= 0.5 * l.x().min(l.y()).min(l.z()) + 1e-12,
        "rcut must be at most half the shortest box edge (minimum image)"
    );
    let volume = bbox.volume();
    let alpha = params.alpha;

    let mut potential = vec![0.0; n];
    let mut field = vec![Vec3::ZERO; n];

    // --- Real-space sum (minimum image within rcut) ---
    let rcut2 = params.rcut * params.rcut;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = bbox.min_image(pos[i], pos[j]);
            let r2 = d.norm2();
            if r2 > rcut2 || r2 == 0.0 {
                continue;
            }
            let r = r2.sqrt();
            let e = erfc(alpha * r) / r;
            let de = e / r2 + alpha * M_2_SQRTPI * (-alpha * alpha * r2).exp() / r2;
            potential[i] += charge[j] * e;
            potential[j] += charge[i] * e;
            field[i] += d * (charge[j] * de);
            field[j] -= d * (charge[i] * de);
        }
    }

    // --- Reciprocal-space sum ---
    let two_pi = 2.0 * std::f64::consts::PI;
    let kmax = params.kmax;
    for kx in -kmax..=kmax {
        for ky in -kmax..=kmax {
            for kz in -kmax..=kmax {
                if kx == 0 && ky == 0 && kz == 0 {
                    continue;
                }
                let k = Vec3::new(
                    two_pi * kx as f64 / l.x(),
                    two_pi * ky as f64 / l.y(),
                    two_pi * kz as f64 / l.z(),
                );
                let k2 = k.norm2();
                let ak =
                    4.0 * std::f64::consts::PI / volume * (-k2 / (4.0 * alpha * alpha)).exp() / k2;
                // Structure factor S(k) = sum_j q_j exp(i k.r_j)
                let mut s_re = 0.0;
                let mut s_im = 0.0;
                for j in 0..n {
                    let phase = k.dot(&pos[j]);
                    s_re += charge[j] * phase.cos();
                    s_im += charge[j] * phase.sin();
                }
                for i in 0..n {
                    let phase = k.dot(&pos[i]);
                    let (sin_p, cos_p) = phase.sin_cos();
                    // phi_i += ak * Re[S(k) * exp(-i k.r_i)]
                    potential[i] += ak * (s_re * cos_p + s_im * sin_p);
                    // E_i = -grad phi_i = -ak * k * Im[S(k) * exp(-i k.r_i)]
                    let im = s_im * cos_p - s_re * sin_p;
                    field[i] -= k * (ak * im);
                }
            }
        }
    }

    // --- Self-energy correction ---
    let self_term = 2.0 * alpha / std::f64::consts::PI.sqrt();
    for i in 0..n {
        potential[i] -= self_term * charge[i];
    }

    let energy = 0.5 * potential.iter().zip(charge).map(|(p, q)| p * q).sum::<f64>();
    FieldSolution { potential, field, energy }
}

/// Total energy per ion of a perfect rock-salt crystal with nearest-neighbour
/// distance `a` (Gaussian units): each ion sits at potential
/// `-MADELUNG_NACL * q / a`, and the total energy counts every pair once, so
/// the energy per ion is `-MADELUNG_NACL / (2 a)` for unit charges.
pub fn madelung_energy_per_ion(a: f64) -> f64 {
    -crate::systems::MADELUNG_NACL / (2.0 * a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::IonicCrystal;

    #[test]
    fn direct_two_charges() {
        let pos = [Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0)];
        let charge = [1.0, -1.0];
        let sol = direct_open(&pos, &charge);
        assert!((sol.potential[0] - -0.5).abs() < 1e-14);
        assert!((sol.potential[1] - 0.5).abs() < 1e-14);
        assert!((sol.energy - -0.5).abs() < 1e-14);
        // Field on charge 0 points toward the negative charge (+x), with
        // magnitude q/r^2 = 1/4.
        assert!((sol.field[0].x() - 0.25).abs() < 1e-14);
        // Newton's third law on forces: q0*E0 = -q1*E1.
        let f0 = sol.field[0] * charge[0];
        let f1 = sol.field[1] * charge[1];
        assert!((f0 + f1).norm() < 1e-14);
    }

    #[test]
    fn direct_field_is_negative_gradient() {
        // Numerical gradient check of the potential at particle 0.
        let charge = [1.0, -2.0, 1.5];
        let base = [Vec3::new(0.1, 0.2, 0.3), Vec3::new(1.5, 0.1, -0.4), Vec3::new(-0.8, 1.1, 0.9)];
        let sol = direct_open(&base, &charge);
        let h = 1e-6;
        for axis in 0..3 {
            let mut plus = base;
            plus[0][axis] += h;
            let mut minus = base;
            minus[0][axis] -= h;
            let ppot = direct_open(&plus, &charge).potential[0];
            let mpot = direct_open(&minus, &charge).potential[0];
            let grad = (ppot - mpot) / (2.0 * h);
            assert!(
                (sol.field[0][axis] + grad).abs() < 1e-5,
                "axis {axis}: field {} vs -grad {}",
                sol.field[0][axis],
                -grad
            );
        }
    }

    #[test]
    fn ewald_reproduces_madelung_constant() {
        // Perfect 4x4x4 rock-salt crystal, spacing 1.
        let c = IonicCrystal::cubic(4, 1.0, 0.0, 0);
        let n = c.n();
        let mut pos = Vec::with_capacity(n);
        let mut charge = Vec::with_capacity(n);
        for id in 0..n as u64 {
            let (p, q) = c.particle(id);
            pos.push(p);
            charge.push(q);
        }
        let bbox = c.system_box();
        let params = EwaldParams::for_cubic_box(bbox.lengths.x());
        let sol = ewald(&pos, &charge, &bbox, params);
        let per_ion = sol.energy / n as f64;
        let want = madelung_energy_per_ion(1.0);
        assert!(
            (per_ion - want).abs() / want.abs() < 1e-5,
            "per-ion energy {per_ion}, want {want}"
        );
        // Each ion's potential is -M * q / a (q = +-1, a = 1).
        for (p, q) in sol.potential.iter().zip(&charge) {
            assert!(
                (p - -crate::systems::MADELUNG_NACL * q).abs() < 1e-5,
                "ion potential {p} for charge {q}"
            );
        }
        // In the perfect crystal the field at every ion vanishes by symmetry.
        for f in &sol.field {
            assert!(f.norm() < 1e-6, "field should vanish: {f:?}");
        }
    }

    #[test]
    fn ewald_energy_independent_of_alpha() {
        let c = IonicCrystal::cubic(2, 1.3, 0.2, 5);
        let n = c.n();
        let (mut pos, mut charge) = (Vec::new(), Vec::new());
        for id in 0..n as u64 {
            let (p, q) = c.particle(id);
            pos.push(p);
            charge.push(q);
        }
        let bbox = c.system_box();
        let l = bbox.lengths.x();
        // alpha*rcut >= 3.5 keeps the real-space truncation below ~1e-6, and
        // kmax >= alpha*l*3.5/pi does the same for reciprocal space.
        let a =
            ewald(&pos, &charge, &bbox, EwaldParams { alpha: 7.2 / l, rcut: 0.49 * l, kmax: 9 });
        let b =
            ewald(&pos, &charge, &bbox, EwaldParams { alpha: 8.5 / l, rcut: 0.49 * l, kmax: 11 });
        assert!(a.energy_rel_error(&b) < 1e-5, "alpha-independence: {} vs {}", a.energy, b.energy);
    }

    #[test]
    fn ewald_field_is_negative_gradient() {
        let bbox = SystemBox::cubic(5.0);
        let params = EwaldParams::for_cubic_box(5.0);
        let charge = [1.0, -1.0, 0.5, -0.5];
        let base = [
            Vec3::new(0.3, 0.4, 0.5),
            Vec3::new(2.6, 1.0, 3.9),
            Vec3::new(4.1, 4.2, 0.7),
            Vec3::new(1.2, 3.3, 2.2),
        ];
        let sol = ewald(&base, &charge, &bbox, params);
        let h = 1e-5;
        for axis in 0..3 {
            let mut plus = base;
            plus[0][axis] += h;
            let mut minus = base;
            minus[0][axis] -= h;
            let ppot = ewald(&plus, &charge, &bbox, params).potential[0];
            let mpot = ewald(&minus, &charge, &bbox, params).potential[0];
            let grad = (ppot - mpot) / (2.0 * h);
            assert!(
                (sol.field[0][axis] + grad).abs() < 1e-4,
                "axis {axis}: field {} vs -grad {}",
                sol.field[0][axis],
                -grad
            );
        }
    }

    #[test]
    fn solution_error_metrics() {
        let a =
            FieldSolution { potential: vec![1.0, 2.0], field: vec![Vec3::ZERO; 2], energy: 10.0 };
        let b =
            FieldSolution { potential: vec![1.0, 2.0], field: vec![Vec3::ZERO; 2], energy: 10.1 };
        assert!((a.energy_rel_error(&b) - 0.1 / 10.1).abs() < 1e-12);
        assert_eq!(a.potential_rms_error(&a), 0.0);
    }
}
