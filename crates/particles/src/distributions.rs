//! Initial particle distributions among parallel processes.
//!
//! The paper's simulation application "reads the particle system from an input
//! file and creates an initial distribution of the particles among the
//! parallel processes" and compares three such distributions (Sect. IV-B):
//! all particles on one single process, a uniformly random distribution, and a
//! domain decomposition that distributes particles uniformly among a Cartesian
//! process grid.
//!
//! Because every particle of a [`ParticleSource`] is a pure function of its
//! id, each rank generates its own share without any communication.

use crate::boxgeom::SystemBox;
use crate::set::ParticleSet;
use crate::systems::{splitmix64, IonicCrystal, RandomGas};
use crate::vec3::Vec3;

/// A particle system whose members are pure functions of their id.
pub trait ParticleSource {
    /// Total number of particles.
    fn n(&self) -> usize;
    /// The system box.
    fn system_box(&self) -> SystemBox;
    /// Position and charge of particle `id`.
    fn particle(&self, id: u64) -> (Vec3, f64);

    /// Optionally enumerate a superset of the ids whose particles can lie in
    /// the axis-aligned region `[lo, hi)` (with periodic wraparound). Sources
    /// with spatial structure override this to make grid distribution
    /// generation O(n/p) per rank instead of O(n).
    fn candidates_in_region(&self, _lo: Vec3, _hi: Vec3) -> Option<Vec<u64>> {
        None
    }
}

impl ParticleSource for IonicCrystal {
    fn n(&self) -> usize {
        IonicCrystal::n(self)
    }

    fn system_box(&self) -> SystemBox {
        IonicCrystal::system_box(self)
    }

    fn particle(&self, id: u64) -> (Vec3, f64) {
        IonicCrystal::particle(self, id)
    }

    fn candidates_in_region(&self, lo: Vec3, hi: Vec3) -> Option<Vec<u64>> {
        // Site (s+0.5)*spacing jittered by at most `jitter` per coordinate can
        // reach the region iff its cell index lies within the region's cell
        // range expanded by a margin (periodic wraparound handled modulo).
        let margin = (self.jitter / self.spacing).ceil() as i64 + 1;
        let mut ranges: Vec<Vec<usize>> = Vec::with_capacity(3);
        for d in 0..3 {
            let cells = self.cells[d] as i64;
            let c_lo = (lo[d] / self.spacing).floor() as i64 - margin;
            let c_hi = (hi[d] / self.spacing).ceil() as i64 + margin;
            let mut set: Vec<usize> = if c_hi - c_lo >= cells {
                (0..cells as usize).collect()
            } else {
                (c_lo..=c_hi).map(|c| c.rem_euclid(cells) as usize).collect()
            };
            set.sort_unstable();
            set.dedup();
            ranges.push(set);
        }
        let [_, cy, cz] = self.cells;
        let mut ids = Vec::with_capacity(ranges[0].len() * ranges[1].len() * ranges[2].len());
        for &sx in &ranges[0] {
            for &sy in &ranges[1] {
                for &sz in &ranges[2] {
                    ids.push((sx * cy * cz + sy * cz + sz) as u64);
                }
            }
        }
        Some(ids)
    }
}

impl ParticleSource for RandomGas {
    fn n(&self) -> usize {
        self.n
    }

    fn system_box(&self) -> SystemBox {
        self.bbox
    }

    fn particle(&self, id: u64) -> (Vec3, f64) {
        RandomGas::particle(self, id)
    }
}

/// The three initial distributions compared in the paper (Sect. IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitialDistribution {
    /// All particles on process 0.
    SingleProcess,
    /// Uniformly random assignment of particles to processes.
    Random,
    /// Particles distributed by position over a Cartesian process grid.
    Grid,
}

impl InitialDistribution {
    /// Short name used in reports ("single process" / "random" / "process grid").
    pub fn label(&self) -> &'static str {
        match self {
            InitialDistribution::SingleProcess => "single process",
            InitialDistribution::Random => "random",
            InitialDistribution::Grid => "process grid",
        }
    }
}

/// Rank owning position `p` under a uniform Cartesian grid decomposition of
/// the box into `dims` subdomains (row-major rank order, like
/// [`simcomm::CartGrid`](https://docs.rs) coordinates).
pub fn grid_rank_of(dims: [usize; 3], bbox: &SystemBox, p: Vec3) -> usize {
    let t = bbox.normalized(p);
    let mut c = [0usize; 3];
    for d in 0..3 {
        c[d] = ((t[d] * dims[d] as f64) as usize).min(dims[d] - 1);
    }
    c[0] * dims[1] * dims[2] + c[1] * dims[2] + c[2]
}

/// Spatial bounds `[lo, hi)` of grid cell `rank` under the decomposition.
pub fn grid_cell_bounds(dims: [usize; 3], bbox: &SystemBox, rank: usize) -> (Vec3, Vec3) {
    let [_, d1, d2] = dims;
    let c = [rank / (d1 * d2), (rank / d2) % d1, rank % d2];
    let mut lo = Vec3::ZERO;
    let mut hi = Vec3::ZERO;
    for d in 0..3 {
        let w = bbox.lengths[d] / dims[d] as f64;
        lo[d] = bbox.offset[d] + c[d] as f64 * w;
        hi[d] = bbox.offset[d] + (c[d] + 1) as f64 * w;
    }
    (lo, hi)
}

/// Salt mixed into the id hash for the random distribution so it is
/// uncorrelated with any other per-id hashing.
const RANDOM_DIST_SALT: u64 = 0x5bd1e9955bd1e995;

/// Generate the local particles of `rank` (out of `nprocs`) for the given
/// initial distribution. `grid_dims` is only used by
/// [`InitialDistribution::Grid`] and must multiply to `nprocs`.
pub fn local_set<S: ParticleSource + ?Sized>(
    src: &S,
    dist: InitialDistribution,
    rank: usize,
    nprocs: usize,
    grid_dims: [usize; 3],
) -> ParticleSet {
    assert!(rank < nprocs);
    let n = src.n() as u64;
    match dist {
        InitialDistribution::SingleProcess => {
            let mut out = ParticleSet::with_capacity(if rank == 0 { n as usize } else { 0 });
            if rank == 0 {
                for id in 0..n {
                    let (p, q) = src.particle(id);
                    out.push(p, q, id);
                }
            }
            out
        }
        InitialDistribution::Random => {
            let mut out = ParticleSet::with_capacity((n as usize / nprocs) * 2 + 16);
            for id in 0..n {
                if splitmix64(id ^ RANDOM_DIST_SALT) as usize % nprocs == rank {
                    let (p, q) = src.particle(id);
                    out.push(p, q, id);
                }
            }
            out
        }
        InitialDistribution::Grid => {
            assert_eq!(
                grid_dims.iter().product::<usize>(),
                nprocs,
                "grid dims must cover the world"
            );
            let bbox = src.system_box();
            let (lo, hi) = grid_cell_bounds(grid_dims, &bbox, rank);
            let mut out = ParticleSet::with_capacity((n as usize / nprocs) * 2 + 16);
            let mut take = |id: u64| {
                let (p, q) = src.particle(id);
                if grid_rank_of(grid_dims, &bbox, p) == rank {
                    out.push(p, q, id);
                }
            };
            match src.candidates_in_region(lo, hi) {
                Some(ids) => ids.into_iter().for_each(&mut take),
                None => (0..n).for_each(&mut take),
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crystal() -> IonicCrystal {
        IonicCrystal::cubic(8, 1.0, 0.2, 11)
    }

    /// Distributions must partition the system: every id exactly once.
    fn check_partition<S: ParticleSource>(
        src: &S,
        dist: InitialDistribution,
        nprocs: usize,
        dims: [usize; 3],
    ) {
        let mut seen = vec![false; src.n()];
        for rank in 0..nprocs {
            let s = local_set(src, dist, rank, nprocs, dims);
            for &id in s.id() {
                assert!(!seen[id as usize], "id {id} assigned twice ({dist:?})");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "some id unassigned ({dist:?})");
    }

    #[test]
    fn single_process_puts_everything_on_rank0() {
        let c = crystal();
        check_partition(&c, InitialDistribution::SingleProcess, 4, [2, 2, 1]);
        let s0 = local_set(&c, InitialDistribution::SingleProcess, 0, 4, [2, 2, 1]);
        assert_eq!(s0.len(), c.n());
        let s1 = local_set(&c, InitialDistribution::SingleProcess, 1, 4, [2, 2, 1]);
        assert!(s1.is_empty());
    }

    #[test]
    fn random_partitions_and_balances() {
        let c = crystal();
        let nprocs = 8;
        check_partition(&c, InitialDistribution::Random, nprocs, [2, 2, 2]);
        let avg = c.n() / nprocs;
        for rank in 0..nprocs {
            let s = local_set(&c, InitialDistribution::Random, rank, nprocs, [2, 2, 2]);
            assert!(
                s.len() > avg / 2 && s.len() < avg * 2,
                "rank {rank} got {} (avg {avg})",
                s.len()
            );
        }
    }

    #[test]
    fn grid_partitions_and_respects_geometry() {
        let c = crystal();
        let dims = [2, 2, 2];
        check_partition(&c, InitialDistribution::Grid, 8, dims);
        let bbox = c.system_box();
        for rank in 0..8 {
            let s = local_set(&c, InitialDistribution::Grid, rank, 8, dims);
            assert!(!s.is_empty());
            for &p in s.pos() {
                assert_eq!(grid_rank_of(dims, &bbox, p), rank);
            }
        }
    }

    #[test]
    fn grid_fast_path_matches_slow_path() {
        let c = crystal();
        let dims = [2, 4, 1];
        let bbox = c.system_box();
        for rank in 0..8 {
            let mut fast = local_set(&c, InitialDistribution::Grid, rank, 8, dims);
            // Slow path: scan all ids.
            let mut slow = ParticleSet::default();
            for id in 0..c.n() as u64 {
                let (p, q) = c.particle(id);
                if grid_rank_of(dims, &bbox, p) == rank {
                    slow.push(p, q, id);
                }
            }
            // Compare as sets ordered by id.
            let order_f = {
                let mut idx: Vec<usize> = (0..fast.len()).collect();
                idx.sort_by_key(|&i| fast.id()[i]);
                idx
            };
            fast.gather_permute(&order_f);
            let order_s = {
                let mut idx: Vec<usize> = (0..slow.len()).collect();
                idx.sort_by_key(|&i| slow.id()[i]);
                idx
            };
            slow.gather_permute(&order_s);
            assert_eq!(fast, slow, "rank {rank}");
        }
    }

    #[test]
    fn grid_rank_of_covers_all_ranks() {
        let bbox = SystemBox::cubic(16.0);
        let dims = [4, 2, 2];
        let mut seen = [false; 16];
        for x in 0..16 {
            for y in 0..8 {
                for z in 0..8 {
                    let p = Vec3::new(x as f64 + 0.5, y as f64 * 2.0 + 0.5, z as f64 * 2.0 + 0.5);
                    seen[grid_rank_of(dims, &bbox, p)] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn grid_cell_bounds_tile_the_box() {
        let bbox = SystemBox::cubic(12.0);
        let dims = [3, 2, 2];
        let mut vol = 0.0;
        for rank in 0..12 {
            let (lo, hi) = grid_cell_bounds(dims, &bbox, rank);
            vol += (hi.x() - lo.x()) * (hi.y() - lo.y()) * (hi.z() - lo.z());
            // Center of the cell maps back to the rank.
            let c = (lo + hi) * 0.5;
            assert_eq!(grid_rank_of(dims, &bbox, c), rank);
        }
        assert!((vol - bbox.volume()).abs() < 1e-9);
    }

    #[test]
    fn random_gas_grid_distribution_slow_path() {
        let g = RandomGas { n: 500, bbox: SystemBox::cubic(10.0), seed: 9 };
        check_partition(&g, InitialDistribution::Grid, 4, [2, 2, 1]);
        check_partition(&g, InitialDistribution::Random, 4, [2, 2, 1]);
    }
}
