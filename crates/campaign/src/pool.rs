//! Work-stealing worker pool for campaign runs.
//!
//! The pool executes a *static* item set (run indices known up front) on a
//! fixed number of worker threads. Items are dealt round-robin into per-worker
//! deques; a worker pops from the *back* of its own deque and, when empty,
//! steals from the *front* of a victim's — the classic split that keeps
//! owner/thief contention on opposite ends. Simulation runs are seconds-long,
//! so a `Mutex<VecDeque>` per worker is entirely adequate; the stealing
//! matters because run durations vary wildly (a 3-step fig8 config vs. a
//! deadline-hung chaos config), not because pop latency does.
//!
//! The `work` closure runs on pool threads and receives only the item index;
//! shared read-only state (machine models, configs) is captured by reference.
//! Closure panics are the *caller's* job to contain (the campaign runner
//! wraps each run in `catch_unwind`); a panic that escapes `work` aborts the
//! pool via the scoped-thread join.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Execute `work(i)` for every `i in 0..items` on `workers` threads with
/// work stealing. Returns when all items have run (or were abandoned because
/// `stop` became true — items not yet claimed when `stop` is observed are
/// skipped, but items already claimed run to completion).
///
/// `workers == 0` is clamped to 1. Items are dealt round-robin (`i % workers`)
/// so a deterministic workload starts in a deterministic initial placement —
/// though *completion* order is inherently racy, which is why campaign
/// results are keyed by item, never by completion order.
pub fn run_stealing<F>(items: usize, workers: usize, stop: &AtomicBool, work: F)
where
    F: Fn(usize) + Sync,
{
    let workers = workers.max(1).min(items.max(1));
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..items {
        queues[i % workers].lock().expect("pool queue poisoned").push_back(i);
    }
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let work = &work;
            scope.spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Own queue first (back = most recently dealt)...
                let mine = queues[w].lock().expect("pool queue poisoned").pop_back();
                let item = match mine {
                    Some(i) => Some(i),
                    // ...then steal from victims' fronts.
                    None => (1..workers).find_map(|d| {
                        queues[(w + d) % workers].lock().expect("pool queue poisoned").pop_front()
                    }),
                };
                match item {
                    Some(i) => work(i),
                    None => return, // all queues drained
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_item_exactly_once() {
        for (items, workers) in [(0, 4), (1, 4), (7, 1), (64, 3), (100, 16)] {
            let hits: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
            let stop = AtomicBool::new(false);
            run_stealing(items, workers, &stop, |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "items={items} workers={workers}"
            );
        }
    }

    #[test]
    fn idle_workers_steal_from_the_loaded_one() {
        // One slow item pins worker 0; the rest must still complete promptly
        // because other workers steal them.
        let items = 32;
        let done = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        run_stealing(items, 4, &stop, |i| {
            if i == 0 {
                while done.load(Ordering::SeqCst) < items - 1 {
                    std::thread::yield_now();
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(done.load(Ordering::SeqCst), items);
    }

    #[test]
    fn stop_abandons_unclaimed_items() {
        let ran = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        run_stealing(100, 1, &stop, |_| {
            if ran.fetch_add(1, Ordering::SeqCst) + 1 == 5 {
                stop.store(true, Ordering::SeqCst);
            }
        });
        assert_eq!(ran.load(Ordering::SeqCst), 5);
    }
}
