//! Append-only, checksummed campaign journal.
//!
//! The journal is the campaign's source of durability: every run transition
//! (started, completed, failed attempt, gave up) is appended as one line and
//! fsynced before the runner proceeds, so a `kill -9` at any instant loses at
//! most the line being written — never a previously acknowledged record.
//!
//! ## Format
//!
//! The file is plain text, one record per line:
//!
//! ```text
//! campaign 1 <spec-fingerprint-hex> % <sum>
//! <seq> started <run> <attempt> % <sum>
//! <seq> completed <run> <attempt> <payload-len> <payload-sum-hex> % <sum>
//! <seq> attempt-failed <run> <attempt> <kind> <detail> % <sum>
//! <seq> gave-up <run> <attempts> <kind> <detail> % <sum>
//! ```
//!
//! Each line ends in a checksum over its body, *chained* from the previous
//! line's checksum (the header chains from a fixed seed). Chaining means a
//! line is only valid in its exact position: records cannot be reordered,
//! spliced from another journal, or survive a corrupted predecessor. This is
//! the same footer discipline as `mdsim::io::Snapshot` — a splitmix64 fold
//! over the bytes — extended from one footer per file to one per record so an
//! append-only log can be cut back to its longest valid prefix.
//!
//! ## Torn tails
//!
//! On [`Journal::open`] the file is replayed; the first line that fails to
//! parse or checksum marks the *torn tail*: everything from it onward is
//! discarded (the file is truncated back to the valid prefix) and reported in
//! [`Journal::torn`]. A run whose `started` record survived but whose outcome
//! was torn off is simply in-flight again and will be re-run — re-running a
//! completed-but-unacknowledged run is safe because runs are deterministic.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Seed for the journal's chained checksum and payload checksums
/// ("CAMPAIGN" in ASCII).
pub const CHAIN_SEED: u64 = 0x4341_4d50_4149_474e;

/// Fixed-point hash step (same function as `particles::systems::splitmix64`,
/// re-derived locally so the campaign crate depends only on `simcomm`).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fold arbitrary bytes into a 64-bit checksum starting from `seed`
/// (8-byte little-endian chunks, zero-padded — the `Snapshot` discipline).
pub fn fold_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(word));
    }
    h
}

/// Fingerprint of a campaign specification: a fold over the ordered run
/// names. A journal opened against a *different* spec (renamed, reordered or
/// re-counted runs) is rejected with [`JournalError::SpecMismatch`] instead
/// of silently mixing two campaigns' states.
pub fn spec_fingerprint<S: AsRef<str>>(names: &[S]) -> u64 {
    let mut h = fold_bytes(CHAIN_SEED, &(names.len() as u64).to_le_bytes());
    for n in names {
        let b = n.as_ref().as_bytes();
        h = fold_bytes(h, &(b.len() as u64).to_le_bytes());
        h = fold_bytes(h, b);
    }
    h
}

/// Escape one record field for the space-separated line format.
/// `\` → `\\`, space → `\s`, newline → `\n`, CR → `\r`; the empty string
/// becomes `\e` so every field occupies exactly one token.
fn escape(s: &str) -> String {
    if s.is_empty() {
        return "\\e".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a dangling or unknown escape.
fn unescape(s: &str) -> Option<String> {
    if s == "\\e" {
        return Some(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            's' => out.push(' '),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            'e' => return None, // \e is only valid as the whole field
            _ => return None,
        }
    }
    Some(out)
}

/// One campaign state transition, as journaled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// Attempt `attempt` (1-based) of run `run` began executing.
    Started {
        /// Run name.
        run: String,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// Run `run` completed on attempt `attempt`; its payload was durably
    /// written before this record, and is `payload_len` bytes with the given
    /// fold checksum, so resume can verify the payload file it finds.
    Completed {
        /// Run name.
        run: String,
        /// 1-based attempt number that succeeded.
        attempt: u32,
        /// Payload length in bytes.
        payload_len: u64,
        /// [`fold_bytes`] checksum of the payload (seed [`CHAIN_SEED`]).
        payload_sum: u64,
    },
    /// Attempt `attempt` of run `run` failed with a retryable error; the
    /// runner will back off and try again.
    AttemptFailed {
        /// Run name.
        run: String,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// Failure class (e.g. `"panic"`, `"deadline"`, `"deadlock"`).
        kind: String,
        /// Human-readable failure detail.
        detail: String,
    },
    /// Run `run` exhausted its retry budget; `kind`/`detail` describe the
    /// final attempt's failure. The run is terminally failed.
    GaveUp {
        /// Run name.
        run: String,
        /// Total attempts made.
        attempts: u32,
        /// Failure class of the final attempt.
        kind: String,
        /// Human-readable failure detail of the final attempt.
        detail: String,
    },
}

impl Record {
    /// Serialize the record body (no sequence number, no checksum).
    fn body(&self) -> String {
        match self {
            Record::Started { run, attempt } => {
                format!("started {} {attempt}", escape(run))
            }
            Record::Completed { run, attempt, payload_len, payload_sum } => {
                format!("completed {} {attempt} {payload_len} {payload_sum:016x}", escape(run))
            }
            Record::AttemptFailed { run, attempt, kind, detail } => {
                format!(
                    "attempt-failed {} {attempt} {} {}",
                    escape(run),
                    escape(kind),
                    escape(detail)
                )
            }
            Record::GaveUp { run, attempts, kind, detail } => {
                format!("gave-up {} {attempts} {} {}", escape(run), escape(kind), escape(detail))
            }
        }
    }

    /// Parse a record body produced by [`Record::body`].
    fn parse(body: &str) -> Option<Record> {
        let mut t = body.split(' ');
        let rec = match t.next()? {
            "started" => {
                Record::Started { run: unescape(t.next()?)?, attempt: t.next()?.parse().ok()? }
            }
            "completed" => Record::Completed {
                run: unescape(t.next()?)?,
                attempt: t.next()?.parse().ok()?,
                payload_len: t.next()?.parse().ok()?,
                payload_sum: u64::from_str_radix(t.next()?, 16).ok()?,
            },
            "attempt-failed" => Record::AttemptFailed {
                run: unescape(t.next()?)?,
                attempt: t.next()?.parse().ok()?,
                kind: unescape(t.next()?)?,
                detail: unescape(t.next()?)?,
            },
            "gave-up" => Record::GaveUp {
                run: unescape(t.next()?)?,
                attempts: t.next()?.parse().ok()?,
                kind: unescape(t.next()?)?,
                detail: unescape(t.next()?)?,
            },
            _ => return None,
        };
        if t.next().is_some() {
            return None; // trailing garbage
        }
        Some(rec)
    }
}

/// Why a journal could not be opened.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The header is present and valid but records a different campaign
    /// specification (run names changed, reordered, or re-counted).
    SpecMismatch {
        /// Fingerprint recorded in the journal header.
        found: u64,
        /// Fingerprint of the spec being resumed.
        expected: u64,
    },
    /// The header itself is unreadable — the file exists but is not a
    /// campaign journal (or its very first line was torn). The caller should
    /// start fresh (typically under a new path or after explicit removal).
    BadHeader,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::SpecMismatch { found, expected } => write!(
                f,
                "journal belongs to a different campaign spec \
                 (journal {found:016x}, expected {expected:016x})"
            ),
            JournalError::BadHeader => {
                write!(f, "file is not a campaign journal (bad or torn header)")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Description of a torn tail discarded on open.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Number of valid records that survived (excluding the header).
    pub valid_records: usize,
    /// Bytes truncated off the end of the file.
    pub dropped_bytes: u64,
}

/// An open campaign journal: the replayed record prefix plus an append
/// handle positioned after the last valid record.
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Records replayed from the valid prefix, in append order.
    records: Vec<Record>,
    /// Chained checksum of the last valid line (the seed for the next).
    chain: u64,
    /// Next record's sequence number.
    seq: u64,
    /// Torn tail discarded on open, if any.
    torn: Option<TornTail>,
}

impl Journal {
    /// Create a fresh journal at `path` for the spec with the given
    /// fingerprint, truncating any existing file.
    pub fn create(path: &Path, fingerprint: u64) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        let body = format!("campaign 1 {fingerprint:016x}");
        let chain = fold_bytes(CHAIN_SEED, body.as_bytes());
        writeln!(file, "{body} % {chain:016x}")?;
        file.sync_data()?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            records: Vec::new(),
            chain,
            seq: 0,
            torn: None,
        })
    }

    /// Open an existing journal, replaying its records and truncating any
    /// torn tail. Fails if the header is unreadable or belongs to a
    /// different spec fingerprint.
    pub fn open(path: &Path, fingerprint: u64) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        // Raw bytes, not a String: a bit flip can produce invalid UTF-8, and
        // that must count as a torn line, not an unreadable file.
        let mut text = Vec::new();
        file.read_to_end(&mut text)?;
        let text = &text[..];

        // Header: first line, checksum chained from the fixed seed.
        let (header_body, header_chain, header_end) =
            next_valid_line(text, 0, CHAIN_SEED).ok_or(JournalError::BadHeader)?;
        let mut h = header_body.split(' ');
        match (h.next(), h.next(), h.next(), h.next()) {
            (Some("campaign"), Some("1"), Some(fp), None) => {
                let found = u64::from_str_radix(fp, 16).map_err(|_| JournalError::BadHeader)?;
                if found != fingerprint {
                    return Err(JournalError::SpecMismatch { found, expected: fingerprint });
                }
            }
            _ => return Err(JournalError::BadHeader),
        }

        // Records: replay until the first invalid line.
        let mut records = Vec::new();
        let mut chain = header_chain;
        let mut pos = header_end;
        let mut seq = 0u64;
        loop {
            if pos >= text.len() {
                break;
            }
            match next_valid_line(text, pos, chain) {
                Some((body, line_chain, end)) => {
                    // Body must be "<seq> <record-body>" with the expected seq.
                    let rec = body
                        .split_once(' ')
                        .filter(|(s, _)| s.parse::<u64>() == Ok(seq))
                        .and_then(|(_, rest)| Record::parse(rest));
                    match rec {
                        Some(r) => {
                            records.push(r);
                            chain = line_chain;
                            seq += 1;
                            pos = end;
                        }
                        None => break,
                    }
                }
                None => break,
            }
        }

        // Truncate the torn tail, if any.
        let torn = if pos < text.len() {
            let dropped = (text.len() - pos) as u64;
            file.set_len(pos as u64)?;
            file.sync_data()?;
            Some(TornTail { valid_records: records.len(), dropped_bytes: dropped })
        } else {
            None
        };
        file.seek(std::io::SeekFrom::Start(pos as u64))?;

        Ok(Journal { file, path: path.to_path_buf(), records, chain, seq, torn })
    }

    /// Append one record durably: the line is written and fsynced before
    /// this returns, so an acknowledged record survives `kill -9`.
    pub fn append(&mut self, rec: &Record) -> std::io::Result<()> {
        let body = format!("{} {}", self.seq, rec.body());
        let chain = fold_bytes(self.chain, body.as_bytes());
        writeln!(self.file, "{body} % {chain:016x}")?;
        self.file.sync_data()?;
        self.chain = chain;
        self.seq += 1;
        self.records.push(rec.clone());
        Ok(())
    }

    /// Records replayed (on open) and appended so far, in order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The torn tail truncated on open, if any.
    pub fn torn(&self) -> Option<&TornTail> {
        self.torn.as_ref()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parse the line starting at byte `pos`: it must end in `\n`, be valid
/// UTF-8, split as `"{body} % {sum:016x}"`, and `sum` must equal
/// `fold_bytes(chain, body)`. Returns `(body, new_chain, next_pos)`.
/// Positions are raw byte offsets so a recovered prefix can be `set_len` to.
fn next_valid_line(text: &[u8], pos: usize, chain: u64) -> Option<(&str, u64, usize)> {
    let rest = &text[pos..];
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&rest[..nl]).ok()?;
    let (body, sum_hex) = line.rsplit_once(" % ")?;
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    let expect = fold_bytes(chain, body.as_bytes());
    if sum != expect {
        return None;
    }
    Some((body, sum, pos + nl + 1))
}

/// Per-run resume state derived from a replayed journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunState {
    /// The run completed; its payload file should be `payload_len` bytes
    /// with checksum `payload_sum`.
    Completed {
        /// Attempt that succeeded.
        attempt: u32,
        /// Expected payload length.
        payload_len: u64,
        /// Expected payload checksum.
        payload_sum: u64,
    },
    /// The run terminally failed after `attempts` attempts.
    GaveUp {
        /// Total attempts made.
        attempts: u32,
        /// Failure class of the final attempt.
        kind: String,
        /// Failure detail of the final attempt.
        detail: String,
    },
    /// The run was started (possibly several times) but has no terminal
    /// record: it was in flight when the campaign died and must re-run.
    InFlight {
        /// Number of `attempt-failed` records seen (the next attempt number
        /// is `failed_attempts + 1`).
        failed_attempts: u32,
    },
}

impl Journal {
    /// Fold the replayed records into per-run states. Runs never mentioned
    /// in the journal are absent from the result (they never started).
    pub fn resume_states(&self) -> std::collections::HashMap<String, RunState> {
        let mut m = std::collections::HashMap::new();
        for rec in &self.records {
            match rec {
                Record::Started { run, .. } => {
                    m.entry(run.clone()).or_insert(RunState::InFlight { failed_attempts: 0 });
                }
                Record::Completed { run, attempt, payload_len, payload_sum } => {
                    m.insert(
                        run.clone(),
                        RunState::Completed {
                            attempt: *attempt,
                            payload_len: *payload_len,
                            payload_sum: *payload_sum,
                        },
                    );
                }
                Record::AttemptFailed { run, attempt, .. } => {
                    m.insert(run.clone(), RunState::InFlight { failed_attempts: *attempt });
                }
                Record::GaveUp { run, attempts, kind, detail } => {
                    m.insert(
                        run.clone(),
                        RunState::GaveUp {
                            attempts: *attempts,
                            kind: kind.clone(),
                            detail: detail.clone(),
                        },
                    );
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("campaign-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Started { run: "fig8/a".into(), attempt: 1 },
            Record::AttemptFailed {
                run: "fig8/a".into(),
                attempt: 1,
                kind: "panic".into(),
                detail: "rank 2 panicked: injected fault".into(),
            },
            Record::Started { run: "fig8/a".into(), attempt: 2 },
            Record::Completed {
                run: "fig8/a".into(),
                attempt: 2,
                payload_len: 123,
                payload_sum: 7,
            },
            Record::Started { run: "with space".into(), attempt: 1 },
            Record::GaveUp {
                run: "with space".into(),
                attempts: 3,
                kind: "deadline".into(),
                detail: "wall-clock deadline of 2 s exceeded".into(),
            },
            Record::Started { run: "torn".into(), attempt: 1 },
        ]
    }

    #[test]
    fn roundtrip_append_reopen() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("journal.log");
        let fp = spec_fingerprint(&["fig8/a", "with space", "torn"]);
        let recs = sample_records();
        {
            let mut j = Journal::create(&path, fp).unwrap();
            for r in &recs {
                j.append(r).unwrap();
            }
        }
        let j = Journal::open(&path, fp).unwrap();
        assert_eq!(j.records(), &recs[..]);
        assert!(j.torn().is_none());
        let states = j.resume_states();
        assert_eq!(
            states["fig8/a"],
            RunState::Completed { attempt: 2, payload_len: 123, payload_sum: 7 }
        );
        assert!(matches!(states["with space"], RunState::GaveUp { attempts: 3, .. }));
        assert_eq!(states["torn"], RunState::InFlight { failed_attempts: 0 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_wrong_spec_fingerprint() {
        let dir = tmpdir("spec");
        let path = dir.join("journal.log");
        let fp = spec_fingerprint(&["a", "b"]);
        Journal::create(&path, fp).unwrap();
        let other = spec_fingerprint(&["a", "b", "c"]);
        match Journal::open(&path, other) {
            Err(JournalError::SpecMismatch { found, expected }) => {
                assert_eq!(found, fp);
                assert_eq!(expected, other);
            }
            other => panic!("expected SpecMismatch, got {other:?}", other = other.map(|_| ())),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn escape_roundtrips_awkward_fields() {
        for s in ["", " ", "a b", "line\nbreak", "back\\slash", "\r\n", "\\e", "tr ail "] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s), "field {s:?}");
            assert!(!escape(s).contains(' '), "escaped form must be one token: {s:?}");
        }
    }

    /// Property test: any truncation of the journal, and any single bit flip
    /// anywhere in it, is detected on open — the journal recovers to a valid
    /// record prefix and never replays a corrupted record. Mirrors the
    /// `Snapshot` footer corruption test in `mdsim::io`.
    #[test]
    fn truncated_and_bit_flipped_tails_recover_to_valid_prefix() {
        let dir = tmpdir("corrupt");
        let path = dir.join("journal.log");
        let fp = spec_fingerprint(&["fig8/a", "with space", "torn"]);
        let recs = sample_records();
        {
            let mut j = Journal::create(&path, fp).unwrap();
            for r in &recs {
                j.append(r).unwrap();
            }
        }
        let pristine = std::fs::read(&path).unwrap();
        // Line start offsets tell us how many full records precede a byte.
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(pristine.iter().enumerate().filter(|(_, &b)| b == b'\n').map(|(i, _)| i + 1))
            .collect();
        let complete_records_before = |byte: usize| -> usize {
            // Lines fully contained in [0, byte): count, minus 1 for the header.
            line_starts.iter().filter(|&&s| s > 0 && s <= byte).count().saturating_sub(1)
        };

        // Truncation at every byte boundary (step 7 keeps the test fast but
        // still hits every line at several interior offsets).
        for cut in (0..pristine.len()).step_by(7).chain([pristine.len() - 1]) {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            match Journal::open(&path, fp) {
                Ok(j) => {
                    let expect = complete_records_before(cut);
                    assert_eq!(j.records().len(), expect, "cut at {cut}");
                    assert_eq!(j.records(), &recs[..expect], "cut at {cut}");
                    if cut < pristine.len() && !line_starts.contains(&cut) {
                        assert!(j.torn().is_some(), "partial line at {cut} must report torn");
                    }
                }
                Err(JournalError::BadHeader) => {
                    // Only legal while the header line itself is incomplete.
                    assert!(cut < line_starts[1], "cut at {cut} unexpectedly lost the header");
                }
                Err(e) => panic!("cut at {cut}: unexpected error {e}"),
            }
        }

        // Single bit flips: every 11th byte, middle bit positions.
        for byte in (0..pristine.len()).step_by(11) {
            for bit in [0, 3, 7] {
                let mut bad = pristine.clone();
                bad[byte] ^= 1 << bit;
                std::fs::write(&path, &bad).unwrap();
                match Journal::open(&path, fp) {
                    Ok(j) => {
                        // The flipped line (and everything after) must be gone.
                        let limit = complete_records_before(byte + 1);
                        assert!(
                            j.records().len() <= limit,
                            "flip at {byte}.{bit}: replayed {} records past the flip",
                            j.records().len()
                        );
                        assert_eq!(j.records(), &recs[..j.records().len()]);
                        assert!(j.torn().is_some(), "flip at {byte}.{bit} must report torn");
                    }
                    Err(JournalError::BadHeader) => {
                        assert!(byte < line_starts[1], "flip at {byte}.{bit} outside header");
                    }
                    Err(JournalError::SpecMismatch { .. }) => {
                        // A flip inside the header's fingerprint hex digits.
                        assert!(byte < line_starts[1]);
                    }
                    Err(e) => panic!("flip at {byte}.{bit}: unexpected error {e}"),
                }
            }
        }

        // After recovery, the journal must accept new appends and reopen clean.
        std::fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
        {
            let mut j = Journal::open(&path, fp).unwrap();
            assert!(j.torn().is_some());
            j.append(&Record::Started { run: "torn".into(), attempt: 1 }).unwrap();
        }
        let j = Journal::open(&path, fp).unwrap();
        assert!(j.torn().is_none());
        assert_eq!(j.records().last(), Some(&Record::Started { run: "torn".into(), attempt: 1 }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chained_checksums_reject_record_reordering() {
        let dir = tmpdir("reorder");
        let path = dir.join("journal.log");
        let fp = spec_fingerprint(&["a"]);
        {
            let mut j = Journal::create(&path, fp).unwrap();
            j.append(&Record::Started { run: "a".into(), attempt: 1 }).unwrap();
            j.append(&Record::Completed {
                run: "a".into(),
                attempt: 1,
                payload_len: 1,
                payload_sum: 2,
            })
            .unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(1, 2);
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let j = Journal::open(&path, fp).unwrap();
        // Both swapped lines are invalid in their new positions.
        assert_eq!(j.records().len(), 0);
        assert!(j.torn().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
