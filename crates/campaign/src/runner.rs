//! The supervised campaign runner: retry state machine + resume logic.
//!
//! Each run walks a small state machine, every transition journaled before
//! the runner acts on it:
//!
//! ```text
//!             ┌────────────────────── backoff · attempt+1 ──────────────┐
//!             ▼                                                         │
//! (pending) ── started ──▶ executing ──▶ ok ──▶ payload fsync ──▶ completed
//!                              │
//!                              └─ err/panic ─▶ attempt < max ? attempt-failed ─┘
//!                                             attempt = max ? gave-up (terminal)
//! ```
//!
//! Retries re-execute the *same* closure with the same config and a bumped
//! attempt counter; because runs are deterministic (seeded virtual-time
//! simulations), a retry that succeeds produces a payload bitwise identical
//! to an unfaulted first attempt — which is what makes kill-and-resume
//! reproducible end to end.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use simcomm::WorldError;

use crate::journal::{fold_bytes, spec_fingerprint, Journal, JournalError, Record, RunState};
use crate::pool::run_stealing;

/// One run in a campaign: a unique name (the journal/resume key) plus the
/// caller's configuration value.
pub struct RunDef<C> {
    /// Unique, stable run name. Resume matches journal records by this name,
    /// so it must not change between invocations of the same campaign.
    pub name: String,
    /// Caller-defined configuration handed to the exec closure.
    pub config: C,
}

/// Campaign-wide supervision policy.
#[derive(Clone, Debug)]
pub struct Policy {
    /// Worker threads executing runs concurrently.
    pub workers: usize,
    /// Maximum attempts per run (>= 1); the final failure becomes a
    /// `gave-up` record instead of another retry.
    pub max_attempts: u32,
    /// Base backoff slept after attempt `k` fails: `backoff * 2^(k-1)`.
    pub backoff: Duration,
    /// Per-run wall-clock deadline, passed through to the exec closure via
    /// [`RunCtx::deadline`] (typically wired to `simcomm::Runner::deadline`).
    pub deadline: Option<Duration>,
    /// Crash-injection hook for tests and CI: stop claiming new runs after
    /// this many runs reached a terminal state *in this invocation*. The
    /// campaign returns with [`CampaignOutcome::halted`] set; a subsequent
    /// invocation resumes from the journal exactly as after a `kill -9`.
    pub halt_after: Option<usize>,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            workers: 4,
            max_attempts: 3,
            backoff: Duration::from_millis(50),
            deadline: None,
            halt_after: None,
        }
    }
}

/// Per-attempt context handed to the exec closure.
pub struct RunCtx {
    /// The run's name.
    pub name: String,
    /// 1-based attempt number. Deterministically flaky test configs key on
    /// this; real runs ignore it (that is what makes retries seed-stable).
    pub attempt: u32,
    /// The policy deadline, for wiring into `simcomm::Runner::deadline`.
    pub deadline: Option<Duration>,
    /// Per-run scratch directory, stable across attempts *and* resumes —
    /// the place for mid-run checkpoints (`mdsim::io::Snapshot`) so a retry
    /// or resumed campaign can pick up a partially completed run.
    pub dir: PathBuf,
}

/// Terminal result of one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The run succeeded and produced a payload (typically a serialized
    /// per-run report).
    Completed {
        /// The payload as returned by the exec closure (re-read from disk
        /// when reused by a resume — verified against the journal).
        payload: String,
        /// Attempts consumed (1 = clean first attempt).
        attempts: u32,
        /// True when this outcome was reused from a previous invocation's
        /// journal instead of executed now.
        resumed: bool,
    },
    /// The run exhausted its retry budget; the campaign continued without it.
    Failed {
        /// Failure class of the final attempt (a `WorldError::kind()` string,
        /// or `"harness-panic"` for a panic outside the world).
        kind: String,
        /// Failure detail of the final attempt.
        detail: String,
        /// Attempts consumed.
        attempts: u32,
        /// True when reused from a previous invocation's journal.
        resumed: bool,
    },
}

/// One row of the campaign result, in input (not completion) order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunRow {
    /// The run's name.
    pub name: String,
    /// Terminal outcome, or `None` if the campaign halted before this run
    /// was claimed (it remains pending in the journal and will run on the
    /// next invocation).
    pub outcome: Option<RunOutcome>,
}

/// Aggregated result of one campaign invocation.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Per-run rows in input order.
    pub runs: Vec<RunRow>,
    /// Runs whose terminal outcome was reused from the journal.
    pub reused: usize,
    /// Runs executed (at least one attempt) in this invocation.
    pub executed: usize,
    /// True when [`Policy::halt_after`] stopped the invocation early.
    pub halted: bool,
}

impl CampaignOutcome {
    /// Rows that reached [`RunOutcome::Completed`].
    pub fn completed(&self) -> impl Iterator<Item = &RunRow> {
        self.runs.iter().filter(|r| matches!(r.outcome, Some(RunOutcome::Completed { .. })))
    }

    /// Rows that reached [`RunOutcome::Failed`].
    pub fn failed(&self) -> impl Iterator<Item = &RunRow> {
        self.runs.iter().filter(|r| matches!(r.outcome, Some(RunOutcome::Failed { .. })))
    }
}

/// Why a campaign invocation failed as a whole (individual run failures do
/// *not* fail the campaign — they become [`RunOutcome::Failed`] rows).
#[derive(Debug)]
pub enum CampaignError {
    /// The journal could not be created, opened, or belongs to another spec.
    Journal(JournalError),
    /// A durable write (journal append, payload file) failed mid-campaign.
    Io(std::io::Error),
    /// Two runs share a name; resume state would be ambiguous.
    DuplicateRun(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Journal(e) => write!(f, "campaign journal: {e}"),
            CampaignError::Io(e) => write!(f, "campaign io: {e}"),
            CampaignError::DuplicateRun(name) => {
                write!(f, "duplicate run name {name:?} in campaign spec")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// Filesystem-safe, collision-free file stem for a run name: alphanumerics,
/// `-`, `_` and `.` pass through, everything else becomes `_`, and an 8-hex
/// hash of the original name is appended so distinct names never collide.
pub fn mangle(name: &str) -> String {
    let safe: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || "-_.".contains(c) { c } else { '_' })
        .collect();
    format!("{safe}-{:08x}", fold_bytes(0, name.as_bytes()) as u32)
}

/// Extract a panic payload as text.
fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared mutable campaign state, one lock each so workers serialize only on
/// the journal (the hot path) and the first-error slot (cold).
struct Shared<'a> {
    journal: Mutex<&'a mut Journal>,
    first_io_error: Mutex<Option<std::io::Error>>,
    terminal_this_invocation: AtomicUsize,
    stop: &'a AtomicBool,
    halt_after: Option<usize>,
}

impl Shared<'_> {
    /// Journal a record; on io failure, latch the error and stop the pool.
    fn journal(&self, rec: &Record) -> bool {
        let res = self.journal.lock().expect("journal lock poisoned").append(rec);
        match res {
            Ok(()) => true,
            Err(e) => {
                self.fail_io(e);
                false
            }
        }
    }

    fn fail_io(&self, e: std::io::Error) {
        let mut slot = self.first_io_error.lock().expect("error lock poisoned");
        if slot.is_none() {
            *slot = Some(e);
        }
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Count one run reaching a terminal state; trip the halt if configured.
    fn terminal(&self) {
        let n = self.terminal_this_invocation.fetch_add(1, Ordering::SeqCst) + 1;
        if self.halt_after.is_some_and(|h| n >= h) {
            self.stop.store(true, Ordering::SeqCst);
        }
    }
}

/// Execute a campaign of `runs` under `policy`, journaling into `dir`.
///
/// `exec` is called once per attempt with the run's config and a [`RunCtx`];
/// it returns the run's payload (serialized per-run report) on success or a
/// [`WorldError`] on simulation failure. Panics escaping `exec` are caught
/// (`catch_unwind`) and classified as `"harness-panic"` — a distinct kind
/// from `"panic"` (a rank panic the world itself reported) so harness bugs
/// do not masquerade as simulation faults.
///
/// If `dir` already holds a journal for the *same* spec, completed runs are
/// reused (their payloads verified against the journaled length/checksum),
/// terminally failed runs stay failed, and in-flight runs re-execute with
/// their attempt counter restored. A journal for a different spec is an
/// error ([`JournalError::SpecMismatch`]).
pub fn run_campaign<C, F>(
    dir: &Path,
    policy: &Policy,
    runs: &[RunDef<C>],
    exec: F,
) -> Result<CampaignOutcome, CampaignError>
where
    C: Sync,
    F: Fn(&C, &RunCtx) -> Result<String, WorldError> + Sync,
{
    let names: Vec<&str> = runs.iter().map(|r| r.name.as_str()).collect();
    {
        let mut seen = std::collections::HashSet::new();
        for n in &names {
            if !seen.insert(*n) {
                return Err(CampaignError::DuplicateRun((*n).to_string()));
            }
        }
    }
    std::fs::create_dir_all(dir.join("payloads"))?;
    std::fs::create_dir_all(dir.join("scratch"))?;

    let fp = spec_fingerprint(&names);
    let journal_path = dir.join("journal.log");
    let mut journal = if journal_path.exists() {
        Journal::open(&journal_path, fp)?
    } else {
        Journal::create(&journal_path, fp)?
    };
    let states = journal.resume_states();

    // Pre-fill rows from resume state; collect the indices still needing work.
    let rows: Vec<Mutex<Option<RunOutcome>>> = runs.iter().map(|_| Mutex::new(None)).collect();
    let mut pending: Vec<(usize, u32)> = Vec::new(); // (run index, starting attempt)
    let mut reused = 0usize;
    for (i, def) in runs.iter().enumerate() {
        match states.get(&def.name) {
            Some(RunState::Completed { attempt, payload_len, payload_sum }) => {
                let path = dir.join("payloads").join(format!("{}.json", mangle(&def.name)));
                match std::fs::read(&path) {
                    Ok(bytes)
                        if bytes.len() as u64 == *payload_len
                            && fold_bytes(crate::journal::CHAIN_SEED, &bytes) == *payload_sum =>
                    {
                        let payload = String::from_utf8(bytes)
                            .map_err(|e| std::io::Error::other(e.to_string()))?;
                        *rows[i].lock().expect("row lock") = Some(RunOutcome::Completed {
                            payload,
                            attempts: *attempt,
                            resumed: true,
                        });
                        reused += 1;
                    }
                    // Missing or corrupt payload: the journal said completed
                    // but the evidence is gone — re-run from scratch.
                    _ => pending.push((i, 1)),
                }
            }
            Some(RunState::GaveUp { attempts, kind, detail }) => {
                *rows[i].lock().expect("row lock") = Some(RunOutcome::Failed {
                    kind: kind.clone(),
                    detail: detail.clone(),
                    attempts: *attempts,
                    resumed: true,
                });
                reused += 1;
            }
            Some(RunState::InFlight { failed_attempts }) => pending.push((i, failed_attempts + 1)),
            None => pending.push((i, 1)),
        }
    }

    let stop = AtomicBool::new(false);
    let shared = Shared {
        journal: Mutex::new(&mut journal),
        first_io_error: Mutex::new(None),
        terminal_this_invocation: AtomicUsize::new(0),
        stop: &stop,
        halt_after: policy.halt_after,
    };
    let executed = AtomicUsize::new(0);

    run_stealing(pending.len(), policy.workers, &stop, |p| {
        let (i, start_attempt) = pending[p];
        let def = &runs[i];
        executed.fetch_add(1, Ordering::SeqCst);
        let outcome = supervise_one(dir, policy, def, start_attempt, &shared, &exec);
        if let Some(out) = outcome {
            *rows[i].lock().expect("row lock") = Some(out);
            shared.terminal();
        }
    });

    if let Some(e) = shared.first_io_error.lock().expect("error lock").take() {
        return Err(CampaignError::Io(e));
    }

    let halted = stop.load(Ordering::SeqCst);
    let runs_out: Vec<RunRow> = runs
        .iter()
        .zip(&rows)
        .map(|(def, row)| RunRow {
            name: def.name.clone(),
            outcome: row.lock().expect("row lock").take(),
        })
        .collect();
    Ok(CampaignOutcome {
        runs: runs_out,
        reused,
        executed: executed.load(Ordering::SeqCst),
        halted,
    })
}

/// Drive one run through the retry state machine. Returns `None` only when
/// a journal/payload write failed (the campaign is already stopping).
fn supervise_one<C, F>(
    dir: &Path,
    policy: &Policy,
    def: &RunDef<C>,
    start_attempt: u32,
    shared: &Shared<'_>,
    exec: &F,
) -> Option<RunOutcome>
where
    C: Sync,
    F: Fn(&C, &RunCtx) -> Result<String, WorldError> + Sync,
{
    let stem = mangle(&def.name);
    let scratch = dir.join("scratch").join(&stem);
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        shared.fail_io(e);
        return None;
    }
    let mut attempt = start_attempt.max(1);
    loop {
        if !shared.journal(&Record::Started { run: def.name.clone(), attempt }) {
            return None;
        }
        let ctx = RunCtx {
            name: def.name.clone(),
            attempt,
            deadline: policy.deadline,
            dir: scratch.clone(),
        };
        let result = catch_unwind(AssertUnwindSafe(|| exec(&def.config, &ctx)));
        let (kind, detail) = match result {
            Ok(Ok(payload)) => {
                // Durable payload *before* the completed record: the record
                // asserts the payload exists with this length and checksum.
                let path = dir.join("payloads").join(format!("{stem}.json"));
                let sum = fold_bytes(crate::journal::CHAIN_SEED, payload.as_bytes());
                if let Err(e) = write_durable(&path, payload.as_bytes()) {
                    shared.fail_io(e);
                    return None;
                }
                if !shared.journal(&Record::Completed {
                    run: def.name.clone(),
                    attempt,
                    payload_len: payload.len() as u64,
                    payload_sum: sum,
                }) {
                    return None;
                }
                return Some(RunOutcome::Completed { payload, attempts: attempt, resumed: false });
            }
            Ok(Err(world_err)) => (world_err.kind().to_string(), world_err.to_string()),
            Err(panic) => ("harness-panic".to_string(), panic_message(panic)),
        };
        if attempt >= policy.max_attempts {
            if !shared.journal(&Record::GaveUp {
                run: def.name.clone(),
                attempts: attempt,
                kind: kind.clone(),
                detail: detail.clone(),
            }) {
                return None;
            }
            return Some(RunOutcome::Failed { kind, detail, attempts: attempt, resumed: false });
        }
        if !shared.journal(&Record::AttemptFailed { run: def.name.clone(), attempt, kind, detail })
        {
            return None;
        }
        // Exponential backoff: base * 2^(attempt-1), saturating.
        let factor = 1u32 << (attempt - 1).min(16);
        std::thread::sleep(policy.backoff.saturating_mul(factor));
        attempt += 1;
    }
}

/// Write bytes to `path` and fsync, so a following journal record never
/// acknowledges a payload the filesystem could still lose.
fn write_durable(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("campaign-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn defs(n: usize) -> Vec<RunDef<usize>> {
        (0..n).map(|i| RunDef { name: format!("run/{i}"), config: i }).collect()
    }

    fn quick_policy() -> Policy {
        Policy {
            workers: 4,
            max_attempts: 3,
            backoff: Duration::from_millis(1),
            ..Policy::default()
        }
    }

    #[test]
    fn all_clean_runs_complete_in_input_order() {
        let dir = tmpdir("clean");
        let out = run_campaign(&dir, &quick_policy(), &defs(9), |cfg, ctx| {
            assert_eq!(ctx.attempt, 1);
            Ok(format!("payload-{cfg}"))
        })
        .unwrap();
        assert!(!out.halted);
        assert_eq!(out.executed, 9);
        assert_eq!(out.reused, 0);
        for (i, row) in out.runs.iter().enumerate() {
            assert_eq!(row.name, format!("run/{i}"));
            assert_eq!(
                row.outcome,
                Some(RunOutcome::Completed {
                    payload: format!("payload-{i}"),
                    attempts: 1,
                    resumed: false
                })
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failures_become_rows_not_aborts() {
        let dir = tmpdir("isolate");
        let out = run_campaign(&dir, &quick_policy(), &defs(6), |cfg, _ctx| match cfg {
            2 => panic!("harness bug in config 2"),
            4 => Err(WorldError::RankPanic { rank: 1, message: "injected".into() }),
            _ => Ok(format!("ok-{cfg}")),
        })
        .unwrap();
        assert_eq!(out.completed().count(), 4);
        assert_eq!(out.failed().count(), 2);
        match out.runs[2].outcome.as_ref().unwrap() {
            RunOutcome::Failed { kind, detail, attempts, .. } => {
                assert_eq!(kind, "harness-panic");
                assert!(detail.contains("harness bug"));
                assert_eq!(*attempts, 3);
            }
            o => panic!("{o:?}"),
        }
        match out.runs[4].outcome.as_ref().unwrap() {
            RunOutcome::Failed { kind, .. } => assert_eq!(kind, "panic"),
            o => panic!("{o:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flaky_run_retries_to_success() {
        let dir = tmpdir("flaky");
        let out = run_campaign(&dir, &quick_policy(), &defs(1), |_cfg, ctx| {
            if ctx.attempt < 3 {
                Err(WorldError::DeadlineExceeded { seconds: 1.0 })
            } else {
                Ok("third time lucky".into())
            }
        })
        .unwrap();
        assert_eq!(
            out.runs[0].outcome,
            Some(RunOutcome::Completed {
                payload: "third time lucky".into(),
                attempts: 3,
                resumed: false
            })
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_reuses_completed_and_failed_and_reruns_in_flight() {
        let dir = tmpdir("resume");
        let policy = Policy { halt_after: Some(2), workers: 1, ..quick_policy() };
        // First invocation: worker 0 processes runs serially and halts after
        // two terminal records — the rest stay pending.
        let first = run_campaign(&dir, &policy, &defs(5), |cfg, _ctx| {
            if *cfg == 1 {
                Err(WorldError::DeadlineExceeded { seconds: 9.0 })
            } else {
                Ok(format!("p{cfg}"))
            }
        })
        .unwrap();
        assert!(first.halted);
        let done_first: Vec<usize> = first
            .runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.outcome.is_some())
            .map(|(i, _)| i)
            .collect();
        assert!(done_first.len() >= 2, "{done_first:?}");

        // Second invocation, same spec: terminal rows reused, rest executed.
        let policy2 = Policy { halt_after: None, ..policy };
        let second = run_campaign(&dir, &policy2, &defs(5), |cfg, _ctx| {
            if *cfg == 1 {
                Err(WorldError::DeadlineExceeded { seconds: 9.0 })
            } else {
                Ok(format!("p{cfg}"))
            }
        })
        .unwrap();
        assert!(!second.halted);
        assert_eq!(second.reused, done_first.len());
        assert_eq!(second.executed, 5 - done_first.len());
        for (i, row) in second.runs.iter().enumerate() {
            match row.outcome.as_ref().unwrap() {
                RunOutcome::Completed { payload, resumed, .. } => {
                    assert_eq!(payload, &format!("p{i}"));
                    assert_eq!(*resumed, done_first.contains(&i));
                }
                RunOutcome::Failed { kind, attempts, resumed, .. } => {
                    assert_eq!(i, 1);
                    assert_eq!(kind, "deadline");
                    assert_eq!(*attempts, 3);
                    // Either terminally failed in the first invocation or now.
                    assert_eq!(*resumed, done_first.contains(&i));
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_restores_attempt_counter_for_in_flight_runs() {
        let dir = tmpdir("attempts");
        // Simulate a crash after one failed attempt: journal it by hand.
        let names = vec!["run/0".to_string()];
        let fp = spec_fingerprint(&names);
        {
            let mut j = Journal::create(&dir.join("journal.log"), fp).unwrap();
            j.append(&Record::Started { run: "run/0".into(), attempt: 1 }).unwrap();
            j.append(&Record::AttemptFailed {
                run: "run/0".into(),
                attempt: 1,
                kind: "panic".into(),
                detail: "x".into(),
            })
            .unwrap();
            j.append(&Record::Started { run: "run/0".into(), attempt: 2 }).unwrap();
            // ...crash here: attempt 2 in flight.
        }
        let out = run_campaign(&dir, &quick_policy(), &defs(1), |_cfg, ctx| {
            // The resumed attempt must be 2, not 1 — flaky configs keyed on
            // the attempt number stay deterministic across resume.
            Ok(format!("attempt-{}", ctx.attempt))
        })
        .unwrap();
        assert_eq!(
            out.runs[0].outcome,
            Some(RunOutcome::Completed {
                payload: "attempt-2".into(),
                attempts: 2,
                resumed: false
            })
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_payload_forces_rerun_despite_completed_record() {
        let dir = tmpdir("payload");
        let run_it = |marker: &'static str| {
            run_campaign(&dir, &quick_policy(), &defs(1), move |_cfg, _ctx| Ok(marker.to_string()))
                .unwrap()
        };
        let first = run_it("original");
        assert_eq!(first.executed, 1);
        // Flip a byte in the payload file; the journal still says completed.
        let p = dir.join("payloads").join(format!("{}.json", mangle("run/0")));
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[0] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let second = run_it("rerun");
        assert_eq!(second.reused, 0, "corrupt payload must not be reused");
        assert_eq!(second.executed, 1);
        assert_eq!(
            second.runs[0].outcome,
            Some(RunOutcome::Completed { payload: "rerun".into(), attempts: 1, resumed: false })
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_run_names_rejected() {
        let dir = tmpdir("dup");
        let runs = vec![
            RunDef { name: "same".into(), config: 0 },
            RunDef { name: "same".into(), config: 1 },
        ];
        match run_campaign(&dir, &quick_policy(), &runs, |_c, _x| Ok(String::new())) {
            Err(CampaignError::DuplicateRun(n)) => assert_eq!(n, "same"),
            other => panic!("{other:?}", other = other.map(|_| ())),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mangle_is_safe_and_collision_free() {
        let a = mangle("fig8/fmm a=1");
        assert!(a.chars().all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)), "{a}");
        assert_ne!(mangle("a/b"), mangle("a b"), "distinct names must mangle apart");
    }
}
