//! # campaign — supervised sweeps of simulated-world runs
//!
//! A *campaign* executes many simulation configurations concurrently on a
//! work-stealing worker pool, supervising each run so a single bad
//! configuration never aborts the sweep:
//!
//! - **Panic isolation** — each run executes under `catch_unwind`; a rank
//!   panic surfaces as a typed [`simcomm::WorldError`] (via
//!   `Runner::try_run`), a panic outside the world as a `"harness-panic"`
//!   failure record.
//! - **Deadlines** — a per-run wall-clock limit ([`Policy::deadline`],
//!   wired through [`RunCtx::deadline`] to `simcomm::Runner::deadline`)
//!   retires hung runs instead of wedging a worker forever.
//! - **Bounded retry with backoff** — failed attempts retry up to
//!   [`Policy::max_attempts`] with exponential backoff; runs are
//!   deterministic, so a successful retry is bitwise identical to an
//!   unfaulted first attempt.
//! - **Crash-safe resume** — every state transition is journaled
//!   (append-only, per-line chained checksums, fsync'd — see [`journal`]);
//!   after a `kill -9`, re-running the same campaign reuses completed and
//!   terminally-failed runs and re-executes in-flight ones, converging on a
//!   result bitwise identical to an uninterrupted campaign.
//!
//! ```
//! use campaign::{run_campaign, Policy, RunDef};
//!
//! let dir = std::env::temp_dir().join(format!("campaign-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! std::fs::create_dir_all(&dir).unwrap();
//! let runs: Vec<RunDef<u32>> =
//!     (0..4).map(|i| RunDef { name: format!("sweep/{i}"), config: i }).collect();
//! let out = run_campaign(&dir, &Policy::default(), &runs, |cfg, _ctx| {
//!     if *cfg == 2 {
//!         panic!("injected failure"); // isolated: becomes a failure row
//!     }
//!     Ok(format!("result of {cfg}"))
//! })
//! .unwrap();
//! assert_eq!(out.completed().count(), 3);
//! assert_eq!(out.failed().count(), 1);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

pub mod journal;
mod pool;
mod runner;

pub use journal::{
    fold_bytes, spec_fingerprint, Journal, JournalError, Record, RunState, TornTail,
};
pub use pool::run_stealing;
pub use runner::{
    mangle, run_campaign, CampaignError, CampaignOutcome, Policy, RunCtx, RunDef, RunOutcome,
    RunRow,
};
