//! Chrome/Perfetto trace JSON export.
//!
//! Serializes one or more traced runs into the Chrome trace-event format
//! (the JSON flavour understood by `ui.perfetto.dev` and
//! `chrome://tracing`): one *process* per run (named after the run label),
//! one *thread track* per rank, one complete (`"X"`) duration event per
//! [`simcomm::TraceEvent`] — so the exported span count always equals the trace
//! record count — and flow arrows (`"s"`/`"f"` pairs) connecting every
//! matched `send`/`isend` post to its `recv` completion via the message
//! correlation id. Timestamps are virtual microseconds.
//!
//! The writer emits plain strings — no JSON library — because the format is
//! flat and append-only; `bench`'s own JSON parser round-trips the output in
//! tests.

use std::io::{self, Write};

use simcomm::{Trace, TraceKind};

/// Escape a string for a JSON string literal (labels and phase names).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Seconds → microseconds (the trace-event format's time unit).
fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

/// Write one or more labelled runs as Chrome/Perfetto trace JSON.
///
/// Each `(label, traces)` pair becomes one process (pid = position + 1, so
/// several runs of a sweep land side by side in the UI); each rank becomes
/// one thread track. Every trace record is exported as exactly one `"X"`
/// event; matched send/recv pairs additionally get flow arrows. Open the
/// result at <https://ui.perfetto.dev>.
pub fn write_perfetto<W: Write>(mut w: W, runs: &[(&str, &[Trace])]) -> io::Result<()> {
    w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")?;
    let mut first = true;
    let mut buf = String::new();
    let emit = |w: &mut W, buf: &mut String, first: &mut bool| -> io::Result<()> {
        if !*first {
            w.write_all(b",\n")?;
        }
        *first = false;
        w.write_all(buf.as_bytes())?;
        buf.clear();
        Ok(())
    };

    for (run_idx, (label, traces)) in runs.iter().enumerate() {
        let pid = run_idx + 1;
        buf.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\""
        ));
        escape(label, &mut buf);
        buf.push_str("\"}}");
        emit(&mut w, &mut buf, &mut first)?;
        for rank in 0..traces.len() {
            buf.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{rank},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"rank {rank}\"}}}}"
            ));
            emit(&mut w, &mut buf, &mut first)?;
        }
        for trace in traces.iter() {
            for e in &trace.events {
                buf.push_str(&format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{rank},\"ts\":{ts},\"dur\":{dur},\
                     \"name\":\"{name}\",\"cat\":\"",
                    rank = e.rank,
                    ts = us(e.t_start),
                    dur = us(e.t_end - e.t_start),
                    name = e.kind.label(),
                ));
                escape(if e.phase.is_empty() { "(untagged)" } else { e.phase }, &mut buf);
                buf.push_str(&format!("\",\"args\":{{\"bytes\":{}", e.bytes));
                if let Some(peer) = e.peer {
                    buf.push_str(&format!(",\"peer\":{peer}"));
                }
                if e.corr != 0 {
                    buf.push_str(&format!(",\"corr\":{}", e.corr));
                }
                buf.push_str("}}");
                emit(&mut w, &mut buf, &mut first)?;

                // Flow arrow: recv completion binds back to the send post via
                // the correlation id. The id string is namespaced by run so
                // sweeps with several runs don't cross wires.
                if e.kind == TraceKind::Recv && e.corr != 0 {
                    buf.push_str(&format!(
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"id\":\"r{pid}.{corr}\",\"pid\":{pid},\
                         \"tid\":{rank},\"ts\":{ts},\"name\":\"msg\",\"cat\":\"msg\"}}",
                        corr = e.corr,
                        rank = e.rank,
                        ts = us(e.t_end),
                    ));
                    emit(&mut w, &mut buf, &mut first)?;
                }
                if matches!(e.kind, TraceKind::Send | TraceKind::Isend) && e.corr != 0 {
                    buf.push_str(&format!(
                        "{{\"ph\":\"s\",\"id\":\"r{pid}.{corr}\",\"pid\":{pid},\"tid\":{rank},\
                         \"ts\":{ts},\"name\":\"msg\",\"cat\":\"msg\"}}",
                        corr = e.corr,
                        rank = e.rank,
                        ts = us(e.t_end),
                    ));
                    emit(&mut w, &mut buf, &mut first)?;
                }
            }
        }
    }
    w.write_all(b"\n]}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcomm::{MachineModel, Runner};

    #[test]
    fn x_event_count_matches_trace_record_count() {
        let out = Runner::default().traced(true).run(4, MachineModel::juropa_like(), |comm| {
            let peer = comm.size() - 1 - comm.rank();
            let r = comm.irecv::<u8>(peer, 1);
            let s = comm.isend(peer, 1, vec![0u8; 128]);
            comm.waitall(vec![r, s]);
            comm.barrier();
        });
        let records: usize = out.traces.iter().map(|t| t.events.len()).sum();
        let mut buf = Vec::new();
        write_perfetto(&mut buf, &[("test run", &out.traces)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let x_events = text.matches("\"ph\":\"X\"").count();
        assert_eq!(x_events, records);
        // Every matched message produced a flow pair.
        assert_eq!(text.matches("\"ph\":\"s\"").count(), text.matches("\"ph\":\"f\"").count());
        assert!(text.matches("\"ph\":\"s\"").count() >= 4, "one flow start per isend");
    }

    #[test]
    fn escapes_quotes_in_labels() {
        let mut buf = Vec::new();
        write_perfetto(&mut buf, &[("a \"quoted\" label", &[])]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("a \\\"quoted\\\" label"));
    }
}
