//! Happens-before analysis over `simcomm` traces.
//!
//! A traced run (see [`simcomm::Runner::traced`]) yields, per rank, a stream
//! of [`TraceEvent`]s (operations) and [`ClockSpan`]s (the exhaustive
//! comm/wait/compute clock decomposition as a timeline). This crate
//! reconstructs the causal structure between them and answers the question
//! the aggregate statistics cannot: *which rank, and which message, holds the
//! makespan hostage?*
//!
//! The happens-before edges come from three sources:
//!
//! * **send → recv**: every posted message carries a world-unique correlation
//!   id ([`TraceEvent::corr`]), stamped on the sender's `send`/`isend` record
//!   and the receiver's `recv` record;
//! * **isend → wait**: a send request's completion (`wait` record) carries
//!   the same correlation id as its post;
//! * **collective barrier edges**: all ranks enter collectives in the same
//!   order (SPMD), so the k-th collective record of every rank belongs to the
//!   same instance, and the instance's rendezvous is pinned on its
//!   last-arriving rank.
//!
//! [`analyze`] walks the clock-span timeline **backward from the makespan**,
//! following these edges whenever it lands in a wait span, and produces:
//!
//! * the **critical path**: a chain of segments tiling `[0, makespan]`
//!   exactly, each attributed to one rank and one of comm/wait/compute —
//!   extending the per-rank accounting invariant (comm + wait + compute ==
//!   clock) to the cross-rank makespan;
//! * **wait-blame attribution**: every wait span on every rank is charged to
//!   the partner whose lateness caused it (the late sender, the
//!   last-arriving collective participant, or the rank itself for NIC drain
//!   and injected faults), aggregated into a per-rank-pair blame matrix and
//!   a per-phase wait heatmap.
//!
//! Because traces are bitwise identical under both execution engines, so is
//! every number this crate computes. [`perfetto`] exports the same traces as
//! Chrome/Perfetto JSON for ui.perfetto.dev.

use std::collections::{BTreeMap, HashMap};

use simcomm::{ClockSpan, SpanCat, Trace, TraceEvent, TraceKind};

pub mod perfetto;

pub use perfetto::write_perfetto;

/// Category of a critical-path segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegCat {
    /// Communication cost on the owning rank (overheads, injection,
    /// collective algorithm time) or a message in flight on the wire.
    Comm,
    /// Rendezvous idle time, blamed on a partner (or the rank itself).
    Wait,
    /// Modelled computation.
    Compute,
}

impl SegCat {
    /// Short stable label (`comm`/`wait`/`compute`).
    pub fn label(&self) -> &'static str {
        match self {
            SegCat::Comm => "comm",
            SegCat::Wait => "wait",
            SegCat::Compute => "compute",
        }
    }
}

/// One segment of the critical path. Consecutive segments abut in time
/// (`segments[i].t_start == segments[i+1].t_end` in the walk's reverse-time
/// order); together they tile `[0, makespan]`.
#[derive(Clone, Copy, Debug)]
pub struct CritSegment {
    /// Rank whose timeline this stretch of the critical path runs on.
    pub rank: usize,
    /// What the rank was doing (or what the wire was carrying).
    pub cat: SegCat,
    /// Segment start in virtual seconds.
    pub t_start: f64,
    /// Segment end in virtual seconds.
    pub t_end: f64,
    /// For wait segments: the rank blamed for the wait (`== rank` for
    /// self-inflicted waits — NIC drain, injected faults).
    pub blamed: Option<usize>,
}

/// Why a wait span happened — the cause classes of blame attribution.
#[derive(Clone, Copy, Debug, PartialEq)]
enum WaitCause {
    /// Waiting for a message from `src` that had not arrived yet.
    LateSend { src: usize, corr: u64 },
    /// Collective rendezvous: idling until rank `last` arrived at `entry`.
    Collective { last: usize, entry: f64 },
    /// Own NIC still draining a posted send (send-request completion).
    NicDrain,
    /// Injected fault handling: retry backoff, scheduled stall, timeout.
    Fault,
    /// No covering trace event (defensive; does not occur on simcomm
    /// traces, where every wait is charged inside a traced operation).
    Unattributed,
}

/// One cell of the sparse per-rank-pair blame matrix: `waiter` spent
/// `seconds` of wait time caused by `blamed` (`waiter == blamed` for
/// self-inflicted waits). Summing `seconds` over all cells recovers the
/// run's total wait time.
#[derive(Clone, Debug, PartialEq)]
pub struct BlameCell {
    /// The rank that waited.
    pub waiter: usize,
    /// The rank whose lateness caused the wait.
    pub blamed: usize,
    /// Wait seconds attributed to this pair.
    pub seconds: f64,
}

/// One cell of the per-phase wait heatmap: rank `rank` spent `seconds`
/// waiting inside phase `phase` (empty string = outside any phase).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseWaitCell {
    /// Phase name (`""` outside phase spans).
    pub phase: String,
    /// The waiting rank.
    pub rank: usize,
    /// Wait seconds in this phase on this rank.
    pub seconds: f64,
}

/// Result of [`analyze`]: the critical path and wait-blame attribution of
/// one traced run.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The run's makespan (maximum final rank clock), in virtual seconds.
    pub makespan: f64,
    /// Critical-path seconds spent in communication.
    pub critpath_comm: f64,
    /// Critical-path seconds spent waiting.
    pub critpath_wait: f64,
    /// Critical-path seconds spent computing, stored as the **exact
    /// remainder** `makespan - (critpath_comm + critpath_wait)` so the three
    /// components always sum to the makespan bit-for-bit (verifiable from
    /// the serialized report alone; `commstats --check` does).
    pub critpath_compute: f64,
    /// The critical-path segments in reverse time order (walk order: from
    /// the makespan back to zero).
    pub segments: Vec<CritSegment>,
    /// Sparse blame matrix, sorted by seconds descending (ties by rank
    /// pair). Totals the run's wait time across all ranks.
    pub blame: Vec<BlameCell>,
    /// Per-phase per-rank wait heatmap, sorted by phase then rank.
    pub phase_wait: Vec<PhaseWaitCell>,
}

impl Analysis {
    /// Total wait seconds in the blame matrix (equals the sum of every
    /// rank's `wait_seconds` up to floating-point summation order).
    pub fn blame_total(&self) -> f64 {
        self.blame.iter().map(|c| c.seconds).sum()
    }
}

/// Trace kinds that can *cause* a wait span on the rank that recorded them:
/// the kinds [`classify_wait`] searches for as the innermost covering event.
fn is_cause_kind(kind: TraceKind) -> bool {
    matches!(
        kind,
        TraceKind::Recv
            | TraceKind::Wait
            | TraceKind::Barrier
            | TraceKind::Bcast
            | TraceKind::Reduce
            | TraceKind::Gather
            | TraceKind::Alltoallv
            | TraceKind::Fault
            | TraceKind::Retry
            | TraceKind::Timeout
    )
}

fn is_collective_kind(kind: TraceKind) -> bool {
    matches!(
        kind,
        TraceKind::Barrier
            | TraceKind::Bcast
            | TraceKind::Reduce
            | TraceKind::Gather
            | TraceKind::Alltoallv
    )
}

/// Event indexes over a run's traces: per-rank events sorted by start time,
/// the correlation-id registry of send posts, and the per-rank collective
/// event sequences (position k on every rank = instance k, by SPMD order).
struct EventIndex<'a> {
    traces: &'a [Trace],
    /// Per rank: event indices sorted by `(t_start, index)` — the index
    /// tie-break keeps nested events (recorded later) after their parents.
    sorted: Vec<Vec<u32>>,
    /// corr → (rank, event index) of the send-side post (`send`/`isend`).
    send_by_corr: HashMap<u64, (usize, u32)>,
    /// Per rank: indices of collective-kind events in record order.
    colls: Vec<Vec<u32>>,
    /// Per collective instance: (last-arriving rank, its entry time),
    /// resolved lazily.
    coll_last: HashMap<usize, (usize, f64)>,
}

impl<'a> EventIndex<'a> {
    fn new(traces: &'a [Trace]) -> Self {
        let mut sorted = Vec::with_capacity(traces.len());
        let mut colls = Vec::with_capacity(traces.len());
        let mut send_by_corr = HashMap::new();
        for (rank, t) in traces.iter().enumerate() {
            let mut idx: Vec<u32> = (0..t.events.len() as u32).collect();
            idx.sort_by(|&a, &b| {
                let (ea, eb) = (&t.events[a as usize], &t.events[b as usize]);
                ea.t_start.partial_cmp(&eb.t_start).expect("finite trace times").then(a.cmp(&b))
            });
            sorted.push(idx);
            colls.push(
                (0..t.events.len() as u32)
                    .filter(|&i| is_collective_kind(t.events[i as usize].kind))
                    .collect(),
            );
            for (i, e) in t.events.iter().enumerate() {
                if e.corr != 0 && matches!(e.kind, TraceKind::Send | TraceKind::Isend) {
                    send_by_corr.insert(e.corr, (rank, i as u32));
                }
            }
        }
        EventIndex { traces, sorted, send_by_corr, colls, coll_last: HashMap::new() }
    }

    fn event(&self, rank: usize, idx: u32) -> &TraceEvent {
        &self.traces[rank].events[idx as usize]
    }

    /// The innermost cause-kind event on `rank` covering the instant just
    /// below `t` (largest `t_start` among events with `t_start < t <=
    /// t_end`; record order breaks ties, nested events win).
    fn covering_cause(&self, rank: usize, t: f64) -> Option<u32> {
        let events = &self.traces[rank].events;
        let order = &self.sorted[rank];
        // First position whose t_start >= t; everything before starts below t.
        let cut = order.partition_point(|&i| events[i as usize].t_start < t);
        order[..cut]
            .iter()
            .rev()
            .filter(|&&i| {
                let e = &events[i as usize];
                is_cause_kind(e.kind) && e.t_end >= t
            })
            .max_by(|&&a, &&b| {
                let (ea, eb) = (&events[a as usize], &events[b as usize]);
                ea.t_start.partial_cmp(&eb.t_start).expect("finite trace times").then(a.cmp(&b))
            })
            .copied()
    }

    /// The ordinal of a collective event on its rank (its instance number).
    fn coll_ordinal(&self, rank: usize, idx: u32) -> Option<usize> {
        self.colls[rank].binary_search(&idx).ok()
    }

    /// Last-arriving rank and entry time of collective instance `k`
    /// (smallest rank among ties, for determinism).
    fn coll_last_arrival(&mut self, k: usize) -> Option<(usize, f64)> {
        if let Some(&hit) = self.coll_last.get(&k) {
            return Some(hit);
        }
        let mut best: Option<(usize, f64)> = None;
        for (rank, colls) in self.colls.iter().enumerate() {
            let &idx = colls.get(k)?;
            let entry = self.traces[rank].events[idx as usize].t_start;
            best = match best {
                Some((_, t)) if entry > t => Some((rank, entry)),
                None => Some((rank, entry)),
                keep => keep,
            };
        }
        if let Some(hit) = best {
            self.coll_last.insert(k, hit);
        }
        best
    }

    /// Classify the wait at the instant just below `t` on `rank`.
    fn classify_wait(&mut self, rank: usize, t: f64) -> (WaitCause, f64) {
        let Some(idx) = self.covering_cause(rank, t) else {
            return (WaitCause::Unattributed, 0.0);
        };
        let e = *self.event(rank, idx);
        let cause = match e.kind {
            TraceKind::Recv if e.corr != 0 => {
                WaitCause::LateSend { src: e.peer.unwrap_or(rank), corr: e.corr }
            }
            TraceKind::Recv => WaitCause::Unattributed,
            TraceKind::Wait => WaitCause::NicDrain,
            TraceKind::Fault | TraceKind::Retry | TraceKind::Timeout => WaitCause::Fault,
            _ => {
                let k = self.coll_ordinal(rank, idx).expect("collective event is in coll index");
                match self.coll_last_arrival(k) {
                    Some((last, entry)) => WaitCause::Collective { last, entry },
                    None => WaitCause::Unattributed,
                }
            }
        };
        (cause, e.t_start)
    }
}

/// The clock span on `rank` covering the instant just below `t`, if any.
fn covering_span(trace: &Trace, t: f64) -> Option<&ClockSpan> {
    let cut = trace.spans.partition_point(|s| s.t_start < t);
    cut.checked_sub(1).map(|i| &trace.spans[i])
}

/// Analyze a traced run: reconstruct the happens-before structure and
/// compute the critical path and wait-blame attribution. The traces must
/// come from a traced world ([`simcomm::Runner::traced`]), whose clock spans
/// tile each rank's `[0, clock]`.
pub fn analyze(traces: &[Trace]) -> Analysis {
    let mut index = EventIndex::new(traces);
    let clock_of = |r: usize| traces[r].spans.last().map_or(0.0, |s| s.t_end);
    let (start_rank, makespan) = (0..traces.len())
        .map(|r| (r, clock_of(r)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite clocks").then(b.0.cmp(&a.0)))
        .unwrap_or((0, 0.0));

    let mut segments: Vec<CritSegment> = Vec::new();
    let mut rank = start_rank;
    let mut t = makespan;
    // Consecutive cross-rank jumps that did not move `t`: a bounded burst is
    // normal (rendezvous chains resolve at one instant), an unbounded one
    // would mean a cycle — force local attribution past the threshold.
    let mut zero_jumps = 0usize;
    let max_zero_jumps = 4 * traces.len().max(1);

    while t > 0.0 {
        let Some(span) = covering_span(&traces[rank], t).copied() else {
            // Before this rank's first span (or an empty trace): the time is
            // unattributable locally; close out as compute.
            segments.push(CritSegment {
                rank,
                cat: SegCat::Compute,
                t_start: 0.0,
                t_end: t,
                blamed: None,
            });
            break;
        };
        if span.t_end < t {
            // Defensive: a gap in the span tiling (cannot happen when every
            // clock advance records a span). Attribute the gap as compute.
            segments.push(CritSegment {
                rank,
                cat: SegCat::Compute,
                t_start: span.t_end,
                t_end: t,
                blamed: None,
            });
            t = span.t_end;
            continue;
        }
        match span.cat {
            SpanCat::Compute => {
                segments.push(CritSegment {
                    rank,
                    cat: SegCat::Compute,
                    t_start: span.t_start,
                    t_end: t,
                    blamed: None,
                });
                t = span.t_start;
                zero_jumps = 0;
            }
            SpanCat::Comm => {
                segments.push(CritSegment {
                    rank,
                    cat: SegCat::Comm,
                    t_start: span.t_start,
                    t_end: t,
                    blamed: None,
                });
                t = span.t_start;
                zero_jumps = 0;
            }
            SpanCat::Wait => {
                let (cause, _) = index.classify_wait(rank, t);
                let force_local = zero_jumps >= max_zero_jumps;
                match cause {
                    WaitCause::LateSend { src, corr } if !force_local => {
                        match index.send_by_corr.get(&corr).copied() {
                            Some((send_rank, send_idx)) => {
                                // Follow the message to its sender: the time
                                // past the send post is the wire/NIC carrying
                                // the payload — communication, on the
                                // receiver's row of the timeline.
                                let post_end = index.event(send_rank, send_idx).t_end;
                                let j = post_end.min(t);
                                if j < t {
                                    segments.push(CritSegment {
                                        rank,
                                        cat: SegCat::Comm,
                                        t_start: j,
                                        t_end: t,
                                        blamed: None,
                                    });
                                    zero_jumps = 0;
                                } else {
                                    zero_jumps += 1;
                                }
                                rank = send_rank;
                                t = j;
                            }
                            None => {
                                // Sender's post was not traced (cannot happen
                                // when all ranks trace): blame locally.
                                segments.push(CritSegment {
                                    rank,
                                    cat: SegCat::Wait,
                                    t_start: span.t_start,
                                    t_end: t,
                                    blamed: Some(src),
                                });
                                t = span.t_start;
                                zero_jumps = 0;
                            }
                        }
                    }
                    WaitCause::Collective { last, entry } if !force_local && last != rank => {
                        // Jump to the last-arriving participant at its entry.
                        let j = entry.min(t);
                        if j < t {
                            segments.push(CritSegment {
                                rank,
                                cat: SegCat::Wait,
                                t_start: j,
                                t_end: t,
                                blamed: Some(last),
                            });
                            zero_jumps = 0;
                        } else {
                            zero_jumps += 1;
                        }
                        rank = last;
                        t = j;
                    }
                    _ => {
                        // Self-inflicted (NIC drain, fault handling, own last
                        // arrival) or forced local: charge the wait here.
                        let blamed = match cause {
                            WaitCause::LateSend { src, .. } => Some(src),
                            WaitCause::Collective { last, .. } => Some(last),
                            _ => Some(rank),
                        };
                        segments.push(CritSegment {
                            rank,
                            cat: SegCat::Wait,
                            t_start: span.t_start,
                            t_end: t,
                            blamed,
                        });
                        t = span.t_start;
                        zero_jumps = 0;
                    }
                }
            }
        }
    }

    let critpath_comm: f64 =
        segments.iter().filter(|s| s.cat == SegCat::Comm).map(|s| s.t_end - s.t_start).sum();
    let critpath_wait: f64 =
        segments.iter().filter(|s| s.cat == SegCat::Wait).map(|s| s.t_end - s.t_start).sum();
    // Stored as the exact remainder so comm + wait + compute reproduces the
    // makespan bit-for-bit from the serialized values alone.
    let critpath_compute = makespan - (critpath_comm + critpath_wait);

    // Blame matrix + phase heatmap: attribute every wait span of every rank,
    // splitting merged spans at cause-event boundaries.
    let mut blame: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut phase_wait: BTreeMap<(&str, usize), f64> = BTreeMap::new();
    for (r, trace) in traces.iter().enumerate() {
        for span in trace.spans.iter().filter(|s| s.cat == SpanCat::Wait) {
            let mut hi = span.t_end;
            while hi > span.t_start {
                let (cause, ev_start) = index.classify_wait(r, hi);
                let lo = match cause {
                    WaitCause::Unattributed => span.t_start,
                    _ => ev_start.max(span.t_start),
                };
                // A cause event strictly covers the instant below `hi`, so
                // lo < hi and the split loop always terminates.
                let lo = if lo < hi { lo } else { span.t_start };
                let blamed = match cause {
                    WaitCause::LateSend { src, .. } => src,
                    WaitCause::Collective { last, .. } => last,
                    _ => r,
                };
                *blame.entry((r, blamed)).or_insert(0.0) += hi - lo;
                *phase_wait.entry((span.phase, r)).or_insert(0.0) += hi - lo;
                hi = lo;
            }
        }
    }
    let mut blame: Vec<BlameCell> = blame
        .into_iter()
        .map(|((waiter, blamed), seconds)| BlameCell { waiter, blamed, seconds })
        .collect();
    blame.sort_by(|a, b| {
        b.seconds
            .partial_cmp(&a.seconds)
            .expect("finite blame")
            .then(a.waiter.cmp(&b.waiter))
            .then(a.blamed.cmp(&b.blamed))
    });
    let phase_wait: Vec<PhaseWaitCell> = phase_wait
        .into_iter()
        .map(|((phase, rank), seconds)| PhaseWaitCell { phase: phase.to_string(), rank, seconds })
        .collect();

    Analysis {
        makespan,
        critpath_comm,
        critpath_wait,
        critpath_compute,
        segments,
        blame,
        phase_wait,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcomm::{Engine, MachineModel, Runner};

    fn md_like_program(comm: &mut simcomm::Comm) -> u64 {
        let rank = comm.rank();
        let n = comm.size();
        let peer = (rank + 1) % n;
        let prev = (rank + n - 1) % n;
        let mut acc = 0u64;
        for step in 0..4u64 {
            comm.with_phase("compute", |c| c.advance(1e-4 * (rank as f64 + 1.0)));
            comm.with_phase("exchange", |c| {
                let r = c.irecv::<u64>(prev, step);
                let s = c.isend(peer, step, vec![rank as u64; 64]);
                let got = c.waitall(vec![r, s]);
                acc += got[0].as_ref().map_or(0, |v| v[0]);
            });
            acc += comm.with_phase("reduce", |c| c.allreduce(acc, |a, b| a.wrapping_add(b)));
        }
        acc
    }

    fn run_traced(engine: Engine) -> simcomm::RunOutput<u64> {
        Runner::new(engine).traced(true).run(6, MachineModel::juropa_like(), md_like_program)
    }

    #[test]
    fn spans_tile_each_rank_clock() {
        let out = run_traced(Engine::Threaded);
        for (r, trace) in out.traces.iter().enumerate() {
            let mut prev = 0.0;
            for s in &trace.spans {
                assert_eq!(s.t_start, prev, "rank {r}: span gap");
                assert!(s.t_end >= s.t_start);
                prev = s.t_end;
            }
            assert_eq!(prev, out.clocks[r], "rank {r}: spans must end at the clock");
        }
    }

    #[test]
    fn critical_path_tiles_the_makespan() {
        let out = run_traced(Engine::Threaded);
        let analysis = analyze(&out.traces);
        assert_eq!(analysis.makespan, out.makespan());
        // Segments abut in reverse time order and tile [0, makespan].
        let mut t = analysis.makespan;
        for seg in &analysis.segments {
            assert_eq!(seg.t_end, t, "segments must abut");
            assert!(seg.t_start < seg.t_end);
            t = seg.t_start;
        }
        assert_eq!(t, 0.0, "walk must reach time zero");
        // The remainder convention makes the three components sum exactly.
        let total = analysis.critpath_comm + analysis.critpath_wait + analysis.critpath_compute;
        assert_eq!(
            analysis.critpath_compute,
            analysis.makespan - (analysis.critpath_comm + analysis.critpath_wait)
        );
        assert!((total - analysis.makespan).abs() <= 1e-12 * analysis.makespan.max(1.0));
        // And the walked compute segments agree with the remainder closely.
        let walked: f64 = analysis
            .segments
            .iter()
            .filter(|s| s.cat == SegCat::Compute)
            .map(|s| s.t_end - s.t_start)
            .sum();
        assert!((walked - analysis.critpath_compute).abs() <= 1e-9 * analysis.makespan.max(1.0));
    }

    #[test]
    fn blame_totals_equal_wait_totals() {
        let out = run_traced(Engine::Threaded);
        let analysis = analyze(&out.traces);
        let wait_total: f64 = out.stats.iter().map(|s| s.wait_seconds).sum();
        assert!(
            (analysis.blame_total() - wait_total).abs() <= 1e-9 * wait_total.max(1e-12),
            "blame {} != wait {}",
            analysis.blame_total(),
            wait_total
        );
        let heat_total: f64 = analysis.phase_wait.iter().map(|c| c.seconds).sum();
        assert!((heat_total - wait_total).abs() <= 1e-9 * wait_total.max(1e-12));
        // Phase tags survive into the heatmap.
        assert!(analysis.phase_wait.iter().any(|c| c.phase == "exchange" || c.phase == "reduce"));
    }

    #[test]
    fn analysis_is_engine_invariant() {
        let a = analyze(&run_traced(Engine::Threaded).traces);
        let b = analyze(&run_traced(Engine::DiscreteEvent).traces);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.critpath_comm, b.critpath_comm);
        assert_eq!(a.critpath_wait, b.critpath_wait);
        assert_eq!(a.critpath_compute, b.critpath_compute);
        assert_eq!(a.segments.len(), b.segments.len());
        assert_eq!(a.blame, b.blame);
        assert_eq!(a.phase_wait, b.phase_wait);
    }

    #[test]
    fn late_sender_gets_the_blame() {
        // Rank 0 computes for a long time before sending; rank 1 waits on the
        // message. The blame matrix must charge rank 1's wait to rank 0, and
        // the critical path must route through rank 0's compute span.
        let out = Runner::new(Engine::Threaded).traced(true).run(
            2,
            MachineModel::juropa_like(),
            |comm| {
                if comm.rank() == 0 {
                    comm.advance(0.5);
                    comm.send(1, 0, vec![1u8; 1024]);
                } else {
                    let data = comm.recv::<u8>(0, 0);
                    assert_eq!(data.len(), 1024);
                }
            },
        );
        let analysis = analyze(&out.traces);
        let blamed: f64 = analysis
            .blame
            .iter()
            .filter(|c| c.waiter == 1 && c.blamed == 0)
            .map(|c| c.seconds)
            .sum();
        assert!(blamed > 0.4, "rank 1's wait must be blamed on rank 0 (got {blamed})");
        // Most of the makespan is rank 0's half-second of compute.
        assert!(analysis.critpath_compute >= 0.5);
        assert!(analysis.critpath_wait < 0.1, "the walk follows the edge instead of waiting");
        assert!(analysis.segments.iter().any(|s| s.rank == 0 && s.cat == SegCat::Compute));
    }

    #[test]
    fn collective_straggler_gets_the_blame() {
        // Rank 2 arrives last at the barrier; everyone else's rendezvous wait
        // is blamed on rank 2.
        let out = Runner::new(Engine::Threaded).traced(true).run(
            4,
            MachineModel::juropa_like(),
            |comm| {
                if comm.rank() == 2 {
                    comm.advance(0.25);
                }
                comm.barrier();
            },
        );
        let analysis = analyze(&out.traces);
        for waiter in [0usize, 1, 3] {
            let blamed: f64 = analysis
                .blame
                .iter()
                .filter(|c| c.waiter == waiter && c.blamed == 2)
                .map(|c| c.seconds)
                .sum();
            assert!(blamed > 0.2, "rank {waiter}'s barrier wait must be blamed on rank 2");
        }
        assert!(analysis.segments.iter().any(|s| s.rank == 2 && s.cat == SegCat::Compute));
    }
}
