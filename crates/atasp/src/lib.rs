//! # atasp — fine-grained data redistribution (all-to-all specific)
//!
//! Stand-in for the ZMPI-ATASP library the paper's P2NFFT solver and library
//! interface build on (paper refs. 13 and 14): data redistribution operations where
//! **every element names its own target process**, a generalized form with a
//! user-defined distribution function that may **duplicate** elements (ghost
//! particles), and the **resort** operation used by `fcs_resort_floats` /
//! `fcs_resort_ints` — redistribute according to 64-bit resort indices, then
//! place elements at their target positions.
//!
//! Resort indices are 64-bit integers storing a target process rank in the
//! upper 32 bits and a target position in the lower 32 bits, exactly like the
//! index values the paper describes (Sect. III-A, P2NFFT solver).
//!
//! All operations can run over the synchronizing collective exchange
//! ([`simcomm::Comm::alltoallv`]) or — when the caller knows the
//! communication is restricted to a neighbourhood — over point-to-point
//! messages ([`simcomm::Comm::neighbor_exchange`]), which is the switch the
//! paper's Method B performs when the maximum particle movement is small
//! (Sect. III-B).
//!
//! ## The byte-plane resort path
//!
//! The resort operations move their payload **type-erased**: all registered
//! planes of a [`particles::PlaneSet`] travel together in one partner-ordered
//! byte exchange ([`resort_planes`] / [`ResortPlan::execute_planes`]),
//! regardless of how many fields of how many element types ride along. The
//! per-`T` entry points ([`resort`], [`resort_all`],
//! [`ResortPlan::execute`]) are thin wrappers that stage their channels as
//! planes and delegate. Combined with the message-buffer pool
//! ([`simcomm::Comm::buf_acquire`]) the steady-state neighbourhood resort
//! performs zero per-step heap allocation.

#![warn(missing_docs)]

use particles::{PlaneElem, PlaneSet};
use simcomm::{Comm, PooledBuf, Work};

/// Encode a (process rank, position) pair into a 64-bit index value:
/// rank in the upper 32 bits, position in the lower 32 bits.
#[inline]
pub fn encode_index(rank: usize, pos: usize) -> u64 {
    debug_assert!(rank <= u32::MAX as usize && pos <= u32::MAX as usize);
    ((rank as u64) << 32) | pos as u64
}

/// Decode a 64-bit index value into its (process rank, position) pair.
#[inline]
pub fn decode_index(index: u64) -> (usize, usize) {
    ((index >> 32) as usize, (index & 0xffff_ffff) as usize)
}

/// The index value marking ghost particles (duplicates that must not be
/// routed back to an origin). Uses an impossible rank of `u32::MAX`.
pub const GHOST_INDEX: u64 = u64::MAX;

/// Is this index value a ghost marker?
#[inline]
pub fn is_ghost(index: u64) -> bool {
    index == GHOST_INDEX
}

/// How a redistribution exchanges its messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Collective all-to-all-v (synchronizing; cost scans all `P` ranks).
    Collective,
    /// Point-to-point exchange with the given partner set. All element
    /// targets other than the local rank must be contained in the set, and
    /// the partner relation must be symmetric across ranks.
    Neighborhood(Vec<usize>),
}

/// Message tag for neighbourhood exchanges issued by this crate.
const TAG_ATASP: u64 = 0x61_7461_7370;

/// Group `(target, element)` pairs by target rank and exchange them.
/// Returns the received elements ordered by source rank, preserving
/// per-source order; locally-addressed elements appear at the local rank's
/// position in that order.
fn exchange_grouped<T: Send + 'static>(
    comm: &mut Comm,
    groups: Vec<(usize, Vec<T>)>,
    mode: &ExchangeMode,
) -> Vec<(usize, Vec<T>)> {
    match mode {
        ExchangeMode::Collective => comm.alltoallv(groups),
        ExchangeMode::Neighborhood(partners) => {
            let me = comm.rank();
            let mut local: Option<Vec<T>> = None;
            let mut by_partner: Vec<Option<Vec<T>>> = partners.iter().map(|_| None).collect();
            for (dst, buf) in groups {
                if dst == me {
                    local = Some(buf);
                } else {
                    let pi = partners
                        .iter()
                        .position(|&q| q == dst)
                        .unwrap_or_else(|| panic!("target {dst} outside the neighbourhood"));
                    by_partner[pi] = Some(buf);
                }
            }
            let data: Vec<(usize, Vec<T>)> = partners
                .iter()
                .zip(by_partner)
                .map(|(&q, buf)| (q, buf.unwrap_or_default()))
                .collect();
            let mut recv = comm.neighbor_exchange(partners, data, TAG_ATASP);
            recv.retain(|(_, buf)| !buf.is_empty());
            if let Some(buf) = local {
                recv.push((me, buf));
                recv.sort_by_key(|&(src, _)| src);
            }
            recv
        }
    }
}

/// Fine-grained data redistribution: element `i` is sent to rank
/// `targets[i]`. Returns the received elements, ordered by source rank with
/// per-source order preserved.
///
/// Collective (all ranks must call it), regardless of `mode`.
pub fn alltoall_specific<T: Send + Copy + 'static>(
    comm: &mut Comm,
    elements: &[T],
    targets: &[usize],
    mode: &ExchangeMode,
) -> Vec<T> {
    assert_eq!(elements.len(), targets.len());
    let p = comm.size();
    // Group by target (stable within each target).
    let mut counts = vec![0usize; p];
    for &t in targets {
        assert!(t < p, "target rank {t} out of range");
        counts[t] += 1;
    }
    comm.compute(Work::ByteCopy, std::mem::size_of_val(elements) as f64);
    let mut bufs: Vec<Vec<T>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for (&e, &t) in elements.iter().zip(targets) {
        bufs[t].push(e);
    }
    let groups: Vec<(usize, Vec<T>)> =
        bufs.into_iter().enumerate().filter(|(_, b)| !b.is_empty()).collect();
    let received = exchange_grouped(comm, groups, mode);
    let mut out = Vec::with_capacity(received.iter().map(|(_, b)| b.len()).sum());
    for (_, buf) in received {
        out.extend(buf);
    }
    out
}

/// Generalized fine-grained redistribution with duplication: the distribution
/// function maps each element to *any number* of (target rank, element)
/// pairs — this is how the P2NFFT redistribution creates ghost particles
/// while routing originals (paper, Sect. III-A: "a generalized version of the
/// operation that uses a user-defined distribution function […] and that
/// supports the duplication of particles").
///
/// Returns the received elements ordered by source rank, per-source order
/// preserved. Collective.
pub fn alltoall_specific_dup<T, F>(
    comm: &mut Comm,
    elements: &[T],
    mut dist: F,
    mode: &ExchangeMode,
) -> Vec<T>
where
    T: Send + Copy + 'static,
    F: FnMut(usize, &T, &mut Vec<(usize, T)>),
{
    let p = comm.size();
    let mut routed: Vec<(usize, T)> = Vec::with_capacity(elements.len());
    let mut scratch: Vec<(usize, T)> = Vec::new();
    for (i, e) in elements.iter().enumerate() {
        scratch.clear();
        dist(i, e, &mut scratch);
        for &(t, x) in scratch.iter() {
            assert!(t < p, "target rank {t} out of range");
            routed.push((t, x));
        }
    }
    comm.compute(Work::ByteCopy, (routed.len() * std::mem::size_of::<T>()) as f64);
    // Group by target, stable.
    let mut bufs: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    for (t, x) in routed {
        bufs[t].push(x);
    }
    let groups: Vec<(usize, Vec<T>)> =
        bufs.into_iter().enumerate().filter(|(_, b)| !b.is_empty()).collect();
    let received = exchange_grouped(comm, groups, mode);
    let mut out = Vec::with_capacity(received.iter().map(|(_, b)| b.len()).sum());
    for (_, buf) in received {
        out.extend(buf);
    }
    out
}

/// Redistribute `data` according to `resort_indices` and place every element
/// at its target position: element `i` of `data` ends up at position
/// `pos(resort_indices[i])` on rank `rank(resort_indices[i])`.
///
/// `new_len` is the number of elements this rank will own afterwards (the
/// caller knows it from the solver's changed particle distribution). Every
/// target position in `0..new_len` must be hit exactly once globally.
///
/// This implements `fcs_resort_floats` / `fcs_resort_ints` (paper,
/// Sect. III-B): "The implementation uses the fine-grained data
/// redistribution operation […] followed by a permutation according to the
/// target positions contained in the resort indices." Collective.
pub fn resort<T: PlaneElem>(
    comm: &mut Comm,
    data: &[T],
    resort_indices: &[u64],
    new_len: usize,
    mode: &ExchangeMode,
) -> Vec<T> {
    #[allow(deprecated)]
    resort_all(comm, &[data], resort_indices, new_len, mode)
        .pop()
        .expect("resort_all returns one vector per channel")
}

/// Redistribute several same-length data channels according to one set of
/// resort indices in a **single** combined exchange round, and place every
/// element of every channel at its target position (see [`resort`]).
///
/// This is the multi-field fast path for solvers that carry positions,
/// velocities and accelerations through the same redistribution: instead of
/// paying per-message overhead (and a full collective round) once per field,
/// all `channels.len()` fields of an element travel in one message. Elements
/// whose resort index is [`GHOST_INDEX`] are duplicates the solver created
/// and are dropped rather than routed.
///
/// Since the byte-plane rework this function **delegates to the type-erased
/// byte path**: the channels are staged as planes of a temporary
/// [`PlaneSet`] and moved by [`ResortPlan::execute_planes`], which is why
/// the element type must implement [`PlaneElem`] (padding-free, any bit
/// pattern valid — true for all the float/int/[`particles::Vec3`] channel
/// types the coupling interface resorts). Callers that redistribute every
/// step should hold a persistent [`PlaneSet`] and call [`resort_planes`]
/// directly: it reuses the set's slabs and the rank's message-buffer pool,
/// while this wrapper pays a staging copy per call.
///
/// Returns one output vector per input channel, each of length `new_len`.
/// Collective.
///
/// ```
/// use simcomm::{run, MachineModel};
/// use atasp::{encode_index, resort_all, ExchangeMode, GHOST_INDEX};
///
/// let out = run(2, MachineModel::ideal(), |comm| {
///     let me = comm.rank();
///     let dst = 1 - me;
///     // Two fields ride one exchange; the last element is a ghost copy and
///     // vanishes instead of being routed.
///     let pos = [(me * 10) as f64, (me * 10 + 1) as f64, -1.0];
///     let vel = [(me * 10) as f64 + 0.5, (me * 10 + 1) as f64 + 0.5, -1.0];
///     let ix = [encode_index(dst, 0), encode_index(dst, 1), GHOST_INDEX];
///     let mut got = resort_all(comm, &[&pos, &vel], &ix, 2, &ExchangeMode::Collective);
///     let vel_out = got.pop().unwrap();
///     let pos_out = got.pop().unwrap();
///     (pos_out, vel_out)
/// });
/// assert_eq!(out.results[0].0, vec![10.0, 11.0]);
/// assert_eq!(out.results[1].1, vec![0.5, 1.5]);
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use `resort_planes` with a persistent `PlaneSet` — it moves all \
            registered planes through the same single exchange round without \
            the per-call staging copy"
)]
pub fn resort_all<T: PlaneElem>(
    comm: &mut Comm,
    channels: &[&[T]],
    resort_indices: &[u64],
    new_len: usize,
    mode: &ExchangeMode,
) -> Vec<Vec<T>> {
    #[allow(deprecated)]
    ResortPlan::build(comm, resort_indices, new_len, mode).execute(comm, channels)
}

/// Redistribute **every registered plane** of `set` according to
/// `resort_indices` in one partner-ordered byte exchange, reusing `plan`
/// across timesteps.
///
/// This is the primary resort entry point since the byte-plane rework: each
/// live (non-[`GHOST_INDEX`]) element's record — its `u32` target position
/// followed by its bytes from every plane in registration order — travels to
/// its target rank through pool-backed byte buffers, and all planes flip to
/// the received data atomically via [`PlaneSet::commit`]. Semantics
/// (placement by target position, ghost dropping, collectivity) are exactly
/// those of [`resort_all`]; results are bitwise identical to per-field
/// resorts of the same data.
///
/// `plan` is the caller's plan cache: when it already matches
/// (`ResortPlan::matches`) the indices/`new_len`/`mode` triple, the frozen
/// routes are reused and no decode work is paid; otherwise the plan is
/// (re)built in place. On return `set` has `new_len` elements. In
/// neighbourhood mode the steady-state call performs zero heap allocation
/// once the plan, the set's slabs and the rank's buffer pool are warm.
/// Collective — and every rank must register the same planes in the same
/// order.
pub fn resort_planes(
    comm: &mut Comm,
    set: &mut PlaneSet,
    resort_indices: &[u64],
    new_len: usize,
    mode: &ExchangeMode,
    plan: &mut Option<ResortPlan>,
) {
    let cached = plan.as_ref().is_some_and(|p| p.matches(resort_indices, new_len, mode));
    if !cached {
        *plan = Some(ResortPlan::build(comm, resort_indices, new_len, mode));
    }
    plan.as_ref().expect("plan just ensured").execute_planes(comm, set);
}

/// Deterministic 64-bit fingerprint of a resort-index slice (splitmix64
/// fold), used for the cheap plan-validity check in [`ResortPlan::matches`].
fn fingerprint(indices: &[u64]) -> u64 {
    let mut h: u64 = 0x243f_6a88_85a3_08d3 ^ indices.len() as u64;
    for &ix in indices {
        let mut z = h ^ ix.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h = z ^ (z >> 31);
    }
    h
}

/// A frozen redistribution schedule built from one set of resort indices:
/// the plan half of the plan/execute split for [`resort`] / [`resort_all`].
///
/// [`ResortPlan::build`] decodes the indices **once** — which input elements
/// are live (non-ghost), which target rank each goes to, the target position
/// of each, and the stable per-target grouping the exchange needs — and
/// freezes them as per-target route lists. [`ResortPlan::execute`] then only
/// packs payload along the frozen routes, exchanges it, and places it; it can
/// be called once per timestep (and once per channel set) for as long as the
/// resort indices are unchanged, which is exactly the quiet-timestep common
/// case of the paper's Method B: particles move, but the *routing* of the
/// redistribution does not.
///
/// Executing a plan on every rank is a collective operation with the same
/// requirements as [`resort_all`]; ranks may rebuild their plans in different
/// steps (the exchange contents are identical either way).
#[derive(Clone, Debug)]
pub struct ResortPlan {
    mode: ExchangeMode,
    new_len: usize,
    n_input: usize,
    ix_fingerprint: u64,
    /// Per-target route lists: `(target rank, [(input index, target
    /// position)])`, targets ascending, entries in stable input order.
    routes: Vec<(usize, Vec<(u32, u32)>)>,
}

impl ResortPlan {
    /// Decode `resort_indices` into a frozen redistribution schedule (see
    /// the type-level docs). Purely local; charges the one-time decode and
    /// grouping cost and records a `plan_build` trace span.
    pub fn build(
        comm: &mut Comm,
        resort_indices: &[u64],
        new_len: usize,
        mode: &ExchangeMode,
    ) -> ResortPlan {
        let t0 = comm.clock();
        let p = comm.size();
        let mut counts = vec![0usize; p];
        for &ix in resort_indices {
            if is_ghost(ix) {
                continue;
            }
            let (t, _) = decode_index(ix);
            assert!(t < p, "target rank {t} out of range");
            counts[t] += 1;
        }
        let mut bins: Vec<Vec<(u32, u32)>> =
            counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (i, &ix) in resort_indices.iter().enumerate() {
            if is_ghost(ix) {
                continue;
            }
            let (t, pos) = decode_index(ix);
            bins[t].push((i as u32, pos as u32));
        }
        let routes: Vec<(usize, Vec<(u32, u32)>)> =
            bins.into_iter().enumerate().filter(|(_, b)| !b.is_empty()).collect();
        let route_bytes = (std::mem::size_of_val(resort_indices)) as u64;
        comm.compute(Work::ByteCopy, route_bytes as f64);
        comm.note_plan_build(t0, route_bytes);
        ResortPlan {
            mode: mode.clone(),
            new_len,
            n_input: resort_indices.len(),
            ix_fingerprint: fingerprint(resort_indices),
            routes,
        }
    }

    /// Number of elements this rank owns after the redistribution.
    pub fn new_len(&self) -> usize {
        self.new_len
    }

    /// Number of input elements (including ghosts) the plan was built for.
    pub fn input_len(&self) -> usize {
        self.n_input
    }

    /// The exchange mode the plan was built for.
    pub fn mode(&self) -> &ExchangeMode {
        &self.mode
    }

    /// Is this plan still valid for the given redistribution? True when the
    /// resort indices, the output length and the exchange mode are the ones
    /// the plan was built from (index equality via a 64-bit fingerprint).
    pub fn matches(&self, resort_indices: &[u64], new_len: usize, mode: &ExchangeMode) -> bool {
        self.n_input == resort_indices.len()
            && self.new_len == new_len
            && self.mode == *mode
            && self.ix_fingerprint == fingerprint(resort_indices)
    }

    /// Move typed channels through the frozen schedule. Since the byte-plane
    /// rework this is a compatibility wrapper: the channels are staged as
    /// planes of a temporary [`PlaneSet`] and moved by
    /// [`ResortPlan::execute_planes`] — one combined exchange round, ghosts
    /// dropped, every record placed at its target position. Callers on the
    /// per-timestep hot path should hold a persistent `PlaneSet` instead and
    /// skip the staging copies.
    ///
    /// Identical results to [`resort_all`] with the indices the plan was
    /// built from; only the index decode/grouping work is skipped. Collective.
    #[deprecated(
        since = "0.1.0",
        note = "use `ResortPlan::execute_planes` with a persistent `PlaneSet` \
                to avoid the per-call staging copy"
    )]
    pub fn execute<T: PlaneElem>(&self, comm: &mut Comm, channels: &[&[T]]) -> Vec<Vec<T>> {
        let k = channels.len();
        assert!(k > 0, "resort plan execution needs at least one channel");
        for (c, ch) in channels.iter().enumerate() {
            assert_eq!(
                ch.len(),
                self.n_input,
                "channel {c} length does not match the plan's resort indices"
            );
        }
        let mut set = PlaneSet::new();
        let ids: Vec<_> = (0..k).map(|c| set.register::<T>(&format!("ch{c}"))).collect();
        set.resize(self.n_input);
        for (ch, &id) in channels.iter().zip(&ids) {
            set.plane_mut::<T>(id).copy_from_slice(ch);
        }
        self.execute_planes(comm, &mut set);
        ids.iter().map(|&id| set.plane::<T>(id).to_vec()).collect()
    }

    /// Move **every registered plane** of `set` through the frozen schedule
    /// in one partner-ordered byte exchange, and commit the set to the
    /// redistributed data (`set.len()` becomes the plan's `new_len`).
    ///
    /// The wire format packs one record per live element along the plan's
    /// per-target routes: the `u32` target position (little-endian) followed
    /// by the element's bytes from every plane in registration order —
    /// `4 + set.element_bytes()` bytes per record. Placement scatters each
    /// plane's slice of every record into that plane's back slab, then
    /// [`PlaneSet::commit`] flips all planes at once. Send buffers come from
    /// (and received buffers return to) the rank's message-buffer pool, so a
    /// steady-state neighbourhood execution allocates nothing.
    ///
    /// All ranks must register the same planes in the same order (the record
    /// layout is part of the wire contract; mismatches trip the byte-count
    /// assertions). Collective, with the same cost phases
    /// (`"redistribute"` / `"place"`) and per-plane `plan_exec` accounting
    /// as the typed path.
    pub fn execute_planes(&self, comm: &mut Comm, set: &mut PlaneSet) {
        let k = set.plane_count();
        assert!(k > 0, "resort plan execution needs at least one plane");
        assert_eq!(
            set.len(),
            self.n_input,
            "plane set length does not match the plan's resort indices"
        );
        let t0 = comm.clock();
        let new_len = self.new_len;
        let rec = 4 + set.element_bytes();
        let me = comm.rank();
        comm.enter_phase("redistribute");
        let (mut sends, mut received) = comm.take_byte_pairs();
        let mut local: Option<PooledBuf> = None;
        let mut routed_bytes = 0u64;
        match &self.mode {
            ExchangeMode::Collective => {
                for (t, entries) in &self.routes {
                    let buf = pack_route(comm, set, entries, *t, rec);
                    routed_bytes += buf.len() as u64;
                    sends.push((*t, buf));
                }
                comm.compute(Work::ByteCopy, routed_bytes as f64);
                comm.alltoallv_bytes(&mut sends, &mut received);
            }
            ExchangeMode::Neighborhood(partners) => {
                // One buffer per partner in list order (empty where the plan
                // routes nothing); locally-addressed records are held aside
                // rather than self-sent, like the typed exchange.
                for (t, _) in &self.routes {
                    assert!(
                        *t == me || partners.contains(t),
                        "target {t} outside the neighbourhood"
                    );
                }
                for &q in partners {
                    let entries = self
                        .routes
                        .binary_search_by_key(&q, |(t, _)| *t)
                        .map_or(&[][..], |ix| &self.routes[ix].1);
                    let buf = pack_route(comm, set, entries, q, rec);
                    routed_bytes += buf.len() as u64;
                    sends.push((q, buf));
                }
                if let Ok(ix) = self.routes.binary_search_by_key(&me, |(t, _)| *t) {
                    let buf = pack_route(comm, set, &self.routes[ix].1, me, rec);
                    routed_bytes += buf.len() as u64;
                    local = Some(buf);
                }
                comm.compute(Work::ByteCopy, routed_bytes as f64);
                comm.neighbor_exchange_bytes(partners, &mut sends, TAG_ATASP, &mut received);
            }
        }
        comm.exit_phase();
        let n_received: usize = received.iter().map(|(_, b)| b.len()).sum::<usize>()
            + local.as_ref().map_or(0, |b| b.len());
        assert_eq!(
            n_received,
            new_len * rec,
            "resort produced {n_received} payload bytes, expected {new_len} records x {rec} \
             bytes ({k} planes; all ranks must register identical planes)"
        );
        comm.enter_phase("place");
        // Per-plane passes: scatter each record's slice for this plane into
        // the plane's back slab at the record's target position, then flip
        // all planes at once.
        let mut off = 4usize;
        #[cfg(debug_assertions)]
        let mut hit = vec![false; new_len];
        for pi in 0..k {
            let id = set.id_at(pi);
            let view = set.exchange_view(id, new_len);
            let s = view.stride;
            let bufs = local.iter().map(|b| &**b).chain(received.iter().map(|(_, b)| &**b));
            for buf in bufs {
                debug_assert_eq!(buf.len() % rec, 0, "received buffer is not whole records");
                for r in buf.chunks_exact(rec) {
                    let pos =
                        u32::from_le_bytes(r[0..4].try_into().expect("4-byte header")) as usize;
                    assert!(pos < new_len, "target position {pos} out of range");
                    #[cfg(debug_assertions)]
                    if pi == 0 {
                        assert!(!hit[pos], "target position {pos} hit twice");
                        hit[pos] = true;
                    }
                    view.back[pos * s..(pos + 1) * s].copy_from_slice(&r[off..off + s]);
                }
            }
            off += s;
        }
        set.commit(new_len);
        if let Some(buf) = local {
            comm.buf_release(me, buf);
        }
        for (src, buf) in received.drain(..) {
            comm.buf_release(src, buf);
        }
        comm.put_byte_pairs(sends, received);
        comm.compute(Work::ByteCopy, (new_len * (rec - 4)) as f64);
        comm.exit_phase();
        // One `plan_exec` per plane: each plane is one redistribution served
        // by the frozen routes (the unit the build is amortized over), even
        // though all k ride a single combined exchange round.
        for _ in 0..k {
            comm.note_plan_exec(t0, routed_bytes / k as u64);
        }
    }
}

#[cfg(test)]
impl ResortPlan {
    /// The pre-byte-plane typed implementation, kept verbatim as the
    /// independent reference the property tests compare
    /// [`ResortPlan::execute_planes`] against bit-for-bit. Packs `(u32
    /// position, T)` tuple records per channel and places them typed — no
    /// byte reinterpretation anywhere.
    fn execute_reference<T: Send + Copy + Default + 'static>(
        &self,
        comm: &mut Comm,
        channels: &[&[T]],
    ) -> Vec<Vec<T>> {
        let k = channels.len();
        assert!(k > 0, "resort plan execution needs at least one channel");
        for (c, ch) in channels.iter().enumerate() {
            assert_eq!(
                ch.len(),
                self.n_input,
                "channel {c} length does not match the plan's resort indices"
            );
        }
        let t0 = comm.clock();
        let new_len = self.new_len;
        comm.enter_phase("redistribute");
        let mut routed_bytes = 0u64;
        let groups: Vec<(usize, Vec<(u32, T)>)> = self
            .routes
            .iter()
            .map(|(t, entries)| {
                let mut buf: Vec<(u32, T)> = Vec::with_capacity(entries.len() * k);
                for &(i, pos) in entries {
                    for ch in channels {
                        buf.push((pos, ch[i as usize]));
                    }
                }
                routed_bytes += (buf.len() * std::mem::size_of::<(u32, T)>()) as u64;
                (*t, buf)
            })
            .collect();
        comm.compute(Work::ByteCopy, routed_bytes as f64);
        let received = exchange_grouped(comm, groups, &self.mode);
        comm.exit_phase();
        let n_received: usize = received.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(
            n_received,
            new_len * k,
            "resort produced {n_received} records, expected {new_len} x {k} channels"
        );
        comm.enter_phase("place");
        let mut out: Vec<Vec<T>> = (0..k).map(|_| vec![T::default(); new_len]).collect();
        for rec in received.iter().flat_map(|(_, b)| b.chunks_exact(k)) {
            let pos = rec[0].0 as usize;
            assert!(pos < new_len, "target position {pos} out of range");
            for (lane, &(_, d)) in rec.iter().enumerate() {
                out[lane][pos] = d;
            }
        }
        comm.compute(Work::ByteCopy, (k * new_len * std::mem::size_of::<T>()) as f64);
        comm.exit_phase();
        for _ in 0..k {
            comm.note_plan_exec(t0, routed_bytes / k as u64);
        }
        out
    }
}

/// Pack one route's records into a pool-acquired buffer: for each routed
/// element, the `u32` target position (LE) then the element's bytes from
/// every plane in registration order.
fn pack_route(
    comm: &mut Comm,
    set: &PlaneSet,
    entries: &[(u32, u32)],
    dst: usize,
    rec: usize,
) -> PooledBuf {
    let mut buf = comm.buf_acquire(dst, entries.len() * rec);
    let planes = set.planes();
    for &(i, pos) in entries {
        buf.extend_from_slice(&pos.to_le_bytes());
        let i = i as usize;
        for pi in 0..planes.count() {
            let s = planes.stride(pi);
            buf.extend_from_slice(&planes.bytes(pi)[i * s..(i + 1) * s]);
        }
    }
    buf
}

/// Build resort indices by inverting an origin-index permutation.
///
/// Input: for each *current* local element `i`, `origin[i]` encodes where the
/// element originally lived (origin rank, origin position) — the "initial
/// numbering" the solvers carry through their data handling. Output: for each
/// *original* local element (position `j` of the original local array, which
/// had `original_len` elements), the resort index encoding where that element
/// lives now.
///
/// This is the paper's Fig. 5 construction: "initializing new index values
/// consecutively for the changed particles and sorting these index values
/// back according to the particle numbering". Collective.
pub fn build_resort_indices(comm: &mut Comm, origin: &[u64], original_len: usize) -> Vec<u64> {
    build_resort_indices_with(comm, origin, original_len, &ExchangeMode::Collective)
}

/// [`build_resort_indices`] with an explicit exchange mode: when particle
/// movement is limited, origins are neighbourhood-local and the index
/// construction itself can use point-to-point communication (Method B with
/// maximum movement, paper Sect. III-B).
pub fn build_resort_indices_with(
    comm: &mut Comm,
    origin: &[u64],
    original_len: usize,
    mode: &ExchangeMode,
) -> Vec<u64> {
    let me = comm.rank();
    // Send (origin position, current location) to each origin rank.
    let pairs: Vec<(u32, u64)> = origin
        .iter()
        .enumerate()
        .map(|(cur_pos, &og)| {
            let (_, og_pos) = decode_index(og);
            (og_pos as u32, encode_index(me, cur_pos))
        })
        .collect();
    let targets: Vec<usize> = origin.iter().map(|&og| decode_index(og).0).collect();
    let received = alltoall_specific(comm, &pairs, &targets, mode);
    assert_eq!(
        received.len(),
        original_len,
        "every original element must report back exactly once"
    );
    let mut out = vec![GHOST_INDEX; original_len];
    for (og_pos, loc) in received {
        let og_pos = og_pos as usize;
        assert!(out[og_pos] == GHOST_INDEX, "origin position {og_pos} reported twice");
        out[og_pos] = loc;
    }
    comm.compute(Work::ByteCopy, (original_len * 8) as f64);
    out
}

#[cfg(test)]
#[allow(deprecated)] // the per-`T` wrappers stay under test as references
mod tests {
    use super::*;
    use particles::Vec3;
    use simcomm::{run, CartGrid, MachineModel};

    /// splitmix64 — the deterministic generator all property tests share.
    fn sm64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Non-NaN `f64` with a fully random mantissa (bitwise-comparable).
    fn f64_of(bits: u64) -> f64 {
        f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000)
    }

    /// Non-NaN `f32` with a fully random mantissa (bitwise-comparable).
    fn f32_of(bits: u64) -> f32 {
        f32::from_bits((bits as u32 & 0x007f_ffff) | 0x3f80_0000)
    }

    /// Random valid resort indices: every position in `0..new_len` hit
    /// exactly once globally, plus `n_ghost` trailing ghost rows locally.
    fn valid_indices(comm: &mut Comm, n: usize, seed: u64, n_ghost: usize) -> (Vec<u64>, usize) {
        let me = comm.rank();
        let p = comm.size();
        let targets: Vec<usize> =
            (0..n).map(|i| (sm64((me * n + i) as u64 ^ seed) as usize) % p).collect();
        let mut my_counts = vec![0usize; p];
        for &t in &targets {
            my_counts[t] += 1;
        }
        let all_counts = comm.allgather(my_counts);
        let new_len: usize = (0..p).map(|s| all_counts[s][me]).sum();
        let mut next_pos: Vec<usize> =
            (0..p).map(|t| (0..me).map(|s| all_counts[s][t]).sum()).collect();
        let mut ix: Vec<u64> = Vec::with_capacity(n + n_ghost);
        for &t in &targets {
            ix.push(encode_index(t, next_pos[t]));
            next_pos[t] += 1;
        }
        ix.extend(std::iter::repeat_n(GHOST_INDEX, n_ghost));
        (ix, new_len)
    }

    #[test]
    fn index_encoding_roundtrip() {
        for &(r, p) in &[(0usize, 0usize), (1, 2), (255, 1 << 20), (u32::MAX as usize, 7)] {
            assert_eq!(decode_index(encode_index(r, p)), (r, p));
        }
        assert!(is_ghost(GHOST_INDEX));
        assert!(!is_ghost(encode_index(u32::MAX as usize, 0)));
    }

    #[test]
    fn alltoall_specific_routes_elements() {
        let out = run(4, MachineModel::ideal(), |comm| {
            // Each rank sends element k to rank k (one per rank).
            let elements: Vec<u64> = (0..4).map(|k| (comm.rank() * 10 + k) as u64).collect();
            let targets: Vec<usize> = (0..4).collect();
            alltoall_specific(comm, &elements, &targets, &ExchangeMode::Collective)
        });
        // Rank r receives r, 10+r, 20+r, 30+r — ordered by source.
        for (r, res) in out.results.iter().enumerate() {
            assert_eq!(res, &vec![r as u64, 10 + r as u64, 20 + r as u64, 30 + r as u64]);
        }
    }

    #[test]
    fn alltoall_specific_preserves_source_order() {
        let out = run(2, MachineModel::ideal(), |comm| {
            let elements: Vec<u32> = (0..6).map(|i| comm.rank() as u32 * 100 + i).collect();
            let targets = vec![1, 1, 0, 1, 0, 1];
            alltoall_specific(comm, &elements, &targets, &ExchangeMode::Collective)
        });
        assert_eq!(out.results[0], vec![2, 4, 102, 104]);
        assert_eq!(out.results[1], vec![0, 1, 3, 5, 100, 101, 103, 105]);
    }

    #[test]
    fn alltoall_specific_neighborhood_matches_collective() {
        // Ring neighbourhood: targets only me-1, me, me+1.
        let out = run(6, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let p = comm.size();
            let left = (me + p - 1) % p;
            let right = (me + 1) % p;
            let elements: Vec<u64> = (0..9).map(|i| (me * 100 + i) as u64).collect();
            let targets: Vec<usize> = (0..9)
                .map(|i| match i % 3 {
                    0 => left,
                    1 => me,
                    _ => right,
                })
                .collect();
            let mut partners = vec![left, right];
            partners.sort_unstable();
            partners.dedup();
            let coll = alltoall_specific(comm, &elements, &targets, &ExchangeMode::Collective);
            let neigh =
                alltoall_specific(comm, &elements, &targets, &ExchangeMode::Neighborhood(partners));
            (coll, neigh)
        });
        for (coll, neigh) in out.results {
            assert_eq!(coll, neigh);
        }
    }

    #[test]
    #[should_panic(expected = "simcomm world failed")]
    fn neighborhood_rejects_distant_targets() {
        run(4, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let elements = vec![1u8];
            let targets = vec![(me + 2) % 4]; // not a ring neighbour
            let mut partners = vec![(me + 3) % 4, (me + 1) % 4];
            partners.sort_unstable();
            partners.dedup();
            alltoall_specific(comm, &elements, &targets, &ExchangeMode::Neighborhood(partners))
        });
    }

    #[test]
    fn dup_distribution_creates_ghosts() {
        let out = run(3, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let elements: Vec<u64> = vec![me as u64 * 10, me as u64 * 10 + 1];
            // Every element goes to its own rank AND is duplicated to rank 0.
            alltoall_specific_dup(
                comm,
                &elements,
                |_, &e, out| {
                    out.push((me, e));
                    if me != 0 {
                        out.push((0, e + 1000)); // ghost copy, marked
                    }
                },
                &ExchangeMode::Collective,
            )
        });
        assert_eq!(out.results[0], vec![0, 1, 1010, 1011, 1020, 1021]);
        assert_eq!(out.results[1], vec![10, 11]);
        assert_eq!(out.results[2], vec![20, 21]);
    }

    #[test]
    fn dup_can_drop_elements() {
        fn rank_of(e: u32) -> usize {
            (e as usize / 2) % 2
        }
        let out = run(2, MachineModel::ideal(), |comm| {
            let elements: Vec<u32> = (0..10).collect();
            // Keep only even elements (distribution function emits nothing
            // for odd ones).
            alltoall_specific_dup(
                comm,
                &elements,
                |_, &e, out| {
                    if e % 2 == 0 {
                        out.push((rank_of(e), e));
                    }
                },
                &ExchangeMode::Collective,
            )
        });
        assert_eq!(out.results[0], vec![0, 4, 8, 0, 4, 8]);
        assert_eq!(out.results[1], vec![2, 6, 2, 6]);
    }

    #[test]
    fn resort_places_by_position() {
        let out = run(3, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            // Rank r holds values [r*10, r*10+1]; resort rotates them to rank
            // r+1 with swapped positions.
            let data = vec![(me * 10) as u64, (me * 10 + 1) as u64];
            let dst = (me + 1) % 3;
            let indices = vec![encode_index(dst, 1), encode_index(dst, 0)];
            resort(comm, &data, &indices, 2, &ExchangeMode::Collective)
        });
        assert_eq!(out.results[0], vec![21, 20]);
        assert_eq!(out.results[1], vec![1, 0]);
        assert_eq!(out.results[2], vec![11, 10]);
    }

    #[test]
    fn resort_identity_is_noop() {
        let out = run(4, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let data: Vec<f64> = (0..5).map(|i| (me * 5 + i) as f64).collect();
            let indices: Vec<u64> = (0..5).map(|i| encode_index(me, i)).collect();
            resort(comm, &data, &indices, 5, &ExchangeMode::Collective)
        });
        for (r, res) in out.results.iter().enumerate() {
            let expect: Vec<f64> = (0..5).map(|i| (r * 5 + i) as f64).collect();
            assert_eq!(res, &expect);
        }
    }

    #[test]
    fn build_resort_indices_inverts_movement() {
        // Simulate: every original element moved to rank+1 with position
        // reversed; origin codes tell each current holder where elements came
        // from. The built resort indices must route original-ordered data to
        // the current layout.
        let n = 4usize;
        let out = run(3, MachineModel::ideal(), move |comm| {
            let me = comm.rank();
            let p = comm.size();
            let src = (me + p - 1) % p; // current elements came from src
            let origin: Vec<u64> = (0..n).map(|cur| encode_index(src, n - 1 - cur)).collect();
            let resort_ix = build_resort_indices(comm, &origin, n);
            // Apply them to original per-rank data and check it lands like
            // the "current" layout would.
            let original: Vec<u64> = (0..n).map(|j| (me * 100 + j) as u64).collect();
            let moved = resort(comm, &original, &resort_ix, n, &ExchangeMode::Collective);
            (resort_ix, moved)
        });
        for (r, (ix, moved)) in out.results.iter().enumerate() {
            let dst = (r + 1) % 3;
            // Original element j should be at rank dst, position n-1-j.
            for (j, &x) in ix.iter().enumerate() {
                assert_eq!(decode_index(x), (dst, n - 1 - j));
            }
            // Current layout of rank r holds data of rank (r-1+3)%3 reversed.
            let src = (r + 2) % 3;
            let expect: Vec<u64> = (0..n).map(|cur| (src * 100 + (n - 1 - cur)) as u64).collect();
            assert_eq!(moved, &expect);
        }
    }

    #[test]
    fn resort_roundtrip_is_identity() {
        // Forward-scramble data with tags, build resort indices from the
        // origin codes, resort the original data forward, then route it home
        // and compare.
        let out = run(4, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let p = comm.size();
            let n = 6usize;
            let data: Vec<u64> = (0..n).map(|i| (me * 1000 + i) as u64).collect();
            let targets: Vec<usize> = (0..n).map(|i| (me + i) % p).collect();
            let tagged: Vec<u64> = (0..n).map(|i| encode_index(me, i)).collect();
            let origin = alltoall_specific(comm, &tagged, &targets, &ExchangeMode::Collective);
            let new_len = origin.len();
            let ix = build_resort_indices(comm, &origin, n);
            let moved = resort(comm, &data, &ix, new_len, &ExchangeMode::Collective);
            // Invert: current origin codes route everything home.
            let home_targets: Vec<usize> = origin.iter().map(|&og| decode_index(og).0).collect();
            let home_pairs: Vec<(u32, u64)> =
                moved.iter().zip(&origin).map(|(&d, &og)| (decode_index(og).1 as u32, d)).collect();
            let back_raw =
                alltoall_specific(comm, &home_pairs, &home_targets, &ExchangeMode::Collective);
            let mut back = vec![0u64; n];
            for (pos, d) in back_raw {
                back[pos as usize] = d;
            }
            (data, back)
        });
        for (data, back) in out.results {
            assert_eq!(data, back);
        }
    }

    #[test]
    fn resort_all_uses_one_exchange_round() {
        use simcomm::{run_traced, TraceKind};
        // One combined exchange for three fields versus one exchange per
        // field, verified by counting redistribution rounds in the trace.
        let trace_rounds = |combined: bool| {
            let out = run_traced(4, MachineModel::ideal(), move |comm| {
                let me = comm.rank();
                let dst = (me + 1) % 4;
                let n = 5usize;
                let a: Vec<u64> = (0..n).map(|i| (me * 100 + i) as u64).collect();
                let b: Vec<u64> = a.iter().map(|x| x + 1).collect();
                let c: Vec<u64> = a.iter().map(|x| x + 2).collect();
                let ix: Vec<u64> = (0..n).map(|i| encode_index(dst, i)).collect();
                if combined {
                    let _ = resort_all(comm, &[&a, &b, &c], &ix, n, &ExchangeMode::Collective);
                } else {
                    for ch in [&a, &b, &c] {
                        let _ = resort(comm, ch, &ix, n, &ExchangeMode::Collective);
                    }
                }
            });
            out.traces
                .iter()
                .map(|t| {
                    t.events
                        .iter()
                        .filter(|e| e.kind == TraceKind::Alltoallv && e.phase == "redistribute")
                        .count()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(trace_rounds(true), vec![1; 4], "multi-field resort must use one round");
        assert_eq!(trace_rounds(false), vec![3; 4]);
    }

    #[test]
    fn resort_all_matches_per_field_resorts_with_ghosts() {
        fn splitmix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        let n = 40usize;
        let out = run(6, MachineModel::ideal(), move |comm| {
            let me = comm.rank();
            let p = comm.size();
            // Random per-element targets; positions on each target rank are
            // consecutive blocks ordered by source rank, derived from an
            // allgather of the per-(source, target) counts so that every
            // position in 0..new_len is hit exactly once globally.
            let targets: Vec<usize> =
                (0..n).map(|i| (splitmix((me * n + i) as u64 ^ 0xabcd) as usize) % p).collect();
            let mut my_counts = vec![0usize; p];
            for &t in &targets {
                my_counts[t] += 1;
            }
            let all_counts = comm.allgather(my_counts);
            let new_len: usize = (0..p).map(|s| all_counts[s][me]).sum();
            let mut next_pos: Vec<usize> =
                (0..p).map(|t| (0..me).map(|s| all_counts[s][t]).sum()).collect();
            let n_ghost = me % 3;
            let mut ix: Vec<u64> = Vec::with_capacity(n + n_ghost);
            for &t in &targets {
                ix.push(encode_index(t, next_pos[t]));
                next_pos[t] += 1;
            }
            // Ghost duplicates carry junk payloads and must simply vanish.
            ix.extend(std::iter::repeat_n(GHOST_INDEX, n_ghost));
            let field = |salt: u64| -> Vec<u64> {
                (0..n + n_ghost).map(|i| splitmix((me * 7919 + i) as u64 ^ salt)).collect()
            };
            let (a, b, c) = (field(1), field(2), field(3));
            let combined = resort_all(comm, &[&a, &b, &c], &ix, new_len, &ExchangeMode::Collective);
            let per_field: Vec<Vec<u64>> = [&a, &b, &c]
                .into_iter()
                .map(|ch| resort(comm, ch, &ix, new_len, &ExchangeMode::Collective))
                .collect();
            (combined, per_field)
        });
        for (combined, per_field) in out.results {
            assert_eq!(combined, per_field);
        }
    }

    #[test]
    fn resort_plan_reuse_matches_fresh_build() {
        fn splitmix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        // Property: as long as the resort indices are unchanged, executing a
        // *cached* plan with fresh payload is bitwise identical to a fresh
        // `build()` + `execute()` (i.e. to `resort_all`), over several
        // "timesteps" of randomized payload, ghosts included.
        let n = 32usize;
        let out = run(5, MachineModel::ideal(), move |comm| {
            let me = comm.rank();
            let p = comm.size();
            let targets: Vec<usize> =
                (0..n).map(|i| (splitmix((me * n + i) as u64 ^ 0x5eed) as usize) % p).collect();
            let mut my_counts = vec![0usize; p];
            for &t in &targets {
                my_counts[t] += 1;
            }
            let all_counts = comm.allgather(my_counts);
            let new_len: usize = (0..p).map(|s| all_counts[s][me]).sum();
            let mut next_pos: Vec<usize> =
                (0..p).map(|t| (0..me).map(|s| all_counts[s][t]).sum()).collect();
            let n_ghost = (me * 2) % 5;
            let mut ix: Vec<u64> = Vec::with_capacity(n + n_ghost);
            for &t in &targets {
                ix.push(encode_index(t, next_pos[t]));
                next_pos[t] += 1;
            }
            ix.extend(std::iter::repeat_n(GHOST_INDEX, n_ghost));
            let plan = ResortPlan::build(comm, &ix, new_len, &ExchangeMode::Collective);
            assert!(plan.matches(&ix, new_len, &ExchangeMode::Collective));
            let mut agree = true;
            for step in 0..3u64 {
                let field = |salt: u64| -> Vec<u64> {
                    (0..n + n_ghost)
                        .map(|i| splitmix((me * 131 + i) as u64 ^ (salt << 8) ^ step))
                        .collect()
                };
                let (a, b) = (field(1), field(2));
                let cached = plan.execute(comm, &[&a, &b]);
                let fresh = resort_all(comm, &[&a, &b], &ix, new_len, &ExchangeMode::Collective);
                agree &= cached == fresh;
            }
            // Any change to the indices must invalidate the plan.
            let mut changed = ix.clone();
            if let Some(first) = changed.first_mut() {
                *first ^= 1 << 32;
            }
            let invalidated = !plan.matches(&changed, new_len, &ExchangeMode::Collective)
                && !plan.matches(&ix[..ix.len() - 1], new_len, &ExchangeMode::Collective)
                && !plan.matches(&ix, new_len + 1, &ExchangeMode::Collective);
            (agree, invalidated)
        });
        for (agree, invalidated) in out.results {
            assert!(agree, "cached plan must match fresh plan+execute bitwise");
            assert!(invalidated, "changed indices must invalidate the plan");
        }
    }

    #[test]
    fn resort_plan_counts_builds_and_execs() {
        use simcomm::run_traced;
        let out = run_traced(3, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let dst = (me + 1) % 3;
            let n = 4usize;
            let ix: Vec<u64> = (0..n).map(|i| encode_index(dst, i)).collect();
            let data: Vec<f64> = (0..n).map(|i| (me * 10 + i) as f64).collect();
            let plan = ResortPlan::build(comm, &ix, n, &ExchangeMode::Collective);
            for _ in 0..4 {
                let _ = plan.execute(comm, &[&data]);
            }
            // A multi-channel execution counts one plan_exec per channel
            // served, even though all channels ride one exchange round.
            let _ = plan.execute(comm, &[&data, &data]);
            (comm.stats().plan_builds, comm.stats().plan_execs)
        });
        for &(builds, execs) in &out.results {
            assert_eq!((builds, execs), (1, 6));
        }
        use simcomm::TraceKind;
        for t in &out.traces {
            assert_eq!(t.events.iter().filter(|e| e.kind == TraceKind::PlanBuild).count(), 1);
            assert_eq!(t.events.iter().filter(|e| e.kind == TraceKind::PlanExec).count(), 6);
        }
    }

    /// Bitwise property: `resort_planes` over mixed-stride planes (f32 /
    /// Vec3 / u64 / f64, with ghost rows) is identical to both the typed
    /// pre-byte-plane reference and per-field `resort_all`, across repeated
    /// plan-cache reuse steps with fresh payload.
    #[test]
    fn resort_planes_bitwise_matches_typed_reference_mixed_strides() {
        let n = 48usize;
        let out = run(6, MachineModel::ideal(), move |comm| {
            let me = comm.rank();
            let n_ghost = me % 4;
            let (ix, new_len) = valid_indices(comm, n, 0xfeed, n_ghost);
            let reference_plan = ResortPlan::build(comm, &ix, new_len, &ExchangeMode::Collective);
            let mut plan: Option<ResortPlan> = None;
            let mut agree = true;
            for step in 0..3u64 {
                let bits = |i: usize, salt: u64| sm64((me * 4099 + i) as u64 ^ (salt << 40) ^ step);
                let m = n + n_ghost;
                let a: Vec<f32> = (0..m).map(|i| f32_of(bits(i, 1))).collect();
                let b: Vec<Vec3> = (0..m)
                    .map(|i| Vec3::new(f64_of(bits(i, 2)), f64_of(bits(i, 3)), f64_of(bits(i, 4))))
                    .collect();
                let c: Vec<u64> = (0..m).map(|i| bits(i, 5)).collect();
                let d: Vec<f64> = (0..m).map(|i| f64_of(bits(i, 6))).collect();
                let mut set = PlaneSet::new();
                let pa = set.register::<f32>("a");
                let pb = set.register::<Vec3>("b");
                let pc = set.register::<u64>("c");
                let pd = set.register::<f64>("d");
                set.resize(m);
                set.plane_mut::<f32>(pa).copy_from_slice(&a);
                set.plane_mut::<Vec3>(pb).copy_from_slice(&b);
                set.plane_mut::<u64>(pc).copy_from_slice(&c);
                set.plane_mut::<f64>(pd).copy_from_slice(&d);
                resort_planes(comm, &mut set, &ix, new_len, &ExchangeMode::Collective, &mut plan);
                assert_eq!(set.len(), new_len);
                // Typed pre-rework reference, one call per field.
                let ra = reference_plan.execute_reference(comm, &[&a]).pop().unwrap();
                let rb = reference_plan.execute_reference(comm, &[&b]).pop().unwrap();
                let rc = reference_plan.execute_reference(comm, &[&c]).pop().unwrap();
                let rd = reference_plan.execute_reference(comm, &[&d]).pop().unwrap();
                // Current per-field wrapper (rides the byte path itself).
                let wa = resort(comm, &a, &ix, new_len, &ExchangeMode::Collective);
                let bits_f32 = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                let bits_f64 = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                let bits_v3 = |v: &[Vec3]| {
                    v.iter().flat_map(|x| x.0.iter().map(|c| c.to_bits())).collect::<Vec<_>>()
                };
                agree &= bits_f32(set.plane::<f32>(pa)) == bits_f32(&ra);
                agree &= bits_v3(set.plane::<Vec3>(pb)) == bits_v3(&rb);
                agree &= set.plane::<u64>(pc) == &rc[..];
                agree &= bits_f64(set.plane::<f64>(pd)) == bits_f64(&rd);
                agree &= bits_f32(&wa) == bits_f32(&ra);
            }
            agree
        });
        for (r, agree) in out.results.iter().enumerate() {
            assert!(agree, "rank {r}: byte-plane resort deviates from the typed reference");
        }
    }

    /// `resort_planes` must move all registered planes (four heterogeneous
    /// strides here) in ONE exchange round, where per-field typed resorts of
    /// the same data pay one round per field — verified from the trace.
    #[test]
    fn resort_planes_uses_one_exchange_round_for_heterogeneous_planes() {
        use simcomm::{run_traced, TraceKind};
        let rounds = |combined: bool| {
            let out = run_traced(4, MachineModel::ideal(), move |comm| {
                let me = comm.rank();
                let dst = (me + 1) % 4;
                let n = 5usize;
                let a: Vec<f32> = (0..n).map(|i| (me * 100 + i) as f32).collect();
                let b: Vec<Vec3> = (0..n).map(|i| Vec3::splat((me * 10 + i) as f64)).collect();
                let c: Vec<u64> = (0..n).map(|i| (me * 1000 + i) as u64).collect();
                let ix: Vec<u64> = (0..n).map(|i| encode_index(dst, i)).collect();
                if combined {
                    let mut set = PlaneSet::new();
                    let pa = set.register::<f32>("a");
                    let pb = set.register::<Vec3>("b");
                    let pc = set.register::<u64>("c");
                    set.resize(n);
                    set.plane_mut::<f32>(pa).copy_from_slice(&a);
                    set.plane_mut::<Vec3>(pb).copy_from_slice(&b);
                    set.plane_mut::<u64>(pc).copy_from_slice(&c);
                    let mut plan = None;
                    resort_planes(comm, &mut set, &ix, n, &ExchangeMode::Collective, &mut plan);
                } else {
                    let _ = resort(comm, &a, &ix, n, &ExchangeMode::Collective);
                    let _ = resort(comm, &b, &ix, n, &ExchangeMode::Collective);
                    let _ = resort(comm, &c, &ix, n, &ExchangeMode::Collective);
                }
            });
            out.traces
                .iter()
                .map(|t| {
                    t.events
                        .iter()
                        .filter(|e| e.kind == TraceKind::Alltoallv && e.phase == "redistribute")
                        .count()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(rounds(true), vec![1; 4], "all planes must ride one exchange round");
        assert_eq!(rounds(false), vec![3; 4]);
    }

    /// Neighbourhood-mode `resort_planes` equals collective mode, and the
    /// steady state reuses pooled buffers (bytes_reused grows, bytes_grown
    /// stops) — ghosts included.
    #[test]
    fn resort_planes_neighborhood_matches_collective_and_reuses_buffers() {
        let g = CartGrid::new([2, 2, 2]);
        let out = run(8, MachineModel::juqueen_like(), move |comm| {
            let me = comm.rank();
            let partners = g.neighbors26(me);
            let n = 6usize;
            let n_ghost = me % 3;
            let m = n + n_ghost;
            let dst = g.shifted_rank(me, [1, 0, 0]);
            let mut ix: Vec<u64> = (0..n).map(|i| encode_index(dst, n - 1 - i)).collect();
            ix.extend(std::iter::repeat_n(GHOST_INDEX, n_ghost));
            let build = |comm: &Comm, salt: u64| -> (Vec<u64>, Vec<f64>) {
                let me = comm.rank();
                let c: Vec<u64> = (0..m).map(|i| sm64((me * 31 + i) as u64 ^ salt)).collect();
                let d: Vec<f64> = c.iter().map(|&x| f64_of(x ^ salt)).collect();
                (c, d)
            };
            let mode_n = ExchangeMode::Neighborhood(partners);
            let mut grown_settled = true;
            let mut modes_agree = true;
            let mut plan_n = None;
            let mut plan_c = None;
            for step in 0..4u64 {
                let (c, d) = build(comm, step);
                let mut set_n = PlaneSet::new();
                let (pc, pd) = (set_n.register::<u64>("c"), set_n.register::<f64>("d"));
                set_n.resize(m);
                set_n.plane_mut::<u64>(pc).copy_from_slice(&c);
                set_n.plane_mut::<f64>(pd).copy_from_slice(&d);
                let mut set_c = set_n.clone();
                let grown_before = comm.stats().bytes_grown;
                resort_planes(comm, &mut set_n, &ix, n, &mode_n, &mut plan_n);
                if step >= 2 {
                    // Steady state: all buffers come from the pool.
                    grown_settled &= comm.stats().bytes_grown == grown_before;
                }
                resort_planes(comm, &mut set_c, &ix, n, &ExchangeMode::Collective, &mut plan_c);
                modes_agree &= set_n.plane::<u64>(pc) == set_c.plane::<u64>(pc);
                modes_agree &= set_n
                    .plane::<f64>(pd)
                    .iter()
                    .map(|x| x.to_bits())
                    .eq(set_c.plane::<f64>(pd).iter().map(|x| x.to_bits()));
            }
            (modes_agree, grown_settled, comm.stats().bytes_reused > 0)
        });
        for (r, &(agree, settled, reused)) in out.results.iter().enumerate() {
            assert!(agree, "rank {r}: neighbourhood and collective modes disagree");
            assert!(settled, "rank {r}: steady-state resort still grows buffers");
            assert!(reused, "rank {r}: pool never reused a buffer");
        }
    }

    #[test]
    fn grid_neighborhood_resort_on_cart_grid() {
        // Use the 26-neighbourhood of a 3D grid as partner set; move each
        // element to a face neighbour. Collective and neighbourhood modes
        // must agree.
        let g = CartGrid::new([2, 2, 2]);
        let out = run(8, MachineModel::juqueen_like(), move |comm| {
            let me = comm.rank();
            let partners = g.neighbors26(me);
            let n = 3usize;
            let data: Vec<u64> = (0..n).map(|i| (me * 10 + i) as u64).collect();
            let dst = g.shifted_rank(me, [1, 0, 0]);
            let indices: Vec<u64> = (0..n).map(|i| encode_index(dst, n - 1 - i)).collect();
            let coll = resort(comm, &data, &indices, n, &ExchangeMode::Collective);
            let neigh = resort(comm, &data, &indices, n, &ExchangeMode::Neighborhood(partners));
            (coll, neigh)
        });
        for (coll, neigh) in out.results {
            assert_eq!(coll, neigh);
        }
    }
}
