//! Property tests for nonblocking request completion: `waitany` and
//! `neighbor_exchange` under seeded random message reordering, duplicate
//! tags, and injected faults. Every schedule is drawn with splitmix64 from a
//! fixed seed, and every assertion is re-checked across two runs of the same
//! world — the runtime promises deterministic *data* regardless of OS
//! scheduling, and (for `waitall`-based paths) deterministic clocks too.

use simcomm::{run, run_faulted, Comm, FaultPlan, MachineModel, Request, StallSpec};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random permutation of `0..n` from a seed.
fn permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (splitmix64(seed ^ (i as u64)) % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// The seeded send list of rank `r` in an `n`-rank world: `msgs` messages to
/// each peer, tags drawn from a pool of 3 (heavily duplicated), payload
/// encoding `(src, tag, k)`.
fn build_sends(r: usize, n: usize, seed: u64, msgs: usize) -> Vec<(usize, u64, u64)> {
    let tag_pool = 3u64;
    let mut sends: Vec<(usize, u64, u64)> = Vec::new();
    for dst in (0..n).filter(|&d| d != r) {
        for k in 0..msgs {
            let tag = splitmix64(seed ^ ((r * n + dst) as u64) << 16 ^ k as u64) % tag_pool;
            sends.push((dst, tag, ((r as u64) << 32) | (tag << 16) | k as u64));
        }
    }
    sends
}

/// The order rank `r` actually posts its sends in (a seeded permutation of
/// [`build_sends`]).
fn send_post_order(r: usize, n: usize, seed: u64, msgs: usize) -> Vec<(usize, u64, u64)> {
    let sends = build_sends(r, n, seed, msgs);
    let sorder = permutation(seed ^ 0x1234 ^ r as u64, sends.len());
    sorder.iter().map(|&i| sends[i]).collect()
}

/// Each rank posts receives for everything its peers will send (in a seeded
/// random order), then issues its own sends (in another seeded random order),
/// and drains the receives with `waitany`. Returns, per rank, the received
/// `(src, tag, payload)` triples in completion order.
fn waitany_schedule(comm: &mut Comm, seed: u64, msgs: usize) -> Vec<(usize, u64, u64)> {
    let r = comm.rank();
    let n = comm.size();
    let tag_pool = 3u64; // few tags, many duplicates
                         // Post receives for exactly what the peers will send us, derived from the
                         // same seeded schedule (every rank can compute every other rank's plan).
    let mut recvs: Vec<Option<Request<u64>>> = Vec::new();
    let mut sources: Vec<(usize, u64)> = Vec::new();
    for src in (0..n).filter(|&s| s != r) {
        for k in 0..msgs {
            let tag = splitmix64(seed ^ ((src * n + r) as u64) << 16 ^ k as u64) % tag_pool;
            sources.push((src, tag));
        }
    }
    // Post the receive requests in a seeded random order (reordering).
    let order = permutation(seed ^ 0xabcd, sources.len());
    let posted: Vec<(usize, u64)> = order.iter().map(|&i| sources[i]).collect();
    for &(src, tag) in &posted {
        recvs.push(Some(comm.irecv(src, tag)));
    }
    // Skew the ranks so arrival order differs from post order.
    comm.advance(1e-6 * (r as f64));
    // Issue the sends in a seeded random order too.
    let tx: Vec<Request<u64>> = send_post_order(r, n, seed, msgs)
        .into_iter()
        .map(|(dst, tag, payload)| comm.isend(dst, tag, vec![payload]))
        .collect();

    // Drain with waitany; record (src, tag, payload) in completion order.
    let mut got: Vec<(usize, u64, u64)> = Vec::new();
    for _ in 0..posted.len() {
        let (slot, data) = comm.waitany(&mut recvs);
        let payload = data.expect("recv slot")[0];
        let (src, tag) = posted[slot];
        got.push((src, tag, payload));
    }
    assert!(recvs.iter().all(Option::is_none));
    let _ = comm.waitall(tx);
    got
}

#[test]
fn waitany_under_reordering_and_duplicate_tags_is_deterministic() {
    for seed in [1u64, 0xfeed, 0x1ee7] {
        let run_once = || {
            run(6, MachineModel::juqueen_like(), move |comm| waitany_schedule(comm, seed, 4))
                .results
        };
        let (a, b) = (run_once(), run_once());
        // waitany's completion *order* may depend on physical arrival timing
        // (documented); the delivered data must not.
        for r in 0..6 {
            let mut sa = a[r].clone();
            let mut sb = b[r].clone();
            sa.sort_unstable();
            sb.sort_unstable();
            assert_eq!(sa, sb, "seed {seed}, rank {r}: waitany data must match across runs");
        }
        for (r, got) in a.iter().enumerate() {
            // Every payload correctly identifies its (src, tag) stream…
            for &(src, tag, payload) in got {
                assert_eq!(payload >> 32, src as u64, "rank {r}: payload src");
                assert_eq!((payload >> 16) & 0xffff, tag, "rank {r}: payload tag");
            }
            // …and within each (src, tag) stream, delivery follows the order
            // the *sender* posted its sends in (per-stream FIFO), even though
            // receive posts and completions were both reordered.
            for src in (0..6).filter(|&s| s != r) {
                let posted = send_post_order(src, 6, seed, 4);
                for tag in 0..3u64 {
                    let delivered: Vec<u64> = got
                        .iter()
                        .filter(|&&(s, t, _)| s == src && t == tag)
                        .map(|&(_, _, p)| p & 0xffff)
                        .collect();
                    let expected: Vec<u64> = posted
                        .iter()
                        .filter(|&&(dst, t, _)| dst == r && t == tag)
                        .map(|&(_, _, p)| p & 0xffff)
                        .collect();
                    assert_eq!(
                        delivered, expected,
                        "rank {r}: per-stream FIFO broken for src {src} tag {tag}"
                    );
                }
            }
        }
    }
}

#[test]
fn waitany_data_unchanged_under_faults() {
    let seed = 0xdead_beef;
    let clean =
        run(5, MachineModel::juropa_like(), move |comm| waitany_schedule(comm, seed, 3)).results;
    let plan = FaultPlan {
        seed: 99,
        send_loss_prob: 0.3,
        retry_backoff_seconds: 1e-6,
        latency_spike_prob: 0.3,
        latency_spike_seconds: 25e-6,
        wait_timeout_seconds: Some(1e-5),
        stall: Some(StallSpec { rank: 2, after_ops: 5, seconds: 1e-4 }),
        ..FaultPlan::none()
    };
    let faulted = run_faulted(5, MachineModel::juropa_like(), plan, move |comm| {
        waitany_schedule(comm, seed, 3)
    })
    .results;
    // Faults reshuffle completion order (spikes change arrival times), but
    // the multiset of delivered payloads per rank is untouched.
    for r in 0..5 {
        let mut a: Vec<_> = clean[r].clone();
        let mut b: Vec<_> = faulted[r].clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "rank {r}: faults must not alter delivered data");
    }
}

/// Seeded neighbourhood exchange: random partner sets (symmetric by
/// construction), random payload sizes, duplicate use of one tag across
/// overlapping exchanges.
fn neighbor_schedule(comm: &mut Comm, seed: u64) -> Vec<Vec<(usize, Vec<u64>)>> {
    let r = comm.rank();
    let n = comm.size();
    // Symmetric partner relation: ranks a<b are partners iff a seeded draw
    // on the unordered pair says so.
    let partners: Vec<usize> = (0..n)
        .filter(|&q| {
            q != r && {
                let (a, b) = (r.min(q) as u64, r.max(q) as u64);
                !splitmix64(seed ^ (a << 20) ^ b).is_multiple_of(3)
            }
        })
        .collect();
    let mut rounds = Vec::new();
    for round in 0..3u64 {
        let data: Vec<(usize, Vec<u64>)> = partners
            .iter()
            .map(|&q| {
                let len = (splitmix64(seed ^ round << 8 ^ ((r * n + q) as u64)) % 17) as usize;
                (q, (0..len as u64).map(|i| ((r as u64) << 32) | (round << 16) | i).collect())
            })
            .collect();
        // The same tag every round: round separation relies on FIFO matching.
        rounds.push(comm.neighbor_exchange(&partners, data, 7));
    }
    rounds
}

#[test]
fn neighbor_exchange_random_topology_deterministic_and_fault_immune() {
    let seed = 0x5eed;
    let run_clean = || {
        let out = run(8, MachineModel::juqueen_like(), move |comm| neighbor_schedule(comm, seed));
        (out.results, out.clocks)
    };
    let (a, clocks_a) = run_clean();
    let (b, clocks_b) = run_clean();
    assert_eq!(a, b, "neighbor_exchange data must be identical across runs");
    assert_eq!(clocks_a, clocks_b, "waitall-based exchange pins clocks too");
    // Payload integrity: every received buffer names its source and round.
    for (r, rounds) in a.iter().enumerate() {
        for (round, bufs) in rounds.iter().enumerate() {
            for (src, buf) in bufs {
                for (i, &v) in buf.iter().enumerate() {
                    assert_eq!(v >> 32, *src as u64, "rank {r}: src stamp");
                    assert_eq!((v >> 16) & 0xffff, round as u64, "rank {r}: round stamp");
                    assert_eq!(v & 0xffff, i as u64, "rank {r}: index stamp");
                }
            }
        }
    }
    // Under faults, the exchanged data is bit-identical to the clean run.
    let plan = FaultPlan {
        seed: 123,
        send_loss_prob: 0.4,
        max_retries: 4,
        retry_backoff_seconds: 2e-6,
        latency_spike_prob: 0.2,
        latency_spike_seconds: 40e-6,
        straggler_ranks: vec![1],
        straggler_factor: 2.5,
        wait_timeout_seconds: Some(1e-5),
        ..FaultPlan::none()
    };
    let faulted = run_faulted(8, MachineModel::juqueen_like(), plan, move |comm| {
        neighbor_schedule(comm, seed)
    });
    assert_eq!(faulted.results, a, "faults must not alter neighbor_exchange data");
    let injected: u64 = faulted.stats.iter().map(|s| s.faults_injected).sum();
    assert!(injected > 0, "this plan must actually inject faults");
}
