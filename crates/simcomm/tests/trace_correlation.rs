//! Correlation-id contract of the trace stream: the invariants `simtrace`
//! relies on to reconstruct the happens-before graph without guessing by tag.
//!
//! Under an arbitrary seeded fault plan (latency spikes, transient send
//! losses with retries, stragglers, wait timeouts) and on both engines:
//!
//! * every `Isend` record has **exactly one** matching `Wait` completion
//!   record with the same correlation id, on the same rank, to the same
//!   peer — faults may reorder and delay completions but never drop or
//!   duplicate one;
//! * every `Recv` record's correlation id matches **exactly one** `Send` or
//!   `Isend` record on the sending peer, with the same byte count;
//! * correlation ids are world-unique and nonzero across all posted sends;
//! * the whole correlated event stream is bitwise identical across engines.

use std::collections::HashMap;

use simcomm::{
    CartGrid, Engine, FaultPlan, MachineModel, Runner, StallSpec, Trace, TraceKind, Work,
};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded program mixing every point-to-point shape: blocking sends, ring
/// sendrecvs, nonblocking neighbourhood batches drained out of order, and
/// compute phases that shift the virtual clocks between posts.
fn p2p_program(seed: u64, steps: usize) -> impl Fn(&mut simcomm::Comm) -> u64 + Send + Sync {
    move |comm| {
        let n = comm.size();
        let rank = comm.rank();
        let partners = CartGrid::balanced(n).neighbors26(rank);
        let mut acc = rank as u64;
        for step in 0..steps {
            let r = splitmix64(seed ^ ((step as u64) << 20) ^ rank as u64);
            comm.compute(Work::ParticleOp, (r % 400) as f64);

            // Blocking ring exchange.
            let right = (rank + 1) % n;
            let left = (rank + n - 1) % n;
            let got = comm.sendrecv(right, vec![r; 1 + (r % 7) as usize], left, 1);
            acc = acc.wrapping_add(got[0]);

            // Nonblocking neighbourhood exchange: posts isends for every
            // partner, drains receives in arrival order, waits all sends.
            let data: Vec<(usize, Vec<u64>)> = partners
                .iter()
                .map(|&p| (p, vec![r; (splitmix64(r ^ p as u64) % 48) as usize]))
                .collect();
            let recvd = comm.neighbor_exchange(&partners, data, 2);
            acc = acc.wrapping_add(recvd.iter().map(|(_, v)| v.len() as u64).sum::<u64>());

            if step % 2 == 1 {
                comm.barrier();
            }
        }
        acc
    }
}

/// The fault plan the contract is tested under: everything that can reorder
/// or delay completions at once.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        latency_spike_prob: 0.15,
        latency_spike_seconds: 40e-6,
        send_loss_prob: 0.15,
        retry_backoff_seconds: 4e-6,
        straggler_ranks: vec![1, 5],
        straggler_factor: 1.7,
        stall: Some(StallSpec { rank: 3, after_ops: 12, seconds: 5e-4 }),
        wait_timeout_seconds: Some(8e-5),
        ..FaultPlan::none()
    }
}

/// Check the correlation invariants over a whole world's traces. Returns the
/// number of (isend, wait) pairs matched, so callers can assert the check
/// was not vacuous.
fn assert_correlation_invariants(traces: &[Trace], what: &str) -> usize {
    // corr -> (rank, bytes) of the posting Send/Isend event; also proves
    // world-uniqueness across ranks.
    let mut posts: HashMap<u64, (usize, u64)> = HashMap::new();
    for t in traces {
        for e in &t.events {
            if matches!(e.kind, TraceKind::Send | TraceKind::Isend) {
                assert_ne!(e.corr, 0, "{what}: rank {} posted a send with corr 0", e.rank);
                let prev = posts.insert(e.corr, (e.rank, e.bytes));
                assert!(
                    prev.is_none(),
                    "{what}: correlation id {:#x} posted twice (ranks {} and {})",
                    e.corr,
                    prev.unwrap().0,
                    e.rank
                );
            }
        }
    }

    let mut matched_waits = 0usize;
    for t in traces {
        // Exactly-one-completion: count Isend posts and Wait completions per
        // corr on this rank; the multisets must agree.
        let mut isends: HashMap<u64, usize> = HashMap::new();
        let mut waits: HashMap<u64, usize> = HashMap::new();
        for e in &t.events {
            match e.kind {
                TraceKind::Isend => *isends.entry(e.corr).or_default() += 1,
                TraceKind::Wait => {
                    *waits.entry(e.corr).or_default() += 1;
                    let (src, _) = posts.get(&e.corr).copied().unwrap_or_else(|| {
                        panic!("{what}: rank {} completed unknown corr {:#x}", e.rank, e.corr)
                    });
                    assert_eq!(
                        src, e.rank,
                        "{what}: wait completion for corr {:#x} on rank {} but the \
                         message was posted by rank {src}",
                        e.corr, e.rank
                    );
                    matched_waits += 1;
                }
                TraceKind::Recv => {
                    // Every receive names a real posted message from the
                    // recorded peer, byte for byte.
                    let (src, bytes) = posts.get(&e.corr).copied().unwrap_or_else(|| {
                        panic!("{what}: rank {} received unknown corr {:#x}", e.rank, e.corr)
                    });
                    assert_eq!(
                        Some(src),
                        e.peer,
                        "{what}: recv corr {:#x} on rank {} names peer {:?} but the \
                         sender was rank {src}",
                        e.corr,
                        e.rank,
                        e.peer
                    );
                    assert_eq!(
                        bytes, e.bytes,
                        "{what}: recv corr {:#x} byte count diverged from the post",
                        e.corr
                    );
                }
                _ => {}
            }
        }
        for (corr, n_posted) in &isends {
            let n_completed = waits.get(corr).copied().unwrap_or(0);
            assert_eq!(*n_posted, 1, "{what}: corr {corr:#x} posted {n_posted} times on one rank");
            assert_eq!(
                n_completed, 1,
                "{what}: isend corr {corr:#x} on rank {} has {n_completed} wait \
                 completions (want exactly 1)",
                t.events[0].rank
            );
        }
        for corr in waits.keys() {
            assert!(
                isends.contains_key(corr),
                "{what}: wait completion for corr {corr:#x} without an isend post"
            );
        }
    }
    matched_waits
}

#[test]
fn every_isend_has_exactly_one_completion_under_faults_on_both_engines() {
    for seed in [3u64, 19, 71] {
        let f = p2p_program(seed, 3);
        let plan = chaos_plan(seed.wrapping_mul(0x9e37));
        let t = Runner::new(Engine::Threaded).traced(true).faulted(plan.clone()).run(
            12,
            MachineModel::juropa_like(),
            &f,
        );
        let d = Runner::new(Engine::DiscreteEvent).traced(true).faulted(plan).run(
            12,
            MachineModel::juropa_like(),
            &f,
        );

        let matched = assert_correlation_invariants(&t.traces, &format!("threaded seed {seed}"));
        assert!(matched > 0, "seed {seed}: no isend/wait pairs — test is vacuous");
        assert_correlation_invariants(&d.traces, &format!("discrete seed {seed}"));

        // The faults must actually have fired and reordered something.
        assert!(
            t.stats.iter().map(|s| s.faults_injected).sum::<u64>() > 0,
            "seed {seed}: fault plan never fired"
        );

        // And the correlated streams are engine-identical, event for event.
        for (rank, (ta, td)) in t.traces.iter().zip(&d.traces).enumerate() {
            assert_eq!(
                ta.events, td.events,
                "seed {seed}: rank {rank} trace diverges across engines"
            );
        }
    }
}

#[test]
fn clean_world_correlation_invariants_hold() {
    let f = p2p_program(42, 4);
    for engine in [Engine::Threaded, Engine::DiscreteEvent] {
        let out = Runner::new(engine).traced(true).run(16, MachineModel::juqueen_like(), &f);
        let matched =
            assert_correlation_invariants(&out.traces, &format!("clean {}", engine.name()));
        assert!(matched > 0, "clean world produced no isend/wait pairs");
    }
}
