//! The discrete-event engine must be observationally identical to the
//! threaded engine: same results, same clocks (bit for bit), same statistics,
//! traces and phase profiles — for clean and faulted worlds alike. These
//! tests drive randomized-but-seeded communication programs through both
//! engines and diff everything the world reports.

use simcomm::{
    CartGrid, Engine, FaultPlan, MachineModel, PooledBuf, RunOutput, Runner, StallSpec, TraceEvent,
    TraceKind, Work,
};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Assert two run outputs are bitwise identical in every observable
/// dimension. Clocks are compared through their bit patterns — `assert_eq!`
/// on `f64` would accept `-0.0 == 0.0` and this contract is stricter.
fn assert_bitwise_identical<R: PartialEq + std::fmt::Debug>(
    a: &RunOutput<R>,
    b: &RunOutput<R>,
    what: &str,
) {
    assert_eq!(a.results, b.results, "{what}: results diverge");
    let abits: Vec<u64> = a.clocks.iter().map(|c| c.to_bits()).collect();
    let bbits: Vec<u64> = b.clocks.iter().map(|c| c.to_bits()).collect();
    assert_eq!(abits, bbits, "{what}: clocks diverge (bitwise)");
    assert_eq!(a.stats, b.stats, "{what}: stats diverge");
    for (rank, (ta, tb)) in a.traces.iter().zip(&b.traces).enumerate() {
        let ea: &[TraceEvent] = &ta.events;
        let eb: &[TraceEvent] = &tb.events;
        assert_eq!(ea, eb, "{what}: trace of rank {rank} diverges");
    }
    for (rank, (pa, pb)) in a.phases.iter().zip(&b.phases).enumerate() {
        assert_eq!(pa.phases, pb.phases, "{what}: phase stats of rank {rank} diverge");
        assert_eq!(pa.segments, pb.segments, "{what}: phase segments of rank {rank} diverge");
    }
}

/// A seeded mixed-workload program: per-step neighbour exchanges on a
/// Cartesian grid, ring sendrecvs, nonblocking batches drained with waitall,
/// sparse alltoallv, collectives and modelled compute — every yield point the
/// engines implement, with message sizes drawn from the seed.
fn mixed_program(seed: u64, steps: usize) -> impl Fn(&mut simcomm::Comm) -> Vec<u64> + Send + Sync {
    move |comm| {
        let n = comm.size();
        let rank = comm.rank();
        let grid = CartGrid::balanced(n);
        let partners = grid.neighbors26(rank);
        let mut acc: Vec<u64> = vec![rank as u64];
        for step in 0..steps {
            let r = splitmix64(seed ^ (step as u64) << 16 ^ rank as u64);
            comm.with_phase("compute", |c| c.compute(Work::ParticleOp, (r % 500) as f64));

            // Ring exchange (blocking send/recv pair).
            let right = (rank + 1) % n;
            let left = (rank + n - 1) % n;
            let got = comm.sendrecv(right, vec![r, step as u64], left, 1);
            acc.push(got[0]);

            // Nonblocking neighbourhood exchange, drained in arrival order.
            let data: Vec<(usize, Vec<u64>)> = partners
                .iter()
                .map(|&p| {
                    let len = (splitmix64(r ^ p as u64) % 64) as usize;
                    (p, vec![r; len])
                })
                .collect();
            let recvd = comm.with_phase("exchange", |c| c.neighbor_exchange(&partners, data, 2));
            acc.push(recvd.iter().map(|(src, v)| *src as u64 + v.len() as u64).sum());

            // Sparse all-to-all-v: a few random destinations.
            let sends: Vec<(usize, Vec<u64>)> = (0..3)
                .map(|k| {
                    let dst = (splitmix64(r ^ k) % n as u64) as usize;
                    (dst, vec![rank as u64; (k + 1) as usize])
                })
                .collect();
            let got = comm.alltoallv(sends);
            acc.push(got.iter().map(|(src, v)| *src as u64 * v.len() as u64).sum());

            // Collectives.
            let sum = comm.allreduce(r % 97, |a, b| a.wrapping_add(b));
            let off = comm.exscan(1u64, 0, |a, b| a + b);
            acc.push(sum + off);
            if step % 2 == 0 {
                comm.barrier();
            }
        }
        acc
    }
}

fn runner(engine: Engine) -> Runner {
    Runner::new(engine).traced(true)
}

#[test]
fn engines_bitwise_identical_on_mixed_program_juropa() {
    for seed in [1u64, 2, 3] {
        let f = mixed_program(seed, 3);
        let t = runner(Engine::Threaded).run(12, MachineModel::juropa_like(), &f);
        let d = runner(Engine::DiscreteEvent).run(12, MachineModel::juropa_like(), &f);
        assert_bitwise_identical(&t, &d, &format!("juropa seed {seed}"));
    }
}

#[test]
fn engines_bitwise_identical_on_mixed_program_juqueen() {
    for seed in [7u64, 11] {
        let f = mixed_program(seed, 3);
        let t = runner(Engine::Threaded).run(16, MachineModel::juqueen_like(), &f);
        let d = runner(Engine::DiscreteEvent).run(16, MachineModel::juqueen_like(), &f);
        assert_bitwise_identical(&t, &d, &format!("juqueen seed {seed}"));
    }
}

#[test]
fn engines_bitwise_identical_under_fault_plan() {
    let fault = FaultPlan {
        seed: 42,
        latency_spike_prob: 0.1,
        latency_spike_seconds: 30e-6,
        send_loss_prob: 0.1,
        retry_backoff_seconds: 5e-6,
        straggler_ranks: vec![1],
        straggler_factor: 1.5,
        stall: Some(StallSpec { rank: 2, after_ops: 10, seconds: 1e-3 }),
        wait_timeout_seconds: Some(1e-4),
        ..FaultPlan::none()
    };
    let f = mixed_program(5, 3);
    let t =
        runner(Engine::Threaded).faulted(fault.clone()).run(12, MachineModel::juropa_like(), &f);
    let d = runner(Engine::DiscreteEvent).faulted(fault).run(12, MachineModel::juropa_like(), &f);
    assert_bitwise_identical(&t, &d, "faulted world");
    assert!(t.stats.iter().any(|s| s.faults_injected > 0), "fault plan must actually fire");
}

#[test]
fn discrete_engine_handles_large_worlds() {
    // A smoke check at a rank count the threaded engine only reaches slowly:
    // collectives + a ring exchange at 4096 ranks under the event scheduler.
    let out = Runner::new(Engine::DiscreteEvent).run(4096, MachineModel::juqueen_like(), |comm| {
        let n = comm.size();
        let right = (comm.rank() + 1) % n;
        let left = (comm.rank() + n - 1) % n;
        let got = comm.sendrecv(right, vec![comm.rank() as u64], left, 0);
        comm.allreduce(got[0], |a, b| a + b)
    });
    let expect: u64 = (0..4096u64).sum();
    assert!(out.results.iter().all(|&s| s == expect));
    assert!(out.makespan() > 0.0);
}

/// A seeded byte-path program: pooled-buffer neighbourhood exchanges and
/// sparse byte all-to-alls, the operations whose buffers actually flow
/// through the [`simcomm::PooledBuf`] arena. Used to check that pooling is
/// pure memory management — invisible in every virtual-time observable.
fn byte_path_program(
    seed: u64,
    steps: usize,
) -> impl Fn(&mut simcomm::Comm) -> Vec<u64> + Send + Sync {
    move |comm| {
        let n = comm.size();
        let rank = comm.rank();
        let grid = CartGrid::balanced(n);
        let partners = grid.neighbors26(rank);
        let mut acc: Vec<u64> = vec![rank as u64];
        let mut sends: Vec<(usize, PooledBuf)> = Vec::new();
        let mut recvd: Vec<(usize, PooledBuf)> = Vec::new();
        for step in 0..steps {
            let r = splitmix64(seed ^ (step as u64) << 16 ^ rank as u64);
            comm.with_phase("compute", |c| c.compute(Work::ParticleOp, (r % 300) as f64));

            // Pooled neighbourhood exchange; received buffers go back to the
            // pool keyed by their source, closing the reuse loop.
            for &p in &partners {
                let len = (splitmix64(r ^ p as u64) % 256) as usize;
                let mut buf = comm.buf_acquire(p, len);
                buf.resize(len, (r % 251) as u8);
                sends.push((p, buf));
            }
            comm.neighbor_exchange_bytes(&partners, &mut sends, 7, &mut recvd);
            acc.push(recvd.iter().map(|(src, b)| *src as u64 + b.len() as u64).sum());
            for (src, buf) in recvd.drain(..) {
                comm.buf_release(src, buf);
            }

            // Sparse byte all-to-all-v with a few random destinations —
            // including the occasional empty buffer, exercising the
            // release-without-send fast path.
            for k in 0..3u64 {
                let dst = (splitmix64(r ^ k) % n as u64) as usize;
                let len = (splitmix64(r ^ k ^ 0xabcd) % 97) as usize;
                let mut buf = comm.buf_acquire(dst, len);
                buf.resize(len, k as u8);
                sends.push((dst, buf));
            }
            comm.alltoallv_bytes(&mut sends, &mut recvd);
            acc.push(recvd.iter().map(|(src, b)| *src as u64 * b.len() as u64).sum());
            for (src, buf) in recvd.drain(..) {
                comm.buf_release(src, buf);
            }
        }
        acc
    }
}

#[test]
fn pooling_is_bitwise_invisible_on_both_engines() {
    // `Runner::pooled` documents that pooling is pure memory management:
    // clocks, statistics (other than bytes_reused / bytes_grown), traces and
    // results must be bitwise identical with the pool on or off — on both
    // engines. Diff a byte-path workload across all four combinations.
    let f = byte_path_program(17, 3);
    for engine in [Engine::Threaded, Engine::DiscreteEvent] {
        let mut on = runner(engine).pooled(true).run(12, MachineModel::juropa_like(), &f);
        let mut off = runner(engine).pooled(false).run(12, MachineModel::juropa_like(), &f);
        let what = format!("pooled vs unpooled ({})", engine.name());

        // The pool must actually have engaged (otherwise this test is
        // vacuous) and the reference mode must never touch the counters.
        assert!(
            on.stats.iter().any(|s| s.bytes_reused > 0),
            "{what}: pooled run never reused a buffer"
        );
        assert!(
            off.stats.iter().all(|s| s.bytes_reused == 0 && s.bytes_grown == 0),
            "{what}: unpooled run must leave the pool counters untouched"
        );

        // Everything else is compared bitwise, with the two memory-accounting
        // counters normalized away.
        for s in on.stats.iter_mut().chain(off.stats.iter_mut()) {
            s.bytes_reused = 0;
            s.bytes_grown = 0;
        }
        assert_bitwise_identical(&on, &off, &what);
    }

    // And pooling must not perturb cross-engine equivalence either.
    let t = runner(Engine::Threaded).pooled(true).run(12, MachineModel::juropa_like(), &f);
    let d = runner(Engine::DiscreteEvent).pooled(true).run(12, MachineModel::juropa_like(), &f);
    assert_bitwise_identical(&t, &d, "pooled byte path across engines");
}

#[test]
fn alltoallv_empty_partner_buffers_are_not_messages() {
    // The sparse fast path: a zero-length partner buffer in `alltoallv` must
    // be observationally identical to omitting that partner entirely — no
    // message, no bytes, no statistics, no trace deposit. Run the same
    // exchange once with explicit empty buffers for every non-partner and
    // once with only the real partners, and diff everything.
    let n = 8;
    let program = |padded: bool| {
        move |comm: &mut simcomm::Comm| {
            let rank = comm.rank();
            let n = comm.size();
            let mut sends: Vec<(usize, Vec<u64>)> = Vec::new();
            for dst in 0..n {
                let real = dst == (rank + 1) % n || dst == (rank + 3) % n;
                if real {
                    sends.push((dst, vec![rank as u64; 5]));
                } else if padded {
                    sends.push((dst, Vec::new()));
                }
            }
            let got = comm.alltoallv(sends);
            got.iter().map(|(src, v)| *src as u64 + v.iter().sum::<u64>()).collect::<Vec<u64>>()
        }
    };
    for engine in [Engine::Threaded, Engine::DiscreteEvent] {
        let padded = runner(engine).run(n, MachineModel::juqueen_like(), program(true));
        let sparse = runner(engine).run(n, MachineModel::juqueen_like(), program(false));
        let what = format!("padded vs sparse alltoallv ({})", engine.name());
        assert_bitwise_identical(&padded, &sparse, &what);

        // Direct accounting: exactly the two real partners became messages,
        // and the trace records only their bytes.
        for (rank, s) in padded.stats.iter().enumerate() {
            assert_eq!(s.p2p_sent_msgs, 2, "{what}: rank {rank} sent wrong message count");
            assert_eq!(s.p2p_sent_bytes, 2 * 5 * 8, "{what}: rank {rank} sent wrong bytes");
        }
        for (rank, trace) in padded.traces.iter().enumerate() {
            let a2a: Vec<&TraceEvent> =
                trace.events.iter().filter(|e| e.kind == TraceKind::Alltoallv).collect();
            assert_eq!(a2a.len(), 1, "{what}: rank {rank} should trace one alltoallv");
            assert_eq!(a2a[0].bytes, 2 * 5 * 8, "{what}: rank {rank} traced empty-buffer bytes");
        }
    }
}

#[test]
fn discrete_engine_panics_on_virtual_deadlock() {
    // Rank 1 waits for a message nobody sends: the threaded engine would hang
    // forever; the event engine must detect that no task is runnable and fail
    // the world with a diagnostic instead.
    let result = std::panic::catch_unwind(|| {
        Runner::new(Engine::DiscreteEvent).run(2, MachineModel::ideal(), |comm| {
            if comm.rank() == 1 {
                let _: Vec<u8> = comm.recv(0, 99);
            }
        })
    });
    let err = match result {
        Ok(_) => panic!("deadlocked world must panic"),
        Err(e) => e,
    };
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload should be the world failure message");
    assert!(msg.contains("virtual deadlock"), "unexpected panic message: {msg}");
}
