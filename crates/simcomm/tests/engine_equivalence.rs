//! The discrete-event engine must be observationally identical to the
//! threaded engine: same results, same clocks (bit for bit), same statistics,
//! traces and phase profiles — for clean and faulted worlds alike. These
//! tests drive randomized-but-seeded communication programs through both
//! engines and diff everything the world reports.

use simcomm::{
    CartGrid, Engine, FaultPlan, MachineModel, RunOutput, Runner, StallSpec, TraceEvent, Work,
};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Assert two run outputs are bitwise identical in every observable
/// dimension. Clocks are compared through their bit patterns — `assert_eq!`
/// on `f64` would accept `-0.0 == 0.0` and this contract is stricter.
fn assert_bitwise_identical<R: PartialEq + std::fmt::Debug>(
    a: &RunOutput<R>,
    b: &RunOutput<R>,
    what: &str,
) {
    assert_eq!(a.results, b.results, "{what}: results diverge");
    let abits: Vec<u64> = a.clocks.iter().map(|c| c.to_bits()).collect();
    let bbits: Vec<u64> = b.clocks.iter().map(|c| c.to_bits()).collect();
    assert_eq!(abits, bbits, "{what}: clocks diverge (bitwise)");
    assert_eq!(a.stats, b.stats, "{what}: stats diverge");
    for (rank, (ta, tb)) in a.traces.iter().zip(&b.traces).enumerate() {
        let ea: &[TraceEvent] = &ta.events;
        let eb: &[TraceEvent] = &tb.events;
        assert_eq!(ea, eb, "{what}: trace of rank {rank} diverges");
    }
    for (rank, (pa, pb)) in a.phases.iter().zip(&b.phases).enumerate() {
        assert_eq!(pa.phases, pb.phases, "{what}: phase stats of rank {rank} diverge");
        assert_eq!(pa.segments, pb.segments, "{what}: phase segments of rank {rank} diverge");
    }
}

/// A seeded mixed-workload program: per-step neighbour exchanges on a
/// Cartesian grid, ring sendrecvs, nonblocking batches drained with waitall,
/// sparse alltoallv, collectives and modelled compute — every yield point the
/// engines implement, with message sizes drawn from the seed.
fn mixed_program(seed: u64, steps: usize) -> impl Fn(&mut simcomm::Comm) -> Vec<u64> + Send + Sync {
    move |comm| {
        let n = comm.size();
        let rank = comm.rank();
        let grid = CartGrid::balanced(n);
        let partners = grid.neighbors26(rank);
        let mut acc: Vec<u64> = vec![rank as u64];
        for step in 0..steps {
            let r = splitmix64(seed ^ (step as u64) << 16 ^ rank as u64);
            comm.with_phase("compute", |c| c.compute(Work::ParticleOp, (r % 500) as f64));

            // Ring exchange (blocking send/recv pair).
            let right = (rank + 1) % n;
            let left = (rank + n - 1) % n;
            let got = comm.sendrecv(right, vec![r, step as u64], left, 1);
            acc.push(got[0]);

            // Nonblocking neighbourhood exchange, drained in arrival order.
            let data: Vec<(usize, Vec<u64>)> = partners
                .iter()
                .map(|&p| {
                    let len = (splitmix64(r ^ p as u64) % 64) as usize;
                    (p, vec![r; len])
                })
                .collect();
            let recvd = comm.with_phase("exchange", |c| c.neighbor_exchange(&partners, data, 2));
            acc.push(recvd.iter().map(|(src, v)| *src as u64 + v.len() as u64).sum());

            // Sparse all-to-all-v: a few random destinations.
            let sends: Vec<(usize, Vec<u64>)> = (0..3)
                .map(|k| {
                    let dst = (splitmix64(r ^ k) % n as u64) as usize;
                    (dst, vec![rank as u64; (k + 1) as usize])
                })
                .collect();
            let got = comm.alltoallv(sends);
            acc.push(got.iter().map(|(src, v)| *src as u64 * v.len() as u64).sum());

            // Collectives.
            let sum = comm.allreduce(r % 97, |a, b| a.wrapping_add(b));
            let off = comm.exscan(1u64, 0, |a, b| a + b);
            acc.push(sum + off);
            if step % 2 == 0 {
                comm.barrier();
            }
        }
        acc
    }
}

fn runner(engine: Engine) -> Runner {
    Runner::new(engine).traced(true)
}

#[test]
fn engines_bitwise_identical_on_mixed_program_juropa() {
    for seed in [1u64, 2, 3] {
        let f = mixed_program(seed, 3);
        let t = runner(Engine::Threaded).run(12, MachineModel::juropa_like(), &f);
        let d = runner(Engine::DiscreteEvent).run(12, MachineModel::juropa_like(), &f);
        assert_bitwise_identical(&t, &d, &format!("juropa seed {seed}"));
    }
}

#[test]
fn engines_bitwise_identical_on_mixed_program_juqueen() {
    for seed in [7u64, 11] {
        let f = mixed_program(seed, 3);
        let t = runner(Engine::Threaded).run(16, MachineModel::juqueen_like(), &f);
        let d = runner(Engine::DiscreteEvent).run(16, MachineModel::juqueen_like(), &f);
        assert_bitwise_identical(&t, &d, &format!("juqueen seed {seed}"));
    }
}

#[test]
fn engines_bitwise_identical_under_fault_plan() {
    let fault = FaultPlan {
        seed: 42,
        latency_spike_prob: 0.1,
        latency_spike_seconds: 30e-6,
        send_loss_prob: 0.1,
        retry_backoff_seconds: 5e-6,
        straggler_ranks: vec![1],
        straggler_factor: 1.5,
        stall: Some(StallSpec { rank: 2, after_ops: 10, seconds: 1e-3 }),
        wait_timeout_seconds: Some(1e-4),
        ..FaultPlan::none()
    };
    let f = mixed_program(5, 3);
    let t =
        runner(Engine::Threaded).faulted(fault.clone()).run(12, MachineModel::juropa_like(), &f);
    let d = runner(Engine::DiscreteEvent).faulted(fault).run(12, MachineModel::juropa_like(), &f);
    assert_bitwise_identical(&t, &d, "faulted world");
    assert!(t.stats.iter().any(|s| s.faults_injected > 0), "fault plan must actually fire");
}

#[test]
fn discrete_engine_handles_large_worlds() {
    // A smoke check at a rank count the threaded engine only reaches slowly:
    // collectives + a ring exchange at 4096 ranks under the event scheduler.
    let out = Runner::new(Engine::DiscreteEvent).run(4096, MachineModel::juqueen_like(), |comm| {
        let n = comm.size();
        let right = (comm.rank() + 1) % n;
        let left = (comm.rank() + n - 1) % n;
        let got = comm.sendrecv(right, vec![comm.rank() as u64], left, 0);
        comm.allreduce(got[0], |a, b| a + b)
    });
    let expect: u64 = (0..4096u64).sum();
    assert!(out.results.iter().all(|&s| s == expect));
    assert!(out.makespan() > 0.0);
}

#[test]
fn discrete_engine_panics_on_virtual_deadlock() {
    // Rank 1 waits for a message nobody sends: the threaded engine would hang
    // forever; the event engine must detect that no task is runnable and fail
    // the world with a diagnostic instead.
    let result = std::panic::catch_unwind(|| {
        Runner::new(Engine::DiscreteEvent).run(2, MachineModel::ideal(), |comm| {
            if comm.rank() == 1 {
                let _: Vec<u8> = comm.recv(0, 99);
            }
        })
    });
    let err = match result {
        Ok(_) => panic!("deadlocked world must panic"),
        Err(e) => e,
    };
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload should be the world failure message");
    assert!(msg.contains("virtual deadlock"), "unexpected panic message: {msg}");
}
