//! Deterministic fault injection for the simulated runtime.
//!
//! A [`FaultPlan`] describes a reproducible set of adverse conditions —
//! latency spikes, transient send losses, straggler ranks, a scheduled rank
//! stall, and wait timeouts — that the world injects while executing rank
//! code. Every draw is a pure function of the plan's seed and *virtual*
//! quantities (rank ids, per-rank message/operation counters), never of
//! wall-clock time or OS scheduling, so a faulted run is exactly as
//! reproducible as a clean one.
//!
//! Faults perturb **time and accounting only**: payloads are never dropped or
//! corrupted at the API level. A "lost" send is retransmitted internally
//! after a bounded exponential backoff (charged to the cost model as
//! [`crate::TraceKind::Retry`]), a stall or spike only delays clocks, and a
//! timeout charges re-probe overhead ([`crate::TraceKind::Timeout`]). This is
//! what lets the higher layers (solver guards, the `mdsim` recovery loop)
//! promise bitwise-identical trajectories under faults.
//!
//! [`FaultPlan::none`] is the inert plan: with it, every injection hook is a
//! single-branch no-op and the world behaves — clocks, statistics, traces —
//! exactly as if the fault layer did not exist.

/// SplitMix64 — the same generator the particle systems use for deterministic
/// pseudo-randomness (kept local: `simcomm` is the base crate).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A scheduled one-shot stall of a single rank: after `after_ops`
/// communication operations (sends, receive completions, collective entries)
/// on that rank, its clock jumps forward by `seconds` of rendezvous wait.
/// The stall fires at most once per world run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StallSpec {
    /// The rank that stalls.
    pub rank: usize,
    /// Number of communication operations after which the stall fires.
    pub after_ops: u64,
    /// Virtual seconds the rank is stalled for.
    pub seconds: f64,
}

/// A seeded, deterministic fault-injection plan for a simulated world.
///
/// Construct with [`FaultPlan::none`] (inert) and override fields, or use
/// [`FaultPlan::chaos`] for a ready-made mix. Passed to
/// [`crate::run_faulted`] / [`crate::run_faulted_traced`]; the plain
/// [`crate::run`] / [`crate::run_traced`] entry points always use the inert
/// plan, so existing callers are bit-for-bit unaffected.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every deterministic draw.
    pub seed: u64,
    /// Per-message probability that a send suffers an added latency spike.
    pub latency_spike_prob: f64,
    /// Extra wire latency (seconds) a spiked message suffers.
    pub latency_spike_seconds: f64,
    /// Per-attempt probability that a posted send is transiently lost and
    /// must be retransmitted.
    pub send_loss_prob: f64,
    /// Upper bound on retransmissions per message (the final attempt always
    /// succeeds: faults delay, they never drop data).
    pub max_retries: u32,
    /// Base backoff before the first retransmission; doubles per retry.
    pub retry_backoff_seconds: f64,
    /// Ranks whose modelled computation runs slower by `straggler_factor`.
    pub straggler_ranks: Vec<usize>,
    /// Compute-time multiplier for straggler ranks (>= 1).
    pub straggler_factor: f64,
    /// Optional scheduled one-shot rank stall.
    pub stall: Option<StallSpec>,
    /// Wait threshold (seconds): any single rendezvous wait longer than this
    /// counts timeout cycles and charges bounded re-probe overhead.
    pub wait_timeout_seconds: Option<f64>,
    /// Per-timestep probability that the movement hint handed to the solvers
    /// is a lie (consumed by `mdsim`, drawn per step — identical on every
    /// rank). A lying hint under-reports movement, which is exactly the
    /// violation the movement-bound guards must detect and mask.
    pub hint_lie_prob: f64,
    /// Factor the lying hint shrinks the true movement by (in `(0, 1)`).
    pub hint_lie_factor: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: injects nothing, costs nothing. Worlds run with it are
    /// bitwise identical — results, clocks, statistics, traces — to worlds
    /// run without a fault layer at all.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            latency_spike_prob: 0.0,
            latency_spike_seconds: 0.0,
            send_loss_prob: 0.0,
            max_retries: 3,
            retry_backoff_seconds: 0.0,
            straggler_ranks: Vec::new(),
            straggler_factor: 1.0,
            stall: None,
            wait_timeout_seconds: None,
            hint_lie_prob: 0.0,
            hint_lie_factor: 1.0,
        }
    }

    /// A ready-made adverse mix at a given `intensity` in `[0, 1]`: scaled
    /// loss and spike probabilities, one straggler, and hint lies. Intended
    /// for sweeps (the `chaos` bench); tests that need precise conditions
    /// should construct the plan explicitly.
    pub fn chaos(seed: u64, intensity: f64) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        FaultPlan {
            seed,
            latency_spike_prob: 0.05 * intensity,
            latency_spike_seconds: 20e-6,
            send_loss_prob: 0.05 * intensity,
            max_retries: 3,
            retry_backoff_seconds: 5e-6,
            straggler_ranks: if intensity > 0.0 { vec![0] } else { Vec::new() },
            straggler_factor: 1.0 + 0.5 * intensity,
            stall: None,
            wait_timeout_seconds: Some(1e-3),
            hint_lie_prob: 0.25 * intensity,
            hint_lie_factor: 1e-3,
        }
    }

    /// Whether this plan can inject anything at all. Inert plans make every
    /// hook in the runtime a single-branch no-op.
    pub fn is_active(&self) -> bool {
        self.latency_spike_prob > 0.0
            || self.send_loss_prob > 0.0
            || (!self.straggler_ranks.is_empty() && self.straggler_factor != 1.0)
            || self.stall.is_some()
            || self.wait_timeout_seconds.is_some()
            || self.hint_lie_prob > 0.0
    }

    /// Uniform draw in `[0, 1)` from the seed and a three-part stream id.
    fn uniform(&self, a: u64, b: u64, c: u64) -> f64 {
        let x = splitmix64(self.seed ^ splitmix64(a ^ splitmix64(b ^ splitmix64(c))));
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Number of transiently lost attempts for send number `seq` from `rank`
    /// to `dst` (0 = delivered first try). Bounded by `max_retries`; the
    /// attempt after the last allowed retry always succeeds.
    pub fn send_losses(&self, rank: usize, dst: usize, seq: u64) -> u32 {
        if self.send_loss_prob <= 0.0 {
            return 0;
        }
        let mut lost = 0u32;
        while lost < self.max_retries
            && self.uniform(rank as u64, (dst as u64) << 20 | lost as u64, seq)
                < self.send_loss_prob
        {
            lost += 1;
        }
        lost
    }

    /// Added latency for send number `seq` from `rank` to `dst` (0 if the
    /// message is not spiked).
    pub fn latency_spike(&self, rank: usize, dst: usize, seq: u64) -> f64 {
        if self.latency_spike_prob <= 0.0 {
            return 0.0;
        }
        if self.uniform(rank as u64 | 1 << 40, dst as u64, seq) < self.latency_spike_prob {
            self.latency_spike_seconds
        } else {
            0.0
        }
    }

    /// Whether `rank` is a straggler under this plan.
    pub fn straggles(&self, rank: usize) -> bool {
        self.straggler_factor != 1.0 && self.straggler_ranks.contains(&rank)
    }

    /// The movement-hint lie for timestep `step`: `Some(factor)` if the hint
    /// must be shrunk by `factor` this step, `None` for an honest hint. Drawn
    /// from the seed and the step number only, so every rank agrees.
    pub fn hint_lie(&self, step: u64) -> Option<f64> {
        if self.hint_lie_prob > 0.0 && self.uniform(2 << 40, 0, step) < self.hint_lie_prob {
            Some(self.hint_lie_factor)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.send_losses(0, 1, 0), 0);
        assert_eq!(p.latency_spike(0, 1, 0), 0.0);
        assert!(!p.straggles(0));
        assert!(p.hint_lie(0).is_none());
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan { seed: 1, send_loss_prob: 0.5, ..FaultPlan::none() };
        let b = FaultPlan { seed: 2, send_loss_prob: 0.5, ..FaultPlan::none() };
        let seq_a: Vec<u32> = (0..64).map(|s| a.send_losses(3, 7, s)).collect();
        let seq_a2: Vec<u32> = (0..64).map(|s| a.send_losses(3, 7, s)).collect();
        let seq_b: Vec<u32> = (0..64).map(|s| b.send_losses(3, 7, s)).collect();
        assert_eq!(seq_a, seq_a2, "same plan, same draws");
        assert_ne!(seq_a, seq_b, "different seeds must diverge");
        assert!(seq_a.iter().any(|&l| l > 0), "p=0.5 must lose something");
    }

    #[test]
    fn losses_are_bounded_by_max_retries() {
        let p = FaultPlan { seed: 9, send_loss_prob: 1.0, max_retries: 2, ..FaultPlan::none() };
        for s in 0..32 {
            assert_eq!(p.send_losses(0, 1, s), 2, "certain loss still caps at max_retries");
        }
    }

    #[test]
    fn hint_lie_rate_tracks_probability() {
        let p =
            FaultPlan { seed: 5, hint_lie_prob: 0.25, hint_lie_factor: 0.5, ..FaultPlan::none() };
        let lies = (0..1000).filter(|&s| p.hint_lie(s).is_some()).count();
        assert!((150..350).contains(&lies), "~25% of steps should lie, got {lies}");
        assert_eq!(p.hint_lie(3), p.hint_lie(3));
    }

    #[test]
    fn chaos_scales_with_intensity() {
        let hi = FaultPlan::chaos(1, 1.0);
        assert!(hi.is_active());
        assert!(hi.send_loss_prob > FaultPlan::chaos(1, 0.2).send_loss_prob);
    }
}
