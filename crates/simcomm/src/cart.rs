//! Cartesian process-grid topology, as used by the P2NFFT-style solver's
//! domain decomposition (a `p0 x p1 x p2` grid of processes with periodic
//! wraparound, matching `MPI_Cart_create`).

use crate::model::balanced_dims;

/// A 3D Cartesian layout of `dims[0] * dims[1] * dims[2]` ranks with periodic
/// boundaries, mapping ranks to grid coordinates in row-major order.
///
/// This is pure topology bookkeeping (no communication state); pair it with a
/// [`crate::Comm`] whose world size equals [`CartGrid::size`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CartGrid {
    dims: [usize; 3],
}

impl CartGrid {
    /// Create a grid with explicit extents.
    pub fn new(dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d >= 1), "grid extents must be >= 1");
        CartGrid { dims }
    }

    /// Create a balanced grid for `n` ranks (like `MPI_Dims_create(n, 3, ...)`).
    pub fn balanced(n: usize) -> Self {
        let d = balanced_dims(n, 3);
        CartGrid { dims: [d[0], d[1], d[2]] }
    }

    /// Grid extents per dimension.
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Total number of ranks in the grid.
    #[inline]
    pub fn size(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Coordinates of `rank` (row-major).
    #[inline]
    pub fn coords(&self, rank: usize) -> [usize; 3] {
        debug_assert!(rank < self.size());
        let [_, d1, d2] = self.dims;
        [rank / (d1 * d2), (rank / d2) % d1, rank % d2]
    }

    /// Rank at the given coordinates.
    #[inline]
    pub fn rank_of(&self, coords: [usize; 3]) -> usize {
        debug_assert!(coords.iter().zip(&self.dims).all(|(&c, &d)| c < d));
        let [_, d1, d2] = self.dims;
        coords[0] * d1 * d2 + coords[1] * d2 + coords[2]
    }

    /// Rank at coordinates shifted by `delta` with periodic wraparound.
    pub fn shifted_rank(&self, rank: usize, delta: [isize; 3]) -> usize {
        let c = self.coords(rank);
        let mut s = [0usize; 3];
        for i in 0..3 {
            let d = self.dims[i] as isize;
            s[i] = ((c[i] as isize + delta[i]).rem_euclid(d)) as usize;
        }
        self.rank_of(s)
    }

    /// All distinct ranks within a Chebyshev distance of 1 on the periodic
    /// grid (the up-to-26 face/edge/corner neighbours), excluding `rank`
    /// itself, sorted ascending. On small grids where several offsets alias to
    /// the same rank, each neighbour appears once.
    pub fn neighbors26(&self, rank: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(26);
        for dx in -1..=1isize {
            for dy in -1..=1isize {
                for dz in -1..=1isize {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let r = self.shifted_rank(rank, [dx, dy, dz]);
                    if r != rank {
                        out.push(r);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The up-to-6 face neighbours (±1 along one axis), deduplicated and
    /// excluding `rank` itself, sorted ascending.
    pub fn neighbors6(&self, rank: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(6);
        for axis in 0..3 {
            for sign in [-1isize, 1] {
                let mut delta = [0isize; 3];
                delta[axis] = sign;
                let r = self.shifted_rank(rank, delta);
                if r != rank {
                    out.push(r);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Chebyshev distance between two ranks on the periodic grid: the number
    /// of "rings" of neighbours separating them. Distance <= 1 means direct
    /// (26-)neighbours.
    pub fn chebyshev(&self, a: usize, b: usize) -> usize {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (0..3)
            .map(|i| {
                let d = ca[i].abs_diff(cb[i]);
                d.min(self.dims[i] - d)
            })
            .max()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let g = CartGrid::new([4, 3, 2]);
        for r in 0..g.size() {
            assert_eq!(g.rank_of(g.coords(r)), r);
        }
    }

    #[test]
    fn balanced_grid_covers_world() {
        for n in [1, 2, 8, 24, 256, 4096] {
            let g = CartGrid::balanced(n);
            assert_eq!(g.size(), n);
        }
    }

    #[test]
    fn shift_wraps_around() {
        let g = CartGrid::new([3, 3, 3]);
        let corner = g.rank_of([0, 0, 0]);
        assert_eq!(g.shifted_rank(corner, [-1, -1, -1]), g.rank_of([2, 2, 2]));
        assert_eq!(g.shifted_rank(corner, [3, 0, 0]), corner);
    }

    #[test]
    fn neighbors26_count_on_large_grid() {
        let g = CartGrid::new([4, 4, 4]);
        for r in 0..g.size() {
            assert_eq!(g.neighbors26(r).len(), 26);
        }
    }

    #[test]
    fn neighbors26_dedup_on_small_grid() {
        let g = CartGrid::new([2, 2, 2]);
        // On a 2x2x2 periodic grid every other rank is a neighbour.
        for r in 0..g.size() {
            assert_eq!(g.neighbors26(r).len(), 7);
        }
        let g1 = CartGrid::new([1, 1, 1]);
        assert!(g1.neighbors26(0).is_empty());
    }

    #[test]
    fn neighbors6_subset_of_26() {
        let g = CartGrid::new([4, 3, 5]);
        for r in 0..g.size() {
            let n6 = g.neighbors6(r);
            let n26 = g.neighbors26(r);
            for x in &n6 {
                assert!(n26.contains(x));
            }
        }
    }

    #[test]
    fn neighborship_is_symmetric() {
        let g = CartGrid::new([3, 4, 2]);
        for a in 0..g.size() {
            for &b in &g.neighbors26(a) {
                assert!(g.neighbors26(b).contains(&a), "{a} <-> {b}");
            }
        }
    }

    #[test]
    fn chebyshev_distance() {
        let g = CartGrid::new([4, 4, 4]);
        let a = g.rank_of([0, 0, 0]);
        assert_eq!(g.chebyshev(a, g.rank_of([1, 1, 1])), 1);
        assert_eq!(g.chebyshev(a, g.rank_of([2, 0, 0])), 2);
        assert_eq!(g.chebyshev(a, g.rank_of([3, 3, 3])), 1); // wraparound
        assert_eq!(g.chebyshev(a, a), 0);
    }
}
