//! Arena-reused message buffers: the allocation-free half of the byte-plane
//! data path.
//!
//! Every simulated message carries its payload as an owned allocation that
//! physically moves from the sender to the receiver. Without reuse, a
//! steady-state exchange therefore allocates one buffer per partner per
//! timestep on the send side and frees the arrived buffers on the receive
//! side — exactly the per-step churn the byte-plane refactor removes. The
//! [`BufferPool`] closes the loop: received buffers are *released* back into
//! the local rank's pool keyed by the partner they arrived from, and the next
//! step's send buffers are *acquired* from the same pool. In a symmetric
//! neighbourhood exchange the population is self-sustaining after one warm-up
//! step: every buffer a rank ships out is replaced by one shipped in.
//!
//! The pool recycles the **whole** message allocation, not just the byte
//! capacity: buffers are stored as [`PooledBuf`] — a boxed byte vector whose
//! box doubles as the type-erased payload envelope of the simulated message
//! (`Box<Vec<u8>>` coerces to `Box<dyn Any + Send>` without allocating, and
//! the receive side's downcast returns the same box). A steady-state byte
//! exchange therefore performs **zero heap allocations** end to end.
//!
//! Retention follows a per-partner high-water mark with decay: each slot
//! remembers the largest recent request and shrinks buffers whose capacity
//! has grown far beyond it, so a transient burst (e.g. one decorrelated
//! redistribution step) does not pin its peak footprint forever. Reuse and
//! growth are observable per rank as [`crate::RankStats::bytes_reused`] /
//! [`crate::RankStats::bytes_grown`].
//!
//! Pooling is a pure memory-management concern: it never changes message
//! sizes, cost charges, clocks or traces. Worlds run bitwise-identically with
//! the pool disabled ([`crate::Runner::pooled`]) — only the two reuse
//! counters (and the process's allocator traffic) differ.

use std::collections::BTreeMap;

/// An owned, recyclable message byte buffer.
///
/// Dereferences to `Vec<u8>`. The inner box is the same allocation that
/// travels as the simulated message's type-erased payload envelope, so
/// recycling a `PooledBuf` recycles both the byte storage and the envelope.
// The double indirection is the point: the box *is* the message envelope
// (`Box<Vec<u8>>` coerces to `Box<dyn Any + Send>` allocation-free), so a
// plain `Vec<u8>` here would force one envelope allocation per send.
#[allow(clippy::box_collection)]
#[derive(Debug, Default, PartialEq, Eq)]
pub struct PooledBuf(Box<Vec<u8>>);

impl PooledBuf {
    /// A fresh, empty buffer (one envelope + zero-capacity vector).
    pub fn new() -> PooledBuf {
        PooledBuf(Box::default())
    }

    /// Wrap an existing byte vector (used by the receive side to re-wrap a
    /// downcast payload without copying).
    #[allow(clippy::box_collection)]
    pub(crate) fn from_box(b: Box<Vec<u8>>) -> PooledBuf {
        PooledBuf(b)
    }

    /// Unwrap into the boxed vector (the send side passes this box on as the
    /// message payload).
    #[allow(clippy::box_collection)]
    pub(crate) fn into_box(self) -> Box<Vec<u8>> {
        self.0
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.0
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.0
    }
}

/// One partner's retained buffers plus its decayed high-water mark.
#[derive(Debug, Default)]
struct Slot {
    bufs: Vec<PooledBuf>,
    /// Decayed high-water mark of requested sizes (bytes): raised to every
    /// request, decayed by 1/8 per acquisition otherwise. The shrink
    /// threshold below tracks this, so retained capacity follows demand down.
    hwm: usize,
}

/// Capacity beyond `SHRINK_FACTOR * hwm` (and above `SHRINK_MIN` bytes) is
/// returned to the allocator on release.
const SHRINK_FACTOR: usize = 4;
const SHRINK_MIN: usize = 4096;

/// A per-rank arena of reusable message buffers, keyed by partner rank.
/// See the module docs for the lifecycle; accessed through
/// [`crate::Comm::buf_acquire`] / [`crate::Comm::buf_release`].
#[derive(Debug, Default)]
pub(crate) struct BufferPool {
    slots: BTreeMap<usize, Slot>,
    /// Disabled pools allocate fresh on acquire and drop on release, leaving
    /// the reuse counters untouched — the bitwise-identity reference mode.
    pub(crate) enabled: bool,
}

impl BufferPool {
    pub(crate) fn new(enabled: bool) -> BufferPool {
        BufferPool { slots: BTreeMap::new(), enabled }
    }

    /// Take a buffer for `partner` with capacity for `bytes`, cleared to
    /// length 0. Returns the buffer plus the `(bytes_reused, bytes_grown)`
    /// delta this acquisition contributes to the rank's stats.
    pub(crate) fn acquire(&mut self, partner: usize, bytes: usize) -> (PooledBuf, u64, u64) {
        if !self.enabled {
            return (PooledBuf(Box::new(Vec::with_capacity(bytes))), 0, 0);
        }
        let slot = self.slots.entry(partner).or_default();
        slot.hwm = bytes.max(slot.hwm - slot.hwm / 8);
        match slot.bufs.pop() {
            Some(mut buf) => {
                buf.clear();
                let cap = buf.capacity();
                if cap >= bytes {
                    (buf, bytes as u64, 0)
                } else {
                    buf.reserve(bytes);
                    (buf, cap as u64, (bytes - cap) as u64)
                }
            }
            None => (PooledBuf(Box::new(Vec::with_capacity(bytes))), 0, bytes as u64),
        }
    }

    /// Return a buffer to `partner`'s slot, shrinking it first if its
    /// capacity has grown far beyond the slot's decayed high-water mark.
    pub(crate) fn release(&mut self, partner: usize, mut buf: PooledBuf) {
        if !self.enabled {
            return;
        }
        let slot = self.slots.entry(partner).or_default();
        if buf.capacity() > SHRINK_MIN && buf.capacity() > SHRINK_FACTOR * slot.hwm {
            buf.clear();
            buf.shrink_to(slot.hwm.max(SHRINK_MIN));
        }
        slot.bufs.push(buf);
    }

    /// Total retained capacity for `partner`, in bytes (test/diagnostic hook).
    pub(crate) fn retained_bytes(&self, partner: usize) -> usize {
        self.slots.get(&partner).map_or(0, |s| s.bufs.iter().map(|b| b.capacity()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_reuses_capacity_and_counts() {
        let mut pool = BufferPool::new(true);
        let (mut buf, reused, grown) = pool.acquire(3, 100);
        assert_eq!((reused, grown), (0, 100));
        buf.extend_from_slice(&[7u8; 100]);
        let cap = buf.capacity();
        pool.release(3, buf);
        assert_eq!(pool.retained_bytes(3), cap);
        let (buf2, reused2, grown2) = pool.acquire(3, 80);
        assert_eq!((reused2, grown2), (80, 0), "second acquisition is served from the pool");
        assert!(buf2.is_empty(), "acquired buffers come back cleared");
        assert!(buf2.capacity() >= 80);
    }

    #[test]
    fn growth_is_counted_when_capacity_is_short() {
        let mut pool = BufferPool::new(true);
        let (buf, _, _) = pool.acquire(0, 10);
        pool.release(0, buf);
        let (buf2, reused, grown) = pool.acquire(0, 50);
        assert!(buf2.capacity() >= 50);
        assert_eq!(reused + grown, 50, "every requested byte is either reused or grown");
        assert!(grown > 0, "growing past the retained capacity must be counted");
    }

    #[test]
    fn disabled_pool_allocates_fresh_and_counts_nothing() {
        let mut pool = BufferPool::new(false);
        let (buf, reused, grown) = pool.acquire(1, 64);
        assert_eq!((reused, grown), (0, 0));
        assert!(buf.capacity() >= 64);
        pool.release(1, buf);
        assert_eq!(pool.retained_bytes(1), 0, "disabled pools retain nothing");
    }

    #[test]
    fn high_water_mark_shrinks_after_demand_drops() {
        let mut pool = BufferPool::new(true);
        // Burst: one very large exchange pins a large capacity.
        let (mut big, _, _) = pool.acquire(5, 1 << 20);
        big.resize(1 << 20, 0);
        pool.release(5, big);
        assert!(pool.retained_bytes(5) >= 1 << 20);
        // Steady small demand: the decayed high-water mark falls and the
        // retained capacity follows it down within a bounded number of steps.
        for _ in 0..200 {
            let (buf, _, _) = pool.acquire(5, 1024);
            pool.release(5, buf);
        }
        assert!(
            pool.retained_bytes(5) <= SHRINK_FACTOR * SHRINK_MIN,
            "retained capacity {} must shrink toward the small steady-state demand",
            pool.retained_bytes(5)
        );
    }
}
