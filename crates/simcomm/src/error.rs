//! Typed world-failure reporting.
//!
//! A simulated world can fail for reasons that are *expected* operational
//! events, not harness bugs: a rank's closure panics (possibly injected), the
//! discrete-event engine detects a virtual deadlock, the host refuses to
//! spawn another rank thread, or a wall-clock deadline retires a hung run.
//! [`WorldError`] gives supervisors (such as the `campaign` crate's runner) a
//! typed description of the first such failure, so they can classify and
//! retry runs without string-matching panic payloads.
//!
//! The panicking entry points ([`crate::run`], [`crate::Runner::run`]) remain
//! for callers that treat any world failure as fatal; they wrap
//! [`crate::Runner::try_run`] and panic with the error's display form.

use std::fmt;

/// Why a simulated world failed. Returned by [`crate::Runner::try_run`];
/// the panicking `run*` entry points embed the display form in their panic
/// message (`"simcomm world failed: {error}"`).
///
/// Only the *first* failure is reported: once a world is poisoned, the
/// secondary panics of the remaining ranks (woken to unwind) are not
/// recorded.
#[derive(Clone, Debug, PartialEq)]
pub enum WorldError {
    /// A rank's closure panicked. This covers both genuine bugs in rank code
    /// and deliberately injected failures; the message is the panic payload.
    RankPanic {
        /// The rank whose closure panicked first.
        rank: usize,
        /// The panic payload (if it was a string; a placeholder otherwise).
        message: String,
    },
    /// The discrete-event engine found every live rank blocked with no
    /// virtual event left that could wake any of them — e.g. a receive whose
    /// matching send was never posted. (The threaded engine cannot detect
    /// this; it hangs in real time until a [`WorldError::DeadlineExceeded`]
    /// watchdog retires it.)
    VirtualDeadlock {
        /// Live (not yet finished) ranks at detection time, all blocked.
        live: usize,
        /// The rank whose block (or exit) completed the deadlock.
        rank: usize,
        /// The blocking site of that rank (`"Mailbox"`, `"Collective"`, or
        /// `"rank-exit"` when the deadlock surfaced at a rank's retirement).
        site: String,
        /// That rank's virtual clock when the deadlock was detected.
        clock: f64,
    },
    /// The host operating system refused to spawn a rank's backing thread
    /// (e.g. `EAGAIN` from a pid or mapping limit at high rank counts).
    SpawnFailed {
        /// The first rank whose thread could not be spawned.
        rank: usize,
        /// Requested world size.
        nranks: usize,
        /// The OS error text.
        message: String,
    },
    /// The run's wall-clock deadline (see [`crate::Runner::deadline`])
    /// elapsed before the world completed; the watchdog poisoned the world to
    /// retire it. The recorded seconds are the *configured* limit, never a
    /// measured duration, so the error is deterministic for a given
    /// configuration.
    DeadlineExceeded {
        /// The configured wall-clock limit in seconds.
        seconds: f64,
    },
}

impl WorldError {
    /// Short machine-readable failure class: `"panic"`, `"deadlock"`,
    /// `"spawn"` or `"deadline"`. Stable — supervisors journal and aggregate
    /// on these.
    pub fn kind(&self) -> &'static str {
        match self {
            WorldError::RankPanic { .. } => "panic",
            WorldError::VirtualDeadlock { .. } => "deadlock",
            WorldError::SpawnFailed { .. } => "spawn",
            WorldError::DeadlineExceeded { .. } => "deadline",
        }
    }
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            WorldError::VirtualDeadlock { live, rank, site, clock } => write!(
                f,
                "virtual deadlock: all {live} live ranks are blocked \
                 (rank {rank} last, on {site} at t={clock:.9}); \
                 no virtual event can wake any of them"
            ),
            WorldError::SpawnFailed { rank, nranks, message } => write!(
                f,
                "could not spawn the host thread of rank {rank} \
                 (world of {nranks} ranks): {message}"
            ),
            WorldError::DeadlineExceeded { seconds } => write!(
                f,
                "wall-clock deadline of {seconds} s exceeded: the world was poisoned and retired"
            ),
        }
    }
}

impl std::error::Error for WorldError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let cases: [(WorldError, &str); 4] = [
            (WorldError::RankPanic { rank: 3, message: "boom".into() }, "panic"),
            (
                WorldError::VirtualDeadlock {
                    live: 2,
                    rank: 1,
                    site: "Mailbox".into(),
                    clock: 0.5,
                },
                "deadlock",
            ),
            (WorldError::SpawnFailed { rank: 9, nranks: 4096, message: "EAGAIN".into() }, "spawn"),
            (WorldError::DeadlineExceeded { seconds: 2.0 }, "deadline"),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
            // Every display form mentions enough to debug without the enum.
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn deadline_display_uses_configured_limit_only() {
        let err = WorldError::DeadlineExceeded { seconds: 1.5 };
        assert_eq!(
            err.to_string(),
            "wall-clock deadline of 1.5 s exceeded: the world was poisoned and retired"
        );
    }
}
