//! Persistent communication plans: the plan/execute split at the message
//! layer. A [`CommPlan`] freezes the *structure* of a recurring neighbourhood
//! exchange — the partner ranks, the message tag, and the per-partner receive
//! envelopes — once, so that every subsequent timestep only moves payload
//! through the frozen schedule ([`CommPlan::execute`]). This is the simulated
//! analogue of MPI persistent requests (`MPI_Send_init`/`MPI_Start`): partner
//! resolution, argument validation and slot bookkeeping are paid at plan
//! build, not per step.
//!
//! Higher redistribution layers (`atasp` resort plans, the particle-mesh
//! ghost plan, the merge-sort probe plan) build on the same discipline and
//! report through the same counters ([`Comm::note_plan_build`] /
//! [`Comm::note_plan_exec`]), so `commstats` can compute a single plan-reuse
//! rate across all layers.

use crate::pool::PooledBuf;
use crate::world::{Comm, Request};
use crate::Work;

/// A frozen persistent schedule for a recurring point-to-point neighbourhood
/// exchange.
///
/// Built once per decomposition epoch with [`Comm::plan_exchange`]; executed
/// every timestep with [`CommPlan::execute`]. The plan owns the sorted
/// partner list (receive buffers come back in partner order with no per-step
/// sort), the tag, and the *size envelopes* of the last execution — the
/// per-partner receive counts, which callers use to pre-size the buffers the
/// received payload is unpacked into.
///
/// Both sides of every partner edge must hold a plan naming each other (the
/// partner relation is symmetric), exactly like
/// [`Comm::neighbor_exchange`].
#[derive(Clone, Debug)]
pub struct CommPlan {
    /// Partner ranks, sorted ascending, deduplicated, never the local rank.
    partners: Vec<usize>,
    /// Message tag all executions of this plan use.
    tag: u64,
    /// Elements received from each partner (same order as `partners`) during
    /// the most recent execution; all zeros before the first.
    last_recv_counts: Vec<usize>,
    /// Number of completed executions.
    executions: u64,
}

impl Comm {
    /// Build a persistent neighbourhood-exchange plan over `partners`.
    ///
    /// Resolves and freezes the partner list (sorted, deduplicated, the local
    /// rank removed) and charges the one-time schedule-construction cost.
    /// Purely local — no messages are exchanged at build time.
    pub fn plan_exchange(&mut self, mut partners: Vec<usize>, tag: u64) -> CommPlan {
        let t0 = self.clock();
        partners.sort_unstable();
        partners.dedup();
        partners.retain(|&q| q != self.rank());
        for &q in &partners {
            assert!(q < self.size(), "plan_exchange: partner rank {q} out of range");
        }
        let bytes = (partners.len() * std::mem::size_of::<usize>()) as u64;
        self.compute(Work::ByteCopy, bytes as f64);
        self.note_plan_build(t0, bytes);
        let n = partners.len();
        CommPlan { partners, tag, last_recv_counts: vec![0; n], executions: 0 }
    }
}

impl CommPlan {
    /// The frozen partner ranks, sorted ascending.
    pub fn partners(&self) -> &[usize] {
        &self.partners
    }

    /// The message tag every execution uses.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Completed executions of this plan.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Size envelope of the most recent execution: elements received from
    /// each partner, in [`CommPlan::partners`] order (all zeros before the
    /// first execution). Callers use the sum to pre-size unpack buffers.
    pub fn last_recv_counts(&self) -> &[usize] {
        &self.last_recv_counts
    }

    /// Execute the plan with this step's payload: `data[i]` is sent to
    /// `partners()[i]` (possibly empty), and one buffer per partner is
    /// received, returned in partner order. All sends and receives are posted
    /// nonblocking up front and drained in arrival order, like
    /// [`Comm::neighbor_exchange`] — but the partner resolution, validation
    /// and output ordering were paid once at plan build.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != partners().len()` — the plan freezes the
    /// exchange structure, so every execution must supply exactly one buffer
    /// per partner (empty buffers for partners with nothing to say).
    pub fn execute<T: Send + 'static>(
        &mut self,
        comm: &mut Comm,
        data: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        assert_eq!(
            data.len(),
            self.partners.len(),
            "CommPlan::execute: {} send buffers for {} planned partners",
            data.len(),
            self.partners.len()
        );
        let t0 = comm.clock();
        let mut requests: Vec<Request<T>> = Vec::with_capacity(2 * self.partners.len());
        for &src in &self.partners {
            requests.push(comm.irecv(src, self.tag));
        }
        let mut bytes = 0u64;
        for (&dst, buf) in self.partners.iter().zip(data) {
            bytes += (buf.len() * std::mem::size_of::<T>()) as u64;
            requests.push(comm.isend(dst, self.tag, buf));
        }
        let results = comm.waitall(requests);
        let out: Vec<Vec<T>> = results
            .into_iter()
            .take(self.partners.len())
            .map(|buf| buf.expect("receive request yields data"))
            .collect();
        for (slot, buf) in out.iter().enumerate() {
            self.last_recv_counts[slot] = buf.len();
        }
        self.executions += 1;
        comm.note_plan_exec(t0, bytes);
        out
    }

    /// Byte-path [`CommPlan::execute`] over pooled buffers: `sends[i]` goes
    /// to `partners()[i]` and one buffer per partner comes back in `out`, in
    /// partner order — same posting order, completion order, costs and plan
    /// counters as the typed path, with zero per-step heap allocation once
    /// the pool and scratch are warm. `sends` is drained; received buffers
    /// come straight from the wire (release them with [`Comm::buf_release`]
    /// once unpacked to close the reuse loop). `last_recv_counts` records
    /// received **bytes** per partner for byte executions.
    ///
    /// # Panics
    ///
    /// Panics if `sends.len() != partners().len()` — supply one buffer per
    /// partner, empty buffers for partners with nothing to say.
    pub fn execute_bytes(
        &mut self,
        comm: &mut Comm,
        sends: &mut Vec<PooledBuf>,
        out: &mut Vec<PooledBuf>,
    ) {
        assert_eq!(
            sends.len(),
            self.partners.len(),
            "CommPlan::execute_bytes: {} send buffers for {} planned partners",
            sends.len(),
            self.partners.len()
        );
        let t0 = comm.clock();
        let mut requests = comm.take_byte_reqs();
        let mut results = comm.take_byte_results();
        for &src in &self.partners {
            requests.push(comm.irecv::<u8>(src, self.tag));
        }
        let mut bytes = 0u64;
        for (&dst, buf) in self.partners.iter().zip(sends.drain(..)) {
            bytes += buf.len() as u64;
            let req = comm.isend_bytes(dst, self.tag, buf);
            requests.push(req);
        }
        comm.waitall_bytes(&mut requests, &mut results);
        out.clear();
        for (slot, buf) in results.drain(..).take(self.partners.len()).enumerate() {
            let buf = buf.expect("receive request yields data");
            self.last_recv_counts[slot] = buf.len();
            out.push(buf);
        }
        self.executions += 1;
        comm.note_plan_exec(t0, bytes);
        comm.put_byte_reqs(requests);
        comm.put_byte_results(results);
    }
}

#[cfg(test)]
mod tests {
    use crate::{run, run_traced, MachineModel, TraceKind};

    /// Ring neighbourhood of one rank on each side.
    fn ring(me: usize, p: usize) -> Vec<usize> {
        let mut v = vec![(me + 1) % p, (me + p - 1) % p];
        v.retain(|&q| q != me);
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn plan_execute_matches_neighbor_exchange() {
        let out = run(6, MachineModel::juropa_like(), |comm| {
            let (me, p) = (comm.rank(), comm.size());
            let partners = ring(me, p);
            let payload = |q: usize| -> Vec<u64> { vec![(me * 100 + q) as u64; 3] };
            let adhoc: Vec<(usize, Vec<u64>)> = comm.neighbor_exchange(
                &partners,
                partners.iter().map(|&q| (q, payload(q))).collect(),
                7,
            );
            let mut plan = comm.plan_exchange(partners.clone(), 7);
            let planned = plan.execute(comm, partners.iter().map(|&q| payload(q)).collect());
            let planned2 = plan.execute(comm, partners.iter().map(|&q| payload(q)).collect());
            assert_eq!(plan.executions(), 2);
            let counts: Vec<usize> = planned.iter().map(Vec::len).collect();
            assert_eq!(plan.last_recv_counts(), &counts[..]);
            (adhoc, partners, planned, planned2)
        });
        for (adhoc, partners, planned, planned2) in out.results {
            let expect: Vec<Vec<u64>> = adhoc.into_iter().map(|(_, b)| b).collect();
            assert_eq!(planned, expect, "planned exchange must match ad-hoc exchange");
            assert_eq!(planned2, expect, "re-execution must be repeatable");
            assert_eq!(planned.len(), partners.len());
        }
    }

    #[test]
    fn plan_counters_and_trace_kinds() {
        let out = run_traced(4, MachineModel::ideal(), |comm| {
            let (me, p) = (comm.rank(), comm.size());
            let mut plan = comm.plan_exchange(ring(me, p), 1);
            for _ in 0..5 {
                let bufs = plan.partners().iter().map(|&q| vec![q as u32]).collect();
                let _ = plan.execute(comm, bufs);
            }
            (comm.stats().plan_builds, comm.stats().plan_execs)
        });
        for (r, &(builds, execs)) in out.results.iter().enumerate() {
            assert_eq!((builds, execs), (1, 5), "rank {r} counters");
            let t = &out.traces[r];
            assert_eq!(t.events.iter().filter(|e| e.kind == TraceKind::PlanBuild).count(), 1);
            assert_eq!(t.events.iter().filter(|e| e.kind == TraceKind::PlanExec).count(), 5);
            assert_eq!(out.stats[r].plan_builds, 1);
            assert_eq!(out.stats[r].plan_execs, 5);
        }
    }

    #[test]
    fn plan_normalizes_partner_list() {
        let out = run(2, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let other = 1 - me;
            // Unsorted, duplicated, self-including list is normalized at build.
            let plan = comm.plan_exchange(vec![other, me, other], 3);
            plan.partners().to_vec()
        });
        assert_eq!(out.results[0], vec![1]);
        assert_eq!(out.results[1], vec![0]);
    }
}
