//! The simulated world: rank execution, mailboxes, collectives, and per-rank
//! virtual clocks.
//!
//! [`run`] hands each of `n` simulated ranks a [`Comm`] and executes them
//! under one of two interchangeable engines (see [`Engine`] and [`Runner`]):
//! preemptive thread-per-rank, or a cooperative discrete-event scheduler for
//! paper-scale worlds. Rank code is written exactly like an MPI program:
//! blocking point-to-point `send`/`recv`, collective operations that all
//! ranks of the world enter in the same order, and a Cartesian-topology
//! helper (see [`crate::cart`]).
//!
//! Data exchange is real (typed buffers move between threads through shared
//! memory); *time* is virtual: every operation advances the calling rank's
//! clock according to the world's [`MachineModel`], and synchronizing
//! operations propagate clock values the way the real operation would
//! (a receive cannot complete before the matching send departed; a collective
//! cannot complete before its last participant arrived).

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::engine::{Deadlock, Engine, Scheduler, WaitSite};
use crate::error::WorldError;
use crate::fault::FaultPlan;
use crate::model::{MachineModel, Work};
use crate::phase::{aggregate_phases, PhaseAgg, PhaseProfile, PhaseSegment, PhaseStats};
use crate::pool::{BufferPool, PooledBuf};
use crate::trace::{SpanCat, Trace, TraceKind};

/// Lock a mutex, ignoring std poisoning: cross-rank failure propagation is
/// handled by the world's own poison flag (see [`WorldShared::poison`]).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Wait on a condvar, ignoring std poisoning (same rationale as [`lock`]).
fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Greedily match every receive pattern `(slot, src, tag)` against the queue
/// in FIFO order (the k-th queued message of a `(src, tag)` stream goes to
/// the k-th request for it). Fills `picks` with the `(slot, queue position)`
/// pairs and returns `true`, or returns `false` if not all patterns can be
/// matched yet. `taken` and `picks` are caller-provided scratch so the hot
/// matching loop performs no allocation.
fn match_requests(
    q: &VecDeque<Message>,
    patterns: &[(usize, usize, u64)],
    taken: &mut Vec<bool>,
    picks: &mut Vec<(usize, usize)>,
) -> bool {
    taken.clear();
    taken.resize(patterns.len(), false);
    picks.clear();
    for (qpos, m) in q.iter().enumerate() {
        if let Some(i) = patterns
            .iter()
            .enumerate()
            .position(|(i, &(_, src, tag))| !taken[i] && m.src == src && m.tag == tag)
        {
            taken[i] = true;
            picks.push((patterns[i].0, qpos));
            if picks.len() == patterns.len() {
                return true;
            }
        }
    }
    false
}

/// A type-erased in-flight message.
struct Message {
    src: usize,
    tag: u64,
    /// Virtual time at which the message left the sender.
    depart: f64,
    /// Payload size in bytes (for costing).
    bytes: u64,
    /// World-unique correlation id stamped at post time (see
    /// [`crate::TraceEvent::corr`]).
    corr: u64,
    payload: Box<dyn Any + Send>,
}

/// Mailbox of one destination rank.
#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    cv: Condvar,
}

/// A handle for an outstanding nonblocking point-to-point operation, created
/// by [`Comm::isend`] / [`Comm::irecv`] and consumed by [`Comm::wait`],
/// [`Comm::waitall`] or [`Comm::waitany`].
///
/// The type parameter is the element type of the buffer being transferred;
/// waiting on a receive request yields the matched `Vec<T>`.
///
/// # Completion contract
///
/// Every request, once waited on, **completes with data iff it is a receive**
/// ([`Request::is_recv`]): waits return `Some(buffer)` for receive requests
/// and `None` for send requests, deterministically — there is no cancelled or
/// lost state observable through this API. This holds under an active
/// [`FaultPlan`] too: a transiently lost send is retransmitted internally
/// (after a bounded backoff charged to the cost model), a delayed message
/// still arrives, and a timed-out wait only accrues extra cost. Callers that
/// know a request's kind statically should use [`Comm::wait_recv`] for
/// receives instead of unwrapping the `Option`.
///
/// # Yield semantics under the discrete-event engine
///
/// Posting a request never blocks: `isend` deposits its payload in the
/// destination mailbox immediately and `irecv` merely records the match
/// pattern, under either engine. The **wait** is the yield point: when a
/// rank waits on a receive whose message has not arrived yet, the threaded
/// engine parks the OS thread on a condition variable, while the
/// discrete-event engine suspends the rank's task and dispatches the
/// runnable rank with the smallest virtual clock — the wait is where the
/// scheduler changes hands. Which rank runs *while* another waits cannot be
/// observed through this API: completion order and every charged cost are
/// functions of virtual departure/arrival times only, so both engines
/// produce bit-for-bit identical clocks, statistics and traces (see
/// [`Runner`]). If every live rank ends up suspended at a wait, the
/// discrete-event engine reports a virtual deadlock by panicking (the
/// threaded engine would hang in real time instead).
#[must_use = "a request does nothing until waited on"]
pub struct Request<T> {
    kind: ReqKind,
    _payload: std::marker::PhantomData<fn() -> T>,
}

#[derive(Clone, Copy)]
enum ReqKind {
    /// The payload was already deposited at post time; the request completes
    /// when the NIC has drained it (virtual time `depart`). `corr` is the
    /// posted message's correlation id, re-stamped on the completion's
    /// `wait` trace record.
    Send { dst: usize, depart: f64, corr: u64 },
    /// Completes when a matching message has been pulled from the mailbox.
    Recv { src: usize, tag: u64 },
}

/// Reusable scratch for the `waitall` family, held per rank on the [`Comm`]:
/// cleared before each use, never shrunk, so steady-state exchanges perform
/// no heap allocation here after warm-up.
#[derive(Default)]
struct WaitScratch {
    /// Request kinds of the batch currently being waited on.
    kinds: Vec<ReqKind>,
    /// `(slot, src, tag)` patterns of the batch's receive requests.
    patterns: Vec<(usize, usize, u64)>,
    /// Per-pattern "already matched" flags for [`match_requests`].
    taken: Vec<bool>,
    /// `(slot, queue position)` picks from [`match_requests`].
    picks: Vec<(usize, usize)>,
    /// Matched messages by request slot (`None` at send slots); after
    /// [`Comm::waitall_core`] these are accounted and await unboxing.
    msgs: Vec<Option<Message>>,
    /// `(ready time, slot)` completion schedule.
    order: Vec<(f64, usize)>,
}

impl<T> Request<T> {
    fn new(kind: ReqKind) -> Self {
        Request { kind, _payload: std::marker::PhantomData }
    }

    /// Whether this is a receive request (completing it yields data).
    pub fn is_recv(&self) -> bool {
        matches!(self.kind, ReqKind::Recv { .. })
    }
}

/// One entry deposited into a rank's all-to-all-v bin.
struct BinEntry {
    round: u64,
    src: usize,
    bytes: u64,
    payload: Box<dyn Any + Send>,
}

/// State of the single shared collective slot (all ranks enter collectives in
/// the same order, so one slot with a phase counter suffices).
struct CollState {
    /// Even phase: depositing; odd phase: result ready for reading.
    phase: u64,
    arrived: usize,
    deposits: Vec<Option<Box<dyn Any + Send>>>,
    max_clock: f64,
    /// Result published by the last depositor for all ranks to read.
    agg: Option<Arc<dyn Any + Send + Sync>>,
}

struct Collective {
    m: Mutex<CollState>,
    cv: Condvar,
}

/// The engine-specific half of the blocking machinery: threaded worlds park
/// ranks on condition variables, discrete-event worlds park them in the
/// scheduler. Everything else — operation semantics, cost accounting, fault
/// draws — is shared, which is what makes the two engines bitwise identical.
enum Exec {
    Threaded,
    Discrete(Scheduler),
}

pub(crate) struct WorldShared {
    pub n: usize,
    pub model: MachineModel,
    torus_dims: Vec<usize>,
    mailboxes: Vec<Mailbox>,
    bins: Vec<Mutex<Vec<BinEntry>>>,
    coll: Collective,
    poisoned: AtomicBool,
    /// First recorded failure cause: the typed error [`Runner::try_run`]
    /// returns. Writers use [`WorldShared::fail`] (first-wins), so secondary
    /// poison-induced panics never overwrite the original cause.
    failure: Mutex<Option<WorldError>>,
    /// The world's fault-injection plan (inert for [`run`] / [`run_traced`]).
    fault: FaultPlan,
    /// Cached `fault.is_active()`: the single branch every hot-path fault
    /// hook takes in clean worlds.
    fault_active: bool,
    exec: Exec,
}

impl WorldShared {
    fn new(n: usize, model: MachineModel, fault: FaultPlan, engine: Engine) -> Self {
        let torus_dims = model.torus_dims(n);
        let fault_active = fault.is_active();
        WorldShared {
            n,
            model,
            torus_dims,
            fault,
            fault_active,
            mailboxes: (0..n).map(|_| Mailbox::default()).collect(),
            bins: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            coll: Collective {
                m: Mutex::new(CollState {
                    phase: 0,
                    arrived: 0,
                    deposits: (0..n).map(|_| None).collect(),
                    max_clock: 0.0,
                    agg: None,
                }),
                cv: Condvar::new(),
            },
            poisoned: AtomicBool::new(false),
            failure: Mutex::new(None),
            exec: match engine {
                Engine::Threaded => Exec::Threaded,
                Engine::DiscreteEvent => Exec::Discrete(Scheduler::new(n)),
            },
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        match &self.exec {
            Exec::Threaded => {
                for mb in &self.mailboxes {
                    mb.cv.notify_all();
                }
                self.coll.cv.notify_all();
            }
            Exec::Discrete(s) => s.wake_all(),
        }
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::SeqCst) {
            panic!("simcomm world poisoned: another rank failed");
        }
    }

    /// Record the world's failure cause, first writer wins. Every poison site
    /// records its cause *before* poisoning, so the secondary panics of the
    /// woken ranks can never claim to be the origin.
    fn fail(&self, err: WorldError) {
        let mut f = lock(&self.failure);
        if f.is_none() {
            *f = Some(err);
        }
    }

    /// A blocking site detected a virtual deadlock: record the typed cause,
    /// poison the world so every blocked rank unwinds, and unwind this rank
    /// with the display form (callers of the panicking `run*` entry points
    /// see it verbatim).
    fn report_deadlock(&self, d: Deadlock) -> ! {
        let err = WorldError::VirtualDeadlock {
            live: d.live,
            rank: d.rank,
            site: format!("{:?}", d.site),
            clock: d.clock,
        };
        let msg = err.to_string();
        self.fail(err);
        self.poison();
        panic!("{msg}");
    }

    // ------------------------------------------------- engine blocking sites
    //
    // The four helpers below are the *only* places where the two engines
    // diverge. A threaded world parks the calling rank on the relevant
    // condition variable; a discrete-event world releases the world lock,
    // yields the baton to the scheduler until the site is signalled, and
    // relocks. Both return with the guard held and the predicate possibly
    // still false — every caller loops.

    /// Block `rank` until its mailbox is signalled again (deposit or poison).
    fn wait_mailbox<'a>(
        &'a self,
        rank: usize,
        clock: f64,
        guard: MutexGuard<'a, VecDeque<Message>>,
    ) -> MutexGuard<'a, VecDeque<Message>> {
        match &self.exec {
            Exec::Threaded => wait(&self.mailboxes[rank].cv, guard),
            Exec::Discrete(s) => {
                drop(guard);
                if let Err(d) = s.yield_blocked(rank, WaitSite::Mailbox, clock) {
                    self.report_deadlock(d);
                }
                lock(&self.mailboxes[rank].queue)
            }
        }
    }

    /// Block `rank` until the collective slot is signalled again (phase
    /// change or poison).
    fn wait_coll<'a>(
        &'a self,
        rank: usize,
        clock: f64,
        guard: MutexGuard<'a, CollState>,
    ) -> MutexGuard<'a, CollState> {
        match &self.exec {
            Exec::Threaded => wait(&self.coll.cv, guard),
            Exec::Discrete(s) => {
                drop(guard);
                if let Err(d) = s.yield_blocked(rank, WaitSite::Collective, clock) {
                    self.report_deadlock(d);
                }
                lock(&self.coll.m)
            }
        }
    }

    /// Signal a deposit into `dst`'s mailbox.
    fn notify_mailbox(&self, dst: usize) {
        match &self.exec {
            Exec::Threaded => self.mailboxes[dst].cv.notify_all(),
            Exec::Discrete(s) => s.wake_mailbox(dst),
        }
    }

    /// Signal a collective phase change.
    fn notify_coll(&self) {
        match &self.exec {
            Exec::Threaded => self.coll.cv.notify_all(),
            Exec::Discrete(s) => s.wake_collective(),
        }
    }

    /// Rank-thread prologue: under the discrete-event engine, park until the
    /// scheduler hands this rank the baton for the first time.
    fn wait_for_start(&self, rank: usize) {
        if let Exec::Discrete(s) = &self.exec {
            s.wait_for_turn(rank);
        }
    }

    /// Dispatch the first task once all rank threads exist (discrete-event
    /// engine only).
    fn start_engine(&self) {
        if let Exec::Discrete(s) = &self.exec {
            s.start();
        }
    }

    /// Rank-thread epilogue: under the discrete-event engine, retire the task
    /// and hand the baton on. If this rank exited while every remaining rank
    /// is blocked, no virtual event can ever wake them — record the deadlock,
    /// poison the world and restart dispatch so the survivors fail fast
    /// instead of hanging.
    fn retire_rank(&self, rank: usize, clock: f64) {
        if let Exec::Discrete(s) = &self.exec {
            if let Some(live) = s.retire(rank) {
                self.fail(WorldError::VirtualDeadlock {
                    live,
                    rank,
                    site: "rank-exit".to_string(),
                    clock,
                });
                self.poison();
                s.kick();
            }
        }
    }

    fn hops(&self, a: usize, b: usize) -> usize {
        if self.torus_dims.is_empty() {
            usize::from(a != b)
        } else {
            crate::model::torus_hops(a, b, &self.torus_dims)
        }
    }
}

/// Per-rank accumulated statistics (virtual-time and traffic accounting).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankStats {
    /// Point-to-point messages sent.
    pub p2p_sent_msgs: u64,
    /// Point-to-point bytes sent.
    pub p2p_sent_bytes: u64,
    /// Point-to-point messages received.
    pub p2p_recv_msgs: u64,
    /// Point-to-point bytes received.
    pub p2p_recv_bytes: u64,
    /// Collective operations entered.
    pub coll_ops: u64,
    /// Bytes contributed to collective operations.
    pub coll_bytes: u64,
    /// Virtual seconds spent in modelled computation.
    pub compute_seconds: f64,
    /// Virtual seconds spent in communication transfer cost (p2p overhead and
    /// injection, modelled collective algorithm cost).
    pub comm_seconds: f64,
    /// Virtual seconds spent idle in rendezvous: blocked on a message that had
    /// not arrived yet, or waiting for the last participant of a collective.
    pub wait_seconds: f64,
    /// Persistent communication plans built (or rebuilt) on this rank
    /// (see [`Comm::note_plan_build`]).
    pub plan_builds: u64,
    /// Executions of payload through previously built plans
    /// (see [`Comm::note_plan_exec`]).
    pub plan_execs: u64,
    /// Faults injected on this rank (lost sends, latency spikes, the
    /// straggler slowdown, a scheduled stall) — see [`crate::FaultPlan`].
    pub faults_injected: u64,
    /// Retransmissions of transiently lost sends.
    pub retries: u64,
    /// Wait-timeout cycles (waits exceeding the plan's timeout threshold).
    pub timeouts: u64,
    /// Scheduled stalls that fired on this rank (0 or 1 per run).
    pub stalls: u64,
    /// Bytes of message-buffer capacity served from this rank's buffer
    /// arena instead of the allocator (see [`Comm::buf_acquire`]).
    /// Pure memory accounting — never affects virtual time.
    pub bytes_reused: u64,
    /// Bytes of message-buffer capacity newly allocated (or grown) because
    /// the pool could not cover an acquisition. Steady-state exchanges drive
    /// this to zero after warm-up.
    pub bytes_grown: u64,
}

impl RankStats {
    /// Total virtual seconds accounted for
    /// (compute + comm + wait — the decomposition of the clock is exhaustive).
    pub fn total_seconds(&self) -> f64 {
        self.compute_seconds + self.comm_seconds + self.wait_seconds
    }
}

/// The per-rank communicator handle: the interface rank code programs against.
///
/// All collective operations must be entered by **every** rank of the world in
/// the same order (SPMD), exactly like MPI collectives on `MPI_COMM_WORLD`.
pub struct Comm {
    shared: Arc<WorldShared>,
    rank: usize,
    clock: f64,
    /// Virtual time until which this rank's (shared) NIC is busy injecting
    /// previously posted messages; the next message departs no earlier.
    nic_free: f64,
    stats: RankStats,
    trace: Option<Trace>,
    /// Open phase spans, innermost last; all accounting goes to the top entry.
    phase_stack: Vec<&'static str>,
    /// Virtual time the current attribution segment started.
    seg_start: f64,
    profile: PhaseProfile,
    /// Monotonic send counter in program order: the source of per-message
    /// correlation ids. Identical under both engines (message posting is a
    /// pure function of the rank program), so correlation ids — like every
    /// other traced quantity — are bitwise engine-independent.
    send_seq: u64,
    /// Monotonic send counter: the per-message fault-draw stream id.
    fault_send_seq: u64,
    /// Monotonic communication-operation counter (the stall trigger clock).
    fault_ops: u64,
    /// The scheduled stall fired on this rank already (stalls are one-shot).
    fault_stall_fired: bool,
    /// This rank is a straggler under the world's fault plan.
    fault_straggler: bool,
    /// The straggler slowdown has been counted/traced once already.
    fault_straggler_noted: bool,
    /// Per-partner arena of reusable message buffers (see [`crate::pool`]).
    pool: BufferPool,
    /// Reusable scratch for the `waitall` family.
    wait_scratch: WaitScratch,
    /// Reusable request/result scratch for the byte-path exchanges.
    byte_reqs: Vec<Request<u8>>,
    byte_results: Vec<Option<PooledBuf>>,
    /// Reusable `(partner, buffer)` pair scratch, loaned to higher layers
    /// (e.g. `atasp::resort_planes`) so their exchanges stay allocation-free.
    byte_pairs_a: Vec<(usize, PooledBuf)>,
    byte_pairs_b: Vec<(usize, PooledBuf)>,
}

/// Result of running a world: per-rank return values, final clocks and stats.
pub struct RunOutput<R> {
    /// Rank closures' return values, indexed by rank.
    pub results: Vec<R>,
    /// Final virtual clock of each rank (seconds).
    pub clocks: Vec<f64>,
    /// Per-rank traffic/time statistics.
    pub stats: Vec<RankStats>,
    /// Per-rank communication traces (empty unless [`run_traced`] was used).
    pub traces: Vec<Trace>,
    /// Per-rank phase profiles (see [`Comm::enter_phase`]). Aggregates are
    /// always collected; attribution segments only in traced worlds.
    pub phases: Vec<PhaseProfile>,
}

impl<R> RunOutput<R> {
    /// The maximum final virtual clock — the world's makespan in seconds.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().cloned().fold(0.0, f64::max)
    }

    /// Cross-rank per-phase aggregate table (critical path, mean, imbalance,
    /// traffic), with an `"(untagged)"` row covering everything outside phase
    /// spans. See [`aggregate_phases`].
    pub fn phase_table(&self) -> Vec<PhaseAgg> {
        aggregate_phases(&self.phases, &self.stats)
    }
}

/// Stack size for simulated rank threads. Rank code keeps its bulk data on the
/// heap, so a small stack lets worlds of many thousands of ranks fit easily.
const RANK_STACK_BYTES: usize = 1 << 20;

/// Configures and runs simulated worlds: the builder-style entry point that
/// composes an execution [`Engine`], optional tracing and an optional
/// [`FaultPlan`].
///
/// The free functions [`run`], [`run_traced`], [`run_faulted`] and
/// [`run_faulted_traced`] are thin wrappers over a `Runner` with the default
/// (threaded) engine; use a `Runner` directly to select the discrete-event
/// engine for paper-scale rank counts.
///
/// Both engines are observationally identical for every committed workload —
/// same results, same clocks, same statistics, traces and fault draws, bit
/// for bit:
///
/// ```
/// use simcomm::{Engine, MachineModel, Runner};
///
/// let program = |comm: &mut simcomm::Comm| {
///     let peer = comm.size() - 1 - comm.rank();
///     let got = comm.sendrecv(peer, vec![comm.rank() as u64], peer, 7);
///     comm.allreduce(got[0], |a, b| a + b)
/// };
/// let threaded = Runner::new(Engine::Threaded).run(8, MachineModel::juqueen_like(), program);
/// let discrete = Runner::new(Engine::DiscreteEvent).run(8, MachineModel::juqueen_like(), program);
/// assert_eq!(threaded.results, discrete.results);
/// assert_eq!(threaded.clocks, discrete.clocks); // bitwise, not approximately
/// ```
#[derive(Clone, Debug)]
pub struct Runner {
    engine: Engine,
    traced: bool,
    fault: FaultPlan,
    pooled: bool,
    deadline: Option<Duration>,
}

impl Default for Runner {
    fn default() -> Runner {
        Runner::new(Engine::default())
    }
}

impl Runner {
    /// A runner for the given engine, with tracing off, the inert fault
    /// plan, message-buffer pooling enabled, and no deadline.
    pub fn new(engine: Engine) -> Runner {
        Runner { engine, traced: false, fault: FaultPlan::none(), pooled: true, deadline: None }
    }

    /// The engine this runner uses.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Enable or disable per-rank communication tracing (see
    /// [`RunOutput::traces`]).
    pub fn traced(mut self, traced: bool) -> Runner {
        self.traced = traced;
        self
    }

    /// Inject the deterministic faults described by `fault` (see
    /// [`FaultPlan`]); [`FaultPlan::none`] restores the clean world.
    pub fn faulted(mut self, fault: FaultPlan) -> Runner {
        self.fault = fault;
        self
    }

    /// Enable or disable per-rank message-buffer pooling (default: enabled).
    ///
    /// Pooling is pure memory management: clocks, statistics (other than
    /// [`RankStats::bytes_reused`] / [`RankStats::bytes_grown`]), traces and
    /// results are bitwise identical either way. Disabling it restores
    /// allocate-per-exchange behaviour, the reference mode the pool's
    /// identity tests diff against.
    pub fn pooled(mut self, pooled: bool) -> Runner {
        self.pooled = pooled;
        self
    }

    /// Set a wall-clock deadline for the whole run (`None` disables it, the
    /// default). When the deadline elapses before the world completes, a
    /// watchdog poisons the world: every rank blocked in a communication
    /// operation wakes and unwinds, and the run fails with
    /// [`WorldError::DeadlineExceeded`]. This is how supervisors retire runs
    /// that hang in real time — e.g. a threaded-engine world waiting on a
    /// message that is never sent (the discrete-event engine detects that
    /// case as a [`WorldError::VirtualDeadlock`] instead, without waiting).
    ///
    /// The watchdog can only interrupt ranks at communication operations
    /// (every blocking site rechecks the poison flag); a rank spinning in
    /// pure host compute is not preemptible in-process.
    pub fn deadline(mut self, deadline: Option<Duration>) -> Runner {
        self.deadline = deadline;
        self
    }

    /// Run a simulated world of `n` ranks under the given machine model,
    /// invoking the closure once per rank with that rank's [`Comm`].
    ///
    /// # Panics
    ///
    /// If the world fails ([`Runner::try_run`] returns an error), `run`
    /// panics with `"simcomm world failed: {error}"`. Supervisors that need
    /// to distinguish failure causes use [`Runner::try_run`] instead.
    pub fn run<R, F>(&self, n: usize, model: MachineModel, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        self.try_run(n, model, f).unwrap_or_else(|e| panic!("simcomm world failed: {e}"))
    }

    /// Like [`Runner::run`], but returning the typed failure cause instead of
    /// panicking when the world fails: the first rank panic
    /// ([`WorldError::RankPanic`]), a virtual deadlock under the
    /// discrete-event engine ([`WorldError::VirtualDeadlock`]), a refused
    /// thread spawn ([`WorldError::SpawnFailed`]), or an elapsed wall-clock
    /// deadline ([`WorldError::DeadlineExceeded`]).
    ///
    /// This is the supervision entry point: expected operational failures
    /// come back as values, while the panic path remains only for invariant
    /// violations inside the harness itself.
    ///
    /// ```
    /// use simcomm::{Engine, MachineModel, Runner, WorldError};
    ///
    /// let err = Runner::new(Engine::DiscreteEvent)
    ///     .try_run(2, MachineModel::ideal(), |comm| {
    ///         if comm.rank() == 1 {
    ///             let _: Vec<u8> = comm.recv(0, 99); // never sent
    ///         }
    ///     })
    ///     .err()
    ///     .expect("a receive with no matching send must deadlock");
    /// assert_eq!(err.kind(), "deadlock");
    /// assert!(matches!(err, WorldError::VirtualDeadlock { live: 1, .. }));
    /// ```
    pub fn try_run<R, F>(
        &self,
        n: usize,
        model: MachineModel,
        f: F,
    ) -> Result<RunOutput<R>, WorldError>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        try_run_with(
            n,
            model,
            self.fault.clone(),
            self.traced,
            self.engine,
            self.pooled,
            self.deadline,
            f,
        )
    }
}

/// Run a simulated world of `n` ranks under the given machine model, using
/// the default (threaded) execution engine.
///
/// The closure is invoked once per rank (one OS thread each) with that rank's
/// [`Comm`]. Returns per-rank results, final virtual clocks and statistics.
/// Use a [`Runner`] to select the engine explicitly.
///
/// # Panics
///
/// If any rank's closure panics, the world is poisoned (all blocked ranks are
/// woken and panic too) and `run` itself panics with the original message.
///
/// ```
/// use simcomm::{run, MachineModel};
/// let out = run(4, MachineModel::ideal(), |comm| {
///     let sum: u64 = comm.allreduce(comm.rank() as u64, |a, b| a + b);
///     sum
/// });
/// assert!(out.results.iter().all(|&s| s == 0 + 1 + 2 + 3));
/// ```
pub fn run<R, F>(n: usize, model: MachineModel, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    run_with(n, model, FaultPlan::none(), false, Engine::Threaded, true, f)
}

/// Like [`run`], additionally recording a communication [`Trace`] per rank
/// (see [`RunOutput::traces`] and [`crate::write_trace_csv`]).
pub fn run_traced<R, F>(n: usize, model: MachineModel, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    run_with(n, model, FaultPlan::none(), true, Engine::Threaded, true, f)
}

/// Like [`run`], but injecting the deterministic faults described by `fault`
/// (see [`FaultPlan`]). With [`FaultPlan::none`] this is exactly [`run`].
pub fn run_faulted<R, F>(n: usize, model: MachineModel, fault: FaultPlan, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    run_with(n, model, fault, false, Engine::Threaded, true, f)
}

/// Like [`run_faulted`], additionally recording a communication [`Trace`]
/// per rank.
pub fn run_faulted_traced<R, F>(
    n: usize,
    model: MachineModel,
    fault: FaultPlan,
    f: F,
) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    run_with(n, model, fault, true, Engine::Threaded, true, f)
}

/// Panicking form of [`try_run_with`], behind the historical `run*` free
/// functions: any world failure becomes a panic carrying the error's display
/// form.
fn run_with<R, F>(
    n: usize,
    model: MachineModel,
    fault: FaultPlan,
    traced: bool,
    engine: Engine,
    pooled: bool,
    f: F,
) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    try_run_with(n, model, fault, traced, engine, pooled, None, f)
        .unwrap_or_else(|e| panic!("simcomm world failed: {e}"))
}

#[allow(clippy::too_many_arguments)]
fn try_run_with<R, F>(
    n: usize,
    model: MachineModel,
    fault: FaultPlan,
    traced: bool,
    engine: Engine,
    pooled: bool,
    deadline: Option<Duration>,
    f: F,
) -> Result<RunOutput<R>, WorldError>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    assert!(n >= 1, "world must have at least one rank");
    let shared = Arc::new(WorldShared::new(n, model, fault, engine));
    type Slot<R> = Mutex<Option<(R, f64, RankStats, Trace, PhaseProfile)>>;
    let slots: Vec<Slot<R>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Completion signal for the deadline watchdog (scoped, so it can borrow).
    let watchdog_done: (Mutex<bool>, Condvar) = (Mutex::new(false), Condvar::new());

    std::thread::scope(|scope| {
        if let Some(limit) = deadline {
            let shared = Arc::clone(&shared);
            let watchdog_done = &watchdog_done;
            scope.spawn(move || {
                let (m, cv) = watchdog_done;
                let expiry = Instant::now() + limit;
                let mut done = lock(m);
                while !*done {
                    let now = Instant::now();
                    if now >= expiry {
                        drop(done);
                        // Configured limit, not measured time: the error is a
                        // pure function of the run configuration.
                        shared.fail(WorldError::DeadlineExceeded { seconds: limit.as_secs_f64() });
                        shared.poison();
                        return;
                    }
                    done = cv
                        .wait_timeout(done, expiry - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0;
                }
            });
        }
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let f = &f;
            let slots = &slots;
            let task = {
                let shared = Arc::clone(&shared);
                move || {
                    // Under the discrete-event engine, park until the
                    // scheduler hands this rank the baton for the first time.
                    shared.wait_for_start(rank);
                    let straggler = shared.fault_active && shared.fault.straggles(rank);
                    let mut comm = Comm {
                        shared: Arc::clone(&shared),
                        rank,
                        clock: 0.0,
                        nic_free: 0.0,
                        stats: RankStats::default(),
                        trace: traced.then(Trace::default),
                        phase_stack: Vec::new(),
                        seg_start: 0.0,
                        profile: PhaseProfile::default(),
                        send_seq: 0,
                        fault_send_seq: 0,
                        fault_ops: 0,
                        fault_stall_fired: false,
                        fault_straggler: straggler,
                        fault_straggler_noted: false,
                        pool: BufferPool::new(pooled),
                        wait_scratch: WaitScratch::default(),
                        byte_reqs: Vec::new(),
                        byte_results: Vec::new(),
                        byte_pairs_a: Vec::new(),
                        byte_pairs_b: Vec::new(),
                    };
                    let result = catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                    match result {
                        Ok(r) => {
                            // Close any phases the rank code left open so the
                            // profile is complete.
                            while !comm.phase_stack.is_empty() {
                                comm.exit_phase();
                            }
                            let clock = comm.clock;
                            *lock(&slots[rank]) = Some((
                                r,
                                clock,
                                comm.stats,
                                comm.trace.take().unwrap_or_default(),
                                std::mem::take(&mut comm.profile),
                            ));
                        }
                        Err(e) => {
                            let msg = e
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                                .unwrap_or_else(|| "rank panicked".to_string());
                            // First failure wins: the secondary panics of
                            // poison-woken ranks (and the unwind of a rank
                            // that itself reported a deadlock) never
                            // overwrite the recorded cause.
                            shared.fail(WorldError::RankPanic { rank, message: msg });
                            shared.poison();
                        }
                    }
                    shared.retire_rank(rank, comm.clock);
                }
            };
            let spawned = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(RANK_STACK_BYTES)
                .spawn_scoped(scope, task);
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // The host refused another thread (e.g. `vm.max_map_count`
                    // or a pid limit caps OS threads below the rank count).
                    // Unwinding here would deadlock: the scope join would wait
                    // on already-spawned ranks that are parked waiting for the
                    // engine start or for peers that will never exist. Fail
                    // the world instead: abandon the unspawnable tasks so the
                    // scheduler never dispatches them, poison the spawned
                    // ranks, and let the normal failure path report it.
                    shared.fail(WorldError::SpawnFailed {
                        rank,
                        nranks: n,
                        message: e.to_string(),
                    });
                    if let Exec::Discrete(s) = &shared.exec {
                        for r in rank..n {
                            s.abandon(r);
                        }
                    }
                    shared.poison();
                    break;
                }
            }
        }
        shared.start_engine();
        for h in handles {
            let _ = h.join();
        }
        // All ranks are done (or the world failed): release the watchdog.
        let (m, cv) = &watchdog_done;
        *lock(m) = true;
        cv.notify_all();
    });

    if let Some(err) = lock(&shared.failure).take() {
        return Err(err);
    }

    let mut results = Vec::with_capacity(n);
    let mut clocks = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(n);
    let mut traces = Vec::with_capacity(n);
    let mut phases = Vec::with_capacity(n);
    for slot in slots {
        let (r, c, s, t, p) = slot
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .expect("rank produced no result");
        results.push(r);
        clocks.push(c);
        stats.push(s);
        traces.push(t);
        phases.push(p);
    }
    Ok(RunOutput { results, clocks, stats, traces, phases })
}

impl Comm {
    /// This rank's id in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// The machine model this world runs under.
    #[inline]
    pub fn model(&self) -> &MachineModel {
        &self.shared.model
    }

    /// Current virtual time of this rank, in seconds.
    #[inline]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Accumulated statistics of this rank.
    #[inline]
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    /// Advance this rank's clock by `seconds` of (externally measured or
    /// modelled) computation. On a straggler rank (see
    /// [`FaultPlan::straggler_ranks`]) the time is inflated by the plan's
    /// factor.
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot advance time backwards");
        let seconds = if self.fault_straggler {
            let t0 = self.clock;
            let inflated = seconds * self.shared.fault.straggler_factor;
            if !self.fault_straggler_noted && inflated > seconds {
                self.fault_straggler_noted = true;
                self.stats.faults_injected += 1;
                self.trace_event(TraceKind::Fault, t0, 0, None);
            }
            inflated
        } else {
            seconds
        };
        let t0 = self.clock;
        self.clock += seconds;
        self.stats.compute_seconds += seconds;
        if let Some(b) = self.top_bucket() {
            b.compute_seconds += seconds;
        }
        self.note_span(SpanCat::Compute, t0);
    }

    /// Advance this rank's clock by the modelled time of `units` operations of
    /// the given [`Work`] kind.
    pub fn compute(&mut self, kind: Work, units: f64) {
        let dt = self.shared.model.work_time(kind, units);
        self.advance(dt);
    }

    // --------------------------------------------------------------- phases

    /// Open a named phase span. Phases nest as a stack; until the matching
    /// [`Comm::exit_phase`], all time and traffic are attributed to this phase
    /// (the innermost open span), and trace events are tagged with its name.
    ///
    /// Phase names should be `'static` string literals; the same name may be
    /// entered any number of times and accumulates into one per-rank bucket.
    pub fn enter_phase(&mut self, name: &'static str) {
        self.close_segment();
        self.phase_stack.push(name);
        self.bucket(name).spans += 1;
        self.seg_start = self.clock;
    }

    /// Close the innermost open phase span.
    ///
    /// # Panics
    ///
    /// Panics if no phase is open.
    pub fn exit_phase(&mut self) {
        assert!(!self.phase_stack.is_empty(), "exit_phase without matching enter_phase");
        self.close_segment();
        self.phase_stack.pop();
        self.seg_start = self.clock;
    }

    /// Run `f` inside a phase span (enter/exit pair).
    pub fn with_phase<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.enter_phase(name);
        let r = f(self);
        self.exit_phase();
        r
    }

    /// The innermost open phase, if any.
    pub fn current_phase(&self) -> Option<&'static str> {
        self.phase_stack.last().copied()
    }

    /// This rank's phase profile accumulated so far.
    pub fn phase_profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Record the attribution segment of the current innermost phase (traced
    /// worlds only; zero-length segments are skipped).
    fn close_segment(&mut self) {
        if let Some(&top) = self.phase_stack.last() {
            if self.trace.is_some() && self.clock > self.seg_start {
                self.profile.segments.push(PhaseSegment {
                    name: top,
                    t_start: self.seg_start,
                    t_end: self.clock,
                });
            }
        }
    }

    /// Find-or-insert the per-rank bucket of a phase.
    fn bucket(&mut self, name: &'static str) -> &mut PhaseStats {
        let phases = &mut self.profile.phases;
        if let Some(i) = phases.iter().position(|p| p.name == name) {
            &mut phases[i]
        } else {
            phases.push(PhaseStats { name, ..Default::default() });
            phases.last_mut().expect("just pushed")
        }
    }

    /// The bucket of the innermost open phase, if any.
    fn top_bucket(&mut self) -> Option<&mut PhaseStats> {
        let name = *self.phase_stack.last()?;
        Some(self.bucket(name))
    }

    // ----------------------------------------------------------- accounting

    /// Record a trace event if tracing is enabled, tagged with the current
    /// phase and the communicator size.
    fn trace_event(&mut self, kind: TraceKind, t_start: f64, bytes: u64, peer: Option<usize>) {
        self.trace_event_corr(kind, t_start, bytes, peer, 0);
    }

    /// [`Comm::trace_event`] with a message correlation id (see
    /// [`crate::TraceEvent::corr`]); `0` means not message-bound.
    fn trace_event_corr(
        &mut self,
        kind: TraceKind,
        t_start: f64,
        bytes: u64,
        peer: Option<usize>,
        corr: u64,
    ) {
        let t_end = self.clock;
        let phase = self.phase_stack.last().copied().unwrap_or("");
        let nranks = self.shared.n;
        if let Some(tr) = self.trace.as_mut() {
            tr.record(self.rank, kind, t_start, t_end, bytes, peer, nranks, phase, corr);
        }
    }

    /// Record the clock span `[t_start, clock]` under `cat` in a traced
    /// world. Called by exactly the three clock-advancing primitives, so the
    /// recorded spans tile `[0, clock]` — the exhaustive decomposition, as a
    /// timeline (see [`crate::ClockSpan`]).
    fn note_span(&mut self, cat: SpanCat, t_start: f64) {
        if self.clock > t_start {
            if let Some(tr) = self.trace.as_mut() {
                let phase = self.phase_stack.last().copied().unwrap_or("");
                tr.push_span(cat, t_start, self.clock, phase);
            }
        }
    }

    fn advance_comm(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        let t0 = self.clock;
        self.clock += seconds;
        self.stats.comm_seconds += seconds;
        if let Some(b) = self.top_bucket() {
            b.comm_seconds += seconds;
        }
        self.note_span(SpanCat::Comm, t0);
    }

    fn advance_wait(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        let t0 = self.clock;
        self.clock += seconds;
        self.stats.wait_seconds += seconds;
        if let Some(b) = self.top_bucket() {
            b.wait_seconds += seconds;
        }
        self.note_span(SpanCat::Wait, t0);
    }

    /// Complete a collective that rendezvoused at `max_clock` and costs
    /// `cost` modelled seconds: the gap to the last participant is rendezvous
    /// wait, the algorithm cost is communication.
    fn finish_collective(&mut self, max_clock: f64, cost: f64) {
        self.advance_wait((max_clock - self.clock).max(0.0));
        self.advance_comm(cost.max(0.0));
    }

    fn count_p2p_sent(&mut self, msgs: u64, bytes: u64) {
        self.stats.p2p_sent_msgs += msgs;
        self.stats.p2p_sent_bytes += bytes;
        if let Some(b) = self.top_bucket() {
            b.p2p_sent_msgs += msgs;
            b.p2p_sent_bytes += bytes;
        }
    }

    fn count_p2p_recv(&mut self, msgs: u64, bytes: u64) {
        self.stats.p2p_recv_msgs += msgs;
        self.stats.p2p_recv_bytes += bytes;
        if let Some(b) = self.top_bucket() {
            b.p2p_recv_msgs += msgs;
            b.p2p_recv_bytes += bytes;
        }
    }

    /// Account the construction (or rebuild) of a persistent communication
    /// plan: bumps the plan-build counter and records a `plan_build` trace
    /// span from `t_start` to the current clock. `bytes` is the size of the
    /// frozen schedule (route tables, permutations), as a volume hint for
    /// offline analysis. Plan layers above `simcomm` (resort plans, ghost
    /// plans, sort plans) call this too, so plan-reuse rates aggregate across
    /// all redistribution layers.
    pub fn note_plan_build(&mut self, t_start: f64, bytes: u64) {
        self.stats.plan_builds += 1;
        self.trace_event(TraceKind::PlanBuild, t_start, bytes, None);
    }

    /// Account one execution of payload through a previously built plan:
    /// bumps the plan-exec counter and records a `plan_exec` trace span from
    /// `t_start` to the current clock covering the whole planned exchange
    /// (`bytes` = payload routed through the plan).
    pub fn note_plan_exec(&mut self, t_start: f64, bytes: u64) {
        self.stats.plan_execs += 1;
        self.trace_event(TraceKind::PlanExec, t_start, bytes, None);
    }

    fn count_coll(&mut self, ops: u64, bytes: u64) {
        self.stats.coll_ops += ops;
        self.stats.coll_bytes += bytes;
        if let Some(b) = self.top_bucket() {
            b.coll_ops += ops;
            b.coll_bytes += bytes;
        }
    }

    /// Hop distance from this rank to `other` on the modelled topology.
    pub fn hops_to(&self, other: usize) -> usize {
        self.shared.hops(self.rank, other)
    }

    // -------------------------------------------------------------- faults

    /// Whether this world runs under an active [`FaultPlan`]. Layers above
    /// `simcomm` gate their defensive machinery (guard collectives, recovery
    /// snapshots) on this so clean worlds stay bitwise identical to a build
    /// without those layers.
    #[inline]
    pub fn fault_active(&self) -> bool {
        self.shared.fault_active
    }

    /// The world's fault plan (inert unless the world was started with
    /// [`crate::run_faulted`] / [`crate::run_faulted_traced`]).
    #[inline]
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.shared.fault
    }

    /// One tick of the communication-operation clock that drives the
    /// scheduled stall: called on every send post, receive completion and
    /// collective entry. Fires the plan's one-shot stall when its trigger
    /// count is reached, charging the stall as rendezvous wait.
    fn fault_op_tick(&mut self) {
        if !self.shared.fault_active {
            return;
        }
        self.fault_ops += 1;
        if self.fault_stall_fired {
            return;
        }
        let Some(stall) = self.shared.fault.stall else { return };
        if stall.rank == self.rank && self.fault_ops >= stall.after_ops {
            self.fault_stall_fired = true;
            let t0 = self.clock;
            self.advance_wait(stall.seconds.max(0.0));
            self.stats.faults_injected += 1;
            self.stats.stalls += 1;
            self.trace_event(TraceKind::Fault, t0, 0, None);
        }
    }

    /// Timeout semantics of a completed wait: a rendezvous wait of
    /// `wait_secs` that exceeds the plan's threshold charges one re-probe
    /// overhead per elapsed timeout cycle (bounded by `max_retries`) and
    /// counts the cycles.
    fn fault_timeout_check(&mut self, wait_secs: f64, peer: Option<usize>) {
        if !self.shared.fault_active {
            return;
        }
        let Some(threshold) = self.shared.fault.wait_timeout_seconds else { return };
        if threshold <= 0.0 || wait_secs <= threshold {
            return;
        }
        let cycles =
            ((wait_secs / threshold) as u64).min(self.shared.fault.max_retries.max(1) as u64);
        let t0 = self.clock;
        self.advance_comm(cycles as f64 * self.shared.model.p2p_overhead);
        self.stats.timeouts += cycles;
        self.trace_event(TraceKind::Timeout, t0, 0, peer);
    }

    // ---------------------------------------------------------- buffer pool

    /// Acquire a reusable send/receive byte buffer for `partner` with
    /// capacity for `bytes` (length 0). Capacity served from the pool is
    /// counted in [`RankStats::bytes_reused`]; capacity the allocator had to
    /// provide in [`RankStats::bytes_grown`]. Pooling never affects virtual
    /// time (see [`Runner::pooled`]).
    pub fn buf_acquire(&mut self, partner: usize, bytes: usize) -> PooledBuf {
        let (buf, reused, grown) = self.pool.acquire(partner, bytes);
        self.stats.bytes_reused += reused;
        self.stats.bytes_grown += grown;
        buf
    }

    /// Return a buffer to `partner`'s pool slot — typically a buffer that
    /// just arrived *from* `partner`, which closes the reuse loop of a
    /// symmetric exchange: every buffer shipped out is replaced by one
    /// shipped in.
    pub fn buf_release(&mut self, partner: usize, buf: PooledBuf) {
        self.pool.release(partner, buf);
    }

    /// Retained pool capacity for `partner`, in bytes (diagnostic hook for
    /// the high-water-mark retention tests).
    pub fn buf_retained(&self, partner: usize) -> usize {
        self.pool.retained_bytes(partner)
    }

    // Crate-internal loans of the byte-path scratch vectors, so sibling
    // modules (`plan`) can run allocation-free exchanges through the same
    // reusable storage. Loans come back cleared; put them back when done.
    pub(crate) fn take_byte_reqs(&mut self) -> Vec<Request<u8>> {
        let mut v = std::mem::take(&mut self.byte_reqs);
        v.clear();
        v
    }

    pub(crate) fn put_byte_reqs(&mut self, v: Vec<Request<u8>>) {
        self.byte_reqs = v;
    }

    pub(crate) fn take_byte_results(&mut self) -> Vec<Option<PooledBuf>> {
        let mut v = std::mem::take(&mut self.byte_results);
        v.clear();
        v
    }

    pub(crate) fn put_byte_results(&mut self, v: Vec<Option<PooledBuf>>) {
        self.byte_results = v;
    }

    /// Borrow the rank's two reusable `(partner, buffer)` scratch vectors,
    /// cleared. Higher layers (e.g. `atasp`'s byte-plane resort) stage their
    /// per-partner send and receive buffers in these so a steady-state
    /// exchange performs no heap allocation. Return them with
    /// [`Comm::put_byte_pairs`] when the exchange is done (contents are
    /// dropped, so release any buffers to the pool first).
    #[allow(clippy::type_complexity)]
    pub fn take_byte_pairs(&mut self) -> (Vec<(usize, PooledBuf)>, Vec<(usize, PooledBuf)>) {
        let mut a = std::mem::take(&mut self.byte_pairs_a);
        let mut b = std::mem::take(&mut self.byte_pairs_b);
        a.clear();
        b.clear();
        (a, b)
    }

    /// Return the pair scratch vectors taken with [`Comm::take_byte_pairs`].
    pub fn put_byte_pairs(&mut self, a: Vec<(usize, PooledBuf)>, b: Vec<(usize, PooledBuf)>) {
        self.byte_pairs_a = a;
        self.byte_pairs_b = b;
    }

    // ----------------------------------------------------------------- p2p

    /// Send a typed buffer to `dst` with a user `tag`. Buffered/eager: the
    /// sender only pays its CPU-side overhead; wire time is charged on the
    /// receiving side (the receive cannot complete before the message, sent at
    /// the sender's current clock, has traversed the network).
    pub fn send<T: Send + 'static>(&mut self, dst: usize, tag: u64, data: Vec<T>) {
        let t0 = self.clock;
        // A blocking send is an isend whose NIC drain is charged to the CPU:
        // overhead, then stall until the message has left (LogGP `o` + `g` +
        // `G*bytes`, serialized behind any still-draining earlier posts).
        let (depart, bytes, corr) = self.post_send(dst, tag, data);
        self.advance_comm((depart - self.clock).max(0.0));
        self.trace_event_corr(TraceKind::Send, t0, bytes, Some(dst), corr);
    }

    /// Deposit a message for `dst` and return its NIC departure time, size
    /// and correlation id. Charges the CPU-side post overhead as
    /// communication; the payload drains on the NIC timeline
    /// ([`Comm::nic_free`]) afterwards.
    fn post_send<T: Send + 'static>(
        &mut self,
        dst: usize,
        tag: u64,
        data: Vec<T>,
    ) -> (f64, u64, u64) {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let (depart, corr) = self.post_send_payload(dst, tag, Box::new(data), bytes);
        (depart, bytes, corr)
    }

    /// [`Comm::post_send`] over an already-boxed payload: the byte path hands
    /// a recycled [`PooledBuf`] envelope straight through here, so posting a
    /// pooled message performs no allocation at all.
    fn post_send_payload(
        &mut self,
        dst: usize,
        tag: u64,
        payload: Box<dyn Any + Send>,
        bytes: u64,
    ) -> (f64, u64) {
        assert!(dst < self.shared.n, "send to invalid rank {dst}");
        self.shared.check_poison();
        // World-unique nonzero correlation id: rank in the high bits, the
        // program-order send counter in the low 40. Pure metadata — it never
        // feeds a clock or a fault draw.
        self.send_seq += 1;
        let corr = ((self.rank as u64 + 1) << 40) | self.send_seq;
        self.advance_comm(self.shared.model.p2p_overhead);
        let mut spike = 0.0;
        if self.shared.fault_active {
            self.fault_op_tick();
            self.fault_send_seq += 1;
            let seq = self.fault_send_seq;
            // Transient losses: each lost attempt is re-posted after a
            // bounded exponential backoff. Faults delay, they never drop —
            // the attempt after the last allowed retry always delivers.
            let losses = self.shared.fault.send_losses(self.rank, dst, seq);
            for attempt in 0..losses {
                let t0 = self.clock;
                self.stats.faults_injected += 1;
                self.trace_event(TraceKind::Fault, t0, bytes, Some(dst));
                let backoff =
                    self.shared.fault.retry_backoff_seconds * (1u64 << attempt.min(16)) as f64;
                self.advance_wait(backoff.max(0.0));
                self.advance_comm(self.shared.model.p2p_overhead);
                self.stats.retries += 1;
                self.trace_event(TraceKind::Retry, t0, bytes, Some(dst));
            }
            // Latency spike: the delivered copy takes a slow path through
            // the network; receivers see a late arrival.
            spike = self.shared.fault.latency_spike(self.rank, dst, seq);
            if spike > 0.0 {
                let t0 = self.clock;
                self.stats.faults_injected += 1;
                self.trace_event(TraceKind::Fault, t0, bytes, Some(dst));
            }
        }
        let depart = self.nic_free.max(self.clock) + self.shared.model.nic_occupancy(bytes) + spike;
        self.nic_free = depart;
        self.count_p2p_sent(1, bytes);
        let msg = Message { src: self.rank, tag, depart, bytes, corr, payload };
        lock(&self.shared.mailboxes[dst].queue).push_back(msg);
        self.shared.notify_mailbox(dst);
        (depart, corr)
    }

    /// Blocking receive of a typed buffer from `src` with matching `tag`.
    ///
    /// # Panics
    ///
    /// Panics if the matched message's payload type is not `Vec<T>`.
    pub fn recv<T: Send + 'static>(&mut self, src: usize, tag: u64) -> Vec<T> {
        self.recv_match(Some(src), tag).1
    }

    /// Blocking receive from any source with matching `tag`; returns `(src, data)`.
    pub fn recv_any<T: Send + 'static>(&mut self, tag: u64) -> (usize, Vec<T>) {
        self.recv_match(None, tag)
    }

    fn recv_match<T: Send + 'static>(&mut self, src: Option<usize>, tag: u64) -> (usize, Vec<T>) {
        let mb = &self.shared.mailboxes[self.rank];
        let mut q = lock(&mb.queue);
        loop {
            self.shared.check_poison();
            if let Some(pos) = q.iter().position(|m| m.tag == tag && src.is_none_or(|s| m.src == s))
            {
                let msg = q.remove(pos).unwrap();
                drop(q);
                return self.complete_recv(msg);
            }
            q = self.shared.wait_mailbox(self.rank, self.clock, q);
        }
    }

    /// Combined send to `dst` and receive from `src` (deadlock-free pairwise
    /// exchange, like `MPI_Sendrecv`).
    pub fn sendrecv<T: Send + 'static>(
        &mut self,
        dst: usize,
        send: Vec<T>,
        src: usize,
        tag: u64,
    ) -> Vec<T> {
        self.send(dst, tag, send);
        self.recv(src, tag)
    }

    // ------------------------------------------------- nonblocking requests

    /// Virtual arrival time of a message at this rank: payload time was paid
    /// at injection, the wire adds latency.
    fn arrival_of(&self, msg: &Message) -> f64 {
        let hops = self.shared.hops(msg.src, self.rank);
        msg.depart + self.shared.model.wire_latency(hops)
    }

    /// Charge the completion of one matched message: receive overhead as
    /// communication, the gap to its arrival as rendezvous wait. Pure
    /// accounting — the payload stays boxed for the caller to unwrap.
    fn account_recv(&mut self, msg: &Message) {
        self.fault_op_tick();
        let t0 = self.clock;
        let arrival = self.arrival_of(msg);
        let (comm, wait) = self.shared.model.completion_cost(self.clock, arrival);
        self.advance_comm(comm);
        self.advance_wait(wait);
        self.count_p2p_recv(1, msg.bytes);
        self.trace_event_corr(TraceKind::Recv, t0, msg.bytes, Some(msg.src), msg.corr);
        self.fault_timeout_check(wait, Some(msg.src));
    }

    /// Unbox a received payload as `Vec<T>`, with the uniform mismatch panic.
    fn unbox_payload<T: Send + 'static>(&self, msg: Message) -> Vec<T> {
        *msg.payload
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| panic!("recv type mismatch (src {}, tag {})", msg.src, msg.tag))
    }

    /// Charge the completion of one matched message ([`Comm::account_recv`])
    /// and unbox the payload.
    fn complete_recv<T: Send + 'static>(&mut self, msg: Message) -> (usize, Vec<T>) {
        self.account_recv(&msg);
        let src = msg.src;
        (src, self.unbox_payload(msg))
    }

    /// Charge the completion of a send request: the CPU idles until the NIC
    /// has drained the message (no further overhead — it was paid at post).
    fn complete_send(&mut self, dst: usize, depart: f64, corr: u64) {
        let t0 = self.clock;
        let waited = (depart - self.clock).max(0.0);
        self.advance_wait(waited);
        self.trace_event_corr(TraceKind::Wait, t0, 0, Some(dst), corr);
        self.fault_timeout_check(waited, Some(dst));
    }

    /// Nonblocking send: deposit the message, pay only the CPU-side post
    /// overhead, and return a [`Request`] that completes once the NIC has
    /// drained the payload. Consecutive posts queue on the NIC timeline, so
    /// their payloads still serialize — but the CPU is free to post more
    /// work or receive other messages meanwhile.
    ///
    /// ```
    /// use simcomm::{run, MachineModel};
    /// let out = run(2, MachineModel::juropa_like(), |comm| {
    ///     let peer = 1 - comm.rank();
    ///     let recv = comm.irecv::<u64>(peer, 0);
    ///     let send = comm.isend(peer, 0, vec![comm.rank() as u64]);
    ///     let got = comm.waitall(vec![recv, send]);
    ///     got[0].clone().expect("receive request yields data")
    /// });
    /// assert_eq!(out.results, vec![vec![1], vec![0]]);
    /// ```
    pub fn isend<T: Send + 'static>(&mut self, dst: usize, tag: u64, data: Vec<T>) -> Request<T> {
        let t0 = self.clock;
        let (depart, bytes, corr) = self.post_send(dst, tag, data);
        self.trace_event_corr(TraceKind::Isend, t0, bytes, Some(dst), corr);
        Request::new(ReqKind::Send { dst, depart, corr })
    }

    /// Nonblocking send of a pooled byte buffer: exactly [`Comm::isend`] in
    /// cost and semantics, but the buffer's existing allocation travels as
    /// the message payload — no boxing, no copy, no allocation. Complete
    /// with [`Comm::waitall_bytes`] (or any `waitall` over `Request<u8>`).
    pub fn isend_bytes(&mut self, dst: usize, tag: u64, buf: PooledBuf) -> Request<u8> {
        let t0 = self.clock;
        let bytes = buf.len() as u64;
        let (depart, corr) = self.post_send_payload(dst, tag, buf.into_box(), bytes);
        self.trace_event_corr(TraceKind::Isend, t0, bytes, Some(dst), corr);
        Request::new(ReqKind::Send { dst, depart, corr })
    }

    /// Nonblocking receive: returns a [`Request`] that completes when a
    /// message from `src` with matching `tag` has arrived. Posting costs
    /// nothing; matching and all time accounting happen at the wait.
    pub fn irecv<T: Send + 'static>(&mut self, src: usize, tag: u64) -> Request<T> {
        assert!(src < self.shared.n, "irecv from invalid rank {src}");
        Request::new(ReqKind::Recv { src, tag })
    }

    /// Wait for a single request. Returns `Some(buffer)` for a receive
    /// request and `None` for a send request — by kind, never by outcome
    /// (see the completion contract on [`Request`]).
    pub fn wait<T: Send + 'static>(&mut self, request: Request<T>) -> Option<Vec<T>> {
        self.waitall(vec![request]).pop().expect("one request in, one result out")
    }

    /// Wait for a receive request and return its buffer directly — the
    /// uniform way to complete a request that is statically known to be a
    /// receive, instead of unwrapping [`Comm::wait`]'s `Option` ad hoc.
    ///
    /// # Panics
    ///
    /// Panics if `request` is a send request ([`Request::is_recv`] is
    /// `false`); send requests complete without data by contract.
    #[track_caller]
    pub fn wait_recv<T: Send + 'static>(&mut self, request: Request<T>) -> Vec<T> {
        assert!(request.is_recv(), "wait_recv called on a send request");
        self.wait(request).expect("receive request yields data")
    }

    /// Wait for all requests, completing them in **arrival order** rather
    /// than post order: the batch's rendezvous wait covers the latest
    /// outstanding transfer once, not every transfer's latency in sequence
    /// (see [`MachineModel::overlap_completion`]). Returns one entry per
    /// request, in *request order*: `Some(buffer)` for receives, `None` for
    /// sends — by kind, never by outcome (see the completion contract on
    /// [`Request`]).
    ///
    /// Completion order — and therefore every clock and statistic — is a
    /// deterministic function of virtual departure/arrival times, independent
    /// of OS thread scheduling.
    ///
    /// ```
    /// use simcomm::{run, MachineModel};
    /// let out = run(2, MachineModel::juqueen_like(), |comm| {
    ///     let peer = 1 - comm.rank();
    ///     let mut requests = vec![comm.irecv::<u8>(peer, 9)];
    ///     requests.push(comm.isend(peer, 9, vec![comm.rank() as u8; 3]));
    ///     let mut results = comm.waitall(requests);
    ///     (results.remove(0).unwrap(), results.remove(0))
    /// });
    /// assert_eq!(out.results[0], (vec![1, 1, 1], None));
    /// ```
    pub fn waitall<T: Send + 'static>(&mut self, requests: Vec<Request<T>>) -> Vec<Option<Vec<T>>> {
        let mut kinds = std::mem::take(&mut self.wait_scratch.kinds);
        kinds.clear();
        kinds.extend(requests.iter().map(|r| r.kind));
        self.waitall_core(&kinds);
        let mut msgs = std::mem::take(&mut self.wait_scratch.msgs);
        let out = requests
            .iter()
            .enumerate()
            .map(|(slot, r)| match r.kind {
                ReqKind::Recv { .. } => {
                    let msg = msgs[slot].take().expect("matched in waitall_core");
                    Some(self.unbox_payload::<T>(msg))
                }
                ReqKind::Send { .. } => None,
            })
            .collect();
        self.wait_scratch.msgs = msgs;
        self.wait_scratch.kinds = kinds;
        out
    }

    /// Shared engine of [`Comm::waitall`] / [`Comm::waitall_bytes`]: match
    /// every receive, then complete all requests in ascending ready-time
    /// order, charging costs exactly as `waitall` always has. Matched
    /// messages are left — accounted, still boxed — in `wait_scratch.msgs`
    /// for the caller to unbox; every scratch vector lives on the `Comm`, so
    /// steady-state waits allocate nothing.
    fn waitall_core(&mut self, kinds: &[ReqKind]) {
        self.shared.check_poison();
        let mut sc = std::mem::take(&mut self.wait_scratch);
        sc.patterns.clear();
        for (slot, kind) in kinds.iter().enumerate() {
            if let ReqKind::Recv { src, tag } = *kind {
                sc.patterns.push((slot, src, tag));
            }
        }
        // Block (in real time) until every receive has a matching message,
        // then pull them all out of the mailbox in one critical section. The
        // sends were deposited at post time, so symmetric exchanges cannot
        // deadlock here.
        sc.msgs.clear();
        sc.msgs.resize_with(kinds.len(), || None);
        if !sc.patterns.is_empty() {
            let mb = &self.shared.mailboxes[self.rank];
            let mut q = lock(&mb.queue);
            loop {
                self.shared.check_poison();
                if match_requests(&q, &sc.patterns, &mut sc.taken, &mut sc.picks) {
                    break;
                }
                q = self.shared.wait_mailbox(self.rank, self.clock, q);
            }
            // Remove back to front so earlier queue positions stay valid.
            sc.picks.sort_unstable_by_key(|&(_, qpos)| std::cmp::Reverse(qpos));
            for &(slot, qpos) in &sc.picks {
                sc.msgs[slot] = q.remove(qpos);
            }
        }
        // Complete in ascending ready-time order (ties broken by request
        // order): this is what makes concurrent transfers cost the max, not
        // the sum, of their remaining latencies.
        sc.order.clear();
        for (slot, kind) in kinds.iter().enumerate() {
            let ready = match *kind {
                ReqKind::Send { depart, .. } => depart,
                ReqKind::Recv { .. } => {
                    self.arrival_of(sc.msgs[slot].as_ref().expect("matched above"))
                }
            };
            sc.order.push((ready, slot));
        }
        sc.order.sort_by(|a, b| a.partial_cmp(b).expect("virtual times are finite"));
        for i in 0..sc.order.len() {
            let (_, slot) = sc.order[i];
            match kinds[slot] {
                ReqKind::Send { dst, depart, corr } => self.complete_send(dst, depart, corr),
                ReqKind::Recv { .. } => {
                    let msg = sc.msgs[slot].as_ref().expect("matched above");
                    self.account_recv(msg);
                }
            }
        }
        self.wait_scratch = sc;
    }

    /// Byte-path [`Comm::waitall`] for batches of [`Comm::irecv`] /
    /// [`Comm::isend_bytes`] requests: identical matching, completion order
    /// and cost accounting, but received payloads come back as
    /// [`PooledBuf`]s — the message envelope itself, re-wrapped without
    /// copying — and all scratch is reused, so the steady-state path performs
    /// no heap allocation. `requests` is drained; `out` is cleared and
    /// refilled with one entry per request in request order (`Some` at
    /// receive slots, `None` at send slots).
    pub fn waitall_bytes(
        &mut self,
        requests: &mut Vec<Request<u8>>,
        out: &mut Vec<Option<PooledBuf>>,
    ) {
        let mut kinds = std::mem::take(&mut self.wait_scratch.kinds);
        kinds.clear();
        kinds.extend(requests.iter().map(|r| r.kind));
        requests.clear();
        self.waitall_core(&kinds);
        let mut msgs = std::mem::take(&mut self.wait_scratch.msgs);
        out.clear();
        for (slot, kind) in kinds.iter().enumerate() {
            match kind {
                ReqKind::Recv { .. } => {
                    let msg = msgs[slot].take().expect("matched in waitall_core");
                    let buf = msg.payload.downcast::<Vec<u8>>().unwrap_or_else(|_| {
                        panic!("waitall_bytes: payload from rank {} is not a byte buffer", msg.src)
                    });
                    out.push(Some(PooledBuf::from_box(buf)));
                }
                ReqKind::Send { .. } => out.push(None),
            }
        }
        self.wait_scratch.msgs = msgs;
        self.wait_scratch.kinds = kinds;
    }

    /// Wait for **any one** request to complete: the slot completed first in
    /// virtual time among those currently completable. Returns the slot index
    /// and, for a receive, the buffer; the slot is set to `None`.
    ///
    /// Unlike [`Comm::waitall`], which rendezvouses with every transfer, the
    /// choice here can depend on which messages have *physically* arrived
    /// when the call runs — results are deterministic, clocks need not be.
    ///
    /// # Panics
    ///
    /// Panics if all slots are `None`.
    pub fn waitany<T: Send + 'static>(
        &mut self,
        requests: &mut [Option<Request<T>>],
    ) -> (usize, Option<Vec<T>>) {
        self.shared.check_poison();
        assert!(
            requests.iter().any(Option::is_some),
            "waitany needs at least one outstanding request"
        );
        let patterns: Vec<(usize, usize, u64)> = requests
            .iter()
            .enumerate()
            .filter_map(|(slot, r)| match r {
                Some(Request { kind: ReqKind::Recv { src, tag }, .. }) => Some((slot, *src, *tag)),
                _ => None,
            })
            .collect();
        let best_send = requests
            .iter()
            .enumerate()
            .filter_map(|(slot, r)| match r {
                Some(Request { kind: ReqKind::Send { depart, .. }, .. }) => Some((*depart, slot)),
                _ => None,
            })
            .min_by(|a, b| a.partial_cmp(b).expect("virtual times are finite"));
        let picked: Result<(usize, Message), usize> = {
            let mb = &self.shared.mailboxes[self.rank];
            let mut q = lock(&mb.queue);
            loop {
                self.shared.check_poison();
                // Earliest-arriving message currently present that matches a
                // still-outstanding receive request.
                let best_recv = q
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| {
                        patterns.iter().any(|&(_, src, tag)| m.src == src && m.tag == tag)
                    })
                    .min_by(|(_, a), (_, b)| {
                        self.arrival_of(a)
                            .partial_cmp(&self.arrival_of(b))
                            .expect("virtual times are finite")
                    })
                    .map(|(qpos, m)| (qpos, self.arrival_of(m)));
                match (best_recv, best_send) {
                    (Some((_, arrival)), Some((depart, send_slot))) if depart <= arrival => {
                        break Err(send_slot);
                    }
                    (Some((qpos, _)), _) => {
                        let msg = q.remove(qpos).expect("position just found");
                        let slot = patterns
                            .iter()
                            .find(|&&(_, src, tag)| msg.src == src && msg.tag == tag)
                            .map(|&(slot, _, _)| slot)
                            .expect("matched above");
                        break Ok((slot, msg));
                    }
                    (None, Some((_, send_slot))) => break Err(send_slot),
                    (None, None) => q = self.shared.wait_mailbox(self.rank, self.clock, q),
                }
            }
        };
        match picked {
            Ok((slot, msg)) => {
                requests[slot] = None;
                (slot, Some(self.complete_recv(msg).1))
            }
            Err(slot) => {
                let Some(Request { kind: ReqKind::Send { dst, depart, corr }, .. }) =
                    requests[slot].take()
                else {
                    unreachable!("send slot picked above")
                };
                self.complete_send(dst, depart, corr);
                (slot, None)
            }
        }
    }

    // ---------------------------------------------------------- collectives

    /// Core collective rendezvous: every rank deposits `contrib`; the last
    /// depositor runs `combine` over all deposits to publish a shared result;
    /// every rank receives the `Arc`ed result and the maximum entry clock.
    fn coll_exchange<T, A, C>(&mut self, contrib: T, combine: C) -> (Arc<A>, f64)
    where
        T: Send + 'static,
        A: Send + Sync + 'static,
        C: FnOnce(Vec<T>) -> A,
    {
        self.fault_op_tick();
        self.count_coll(1, 0);
        let coll = &self.shared.coll;
        let mut st = lock(&coll.m);
        // Wait for the previous collective's read phase to finish.
        while st.phase % 2 == 1 {
            self.shared.check_poison();
            st = self.shared.wait_coll(self.rank, self.clock, st);
        }
        let my_phase = st.phase;
        st.deposits[self.rank] = Some(Box::new(contrib));
        st.max_clock = st.max_clock.max(self.clock);
        st.arrived += 1;
        if st.arrived == self.shared.n {
            // Last depositor: build the shared result and open the read phase.
            let items: Vec<T> = st
                .deposits
                .iter_mut()
                .map(|d| {
                    *d.take()
                        .expect("missing deposit")
                        .downcast::<T>()
                        .expect("collective type mismatch")
                })
                .collect();
            st.agg = Some(Arc::new(combine(items)));
            st.arrived = 0;
            st.phase += 1;
            self.shared.notify_coll();
        } else {
            while st.phase == my_phase {
                self.shared.check_poison();
                st = self.shared.wait_coll(self.rank, self.clock, st);
            }
        }
        // Read phase.
        let agg = Arc::clone(st.agg.as_ref().expect("collective result missing"));
        let max_clock = st.max_clock;
        st.arrived += 1;
        if st.arrived == self.shared.n {
            st.arrived = 0;
            st.agg = None;
            st.max_clock = 0.0;
            st.phase += 1;
            self.shared.notify_coll();
        }
        drop(st);
        let agg = agg.downcast::<A>().expect("collective aggregate type mismatch");
        (agg, max_clock)
    }

    /// Synchronize all ranks; clocks advance to the barrier completion time.
    pub fn barrier(&mut self) {
        let t0 = self.clock;
        let (_, max_clock) = self.coll_exchange::<(), (), _>((), |_| ());
        self.finish_collective(max_clock, self.shared.model.barrier_time(self.shared.n));
        self.trace_event(TraceKind::Barrier, t0, 0, None);
    }

    /// Broadcast `root`'s value to all ranks.
    pub fn bcast<T: Clone + Send + Sync + 'static>(&mut self, root: usize, value: T) -> T {
        assert!(root < self.shared.n);
        let bytes = std::mem::size_of::<T>() as u64;
        self.count_coll(0, bytes);
        let t0 = self.clock;
        let rank = self.rank;
        let (agg, max_clock) = self.coll_exchange::<Option<T>, T, _>(
            if rank == root { Some(value) } else { None },
            move |items| {
                items.into_iter().flatten().next().expect("bcast root contributed no value")
            },
        );
        self.finish_collective(max_clock, self.shared.model.tree_coll_time(self.shared.n, bytes));
        self.trace_event(TraceKind::Bcast, t0, bytes, None);
        (*agg).clone()
    }

    /// All-reduce with a user-provided associative, commutative operator.
    pub fn allreduce<T, Op>(&mut self, value: T, op: Op) -> T
    where
        T: Clone + Send + Sync + 'static,
        Op: Fn(T, T) -> T,
    {
        let bytes = std::mem::size_of::<T>() as u64;
        self.count_coll(0, bytes);
        let t0 = self.clock;
        let (agg, max_clock) = self.coll_exchange::<T, T, _>(value, move |items| {
            items.into_iter().reduce(&op).expect("allreduce over empty world")
        });
        self.finish_collective(max_clock, self.shared.model.tree_coll_time(self.shared.n, bytes));
        self.trace_event(TraceKind::Reduce, t0, bytes, None);
        (*agg).clone()
    }

    /// Exclusive prefix scan: rank `r` receives `op` folded over the values of
    /// ranks `0..r`; rank 0 receives `identity`.
    pub fn exscan<T, Op>(&mut self, value: T, identity: T, op: Op) -> T
    where
        T: Clone + Send + Sync + 'static,
        Op: Fn(T, T) -> T,
    {
        let bytes = std::mem::size_of::<T>() as u64;
        self.count_coll(0, bytes);
        let t0 = self.clock;
        let (agg, max_clock) = self.coll_exchange::<T, Vec<T>, _>(value, |items| items);
        self.finish_collective(max_clock, self.shared.model.tree_coll_time(self.shared.n, bytes));
        self.trace_event(TraceKind::Reduce, t0, bytes, None);
        let mut acc = identity;
        for v in agg.iter().take(self.rank) {
            acc = op(acc, v.clone());
        }
        acc
    }

    /// Gather one value from every rank onto all ranks, ordered by rank.
    pub fn allgather<T: Clone + Send + Sync + 'static>(&mut self, value: T) -> Vec<T> {
        let per = std::mem::size_of::<T>() as u64;
        let total = per * self.shared.n as u64;
        self.count_coll(0, per);
        let t0 = self.clock;
        let (agg, max_clock) = self.coll_exchange::<T, Vec<T>, _>(value, |items| items);
        self.finish_collective(max_clock, self.shared.model.allgather_time(self.shared.n, total));
        self.trace_event(TraceKind::Gather, t0, per, None);
        (*agg).clone()
    }

    /// Gather variable-length buffers from every rank onto all ranks,
    /// concatenated in rank order.
    pub fn allgatherv<T: Clone + Send + Sync + 'static>(&mut self, data: Vec<T>) -> Vec<T> {
        let per = (data.len() * std::mem::size_of::<T>()) as u64;
        self.count_coll(0, per);
        let t0 = self.clock;
        let (agg, max_clock) = self.coll_exchange::<Vec<T>, (Vec<T>, u64), _>(data, |items| {
            let total: u64 =
                items.iter().map(|v| (v.len() * std::mem::size_of::<T>()) as u64).sum();
            (items.into_iter().flatten().collect(), total)
        });
        let (flat, total) = &*agg;
        self.finish_collective(max_clock, self.shared.model.allgather_time(self.shared.n, *total));
        self.trace_event(TraceKind::Gather, t0, per, None);
        flat.clone()
    }

    /// Sparse all-to-all-v: send each `(dst, buffer)` pair; receive the list of
    /// `(src, buffer)` pairs addressed to this rank, sorted by source rank.
    ///
    /// Models an `MPI_Alltoallv` (a synchronizing vector collective whose cost
    /// scans all `P` count entries), *not* a point-to-point exchange — use
    /// [`Comm::neighbor_exchange`] for that.
    pub fn alltoallv<T: Send + 'static>(
        &mut self,
        sends: Vec<(usize, Vec<T>)>,
    ) -> Vec<(usize, Vec<T>)> {
        self.shared.check_poison();
        let t0 = self.clock;
        let mut s_msgs = 0u64;
        let mut s_bytes = 0u64;
        // Determine the round from the collective phase counter (two phase
        // increments per collective → round = phase / 2 at deposit time).
        let round = {
            let st = lock(&self.shared.coll.m);
            (st.phase + st.phase % 2) / 2
        };
        for (dst, data) in sends {
            assert!(dst < self.shared.n, "alltoallv to invalid rank {dst}");
            // Sparse fast path: an empty buffer is not a message — no boxed
            // deposit, no per-message cost, no send/receive statistics.
            if data.is_empty() {
                continue;
            }
            let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
            s_msgs += 1;
            s_bytes += bytes;
            let entry = BinEntry { round, src: self.rank, bytes, payload: Box::new(data) };
            lock(&self.shared.bins[dst]).push(entry);
        }
        self.count_coll(0, s_bytes);
        self.count_p2p_sent(s_msgs, s_bytes);

        // Synchronize: all deposits are now visible.
        let (_, max_clock) = self.coll_exchange::<(), (), _>((), |_| ());

        // Drain this rank's bin for this round in place (entries of other
        // rounds stay queued, without rebuilding the vector).
        let mut received: Vec<BinEntry> =
            lock(&self.shared.bins[self.rank]).extract_if(.., |e| e.round == round).collect();
        received.sort_by_key(|e| e.src);
        let r_msgs = received.len() as u64;
        let r_bytes: u64 = received.iter().map(|e| e.bytes).sum();
        self.count_p2p_recv(r_msgs, r_bytes);

        let cost =
            self.shared.model.alltoallv_time(self.shared.n, s_msgs, s_bytes, r_msgs, r_bytes);
        self.finish_collective(max_clock, cost);
        self.trace_event(TraceKind::Alltoallv, t0, s_bytes, None);

        received
            .into_iter()
            .map(|e| {
                let data = e
                    .payload
                    .downcast::<Vec<T>>()
                    .unwrap_or_else(|_| panic!("alltoallv type mismatch from rank {}", e.src));
                (e.src, *data)
            })
            .collect()
    }

    /// Byte-path [`Comm::alltoallv`] over pooled buffers: same collective
    /// semantics, costs, statistics and trace events, but payload buffers are
    /// moved — not copied — and `sends` / `received` are caller-owned scratch
    /// reused across steps. Zero-length send buffers are released straight
    /// back to the pool without ever becoming messages, so the sparse fast
    /// path neither sends nor allocates for empty partners.
    pub fn alltoallv_bytes(
        &mut self,
        sends: &mut Vec<(usize, PooledBuf)>,
        received: &mut Vec<(usize, PooledBuf)>,
    ) {
        self.shared.check_poison();
        let t0 = self.clock;
        let mut s_msgs = 0u64;
        let mut s_bytes = 0u64;
        // Determine the round from the collective phase counter (two phase
        // increments per collective → round = phase / 2 at deposit time).
        let round = {
            let st = lock(&self.shared.coll.m);
            (st.phase + st.phase % 2) / 2
        };
        for (dst, buf) in sends.drain(..) {
            assert!(dst < self.shared.n, "alltoallv to invalid rank {dst}");
            if buf.is_empty() {
                self.pool.release(dst, buf);
                continue;
            }
            let bytes = buf.len() as u64;
            s_msgs += 1;
            s_bytes += bytes;
            let entry = BinEntry { round, src: self.rank, bytes, payload: buf.into_box() };
            lock(&self.shared.bins[dst]).push(entry);
        }
        self.count_coll(0, s_bytes);
        self.count_p2p_sent(s_msgs, s_bytes);

        // Synchronize: all deposits are now visible.
        let (_, max_clock) = self.coll_exchange::<(), (), _>((), |_| ());

        // Drain this rank's bin for this round straight into the caller's
        // buffer (entries of other rounds stay queued).
        received.clear();
        let mut r_msgs = 0u64;
        let mut r_bytes = 0u64;
        for e in lock(&self.shared.bins[self.rank]).extract_if(.., |e| e.round == round) {
            r_msgs += 1;
            r_bytes += e.bytes;
            let buf = e.payload.downcast::<Vec<u8>>().unwrap_or_else(|_| {
                panic!("alltoallv_bytes: payload from rank {} is not a byte buffer", e.src)
            });
            received.push((e.src, PooledBuf::from_box(buf)));
        }
        received.sort_by_key(|&(src, _)| src);
        self.count_p2p_recv(r_msgs, r_bytes);

        let cost =
            self.shared.model.alltoallv_time(self.shared.n, s_msgs, s_bytes, r_msgs, r_bytes);
        self.finish_collective(max_clock, cost);
        self.trace_event(TraceKind::Alltoallv, t0, s_bytes, None);
    }

    /// Dense all-to-all of exactly one element per rank pair: rank `r` ends
    /// up with `data[r]` of every rank, ordered by source. Costed like
    /// [`Comm::alltoallv`] with one single-element message per rank pair, but
    /// built in one pass over the input slice — no per-element boxing.
    pub fn alltoall<T: Clone + Send + Sync + 'static>(&mut self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.shared.n, "alltoall needs one element per rank");
        self.shared.check_poison();
        let t0 = self.clock;
        let n = self.shared.n as u64;
        let bytes = std::mem::size_of_val(data) as u64;
        self.count_coll(0, bytes);
        self.count_p2p_sent(n, bytes);
        let rank = self.rank;
        let (agg, max_clock) =
            self.coll_exchange::<Vec<T>, Vec<Vec<T>>, _>(data.to_vec(), |rows| rows);
        let out: Vec<T> = agg.iter().map(|row| row[rank].clone()).collect();
        self.count_p2p_recv(n, bytes);
        let cost = self.shared.model.alltoallv_time(self.shared.n, n, bytes, n, bytes);
        self.finish_collective(max_clock, cost);
        self.trace_event(TraceKind::Alltoallv, t0, bytes, None);
        out
    }

    /// Point-to-point neighbourhood exchange with a known partner set: send
    /// `data[i]` to `partners[i]` and receive one buffer from each partner
    /// (possibly empty), returned in `(src, buffer)` pairs sorted by source.
    ///
    /// Unlike [`Comm::alltoallv`] this is **not** globally synchronizing and is
    /// costed as individual point-to-point messages — this is the operation
    /// Method B uses when the maximum particle movement restricts
    /// redistribution to direct neighbours (Sect. III-B of the paper).
    ///
    /// Both sides must agree on the partner relation (if `a` lists `b`, then
    /// `b` must list `a`).
    ///
    /// Implementation: every send and receive is posted nonblocking up front
    /// and the receives are drained in **arrival order** ([`Comm::waitall`]),
    /// so one slow partner delays the exchange by its own latency only —
    /// unlike the blocking reference ([`Comm::neighbor_exchange_blocking`]),
    /// which stalls on each partner in list order.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not name exactly the ranks in `partners`, in
    /// order — a mismatched partner list would deadlock the exchange.
    pub fn neighbor_exchange<T: Send + 'static>(
        &mut self,
        partners: &[usize],
        data: Vec<(usize, Vec<T>)>,
        tag: u64,
    ) -> Vec<(usize, Vec<T>)> {
        check_partner_list(partners, &data);
        let mut requests: Vec<Request<T>> = Vec::with_capacity(2 * partners.len());
        for &src in partners {
            requests.push(self.irecv(src, tag));
        }
        for (dst, buf) in data {
            requests.push(self.isend(dst, tag, buf));
        }
        let results = self.waitall(requests);
        // Receive slots are always `Some` by the completion contract on
        // `Request`; the tail of `results` holds the send slots.
        let mut out: Vec<(usize, Vec<T>)> = partners
            .iter()
            .zip(results)
            .map(|(&src, buf)| (src, buf.expect("receive request yields data")))
            .collect();
        out.sort_by_key(|&(src, _)| src);
        out
    }

    /// Byte-path [`Comm::neighbor_exchange`] over pooled buffers: identical
    /// posting order, completion order and costs, with all request/result
    /// scratch held on the `Comm` — a steady-state symmetric exchange
    /// performs zero heap allocations end to end. `sends` is drained (one
    /// buffer per partner, in partner order); `out` is cleared and refilled
    /// with one `(src, buffer)` pair per partner, sorted by source.
    pub fn neighbor_exchange_bytes(
        &mut self,
        partners: &[usize],
        sends: &mut Vec<(usize, PooledBuf)>,
        tag: u64,
        out: &mut Vec<(usize, PooledBuf)>,
    ) {
        check_partner_list(partners, sends);
        let mut requests = self.take_byte_reqs();
        let mut results = self.take_byte_results();
        for &src in partners {
            requests.push(self.irecv::<u8>(src, tag));
        }
        for (dst, buf) in sends.drain(..) {
            let req = self.isend_bytes(dst, tag, buf);
            requests.push(req);
        }
        self.waitall_bytes(&mut requests, &mut results);
        // Receive slots (the head of `results`) are always `Some` by the
        // completion contract on `Request`.
        out.clear();
        for (&src, buf) in partners.iter().zip(results.drain(..)) {
            out.push((src, buf.expect("receive request yields data")));
        }
        out.sort_by_key(|&(src, _)| src);
        self.put_byte_reqs(requests);
        self.put_byte_results(results);
    }

    /// The blocking reference implementation of [`Comm::neighbor_exchange`]:
    /// send to every partner in list order, then receive from every partner
    /// in list order. Kept as the baseline the nonblocking version is
    /// benchmarked against (`bench/src/bin/redistribution.rs`); same
    /// arguments, same result, strictly serialized cost.
    pub fn neighbor_exchange_blocking<T: Send + 'static>(
        &mut self,
        partners: &[usize],
        data: Vec<(usize, Vec<T>)>,
        tag: u64,
    ) -> Vec<(usize, Vec<T>)> {
        check_partner_list(partners, &data);
        for (dst, buf) in data {
            self.send(dst, tag, buf);
        }
        let mut out: Vec<(usize, Vec<T>)> =
            partners.iter().map(|&src| (src, self.recv::<T>(src, tag))).collect();
        out.sort_by_key(|&(src, _)| src);
        out
    }
}

/// Validate a neighbour-exchange partner list against the send buffers: a
/// mismatch silently deadlocks the exchange, so this is a hard error in
/// release builds too.
fn check_partner_list<B>(partners: &[usize], data: &[(usize, B)]) {
    assert_eq!(
        partners.len(),
        data.len(),
        "neighbor_exchange: {} send buffers for {} partners",
        data.len(),
        partners.len()
    );
    for (i, ((dst, _), &partner)) in data.iter().zip(partners).enumerate() {
        assert_eq!(
            *dst, partner,
            "neighbor_exchange: send buffer {i} targets rank {dst} but the \
             partner list names rank {partner}; a mismatched partner list \
             deadlocks the exchange"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StallSpec;
    use crate::model::MachineModel;

    #[test]
    fn single_rank_world() {
        let out = run(1, MachineModel::ideal(), |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            comm.allreduce(5u32, |a, b| a + b)
        });
        assert_eq!(out.results, vec![5]);
    }

    #[test]
    fn p2p_roundtrip() {
        let out = run(2, MachineModel::juropa_like(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1u64, 2, 3]);
                comm.recv::<u64>(1, 8)
            } else {
                let v = comm.recv::<u64>(0, 7);
                let doubled: Vec<u64> = v.iter().map(|x| x * 2).collect();
                comm.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(out.results[0], vec![2, 4, 6]);
        assert_eq!(out.results[1], vec![2, 4, 6]);
        // The receive could not have completed before the send departed.
        assert!(out.clocks[0] > 0.0 && out.clocks[1] > 0.0);
    }

    #[test]
    fn p2p_tag_matching_out_of_order() {
        let out = run(2, MachineModel::ideal(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![10u8]);
                comm.send(1, 2, vec![20u8]);
                0
            } else {
                // Receive in reverse tag order.
                let b = comm.recv::<u8>(0, 2);
                let a = comm.recv::<u8>(0, 1);
                assert_eq!((a, b), (vec![10], vec![20]));
                1
            }
        });
        assert_eq!(out.results, vec![0, 1]);
    }

    #[test]
    fn allreduce_sum_and_max() {
        for n in [1, 2, 3, 5, 8, 17] {
            let out = run(n, MachineModel::ideal(), move |comm| {
                let s = comm.allreduce(comm.rank() as u64 + 1, |a, b| a + b);
                let m = comm.allreduce(comm.rank() as u64, u64::max);
                (s, m)
            });
            let expect_sum = (n as u64) * (n as u64 + 1) / 2;
            for (s, m) in out.results {
                assert_eq!(s, expect_sum);
                assert_eq!(m, n as u64 - 1);
            }
        }
    }

    #[test]
    fn bcast_from_each_root() {
        let out = run(5, MachineModel::ideal(), |comm| {
            let mut got = Vec::new();
            for root in 0..5 {
                let v = comm.bcast(root, if comm.rank() == root { root * 100 } else { 0 });
                got.push(v);
            }
            got
        });
        for r in out.results {
            assert_eq!(r, vec![0, 100, 200, 300, 400]);
        }
    }

    #[test]
    fn exscan_prefix_sums() {
        let out = run(6, MachineModel::ideal(), |comm| {
            comm.exscan(comm.rank() as u64 + 1, 0u64, |a, b| a + b)
        });
        assert_eq!(out.results, vec![0, 1, 3, 6, 10, 15]);
    }

    #[test]
    fn allgather_ordered() {
        let out = run(4, MachineModel::ideal(), |comm| comm.allgather(comm.rank() as u32 * 10));
        for r in out.results {
            assert_eq!(r, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let out = run(4, MachineModel::ideal(), |comm| {
            let mine: Vec<u32> = (0..comm.rank() as u32).collect();
            comm.allgatherv(mine)
        });
        for r in out.results {
            assert_eq!(r, vec![0, 0, 1, 0, 1, 2]);
        }
    }

    #[test]
    fn alltoallv_sparse_exchange() {
        let out = run(4, MachineModel::ideal(), |comm| {
            // Each rank sends rank*10+dst to dst for dst != rank, skipping rank 3 -> 0.
            let sends: Vec<(usize, Vec<u32>)> = (0..4)
                .filter(|&d| d != comm.rank() && !(comm.rank() == 3 && d == 0))
                .map(|d| (d, vec![(comm.rank() * 10 + d) as u32]))
                .collect();
            comm.alltoallv(sends)
        });
        // Rank 0 receives from 1 and 2 only.
        assert_eq!(out.results[0], vec![(1, vec![10]), (2, vec![20])]);
        assert_eq!(out.results[2], vec![(0, vec![2]), (1, vec![12]), (3, vec![32])]);
    }

    #[test]
    fn alltoall_dense() {
        let out = run(3, MachineModel::ideal(), |comm| {
            let data: Vec<u64> = (0..3).map(|d| (comm.rank() * 3 + d) as u64).collect();
            comm.alltoall(&data)
        });
        // out[r][s] = s*3 + r
        assert_eq!(out.results[0], vec![0, 3, 6]);
        assert_eq!(out.results[1], vec![1, 4, 7]);
        assert_eq!(out.results[2], vec![2, 5, 8]);
    }

    #[test]
    fn alltoallv_to_self_only() {
        let out = run(3, MachineModel::juropa_like(), |comm| {
            let me = comm.rank();
            let got = comm.alltoallv(vec![(me, vec![me as u32 * 7])]);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0], (me, vec![me as u32 * 7]));
            comm.clock()
        });
        assert!(out.makespan() > 0.0, "even self-traffic pays the collective cost");
    }

    #[test]
    fn consecutive_alltoallv_rounds_do_not_mix() {
        let out = run(3, MachineModel::ideal(), |comm| {
            let r = comm.rank();
            let first = comm.alltoallv(vec![((r + 1) % 3, vec![1u8])]);
            let second = comm.alltoallv(vec![((r + 1) % 3, vec![2u8])]);
            (first, second)
        });
        for (first, second) in out.results {
            assert_eq!(first.len(), 1);
            assert_eq!(first[0].1, vec![1]);
            assert_eq!(second[0].1, vec![2]);
        }
    }

    #[test]
    fn neighbor_exchange_pairwise() {
        let out = run(4, MachineModel::juqueen_like(), |comm| {
            let r = comm.rank();
            let left = (r + 3) % 4;
            let right = (r + 1) % 4;
            let partners = [left, right];
            let data = vec![(left, vec![r as u32]), (right, vec![r as u32])];
            comm.neighbor_exchange(&partners, data, 0)
        });
        for (r, res) in out.results.iter().enumerate() {
            let left = (r + 3) % 4;
            let right = (r + 1) % 4;
            let mut expect = vec![(left, vec![left as u32]), (right, vec![right as u32])];
            expect.sort_by_key(|&(s, _)| s);
            assert_eq!(res, &expect);
        }
    }

    #[test]
    fn clocks_synchronize_at_barrier() {
        let out = run(4, MachineModel::juropa_like(), |comm| {
            // Rank 2 is slow before the barrier.
            if comm.rank() == 2 {
                comm.advance(1.0);
            }
            comm.barrier();
            comm.clock()
        });
        let min = out.results.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min >= 1.0, "all ranks must wait for the slow one: {out:?}", out = out.results);
    }

    #[test]
    fn virtual_time_is_deterministic() {
        let run_once = || {
            run(8, MachineModel::juqueen_like(), |comm| {
                let v = comm.allgather(comm.rank());
                comm.compute(Work::ParticleOp, 1000.0);
                let _ = comm.alltoallv(vec![((comm.rank() + 1) % 8, v)]);
                comm.clock()
            })
            .clocks
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "simcomm world failed")]
    fn rank_panic_poisons_world() {
        run(3, MachineModel::ideal(), |comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
            // Other ranks block in a collective; poisoning must wake them.
            comm.barrier();
        });
    }

    #[test]
    fn try_run_reports_first_rank_panic_typed() {
        for engine in [Engine::Threaded, Engine::DiscreteEvent] {
            let err = Runner::new(engine)
                .try_run(4, MachineModel::ideal(), |comm| {
                    if comm.rank() == 2 {
                        panic!("injected fault in rank body");
                    }
                    comm.barrier();
                })
                .err()
                .expect("a panicking rank must fail the world");
            assert_eq!(err.kind(), "panic");
            match err {
                WorldError::RankPanic { rank, message } => {
                    assert_eq!(rank, 2);
                    assert!(message.contains("injected fault"), "{message}");
                }
                other => panic!("expected RankPanic, got {other:?}"),
            }
        }
    }

    #[test]
    fn try_run_deadline_retires_hung_threaded_world() {
        // Under the threaded engine a receive with no matching send hangs in
        // real time; only the deadline watchdog can retire it.
        let err = Runner::new(Engine::Threaded)
            .deadline(Some(Duration::from_millis(50)))
            .try_run(2, MachineModel::ideal(), |comm| {
                if comm.rank() == 1 {
                    let _: Vec<u8> = comm.recv(0, 99); // never sent
                }
            })
            .err()
            .expect("the watchdog must retire the hung world");
        assert_eq!(err.kind(), "deadline");
        // The error carries the *configured* limit, not a measured duration,
        // so it is deterministic across runs.
        assert_eq!(err, WorldError::DeadlineExceeded { seconds: 0.05 });
    }

    #[test]
    fn try_run_deadline_does_not_fire_on_healthy_world() {
        let out = Runner::new(Engine::Threaded)
            .deadline(Some(Duration::from_secs(60)))
            .try_run(4, MachineModel::ideal(), |comm| {
                comm.allreduce(comm.rank() as u64, |a, b| a + b)
            })
            .expect("healthy world must complete under a generous deadline");
        assert!(out.results.iter().all(|&s| s == 6));
    }

    #[test]
    fn try_run_succeeds_bitwise_identical_to_run() {
        let body = |comm: &mut Comm| {
            let v: Vec<u64> = vec![comm.rank() as u64; 32];
            let _ = comm.alltoallv(vec![((comm.rank() + 1) % 4, v)]);
            comm.clock()
        };
        let a = Runner::new(Engine::DiscreteEvent)
            .try_run(4, MachineModel::juropa_like(), body)
            .expect("clean world");
        let b = Runner::new(Engine::DiscreteEvent).run(4, MachineModel::juropa_like(), body);
        assert_eq!(a.clocks, b.clocks);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn tracing_records_events_in_order() {
        let out = crate::world::run_traced(2, MachineModel::juropa_like(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 64]);
            } else {
                let _ = comm.recv::<u8>(0, 0);
            }
            comm.barrier();
            let _ = comm.allreduce(1u32, |a, b| a + b);
            let _ = comm.alltoallv(vec![((comm.rank() + 1) % 2, vec![1u8, 2])]);
        });
        assert_eq!(out.traces.len(), 2);
        let kinds0: Vec<crate::trace::TraceKind> =
            out.traces[0].events.iter().map(|e| e.kind).collect();
        use crate::trace::TraceKind::*;
        assert_eq!(kinds0, vec![Send, Barrier, Reduce, Alltoallv]);
        let kinds1: Vec<crate::trace::TraceKind> =
            out.traces[1].events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds1, vec![Recv, Barrier, Reduce, Alltoallv]);
        for t in &out.traces {
            for e in &t.events {
                assert!(e.t_end >= e.t_start, "{e:?}");
            }
            // Events are time-ordered per rank.
            for w in t.events.windows(2) {
                assert!(w[1].t_start >= w[0].t_start - 1e-12);
            }
        }
        // The send carried 64 bytes to rank 1.
        let send = &out.traces[0].events[0];
        assert_eq!(send.bytes, 64);
        assert_eq!(send.peer, Some(1));
        // Untraced runs produce empty traces.
        let out2 = run(2, MachineModel::ideal(), |comm| comm.barrier());
        assert!(out2.traces.iter().all(|t| t.events.is_empty()));
    }

    #[test]
    fn stats_account_traffic() {
        let out = run(2, MachineModel::juropa_like(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 100]);
            } else {
                let _ = comm.recv::<u8>(0, 0);
            }
            comm.barrier();
            comm.stats().clone()
        });
        assert_eq!(out.results[0].p2p_sent_bytes, 100);
        assert_eq!(out.results[1].p2p_recv_bytes, 100);
        assert_eq!(out.results[0].coll_ops, 1);
    }

    #[test]
    fn clock_decomposition_is_exhaustive() {
        // compute + comm + wait must account for every advanced second, on
        // every rank, across p2p, barriers, gathers and alltoallv.
        let out = run(4, MachineModel::juropa_like(), |comm| {
            comm.compute(Work::ParticleOp, 500.0 * (comm.rank() + 1) as f64);
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 256]);
            }
            if comm.rank() == 1 {
                let _ = comm.recv::<u8>(0, 0);
            }
            comm.barrier();
            let _ = comm.allgatherv(vec![0u8; comm.rank() * 8]);
            let _ = comm.alltoallv(vec![((comm.rank() + 1) % 4, vec![1u32, 2])]);
            comm.stats().clone()
        });
        for (r, st) in out.results.iter().enumerate() {
            assert!(
                (st.total_seconds() - out.clocks[r]).abs() <= 1e-9 * out.clocks[r].max(1.0),
                "rank {r}: {} vs clock {}",
                st.total_seconds(),
                out.clocks[r]
            );
        }
        // The fastest rank before the barrier must have waited for the others.
        assert!(out.results[0].wait_seconds > 0.0);
    }

    #[test]
    fn phase_aggregates_sum_to_untagged_totals() {
        let out = run(4, MachineModel::juropa_like(), |comm| {
            comm.enter_phase("sort");
            comm.compute(Work::SortCmp, 1000.0);
            let _ = comm.allreduce(comm.rank() as u64, u64::max);
            comm.exit_phase();
            // Untagged section.
            comm.compute(Work::ParticleOp, 100.0);
            comm.barrier();
            comm.with_phase("exchange", |c| {
                let _ = c.alltoallv(vec![((c.rank() + 1) % 4, vec![0u8; 64])]);
            });
        });
        for r in 0..4 {
            let prof = &out.phases[r];
            let tot = &out.stats[r];
            let tagged = prof.tagged_total();
            let un = prof.untagged(tot);
            // Seconds: tagged + untagged == total clock.
            assert!((tagged.seconds() + un.seconds() - out.clocks[r]).abs() <= 1e-9, "rank {r}");
            // Bytes and counters partition the totals.
            assert_eq!(tagged.p2p_sent_bytes + un.p2p_sent_bytes, tot.p2p_sent_bytes);
            assert_eq!(tagged.coll_ops + un.coll_ops, tot.coll_ops);
            assert_eq!(tagged.coll_bytes + un.coll_bytes, tot.coll_bytes);
            // The alltoallv traffic landed in the "exchange" phase.
            assert_eq!(prof.get("exchange").unwrap().p2p_sent_bytes, 64);
            assert!(prof.get("sort").unwrap().compute_seconds > 0.0);
        }
        let table = out.phase_table();
        let names: Vec<&str> = table.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["sort", "exchange", crate::phase::UNTAGGED]);
        // Aggregated mean phase seconds sum to the mean clock.
        let mean_clock: f64 = out.clocks.iter().sum::<f64>() / 4.0;
        let sum_means: f64 = table.iter().map(|r| r.mean_seconds).sum();
        assert!((sum_means - mean_clock).abs() <= 1e-9);
    }

    #[test]
    fn nested_phases_attribute_to_innermost() {
        let out = run(2, MachineModel::ideal(), |comm| {
            comm.enter_phase("outer");
            comm.advance(1.0);
            comm.enter_phase("inner");
            comm.advance(2.0);
            comm.exit_phase();
            comm.advance(0.5);
            comm.exit_phase();
            comm.phase_profile().clone()
        });
        for prof in &out.results {
            assert!((prof.get("outer").unwrap().compute_seconds - 1.5).abs() < 1e-12);
            assert!((prof.get("inner").unwrap().compute_seconds - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_segments_are_ordered_and_disjoint() {
        let out = crate::world::run_traced(3, MachineModel::juropa_like(), |comm| {
            for step in 0..5 {
                comm.enter_phase("a");
                comm.compute(Work::ParticleOp, (50 * (step + comm.rank() + 1)) as f64);
                comm.enter_phase("b");
                comm.barrier();
                comm.exit_phase();
                comm.exit_phase();
                let _ = comm.allgather(comm.rank());
            }
        });
        for (r, prof) in out.phases.iter().enumerate() {
            assert!(!prof.segments.is_empty());
            for seg in &prof.segments {
                assert!(seg.t_end > seg.t_start, "rank {r}: {seg:?}");
                assert!(seg.t_start >= 0.0 && seg.t_end <= out.clocks[r] + 1e-12);
            }
            for w in prof.segments.windows(2) {
                assert!(w[1].t_start >= w[0].t_end - 1e-12, "rank {r}: overlapping segments {w:?}");
            }
        }
    }

    #[test]
    fn open_phases_are_closed_at_rank_exit() {
        let out = run(2, MachineModel::ideal(), |comm| {
            comm.enter_phase("left-open");
            comm.advance(1.0);
        });
        for prof in &out.phases {
            assert!((prof.get("left-open").unwrap().compute_seconds - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_events_carry_phase_and_nranks() {
        let out = crate::world::run_traced(2, MachineModel::juropa_like(), |comm| {
            comm.with_phase("p", |c| {
                if c.rank() == 0 {
                    c.send(1, 0, vec![0u8; 8]);
                } else {
                    let _ = c.recv::<u8>(0, 0);
                }
                c.barrier();
            });
            let _ = comm.allreduce(1u32, |a, b| a + b);
        });
        for tr in &out.traces {
            for e in &tr.events {
                assert_eq!(e.nranks, 2);
            }
            let phases: Vec<&str> = tr.events.iter().map(|e| e.phase).collect();
            assert_eq!(phases, vec!["p", "p", ""]);
        }
    }

    #[test]
    fn waitany_completes_out_of_post_order() {
        let out = run(2, MachineModel::juropa_like(), |comm| {
            if comm.rank() == 0 {
                // Tag 1 departs first, then tag 2 (blocking sends serialize).
                comm.send(1, 1, vec![11u32]);
                comm.send(1, 2, vec![22u32]);
                comm.barrier();
                Vec::new()
            } else {
                // Post the request for tag 2 *first*; the tag-1 message still
                // completes first because it arrives first in virtual time.
                let mut reqs = vec![Some(comm.irecv::<u32>(0, 2)), Some(comm.irecv::<u32>(0, 1))];
                comm.barrier(); // both messages are physically present now
                let (first, a) = comm.waitany(&mut reqs);
                let (second, b) = comm.waitany(&mut reqs);
                assert_eq!((first, second), (1, 0));
                assert!(reqs.iter().all(Option::is_none));
                vec![a.unwrap()[0], b.unwrap()[0]]
            }
        });
        assert_eq!(out.results[1], vec![11, 22]);
    }

    #[test]
    fn interleaved_isends_match_tags_fifo() {
        let out = run(2, MachineModel::juqueen_like(), |comm| {
            if comm.rank() == 0 {
                let reqs = vec![
                    comm.isend(1, 1, vec![1u64]),
                    comm.isend(1, 2, vec![10u64]),
                    comm.isend(1, 1, vec![2u64]),
                    comm.isend(1, 2, vec![20u64]),
                ];
                let done = comm.waitall(reqs);
                assert!(done.iter().all(Option::is_none), "sends yield no data");
                Vec::new()
            } else {
                // Receive with the tags in a different order than they were
                // sent; FIFO within each tag stream must hold regardless.
                let reqs = vec![
                    comm.irecv::<u64>(0, 2),
                    comm.irecv::<u64>(0, 2),
                    comm.irecv::<u64>(0, 1),
                    comm.irecv::<u64>(0, 1),
                ];
                comm.waitall(reqs)
                    .into_iter()
                    .map(|b| b.expect("receive request yields data")[0])
                    .collect::<Vec<u64>>()
            }
        });
        assert_eq!(out.results[1], vec![10, 20, 1, 2]);
    }

    #[test]
    fn request_results_deterministic_across_runs() {
        // waitany's completion choice may depend on real arrival timing, so
        // clocks are not pinned — but the *data* every rank assembles must be
        // identical run to run.
        let run_once = || {
            run(8, MachineModel::juqueen_like(), |comm| {
                let r = comm.rank();
                comm.compute(Work::ParticleOp, (r * 1000) as f64); // skew ranks
                let partners: Vec<usize> = (1..4).map(|d| (r + d) % 8).collect();
                let sources: Vec<usize> = (1..4).map(|d| (r + 8 - d) % 8).collect();
                let mut recvs: Vec<Option<Request<u64>>> =
                    sources.iter().map(|&s| Some(comm.irecv(s, 5))).collect();
                let sends: Vec<Request<u64>> = partners
                    .iter()
                    .map(|&p| comm.isend(p, 5, vec![(r * 100 + p) as u64]))
                    .collect();
                let mut got: Vec<(usize, u64)> = Vec::new();
                for _ in 0..sources.len() {
                    let (slot, data) = comm.waitany(&mut recvs);
                    got.push((sources[slot], data.expect("recv slot")[0]));
                }
                let _ = comm.waitall(sends);
                got.sort_unstable();
                got
            })
            .results
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn nonblocking_neighbor_exchange_not_slower_than_blocking() {
        // The fig9 neighbourhood pattern (26-partner ring, 4 KiB messages):
        // the nonblocking exchange must be at least as fast as the blocking
        // baseline on both machine models, and measurably faster.
        for model in [MachineModel::juropa_like(), MachineModel::juqueen_like()] {
            let name = model.name.clone();
            let out = run(64, model, |comm| {
                let n = comm.size();
                let mut partners: Vec<usize> = (1..=13)
                    .flat_map(|d| [(comm.rank() + d) % n, (comm.rank() + n - d) % n])
                    .filter(|&q| q != comm.rank())
                    .collect();
                partners.sort_unstable();
                partners.dedup();
                let payloads = |ps: &[usize]| -> Vec<(usize, Vec<u8>)> {
                    ps.iter().map(|&q| (q, vec![0u8; 4096])).collect()
                };
                let t0 = comm.clock();
                let _ = comm.neighbor_exchange_blocking(&partners, payloads(&partners), 1);
                let blocking = comm.clock() - t0;
                comm.barrier();
                let t1 = comm.clock();
                let _ = comm.neighbor_exchange(&partners, payloads(&partners), 2);
                (blocking, comm.clock() - t1)
            });
            let blocking = out.results.iter().map(|r| r.0).fold(0.0, f64::max);
            let nonblocking = out.results.iter().map(|r| r.1).fold(0.0, f64::max);
            assert!(
                nonblocking <= blocking * (1.0 + 1e-9),
                "{name}: nonblocking {nonblocking} must not exceed blocking {blocking}"
            );
            assert!(
                nonblocking < 0.95 * blocking,
                "{name}: overlap should give a measurable drop: {nonblocking} vs {blocking}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "partner list")]
    fn mismatched_partner_list_is_rejected() {
        run(2, MachineModel::ideal(), |comm| {
            let peer = 1 - comm.rank();
            // The send buffer names this rank itself instead of the partner:
            // without the check this would deadlock silently.
            let _ = comm.neighbor_exchange(&[peer], vec![(comm.rank(), vec![1u8])], 0);
        });
    }

    /// A p2p + collective workload used by the fault-injection tests.
    fn fault_workload(comm: &mut Comm) -> (Vec<u64>, RankStats) {
        let r = comm.rank();
        let n = comm.size();
        comm.compute(Work::ParticleOp, 200.0 * (r + 1) as f64);
        let partners: Vec<usize> = vec![(r + 1) % n, (r + n - 1) % n];
        let mut partners = partners;
        partners.sort_unstable();
        partners.dedup();
        partners.retain(|&q| q != r);
        let data: Vec<(usize, Vec<u64>)> =
            partners.iter().map(|&q| (q, vec![(r * 100 + q) as u64; 8])).collect();
        let got = comm.neighbor_exchange(&partners, data, 3);
        let mut flat: Vec<u64> = got.into_iter().flat_map(|(_, b)| b).collect();
        flat.push(comm.allreduce(r as u64, |a, b| a + b));
        comm.barrier();
        (flat, comm.stats().clone())
    }

    #[test]
    fn faulted_run_is_deterministic_and_fully_accounted() {
        let plan = || FaultPlan {
            seed: 42,
            send_loss_prob: 0.4,
            max_retries: 3,
            retry_backoff_seconds: 2e-6,
            latency_spike_prob: 0.3,
            latency_spike_seconds: 30e-6,
            straggler_ranks: vec![1],
            straggler_factor: 2.0,
            wait_timeout_seconds: Some(1e-6),
            ..FaultPlan::none()
        };
        let run_once = || run_faulted(6, MachineModel::juropa_like(), plan(), fault_workload);
        let (a, b) = (run_once(), run_once());
        assert_eq!(a.clocks, b.clocks, "faulted clocks must be reproducible");
        for r in 0..6 {
            assert_eq!(a.results[r].0, b.results[r].0, "rank {r} data");
            assert_eq!(a.results[r].1, b.results[r].1, "rank {r} stats");
            // The clock decomposition stays exhaustive under injection: every
            // fault charge goes through comm or wait accounting.
            let st = &a.stats[r];
            assert!(
                (st.total_seconds() - a.clocks[r]).abs() <= 1e-9 * a.clocks[r].max(1.0),
                "rank {r}: {} vs clock {}",
                st.total_seconds(),
                a.clocks[r]
            );
        }
        let faults: u64 = a.stats.iter().map(|s| s.faults_injected).sum();
        let retries: u64 = a.stats.iter().map(|s| s.retries).sum();
        assert!(faults > 0, "p=0.4 loss and p=0.3 spike must inject something");
        assert!(retries > 0, "lost sends must be retransmitted");
    }

    #[test]
    fn faults_never_change_data() {
        let clean = run(6, MachineModel::juqueen_like(), fault_workload);
        let plan = FaultPlan {
            seed: 7,
            send_loss_prob: 0.5,
            retry_backoff_seconds: 1e-6,
            latency_spike_prob: 0.5,
            latency_spike_seconds: 50e-6,
            straggler_ranks: vec![0, 3],
            straggler_factor: 3.0,
            stall: Some(StallSpec { rank: 2, after_ops: 3, seconds: 1e-3 }),
            wait_timeout_seconds: Some(1e-6),
            ..FaultPlan::none()
        };
        let faulted = run_faulted(6, MachineModel::juqueen_like(), plan, fault_workload);
        for r in 0..6 {
            assert_eq!(clean.results[r].0, faulted.results[r].0, "rank {r} payloads must match");
        }
        assert!(faulted.makespan() > clean.makespan(), "faults must cost time");
    }

    #[test]
    fn run_faulted_with_inert_plan_matches_run_exactly() {
        let clean = run(4, MachineModel::juropa_like(), fault_workload);
        let inert = run_faulted(4, MachineModel::juropa_like(), FaultPlan::none(), fault_workload);
        assert_eq!(clean.clocks, inert.clocks);
        for r in 0..4 {
            assert_eq!(clean.results[r].0, inert.results[r].0);
            assert_eq!(clean.results[r].1, inert.results[r].1);
            assert_eq!(clean.stats[r], inert.stats[r]);
        }
    }

    #[test]
    fn stall_fires_once_and_is_charged_as_wait() {
        let plan = FaultPlan {
            seed: 1,
            stall: Some(StallSpec { rank: 1, after_ops: 2, seconds: 0.5 }),
            ..FaultPlan::none()
        };
        let out = run_faulted_traced(3, MachineModel::ideal(), plan, |comm| {
            for _ in 0..4 {
                comm.barrier();
            }
            comm.stats().clone()
        });
        assert_eq!(out.results[1].stalls, 1, "the stall is one-shot");
        assert_eq!(out.results[0].stalls + out.results[2].stalls, 0);
        assert!(out.results[1].wait_seconds >= 0.5, "stall charged as wait");
        let fault_events =
            out.traces[1].events.iter().filter(|e| e.kind == TraceKind::Fault).count();
        assert_eq!(fault_events, 1);
        // Everyone syncs behind the stalled rank at the next barrier.
        assert!(out.clocks.iter().all(|&c| c >= 0.5));
    }

    #[test]
    fn timeouts_are_counted_and_traced() {
        // Rank 0 delays its send by a long compute; rank 1's wait then blows
        // through the 1 µs timeout threshold.
        let plan = FaultPlan { seed: 3, wait_timeout_seconds: Some(1e-6), ..FaultPlan::none() };
        let out = run_faulted_traced(2, MachineModel::juropa_like(), plan, |comm| {
            if comm.rank() == 0 {
                comm.advance(1.0);
                comm.send(1, 0, vec![9u8]);
            } else {
                let _ = comm.recv::<u8>(0, 0);
            }
            comm.stats().clone()
        });
        assert!(out.results[1].timeouts > 0, "the long wait must count timeout cycles");
        assert!(out.traces[1].events.iter().any(|e| e.kind == TraceKind::Timeout));
        let st = &out.results[1];
        assert!((st.total_seconds() - out.clocks[1]).abs() <= 1e-9 * out.clocks[1].max(1.0));
    }

    #[test]
    fn wait_recv_returns_buffer_directly() {
        let out = run(2, MachineModel::ideal(), |comm| {
            let peer = 1 - comm.rank();
            let rx = comm.irecv::<u32>(peer, 0);
            let tx = comm.isend(peer, 0, vec![comm.rank() as u32 + 10]);
            let got = comm.wait_recv(rx);
            let _ = comm.wait(tx);
            got
        });
        assert_eq!(out.results, vec![vec![11], vec![10]]);
    }

    #[test]
    #[should_panic(expected = "wait_recv called on a send request")]
    fn wait_recv_rejects_send_requests() {
        run(2, MachineModel::ideal(), |comm| {
            let peer = 1 - comm.rank();
            let rx = comm.irecv::<u32>(peer, 0);
            let tx = comm.isend(peer, 0, vec![1u32]);
            let _ = comm.wait_recv(tx); // wrong kind: must panic
            let _ = comm.wait(rx);
        });
    }

    #[test]
    fn large_world_smoke() {
        // Many ranks on one machine must work (the Fig. 9 sweep needs 16384;
        // keep the unit test at 2048 for speed).
        let out = run(2048, MachineModel::juqueen_like(), |comm| {
            let s = comm.allreduce(1u64, |a, b| a + b);
            assert_eq!(s, 2048);
            comm.barrier();
            comm.rank()
        });
        assert_eq!(out.results.len(), 2048);
        assert!(out.makespan() > 0.0);
    }
}
