//! Execution engines: how the `P` rank tasks of a simulated world are
//! scheduled onto the local machine.
//!
//! Two engines implement the same blocking semantics:
//!
//! * [`Engine::Threaded`] — the original runner. Every rank is an OS thread;
//!   blocked ranks sleep on condition variables and the kernel schedules
//!   ranks preemptively, in parallel.
//! * [`Engine::DiscreteEvent`] — a cooperative discrete-event scheduler.
//!   Every rank is still *backed* by an OS thread (the only way a plain
//!   `Fn(&mut Comm)` closure can suspend mid-call in safe, dependency-free
//!   Rust), but at most a host-core-count **batch** of ranks executes at a
//!   time: a rank runs until it blocks — on an empty mailbox or a collective
//!   rendezvous — then its baton passes to the runnable rank with the
//!   smallest virtual clock, so independent compute between communication
//!   events overlaps in real time while waits stay cooperative. Wakeups are
//!   targeted: depositing a message resumes only the addressee, and a
//!   collective phase change resumes only the ranks parked on the collective
//!   slot. This removes the condition-variable broadcast storms that make the
//!   threaded engine collapse at a few thousand ranks (every collective phase
//!   change there wakes all `P` waiters to recheck one mutex — `O(P²)` lock
//!   handoffs per collective) and lifts the practical rank ceiling to the
//!   paper's 4096–16384-process scale.
//!
//! Both engines produce bitwise-identical output — results, clocks,
//! statistics, traces, phase profiles, fault draws — for programs whose
//! completion order is a function of *virtual* time. That is every `simcomm`
//! operation except [`crate::Comm::waitany`] and [`crate::Comm::recv_any`],
//! which are documented as schedule-dependent and are not used by any
//! committed workload. The argument, and the yield-point model, are spelled
//! out in `docs/ARCHITECTURE.md`.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock a mutex, ignoring std poisoning (the world has its own poison flag).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Selects how a simulated world executes its ranks.
///
/// Both engines are observationally identical — bitwise-equal results,
/// clocks, statistics, traces and fault draws for every schedule-independent
/// program (see [`Runner`](crate::Runner) and `docs/ARCHITECTURE.md`) —
/// they differ in scaling behaviour. `Threaded` exercises real
/// shared-memory concurrency and is the long-standing default;
/// `DiscreteEvent` runs ranks cooperatively under a virtual-clock event queue
/// and is the engine for paper-scale sweeps (≥4096 ranks).
///
/// ```
/// use simcomm::Engine;
/// assert_eq!(Engine::from_name("discrete"), Some(Engine::DiscreteEvent));
/// assert_eq!(Engine::from_name("threaded"), Some(Engine::Threaded));
/// assert_eq!(Engine::default().name(), "threaded");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// One preemptive OS thread per rank (the default).
    #[default]
    Threaded,
    /// Cooperative discrete-event scheduling: a host-core-count batch of
    /// ranks at a time, driven by a virtual-clock event queue with targeted
    /// wakeups.
    DiscreteEvent,
}

impl Engine {
    /// Parse an engine name as accepted by the bench binaries' `engine`
    /// argument: `"threaded"`/`"thread"` or
    /// `"discrete"`/`"discrete-event"`/`"event"`. Returns `None` for anything
    /// else.
    pub fn from_name(name: &str) -> Option<Engine> {
        match name {
            "threaded" | "thread" => Some(Engine::Threaded),
            "discrete" | "discrete-event" | "event" => Some(Engine::DiscreteEvent),
            _ => None,
        }
    }

    /// Canonical name (`"threaded"` / `"discrete-event"`), accepted back by
    /// [`Engine::from_name`].
    pub fn name(self) -> &'static str {
        match self {
            Engine::Threaded => "threaded",
            Engine::DiscreteEvent => "discrete-event",
        }
    }
}

/// What a blocked task is waiting on. Spurious wakeups are harmless (every
/// wait site rechecks its predicate), so this only narrows *which* tasks a
/// signal must resume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WaitSite {
    /// Blocked on the rank's own mailbox (receive / wait / waitall).
    Mailbox,
    /// Blocked on the shared collective slot (rendezvous phase change).
    Collective,
}

/// A detected virtual deadlock: every live rank is blocked and no virtual
/// event can wake any of them. Returned (not panicked) by
/// [`Scheduler::yield_blocked`] so the world can record a typed
/// [`crate::WorldError::VirtualDeadlock`] before unwinding.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Deadlock {
    /// Live (undone) tasks at detection time.
    pub live: usize,
    /// The task whose block completed the deadlock.
    pub rank: usize,
    /// That task's blocking site.
    pub site: WaitSite,
    /// That task's virtual clock when it blocked.
    pub clock: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    /// In the run queue, waiting for the baton.
    Runnable,
    /// Holds the baton (exactly one task at any time).
    Running,
    /// Parked until a signal on the given site.
    Blocked(WaitSite),
    /// Returned or panicked; never scheduled again.
    Done,
}

/// Run-queue key: tasks are dispatched in ascending (virtual clock, rank)
/// order. The epoch detects stale heap entries after a task blocked and was
/// re-woken (lazy deletion — cheaper than a decrease-key heap).
struct Key {
    clock: f64,
    rank: usize,
    epoch: u64,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    /// Inverted: `BinaryHeap` is a max-heap, we want the smallest
    /// (clock, rank) on top.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .clock
            .total_cmp(&self.clock)
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.epoch.cmp(&self.epoch))
    }
}

struct Task {
    state: TaskState,
    /// Virtual clock at the moment the task last blocked (its run-queue
    /// priority when woken).
    clock: f64,
    /// Bumped on every state transition; run-queue entries with an older
    /// epoch are stale and skipped on pop.
    epoch: u64,
}

struct SchedState {
    tasks: Vec<Task>,
    queue: BinaryHeap<Key>,
    done: usize,
    /// Tasks currently holding a baton (at most `Scheduler::cap`).
    running: usize,
}

/// One rank's baton cell: `go` is set by the scheduler when the rank may run.
/// A plain boolean under a mutex (not a bare condvar) so a resume that lands
/// *before* the target parks is never lost.
struct Baton {
    go: Mutex<bool>,
    cv: Condvar,
}

/// The cooperative discrete-event scheduler backing
/// [`Engine::DiscreteEvent`]. Owned by the world's shared state; rank threads
/// call into it at every blocking site (see `WorldShared::wait_mailbox` /
/// `wait_coll` in `world.rs`).
pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    batons: Vec<Baton>,
    /// Maximum number of tasks running host-parallel at once. Between two
    /// communication events, rank compute is independent — so instead of one
    /// baton, the scheduler hands out up to `cap` (the host's core count):
    /// ranks still block, wake and account in virtual-time order, but their
    /// compute overlaps in real time. `cap = 1` degenerates to strict
    /// one-at-a-time dispatch. Output is bitwise identical at any cap: the
    /// threaded engine already proves *fully* concurrent execution yields
    /// identical clocks/traces, and any `cap`-bounded schedule is a subset of
    /// that interleaving freedom.
    cap: usize,
}

impl Scheduler {
    /// A scheduler for `n` tasks, all initially runnable at virtual clock 0.
    pub(crate) fn new(n: usize) -> Scheduler {
        let tasks =
            (0..n).map(|_| Task { state: TaskState::Runnable, clock: 0.0, epoch: 0 }).collect();
        let mut queue = BinaryHeap::with_capacity(n);
        for rank in 0..n {
            queue.push(Key { clock: 0.0, rank, epoch: 0 });
        }
        let cap = std::thread::available_parallelism().map_or(1, |p| p.get());
        Scheduler {
            state: Mutex::new(SchedState { tasks, queue, done: 0, running: 0 }),
            batons: (0..n).map(|_| Baton { go: Mutex::new(false), cv: Condvar::new() }).collect(),
            cap,
        }
    }

    /// Dispatch the first batch of tasks. Called once by the world after the
    /// rank threads are spawned (a resume that beats the target's first park
    /// is held by the baton cell, so the call may also race ahead of
    /// spawning).
    pub(crate) fn start(&self) {
        self.fill(&mut lock(&self.state));
    }

    /// Hand batons to runnable tasks until `cap` are running or the queue is
    /// empty — the single dispatch primitive every scheduling event funnels
    /// through. Resuming under the state lock is safe: baton cells are leaf
    /// mutexes (no path locks the state while holding one).
    fn fill(&self, st: &mut SchedState) {
        while st.running < self.cap {
            match Self::pop_next(st) {
                Some(rank) => {
                    st.running += 1;
                    self.resume(rank);
                }
                None => break,
            }
        }
    }

    /// Park until this task is handed the baton. Every task calls this once
    /// before running any rank code; `yield_blocked` calls it at every
    /// suspension.
    pub(crate) fn wait_for_turn(&self, rank: usize) {
        let b = &self.batons[rank];
        let mut go = lock(&b.go);
        while !*go {
            go = b.cv.wait(go).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *go = false;
    }

    /// Hand the baton to `rank`.
    fn resume(&self, rank: usize) {
        let b = &self.batons[rank];
        *lock(&b.go) = true;
        b.cv.notify_one();
    }

    /// Pop the runnable task with the smallest (clock, rank), marking it
    /// Running. Skips stale heap entries.
    fn pop_next(st: &mut SchedState) -> Option<usize> {
        while let Some(key) = st.queue.pop() {
            let t = &mut st.tasks[key.rank];
            if t.state == TaskState::Runnable && t.epoch == key.epoch {
                t.state = TaskState::Running;
                t.epoch += 1;
                return Some(key.rank);
            }
        }
        None
    }

    /// Move a blocked task to the run queue (no-op for any other state:
    /// runnable tasks are already queued, the running task needs no wakeup,
    /// done tasks never return).
    fn make_runnable(st: &mut SchedState, rank: usize) {
        let t = &mut st.tasks[rank];
        if let TaskState::Blocked(_) = t.state {
            t.state = TaskState::Runnable;
            t.epoch += 1;
            st.queue.push(Key { clock: t.clock, rank, epoch: t.epoch });
        }
    }

    /// Suspend the running task `rank` because it cannot progress until
    /// `site` is signalled: record it as blocked at virtual time `clock`,
    /// dispatch the best runnable tasks, and park until re-woken. The caller
    /// must have released every world lock first.
    ///
    /// Returns `Err` if, with this task blocked, no task is running or
    /// runnable while undone tasks remain — with every live rank blocked and
    /// only virtual events able to wake them, the world can never progress
    /// again (a virtual deadlock, e.g. a receive whose matching send was
    /// never posted). The caller records the typed error, poisons the world
    /// and unwinds, so the remaining ranks fail fast instead of hanging the
    /// process.
    pub(crate) fn yield_blocked(
        &self,
        rank: usize,
        site: WaitSite,
        clock: f64,
    ) -> Result<(), Deadlock> {
        {
            let mut st = lock(&self.state);
            let t = &mut st.tasks[rank];
            t.state = TaskState::Blocked(site);
            t.clock = clock;
            t.epoch += 1;
            st.running -= 1;
            self.fill(&mut st);
            if st.running == 0 && st.done < st.tasks.len() {
                let live = st.tasks.len() - st.done;
                return Err(Deadlock { live, rank, site, clock });
            }
        }
        self.wait_for_turn(rank);
        Ok(())
    }

    /// A message was deposited for `rank`: wake it if it is parked on its
    /// mailbox, and start it immediately if a baton is free.
    pub(crate) fn wake_mailbox(&self, rank: usize) {
        let mut st = lock(&self.state);
        if st.tasks[rank].state == TaskState::Blocked(WaitSite::Mailbox) {
            Self::make_runnable(&mut st, rank);
            self.fill(&mut st);
        }
    }

    /// The collective slot changed phase: wake every task parked on it.
    pub(crate) fn wake_collective(&self) {
        let mut st = lock(&self.state);
        for rank in 0..st.tasks.len() {
            if st.tasks[rank].state == TaskState::Blocked(WaitSite::Collective) {
                Self::make_runnable(&mut st, rank);
            }
        }
        self.fill(&mut st);
    }

    /// The world was poisoned: wake every blocked task regardless of site so
    /// each can observe the poison flag and unwind.
    pub(crate) fn wake_all(&self) {
        let mut st = lock(&self.state);
        for rank in 0..st.tasks.len() {
            Self::make_runnable(&mut st, rank);
        }
        self.fill(&mut st);
    }

    /// The task of `rank` finished (returned or panicked): retire it and hand
    /// its baton to the next runnable task. Returns `Some(live)` if undone
    /// tasks remain but none is running or runnable — the `live` survivors
    /// are permanently blocked and the caller must record the deadlock,
    /// poison the world and call [`Scheduler::kick`] to restart dispatch.
    pub(crate) fn retire(&self, rank: usize) -> Option<usize> {
        let mut st = lock(&self.state);
        st.tasks[rank].state = TaskState::Done;
        st.tasks[rank].epoch += 1;
        st.done += 1;
        st.running -= 1;
        self.fill(&mut st);
        (st.running == 0 && st.done < st.tasks.len()).then(|| st.tasks.len() - st.done)
    }

    /// Restart dispatch after an out-of-band wakeup (poison): resume the best
    /// runnable tasks, if any.
    pub(crate) fn kick(&self) {
        self.fill(&mut lock(&self.state));
    }

    /// Mark a task whose host thread never existed (its spawn failed) as
    /// done, so dispatch never hands it a baton: the initial queue entry is
    /// invalidated by the epoch bump and the completion count stays exact.
    /// `running` is untouched — the task was never dispatched.
    pub(crate) fn abandon(&self, rank: usize) {
        let mut st = lock(&self.state);
        st.tasks[rank].state = TaskState::Done;
        st.tasks[rank].epoch += 1;
        st.done += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_round_trip() {
        for e in [Engine::Threaded, Engine::DiscreteEvent] {
            assert_eq!(Engine::from_name(e.name()), Some(e));
        }
        assert_eq!(Engine::from_name("fibers"), None);
        assert_eq!(Engine::from_name("event"), Some(Engine::DiscreteEvent));
    }

    #[test]
    fn key_orders_by_clock_then_rank() {
        let mut heap = BinaryHeap::new();
        heap.push(Key { clock: 2.0, rank: 0, epoch: 0 });
        heap.push(Key { clock: 1.0, rank: 5, epoch: 0 });
        heap.push(Key { clock: 1.0, rank: 3, epoch: 0 });
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop().map(|k| k.rank)).collect();
        assert_eq!(order, vec![3, 5, 0]);
    }

    #[test]
    fn stale_entries_are_skipped() {
        let s = Scheduler::new(2);
        {
            let mut st = lock(&s.state);
            // Simulate: both queued at epoch 0; task 0 blocks and re-wakes,
            // leaving a stale epoch-0 entry alongside a fresh one.
            st.tasks[0].state = TaskState::Blocked(WaitSite::Mailbox);
            st.tasks[0].epoch = 1;
            st.tasks[0].clock = 5.0;
            Scheduler::make_runnable(&mut st, 0);
            // Fresh entry has clock 5.0 → task 1 (clock 0) dispatches first,
            // then task 0 exactly once despite two queued entries.
            assert_eq!(Scheduler::pop_next(&mut st), Some(1));
            assert_eq!(Scheduler::pop_next(&mut st), Some(0));
            assert_eq!(Scheduler::pop_next(&mut st), None);
        }
    }
}
