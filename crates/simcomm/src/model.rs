//! Machine models: virtual-time cost functions for communication and computation.
//!
//! A [`MachineModel`] maps *what a program did* (messages of given sizes between
//! given ranks, collective operations over a given process count, counted units
//! of computation) to *how long it would have taken* on a concrete parallel
//! machine. Two presets mirror the systems used in the paper's evaluation:
//!
//! * [`MachineModel::juropa_like`] — a commodity cluster with a switched fabric
//!   (QDR InfiniBand): point-to-point cost is distance-independent and the
//!   hardware performs collective all-to-all operations efficiently, so
//!   neighbourhood point-to-point exchange has no advantage (Sect. IV-D of the
//!   paper: "the switched communication network does not provide performance
//!   benefits for communication between neighboring processes").
//! * [`MachineModel::juqueen_like`] — a Blue Gene/Q-like torus: point-to-point
//!   cost grows with hop distance, and the effective per-rank bandwidth of
//!   global all-to-all traffic degrades with machine size (bisection limit),
//!   so at scale neighbourhood exchange between adjacent torus nodes is much
//!   cheaper than collective all-to-all.
//!
//! Absolute constants are calibrated to the same order of magnitude as the
//! paper's machines, but only the *relative* behaviour (who wins, where the
//! crossovers are) is claimed to be meaningful.

/// How ranks are connected; determines hop distances and collective scaling.
#[derive(Clone, Debug, PartialEq)]
pub enum Topology {
    /// Full-bisection switched fabric: every pair of ranks is one "hop" apart.
    Switched,
    /// A `ndims`-dimensional torus. The concrete extent of each dimension is
    /// derived from the world size with [`balanced_dims`].
    Torus {
        /// Number of torus dimensions (Blue Gene/Q uses 5).
        ndims: usize,
    },
}

/// Compute a balanced factorization of `n` into `ndims` factors, mimicking
/// `MPI_Dims_create`: factors are as close to each other as possible and are
/// returned in non-increasing order.
///
/// ```
/// assert_eq!(simcomm::balanced_dims(64, 3), vec![4, 4, 4]);
/// assert_eq!(simcomm::balanced_dims(24, 3), vec![4, 3, 2]);
/// assert_eq!(simcomm::balanced_dims(1, 3), vec![1, 1, 1]);
/// ```
pub fn balanced_dims(n: usize, ndims: usize) -> Vec<usize> {
    assert!(ndims >= 1, "ndims must be at least 1");
    assert!(n >= 1, "n must be at least 1");
    let mut dims = vec![1usize; ndims];
    let mut rem = n;
    // Repeatedly assign the largest remaining prime factor to the smallest dim.
    let mut factors = Vec::new();
    let mut m = rem;
    let mut p = 2usize;
    while p * p <= m {
        while m.is_multiple_of(p) {
            factors.push(p);
            m /= p;
        }
        p += 1;
    }
    if m > 1 {
        factors.push(m);
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let i = (0..ndims).min_by_key(|&i| dims[i]).unwrap();
        dims[i] *= f;
        rem /= f;
    }
    debug_assert_eq!(rem, 1);
    dims.sort_unstable_by(|a, b| b.cmp(a));
    debug_assert_eq!(dims.iter().product::<usize>(), n);
    dims
}

/// Map a rank to torus coordinates (row-major order over `dims`).
pub fn torus_coords(rank: usize, dims: &[usize]) -> Vec<usize> {
    let mut coords = vec![0usize; dims.len()];
    let mut r = rank;
    for i in (0..dims.len()).rev() {
        coords[i] = r % dims[i];
        r /= dims[i];
    }
    coords
}

/// Minimal hop distance between two ranks on a torus with the given extents.
pub fn torus_hops(a: usize, b: usize, dims: &[usize]) -> usize {
    let ca = torus_coords(a, dims);
    let cb = torus_coords(b, dims);
    ca.iter()
        .zip(cb.iter())
        .zip(dims.iter())
        .map(|((&x, &y), &d)| {
            let diff = x.abs_diff(y);
            diff.min(d - diff)
        })
        .sum()
}

/// Calibrated per-unit costs (seconds) for the computation kinds the solvers
/// report. Virtual compute time is `units * rate`.
#[derive(Clone, Debug, PartialEq)]
pub struct ComputeRates {
    /// One near-field pair interaction (erfc/Coulomb kernel evaluation).
    pub interaction: f64,
    /// One multipole/local expansion term operation (P2M/M2M/M2L/L2L/L2P flop group).
    pub expansion_term: f64,
    /// One complex butterfly in an FFT (unit for `n log2 n` counting).
    pub fft_point: f64,
    /// One mesh-point operation (charge assignment / force interpolation).
    pub mesh_point: f64,
    /// One comparison-and-move in a local sort.
    pub sort_cmp: f64,
    /// Copying one byte in a local pack/unpack/permutation step.
    pub byte_copy: f64,
    /// One generic per-particle operation (integration update, key computation).
    pub particle_op: f64,
}

impl ComputeRates {
    /// Rates resembling a single ~3 GHz x86 core.
    pub fn xeon_293ghz() -> Self {
        ComputeRates {
            interaction: 25e-9,
            expansion_term: 2.0e-9,
            fft_point: 4.0e-9,
            mesh_point: 6.0e-9,
            sort_cmp: 3.0e-9,
            byte_copy: 0.25e-9,
            particle_op: 8.0e-9,
        }
    }

    /// Rates resembling one in-order PowerPC A2 core at 1.6 GHz (~3x slower).
    pub fn powerpc_a2() -> Self {
        let x = ComputeRates::xeon_293ghz();
        ComputeRates {
            interaction: x.interaction * 3.0,
            expansion_term: x.expansion_term * 3.0,
            fft_point: x.fft_point * 3.0,
            mesh_point: x.mesh_point * 3.0,
            sort_cmp: x.sort_cmp * 3.0,
            byte_copy: x.byte_copy * 3.0,
            particle_op: x.particle_op * 3.0,
        }
    }
}

/// A kind of counted computation; see [`ComputeRates`] for the unit meanings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Work {
    /// Near-field pair interaction.
    Interaction,
    /// Multipole/local expansion term operation.
    ExpansionTerm,
    /// FFT butterfly.
    FftPoint,
    /// Mesh-point operation.
    MeshPoint,
    /// Sort comparison/move.
    SortCmp,
    /// Byte copied in pack/unpack/permute.
    ByteCopy,
    /// Generic per-particle operation.
    ParticleOp,
}

/// Virtual-time cost model for a distributed-memory machine.
///
/// See the crate documentation for the modelling approach.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Human-readable machine name (appears in reports).
    pub name: String,
    /// Interconnect topology.
    pub topology: Topology,
    /// Base point-to-point latency in seconds (first byte, adjacent ranks).
    pub p2p_latency: f64,
    /// Additional latency per network hop (zero on switched fabrics).
    pub p2p_hop_latency: f64,
    /// Point-to-point bandwidth in bytes/second (per link).
    pub p2p_bandwidth: f64,
    /// CPU-side overhead per message send or receive, in seconds.
    pub p2p_overhead: f64,
    /// Per-message occupancy of the (shared) network interface, in seconds —
    /// the LogGP `g`: independent of message size, it bounds the node's
    /// message *rate*. Payload serialization ([`Self::injection_time`]) is
    /// charged on top.
    pub p2p_msg_gap: f64,
    /// Latency per stage of a tree-structured collective (barrier, bcast, ...).
    pub coll_latency: f64,
    /// Effective per-rank bandwidth for global all-to-all traffic on a
    /// full-bisection network, bytes/second.
    pub alltoall_bandwidth: f64,
    /// Per-destination bookkeeping cost of vector collectives
    /// (`MPI_Alltoallv` scans all `P` count entries even when most are zero).
    pub alltoallv_scan_cost: f64,
    /// Per non-empty message handling cost *inside* a vector collective.
    /// Lower than [`Self::p2p_overhead`]: the collective aggregates and
    /// pipelines, which is why it beats separate point-to-point messages on
    /// switched fabrics (paper Sect. IV-D).
    pub alltoallv_msg_overhead: f64,
    /// Ranks sharing one node (and its network interface): sustained
    /// per-rank bandwidths divide by this factor (JuRoPA ran 8 processes per
    /// node on one InfiniBand adapter, Juqueen 16 per node on a many-link
    /// torus router).
    pub node_share: f64,
    /// Computation rates for the cores of this machine.
    pub rates: ComputeRates,
}

impl MachineModel {
    /// A JuRoPA-like commodity cluster: Intel Xeon nodes on a switched QDR
    /// InfiniBand fabric. Distance-independent point-to-point, efficient
    /// hardware-assisted collectives.
    pub fn juropa_like() -> Self {
        MachineModel {
            name: "juropa-like (switched QDR IB, Xeon 2.93 GHz)".into(),
            topology: Topology::Switched,
            p2p_latency: 2.5e-6,
            p2p_hop_latency: 0.0,
            p2p_bandwidth: 2.5e9,
            p2p_overhead: 3.0e-6,
            // 8 ranks funnel through one HCA; the adapter's work-request rate
            // shared 8 ways gives a few microseconds of per-message occupancy.
            p2p_msg_gap: 4.0e-6,
            coll_latency: 4.0e-6,
            alltoall_bandwidth: 2.5e9,
            alltoallv_scan_cost: 18e-9,
            alltoallv_msg_overhead: 1.6e-6,
            node_share: 8.0,
            rates: ComputeRates::xeon_293ghz(),
        }
    }

    /// A Juqueen-like IBM Blue Gene/Q: PowerPC A2 nodes on a 5D torus.
    /// Hop-dependent point-to-point; global all-to-all bandwidth degrades
    /// with machine size (bisection limit), neighbourhood exchange stays cheap.
    pub fn juqueen_like() -> Self {
        MachineModel {
            name: "juqueen-like (5D torus, PowerPC A2 1.6 GHz)".into(),
            topology: Topology::Torus { ndims: 5 },
            p2p_latency: 2.8e-6,
            p2p_hop_latency: 40e-9,
            p2p_bandwidth: 1.8e9,
            p2p_overhead: 1.2e-6,
            // The torus router injects from dedicated hardware FIFOs at a high
            // message rate; per-message occupancy is far below the switched
            // fabric's shared-adapter cost.
            p2p_msg_gap: 0.8e-6,
            coll_latency: 2.5e-6,
            alltoall_bandwidth: 1.8e9,
            alltoallv_scan_cost: 40e-9,
            alltoallv_msg_overhead: 1.6e-6,
            node_share: 4.0,
            rates: ComputeRates::powerpc_a2(),
        }
    }

    /// A zero-cost model: all communication and modelled compute is free.
    /// Useful for correctness tests where virtual time is irrelevant.
    pub fn ideal() -> Self {
        MachineModel {
            name: "ideal (zero-cost)".into(),
            topology: Topology::Switched,
            p2p_latency: 0.0,
            p2p_hop_latency: 0.0,
            p2p_bandwidth: f64::INFINITY,
            p2p_overhead: 0.0,
            p2p_msg_gap: 0.0,
            coll_latency: 0.0,
            alltoall_bandwidth: f64::INFINITY,
            alltoallv_scan_cost: 0.0,
            alltoallv_msg_overhead: 0.0,
            node_share: 1.0,
            rates: ComputeRates {
                interaction: 0.0,
                expansion_term: 0.0,
                fft_point: 0.0,
                mesh_point: 0.0,
                sort_cmp: 0.0,
                byte_copy: 0.0,
                particle_op: 0.0,
            },
        }
    }

    /// Concrete torus extents for a world of `n` ranks (empty on switched fabrics).
    pub fn torus_dims(&self, n: usize) -> Vec<usize> {
        match &self.topology {
            Topology::Switched => Vec::new(),
            Topology::Torus { ndims } => balanced_dims(n, *ndims),
        }
    }

    /// Hop distance between two ranks in a world of `n` ranks.
    pub fn hops(&self, a: usize, b: usize, n: usize) -> usize {
        match &self.topology {
            Topology::Switched => usize::from(a != b),
            Topology::Torus { ndims } => {
                let dims = balanced_dims(n, *ndims);
                torus_hops(a, b, &dims)
            }
        }
    }

    /// Average hop distance between two random ranks in a world of `n` ranks.
    pub fn avg_hops(&self, n: usize) -> f64 {
        match &self.topology {
            Topology::Switched => 1.0,
            Topology::Torus { ndims } => {
                // Expected per-dimension wraparound distance is ~dim/4.
                balanced_dims(n, *ndims).iter().map(|&d| d as f64 / 4.0).sum()
            }
        }
    }

    /// Approximate end-to-end time of a point-to-point message of `bytes`
    /// over `hops` hops (excludes the CPU-side [`Self::p2p_overhead`]).
    pub fn p2p_time(&self, bytes: u64, hops: usize) -> f64 {
        self.p2p_latency + hops as f64 * self.p2p_hop_latency + bytes as f64 / self.p2p_bandwidth
    }

    /// Sender-side serialization (injection) time of a message: consecutive
    /// sends from one rank share the node's NIC with `node_share - 1` other
    /// ranks, so payloads serialize at the shared bandwidth (LogGP `G`).
    pub fn injection_time(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.p2p_bandwidth / self.node_share)
    }

    /// Total NIC occupancy of one outgoing message: the per-message gap
    /// (LogGP `g`, [`Self::p2p_msg_gap`]) plus payload serialization
    /// ([`Self::injection_time`]). Consecutive sends from one rank occupy the
    /// NIC back to back for this long each, whether they are posted
    /// nonblocking or not — only the *CPU* gets to move on after
    /// [`Self::p2p_overhead`] in the nonblocking case.
    pub fn nic_occupancy(&self, bytes: u64) -> f64 {
        self.p2p_msg_gap + self.injection_time(bytes)
    }

    /// Completion-side cost of one point-to-point transfer that becomes ready
    /// (fully arrived, or fully drained from the sender's NIC) at virtual time
    /// `ready_at`: the CPU pays [`Self::p2p_overhead`] of communication time,
    /// and any remaining gap until `ready_at` is rendezvous wait. Returns the
    /// `(comm, wait)` split to charge at the current `clock`.
    ///
    /// This is the unit step of the runtime's **overlap accounting**: when a
    /// `waitall` completes several outstanding transfers in ready-time order,
    /// each transfer's wait only covers the gap *past the previous
    /// completion*, so concurrent transfers cost the **max** of their
    /// remaining latencies instead of the sum a blocking partner-order loop
    /// pays (see [`Self::overlap_completion`]).
    pub fn completion_cost(&self, clock: f64, ready_at: f64) -> (f64, f64) {
        let comm = self.p2p_overhead;
        let wait = (ready_at - (clock + comm)).max(0.0);
        (comm, wait)
    }

    /// Fold [`Self::completion_cost`] over a batch of concurrent outstanding
    /// transfers with the given ready times, completing them in ascending
    /// order (sort first; the order is what realizes the overlap). Returns
    /// `(clock, comm, wait)` after the whole batch.
    ///
    /// ```
    /// let m = simcomm::MachineModel::juropa_like();
    /// let ready = [5e-5, 1e-4, 2e-4];
    /// let (clock, _comm, wait) = m.overlap_completion(0.0, &ready);
    /// // The batch waits for the *latest* transfer only, not for the sum.
    /// assert!(clock >= 2e-4 && clock < 2.1e-4);
    /// assert!(wait < 2e-4);
    /// ```
    pub fn overlap_completion(&self, clock: f64, ready_at_ascending: &[f64]) -> (f64, f64, f64) {
        let (mut clock, mut comm, mut wait) = (clock, 0.0, 0.0);
        for &ready in ready_at_ascending {
            let (c, w) = self.completion_cost(clock, ready);
            clock += c + w;
            comm += c;
            wait += w;
        }
        (clock, comm, wait)
    }

    /// Wire transit latency over `hops` hops (payload time is paid at
    /// injection; see [`Self::injection_time`]).
    pub fn wire_latency(&self, hops: usize) -> f64 {
        self.p2p_latency + hops as f64 * self.p2p_hop_latency
    }

    /// Latency of one stage of a tree-structured collective in a world of `n`.
    fn coll_stage(&self, n: usize) -> f64 {
        self.coll_latency + self.avg_hops(n) * self.p2p_hop_latency
    }

    /// Number of tree stages for `n` ranks.
    fn stages(n: usize) -> f64 {
        (n.max(1) as f64).log2().ceil().max(0.0)
    }

    /// Cost of a barrier over `n` ranks.
    pub fn barrier_time(&self, n: usize) -> f64 {
        Self::stages(n) * self.coll_stage(n)
    }

    /// Cost of a broadcast / reduction / allreduce of `bytes` over `n` ranks.
    pub fn tree_coll_time(&self, n: usize, bytes: u64) -> f64 {
        Self::stages(n) * (self.coll_stage(n) + bytes as f64 / self.p2p_bandwidth)
    }

    /// Cost of an allgather where every rank ends up holding `total_bytes`.
    pub fn allgather_time(&self, n: usize, total_bytes: u64) -> f64 {
        Self::stages(n) * self.coll_stage(n) + total_bytes as f64 / self.alltoall_eff_bw(n)
    }

    /// Effective per-rank bandwidth for globally scattered traffic in a world
    /// of `n`: constant on switched fabrics, bisection-degraded on tori.
    pub fn alltoall_eff_bw(&self, n: usize) -> f64 {
        match &self.topology {
            Topology::Switched => self.alltoall_bandwidth / self.node_share,
            Topology::Torus { .. } => {
                // Average route length grows like avg_hops(n); the shared-link
                // contention divides the injection bandwidth accordingly.
                self.alltoall_bandwidth / self.node_share / (1.0 + 0.5 * self.avg_hops(n))
            }
        }
    }

    /// Cost charged to one rank for its part of a (sparse) all-to-all-v:
    /// `s_msgs`/`s_bytes` sent, `r_msgs`/`r_bytes` received, world size `n`.
    ///
    /// Includes the per-destination scan cost of vector collectives, the
    /// synchronizing tree stages, per-message overheads and the volume term at
    /// the (possibly bisection-degraded) all-to-all bandwidth.
    pub fn alltoallv_time(
        &self,
        n: usize,
        s_msgs: u64,
        s_bytes: u64,
        r_msgs: u64,
        r_bytes: u64,
    ) -> f64 {
        let scan = n as f64 * self.alltoallv_scan_cost;
        let sync = Self::stages(n) * self.coll_stage(n);
        // Within the collective, messages are aggregated and pipelined, so a
        // sparse message costs only the CPU-side handling — network latency is
        // paid once, in the synchronizing stages above. This is what makes the
        // collective competitive with separate point-to-point messages on a
        // switched fabric (paper, Sect. IV-D).
        let overhead = (s_msgs + r_msgs) as f64 * self.alltoallv_msg_overhead;
        let volume = (s_bytes.max(r_bytes)) as f64 / self.alltoall_eff_bw(n);
        scan + sync + overhead + volume
    }

    /// Virtual compute time for `units` operations of the given [`Work`] kind.
    pub fn work_time(&self, kind: Work, units: f64) -> f64 {
        let r = &self.rates;
        let rate = match kind {
            Work::Interaction => r.interaction,
            Work::ExpansionTerm => r.expansion_term,
            Work::FftPoint => r.fft_point,
            Work::MeshPoint => r.mesh_point,
            Work::SortCmp => r.sort_cmp,
            Work::ByteCopy => r.byte_copy,
            Work::ParticleOp => r.particle_op,
        };
        units * rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_dims_products() {
        for n in 1..=512 {
            for nd in 1..=5 {
                let dims = balanced_dims(n, nd);
                assert_eq!(dims.len(), nd);
                assert_eq!(dims.iter().product::<usize>(), n, "n={n} nd={nd}");
            }
        }
    }

    #[test]
    fn balanced_dims_are_balanced() {
        assert_eq!(balanced_dims(64, 3), vec![4, 4, 4]);
        assert_eq!(balanced_dims(8, 3), vec![2, 2, 2]);
        assert_eq!(balanced_dims(16384, 5), vec![8, 8, 8, 8, 4]);
        let d = balanced_dims(256, 3);
        assert_eq!(d.iter().product::<usize>(), 256);
        assert!(d[0] / d[d.len() - 1] <= 2, "{d:?}");
    }

    #[test]
    fn torus_coords_roundtrip() {
        let dims = [4, 3, 2];
        for r in 0..24 {
            let c = torus_coords(r, &dims);
            let back = c[0] * 6 + c[1] * 2 + c[2];
            assert_eq!(back, r);
        }
    }

    #[test]
    fn torus_hops_wraparound() {
        let dims = [8];
        assert_eq!(torus_hops(0, 7, &dims), 1); // wraps around
        assert_eq!(torus_hops(0, 4, &dims), 4);
        assert_eq!(torus_hops(3, 3, &dims), 0);
    }

    #[test]
    fn torus_hops_symmetric() {
        let dims = [4, 4, 4];
        for a in 0..64 {
            for b in 0..64 {
                assert_eq!(torus_hops(a, b, &dims), torus_hops(b, a, &dims));
            }
        }
    }

    #[test]
    fn switched_hops_are_distance_independent() {
        let m = MachineModel::juropa_like();
        assert_eq!(m.hops(0, 1, 1024), 1);
        assert_eq!(m.hops(0, 1023, 1024), 1);
        assert_eq!(m.hops(5, 5, 1024), 0);
    }

    #[test]
    fn torus_neighbor_cheaper_than_distant() {
        let m = MachineModel::juqueen_like();
        let near = m.p2p_time(1 << 20, m.hops(0, 1, 4096));
        let far = m.p2p_time(1 << 20, m.hops(0, 2048, 4096));
        assert!(near < far);
    }

    #[test]
    fn alltoall_bw_degrades_on_torus_only() {
        let t = MachineModel::juqueen_like();
        assert!(t.alltoall_eff_bw(16384) < t.alltoall_eff_bw(16));
        let s = MachineModel::juropa_like();
        assert_eq!(s.alltoall_eff_bw(16384), s.alltoall_eff_bw(16));
    }

    #[test]
    fn alltoallv_scales_with_world_size() {
        let m = MachineModel::juqueen_like();
        let small = m.alltoallv_time(64, 6, 6 << 10, 6, 6 << 10);
        let large = m.alltoallv_time(16384, 6, 6 << 10, 6, 6 << 10);
        assert!(
            large > 2.0 * small,
            "same sparse traffic must cost much more at scale: {small} vs {large}"
        );
    }

    #[test]
    fn neighborhood_beats_alltoallv_at_scale_on_torus() {
        // Executed comparison (includes injection serialization and message
        // overlap): a 26-partner neighbourhood exchange of 4 KiB messages.
        fn measure(model: MachineModel, n: usize) -> (f64, f64) {
            let out = crate::run(n, model, |comm| {
                let ring: Vec<usize> = (1..=13usize)
                    .flat_map(|d| {
                        [
                            (comm.rank() + d) % comm.size(),
                            (comm.rank() + comm.size() - d) % comm.size(),
                        ]
                    })
                    .collect();
                let mut partners: Vec<usize> =
                    ring.into_iter().filter(|&q| q != comm.rank()).collect();
                partners.sort_unstable();
                partners.dedup();
                let payload = vec![0u8; 4096];
                let t0 = comm.clock();
                let sends: Vec<(usize, Vec<u8>)> =
                    partners.iter().map(|&q| (q, payload.clone())).collect();
                let _ = comm.alltoallv(sends);
                let coll = comm.clock() - t0;
                let t1 = comm.clock();
                let data: Vec<(usize, Vec<u8>)> =
                    partners.iter().map(|&q| (q, payload.clone())).collect();
                let _ = comm.neighbor_exchange(&partners, data, 1);
                (coll, comm.clock() - t1)
            });
            (
                out.results.iter().map(|r| r.0).fold(0.0, f64::max),
                out.results.iter().map(|r| r.1).fold(0.0, f64::max),
            )
        }
        // Torus at scale: p2p must clearly beat the collective (Fig. 9 right).
        let (coll_t, p2p_t) = measure(MachineModel::juqueen_like(), 1024);
        assert!(2.0 * p2p_t < coll_t, "torus: p2p {p2p_t} must clearly beat alltoallv {coll_t}");
        // Switched fabric at moderate scale: the collective is comparable or
        // better (the paper observed a *small increase* when switching to
        // p2p on JuRoPA).
        let (coll_s, p2p_s) = measure(MachineModel::juropa_like(), 256);
        assert!(coll_s < 1.15 * p2p_s, "switched: coll {coll_s} must not lose to p2p {p2p_s}");
    }

    #[test]
    fn overlap_charges_max_not_sum_of_latencies() {
        let m = MachineModel::juropa_like();
        let ready: Vec<f64> = (1..=10).map(|i| i as f64 * 1e-5).collect();
        let (clock, comm, wait) = m.overlap_completion(0.0, &ready);
        let sum: f64 = ready.iter().sum();
        // The batch ends just past the *latest* ready time; a blocking loop
        // that re-waited for each transfer would accumulate far more wait.
        assert!(clock < 1.2e-4, "batch must end near max(ready), got {clock}");
        assert!(wait <= 1e-4 && wait < 0.5 * sum);
        assert!((comm - 10.0 * m.p2p_overhead).abs() < 1e-12);
    }

    #[test]
    fn nic_occupancy_bounds_message_rate() {
        let m = MachineModel::juropa_like();
        assert!(m.nic_occupancy(0) > 0.0, "empty messages still occupy the NIC");
        let big = m.nic_occupancy(1 << 20);
        assert!((big - (m.p2p_msg_gap + m.injection_time(1 << 20))).abs() < 1e-12);
        assert_eq!(MachineModel::ideal().nic_occupancy(1 << 20), 0.0);
    }

    #[test]
    fn work_time_linear() {
        let m = MachineModel::juropa_like();
        let one = m.work_time(Work::Interaction, 1.0);
        let many = m.work_time(Work::Interaction, 1000.0);
        assert!((many - 1000.0 * one).abs() < 1e-12);
    }

    #[test]
    fn ideal_model_is_free() {
        let m = MachineModel::ideal();
        assert_eq!(m.barrier_time(4096), 0.0);
        assert_eq!(m.p2p_time(1 << 30, 5), 0.0);
        assert_eq!(m.alltoallv_time(4096, 100, 1 << 30, 100, 1 << 30), 0.0);
        assert_eq!(m.work_time(Work::FftPoint, 1e9), 0.0);
    }
}
