//! # simcomm — a simulated distributed-memory message-passing runtime
//!
//! This crate stands in for MPI on the production clusters the original paper
//! evaluated on (JuRoPA and the Blue Gene/Q system Juqueen). A *world* of `P`
//! simulated processes ("ranks") runs on the local machine — preemptively as
//! `P` OS threads, or cooperatively under a discrete-event scheduler for
//! paper-scale rank counts (see [`Engine`] and [`Runner`]). Ranks exchange
//! **real data** through shared memory using an MPI-like API (blocking
//! point-to-point, collectives, Cartesian grids), while **time** is
//! *virtual*: every operation advances the calling rank's clock according to a
//! pluggable [`MachineModel`]. Both engines produce bitwise-identical clocks,
//! statistics and traces for every committed workload.
//!
//! The combination means an algorithm's communication *volume and structure*
//! are exactly those of the real program, while the *cost* of that
//! communication reflects a chosen machine: a switched-fabric cluster
//! ([`MachineModel::juropa_like`]) or a torus supercomputer
//! ([`MachineModel::juqueen_like`]). This is precisely the substrate the
//! paper's experiments need — e.g. the Fig. 9 effect that neighbourhood
//! point-to-point exchange beats collective all-to-all on a large torus but
//! not on a switched network falls directly out of the topology model.
//!
//! ## Example
//!
//! ```
//! use simcomm::{run, MachineModel};
//!
//! let out = run(8, MachineModel::juropa_like(), |comm| {
//!     // Exchange a value with the next rank around a ring.
//!     let right = (comm.rank() + 1) % comm.size();
//!     let left = (comm.rank() + comm.size() - 1) % comm.size();
//!     let got = comm.sendrecv(right, vec![comm.rank() as u64], left, 0);
//!     assert_eq!(got, vec![left as u64]);
//!     comm.clock() // virtual seconds spent
//! });
//! assert!(out.makespan() > 0.0);
//! ```

#![warn(missing_docs)]

mod cart;
mod engine;
mod error;
mod fault;
mod model;
mod phase;
mod plan;
mod pool;
mod trace;
mod world;

pub use cart::CartGrid;
pub use engine::Engine;
pub use error::WorldError;
pub use fault::{FaultPlan, StallSpec};
pub use model::{
    balanced_dims, torus_coords, torus_hops, ComputeRates, MachineModel, Topology, Work,
};
pub use phase::{aggregate_phases, PhaseAgg, PhaseProfile, PhaseSegment, PhaseStats, UNTAGGED};
pub use plan::CommPlan;
pub use pool::PooledBuf;
pub use trace::{write_trace_csv, ClockSpan, SpanCat, Trace, TraceEvent, TraceKind};
pub use world::{
    run, run_faulted, run_faulted_traced, run_traced, Comm, RankStats, Request, RunOutput, Runner,
};
