//! Communication event tracing: an optional per-rank timeline of every
//! point-to-point and collective operation in virtual time, exportable as
//! CSV for offline analysis (who communicated with whom, when, how much).

use std::io::Write;

/// The kind of a traced communication operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Point-to-point send.
    Send,
    /// Point-to-point receive.
    Recv,
    /// Nonblocking send post (`isend`): covers the CPU-side post overhead;
    /// the payload drains on the NIC afterwards.
    Isend,
    /// Completion of a nonblocking *send* request inside `wait`/`waitall`/
    /// `waitany`: the time spent draining the request (receive completions
    /// are recorded as [`TraceKind::Recv`] instead).
    Wait,
    /// Barrier.
    Barrier,
    /// Broadcast.
    Bcast,
    /// All-reduce / exclusive scan.
    Reduce,
    /// Allgather(v).
    Gather,
    /// All-to-all-v.
    Alltoallv,
    /// Construction of a persistent communication plan (partner resolution,
    /// route/bin layout, placement permutations). Point-to-point-like: no
    /// collective fan-out.
    PlanBuild,
    /// Execution of payload through a previously built plan. Spans the whole
    /// planned exchange; the individual `isend`/`recv`/`wait` events it is
    /// composed of are traced separately.
    PlanExec,
    /// An injected fault (transient send loss, latency spike, straggler
    /// slowdown or scheduled stall) from the world's
    /// [`crate::FaultPlan`]. The span covers any virtual time the fault
    /// itself consumed (e.g. a stall); losses and spikes are recorded at the
    /// moment of injection with a zero-length span.
    Fault,
    /// A retransmission of a transiently lost send: the span covers the
    /// bounded exponential backoff plus the repeated CPU-side post overhead.
    Retry,
    /// A wait that exceeded the fault plan's timeout threshold: the span
    /// covers the extra re-probe overhead charged for the timeout cycles.
    Timeout,
}

impl TraceKind {
    /// Short stable label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Send => "send",
            TraceKind::Recv => "recv",
            TraceKind::Isend => "isend",
            TraceKind::Wait => "wait",
            TraceKind::Barrier => "barrier",
            TraceKind::Bcast => "bcast",
            TraceKind::Reduce => "reduce",
            TraceKind::Gather => "gather",
            TraceKind::Alltoallv => "alltoallv",
            TraceKind::PlanBuild => "plan_build",
            TraceKind::PlanExec => "plan_exec",
            TraceKind::Fault => "fault",
            TraceKind::Retry => "retry",
            TraceKind::Timeout => "timeout",
        }
    }
}

/// One traced communication event on one rank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// The rank the event occurred on.
    pub rank: usize,
    /// Operation kind.
    pub kind: TraceKind,
    /// Virtual time the operation started.
    pub t_start: f64,
    /// Virtual time the operation completed.
    pub t_end: f64,
    /// Payload bytes (this rank's contribution).
    pub bytes: u64,
    /// Peer rank for point-to-point operations.
    pub peer: Option<usize>,
    /// Size of the communicator the operation ran on (the world size; lets
    /// offline analysis compute collective fan-out).
    pub nranks: usize,
    /// Name of the innermost open phase when the event was recorded
    /// (see [`crate::Comm::enter_phase`]); empty if none.
    pub phase: &'static str,
    /// Message correlation id: every posted message gets a world-unique
    /// nonzero id, stamped on the sender's `send`/`isend` record, the
    /// receiver's `recv` record, and the sender's `wait` completion record,
    /// so offline analysis can reconstruct the happens-before edges
    /// (send → recv, isend → wait) without guessing by tag. `0` means the
    /// event is not tied to a single message (collectives, plans, faults).
    pub corr: u64,
}

/// Clock-advance category of a [`ClockSpan`]: which of the three exhaustive
/// accounting buckets (see `docs/OBSERVABILITY.md`) the span was charged to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanCat {
    /// Modelled computation ([`crate::Comm::advance`]).
    Compute,
    /// Communication cost: overheads, injection, algorithm time.
    Comm,
    /// Rendezvous/idle time waiting on a partner, the NIC, or a fault.
    Wait,
}

impl SpanCat {
    /// Short stable label (`compute`/`comm`/`wait`).
    pub fn label(&self) -> &'static str {
        match self {
            SpanCat::Compute => "compute",
            SpanCat::Comm => "comm",
            SpanCat::Wait => "wait",
        }
    }
}

/// One contiguous stretch of a rank's virtual clock, categorized by the
/// accounting bucket it was charged to. In a traced world every clock advance
/// appends (or extends) a span, so a rank's spans **tile `[0, clock]`
/// exactly** — the span stream is the clock decomposition made explicit,
/// which is what lets the critical-path walk in `simtrace` attribute every
/// instant of the makespan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClockSpan {
    /// Accounting bucket the time was charged to.
    pub cat: SpanCat,
    /// Virtual time the span started.
    pub t_start: f64,
    /// Virtual time the span ended.
    pub t_end: f64,
    /// Innermost open phase while the time accrued; empty if none.
    pub phase: &'static str,
}

/// A per-rank collection of trace events.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in the order they occurred on this rank.
    pub events: Vec<TraceEvent>,
    /// Clock decomposition spans in time order; adjacent same-category
    /// same-phase spans are merged on record. They tile `[0, clock]`.
    pub spans: Vec<ClockSpan>,
}

impl Trace {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        rank: usize,
        kind: TraceKind,
        t_start: f64,
        t_end: f64,
        bytes: u64,
        peer: Option<usize>,
        nranks: usize,
        phase: &'static str,
        corr: u64,
    ) {
        self.events.push(TraceEvent {
            rank,
            kind,
            t_start,
            t_end,
            bytes,
            peer,
            nranks,
            phase,
            corr,
        });
    }

    /// Append a clock span, merging it into the previous span when category
    /// and phase match and the spans are contiguous (they always are within
    /// one uninterrupted accounting stretch).
    pub(crate) fn push_span(
        &mut self,
        cat: SpanCat,
        t_start: f64,
        t_end: f64,
        phase: &'static str,
    ) {
        if let Some(last) = self.spans.last_mut() {
            if last.cat == cat && last.phase == phase && last.t_end == t_start {
                last.t_end = t_end;
                return;
            }
        }
        self.spans.push(ClockSpan { cat, t_start, t_end, phase });
    }

    /// Total virtual time covered by events of a kind.
    pub fn time_in(&self, kind: TraceKind) -> f64 {
        self.events.iter().filter(|e| e.kind == kind).map(|e| e.t_end - e.t_start).sum()
    }
}

/// Write traces of all ranks as CSV.
///
/// Columns: `rank,kind,t_start,t_end,bytes,peer,nranks,phase,corr`. The first
/// six are the original schema; `nranks` (communicator size, for collective
/// fan-out), `phase` (innermost phase span name, possibly empty) and `corr`
/// (message correlation id, `0` when not message-bound) were appended later —
/// readers of the old schema keep working, new readers must tolerate their
/// absence in old files. See `docs/OBSERVABILITY.md` for the full grammar.
pub fn write_trace_csv<W: Write>(mut w: W, traces: &[Trace]) -> std::io::Result<()> {
    writeln!(w, "rank,kind,t_start,t_end,bytes,peer,nranks,phase,corr")?;
    for t in traces {
        for e in &t.events {
            writeln!(
                w,
                "{},{},{},{},{},{},{},{},{}",
                e.rank,
                e.kind.label(),
                e.t_start,
                e.t_end,
                e.bytes,
                e.peer.map(|p| p.to_string()).unwrap_or_default(),
                e.nranks,
                e.phase,
                e.corr
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_in_sums_by_kind() {
        let mut t = Trace::default();
        t.record(0, TraceKind::Send, 0.0, 1.0, 8, Some(1), 2, "", 1);
        t.record(0, TraceKind::Recv, 1.0, 3.0, 8, Some(1), 2, "", 2);
        t.record(0, TraceKind::Send, 3.0, 3.5, 8, Some(2), 2, "", 3);
        assert!((t.time_in(TraceKind::Send) - 1.5).abs() < 1e-12);
        assert!((t.time_in(TraceKind::Recv) - 2.0).abs() < 1e-12);
        assert_eq!(t.time_in(TraceKind::Barrier), 0.0);
    }

    #[test]
    fn csv_format() {
        let mut t = Trace::default();
        t.record(3, TraceKind::Alltoallv, 0.5, 0.75, 1024, None, 8, "sort:exchange", 0);
        t.record(3, TraceKind::Send, 0.8, 0.9, 16, Some(1), 8, "", 77);
        let mut buf = Vec::new();
        write_trace_csv(&mut buf, &[t]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let mut lines = s.lines();
        assert_eq!(lines.next(), Some("rank,kind,t_start,t_end,bytes,peer,nranks,phase,corr"));
        assert_eq!(lines.next(), Some("3,alltoallv,0.5,0.75,1024,,8,sort:exchange,0"));
        assert_eq!(lines.next(), Some("3,send,0.8,0.9,16,1,8,,77"));
    }

    #[test]
    fn spans_merge_when_contiguous_same_category() {
        let mut t = Trace::default();
        t.push_span(SpanCat::Compute, 0.0, 1.0, "a");
        t.push_span(SpanCat::Compute, 1.0, 2.0, "a"); // merges
        t.push_span(SpanCat::Comm, 2.0, 2.5, "a"); // new category
        t.push_span(SpanCat::Comm, 2.5, 3.0, "b"); // new phase
        t.push_span(SpanCat::Comm, 4.0, 4.5, "b"); // gap: no merge
        assert_eq!(
            t.spans,
            vec![
                ClockSpan { cat: SpanCat::Compute, t_start: 0.0, t_end: 2.0, phase: "a" },
                ClockSpan { cat: SpanCat::Comm, t_start: 2.0, t_end: 2.5, phase: "a" },
                ClockSpan { cat: SpanCat::Comm, t_start: 2.5, t_end: 3.0, phase: "b" },
                ClockSpan { cat: SpanCat::Comm, t_start: 4.0, t_end: 4.5, phase: "b" },
            ]
        );
    }
}
