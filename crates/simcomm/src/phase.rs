//! Phase-scoped metrics: named spans over rank code (`comm.enter_phase("sort")
//! .. comm.exit_phase()`) with per-rank, per-phase accounting of virtual time
//! and traffic, and cross-rank aggregation into a critical-path table.
//!
//! Phases form a **stack** per rank: entering a phase while another is open
//! nests it, and all time and traffic are attributed to the *innermost* open
//! phase. The attribution intervals of the phases on one rank therefore never
//! overlap, and the per-phase times sum exactly to the rank's total clock
//! (together with the `(untagged)` remainder accumulated while no phase was
//! open). Virtual time is further decomposed into three exhaustive buckets:
//!
//! * **compute** — modelled computation ([`crate::Comm::advance`] /
//!   [`crate::Comm::compute`]),
//! * **comm** — modelled transfer cost (p2p overhead + injection, collective
//!   algorithm cost),
//! * **wait** — rendezvous idle time (blocking on a message that has not
//!   arrived yet, or on the last participant of a collective).
//!
//! All times are **virtual seconds** of the world's
//! [`MachineModel`](crate::MachineModel); all sizes are bytes.

use crate::world::RankStats;

/// Per-rank aggregate of everything that happened while the named phase was
/// the innermost open span.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseStats {
    /// Phase name (`""` only in the [`Default`] value).
    pub name: &'static str,
    /// Number of times the phase was entered on this rank.
    pub spans: u64,
    /// Virtual seconds of modelled communication transfer cost.
    pub comm_seconds: f64,
    /// Virtual seconds idle in rendezvous (blocked receive / collective entry).
    pub wait_seconds: f64,
    /// Virtual seconds of modelled computation.
    pub compute_seconds: f64,
    /// Point-to-point messages sent (alltoallv counts per destination).
    pub p2p_sent_msgs: u64,
    /// Point-to-point bytes sent.
    pub p2p_sent_bytes: u64,
    /// Point-to-point messages received.
    pub p2p_recv_msgs: u64,
    /// Point-to-point bytes received.
    pub p2p_recv_bytes: u64,
    /// Collective operations entered.
    pub coll_ops: u64,
    /// Bytes contributed to collective operations.
    pub coll_bytes: u64,
}

impl PhaseStats {
    /// Total virtual seconds attributed to the phase on this rank
    /// (comm + wait + compute — the decomposition is exhaustive).
    pub fn seconds(&self) -> f64 {
        self.comm_seconds + self.wait_seconds + self.compute_seconds
    }

    /// Element-wise sum (keeps `self.name`).
    fn add(&mut self, o: &PhaseStats) {
        self.spans += o.spans;
        self.comm_seconds += o.comm_seconds;
        self.wait_seconds += o.wait_seconds;
        self.compute_seconds += o.compute_seconds;
        self.p2p_sent_msgs += o.p2p_sent_msgs;
        self.p2p_sent_bytes += o.p2p_sent_bytes;
        self.p2p_recv_msgs += o.p2p_recv_msgs;
        self.p2p_recv_bytes += o.p2p_recv_bytes;
        self.coll_ops += o.coll_ops;
        self.coll_bytes += o.coll_bytes;
    }
}

/// One contiguous interval of virtual time during which a phase was the
/// innermost open span on a rank. Only recorded in traced worlds
/// ([`crate::run_traced`]); aggregates are always maintained.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseSegment {
    /// Phase name.
    pub name: &'static str,
    /// Virtual time the interval started.
    pub t_start: f64,
    /// Virtual time the interval ended.
    pub t_end: f64,
}

/// The complete phase record of one rank.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    /// Per-phase aggregates, in order of first entry on this rank.
    pub phases: Vec<PhaseStats>,
    /// Attribution intervals (non-overlapping, time-ordered). Empty unless the
    /// world was run with tracing enabled.
    pub segments: Vec<PhaseSegment>,
}

/// Name under which time and traffic outside any phase span are reported.
pub const UNTAGGED: &str = "(untagged)";

impl PhaseProfile {
    /// The aggregate of a named phase, if it was entered on this rank.
    pub fn get(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Sum over all tagged phases (the `name` of the result is empty).
    pub fn tagged_total(&self) -> PhaseStats {
        let mut t = PhaseStats::default();
        for p in &self.phases {
            t.add(p);
        }
        t
    }

    /// The `(untagged)` remainder: the rank's totals minus everything
    /// attributed to a phase. Floating-point fields are clamped at zero
    /// against rounding.
    pub fn untagged(&self, totals: &RankStats) -> PhaseStats {
        let t = self.tagged_total();
        PhaseStats {
            name: UNTAGGED,
            spans: 0,
            comm_seconds: (totals.comm_seconds - t.comm_seconds).max(0.0),
            wait_seconds: (totals.wait_seconds - t.wait_seconds).max(0.0),
            compute_seconds: (totals.compute_seconds - t.compute_seconds).max(0.0),
            p2p_sent_msgs: totals.p2p_sent_msgs.saturating_sub(t.p2p_sent_msgs),
            p2p_sent_bytes: totals.p2p_sent_bytes.saturating_sub(t.p2p_sent_bytes),
            p2p_recv_msgs: totals.p2p_recv_msgs.saturating_sub(t.p2p_recv_msgs),
            p2p_recv_bytes: totals.p2p_recv_bytes.saturating_sub(t.p2p_recv_bytes),
            coll_ops: totals.coll_ops.saturating_sub(t.coll_ops),
            coll_bytes: totals.coll_bytes.saturating_sub(t.coll_bytes),
        }
    }
}

/// Cross-rank aggregate of one phase: critical path, mean, imbalance and
/// summed traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseAgg {
    /// Phase name (`"(untagged)"` for the remainder row).
    pub name: &'static str,
    /// Spans entered, summed over ranks.
    pub spans: u64,
    /// Critical path: the maximum over ranks of the attributed seconds.
    pub max_seconds: f64,
    /// Mean over ranks of the attributed seconds.
    pub mean_seconds: f64,
    /// Imbalance ratio `max/mean` (1.0 when the mean is zero).
    pub imbalance: f64,
    /// Mean over ranks of the communication seconds.
    pub mean_comm_seconds: f64,
    /// Mean over ranks of the rendezvous-wait seconds.
    pub mean_wait_seconds: f64,
    /// Mean over ranks of the modelled-compute seconds.
    pub mean_compute_seconds: f64,
    /// Point-to-point messages sent, summed over ranks.
    pub p2p_msgs: u64,
    /// Point-to-point bytes sent, summed over ranks.
    pub p2p_bytes: u64,
    /// Collective operations entered, summed over ranks.
    pub coll_ops: u64,
    /// Collective bytes contributed, summed over ranks.
    pub coll_bytes: u64,
}

/// Aggregate per-rank phase profiles into one table row per phase, in order
/// of first appearance (rank-major), with an `"(untagged)"` row last covering
/// everything outside phase spans. `totals` must be the matching per-rank
/// [`RankStats`].
pub fn aggregate_phases(profiles: &[PhaseProfile], totals: &[RankStats]) -> Vec<PhaseAgg> {
    assert_eq!(profiles.len(), totals.len());
    let nranks = profiles.len().max(1) as f64;

    // Stable phase order: first appearance scanning ranks in order.
    let mut order: Vec<&'static str> = Vec::new();
    for prof in profiles {
        for p in &prof.phases {
            if !order.contains(&p.name) {
                order.push(p.name);
            }
        }
    }

    let mut rows = Vec::with_capacity(order.len() + 1);
    let mut make_row = |name: &'static str, per_rank: Vec<PhaseStats>| {
        let spans = per_rank.iter().map(|p| p.spans).sum();
        let max_seconds = per_rank.iter().map(|p| p.seconds()).fold(0.0, f64::max);
        let sum_seconds: f64 = per_rank.iter().map(|p| p.seconds()).sum();
        let mean_seconds = sum_seconds / nranks;
        rows.push(PhaseAgg {
            name,
            spans,
            max_seconds,
            mean_seconds,
            imbalance: if mean_seconds > 0.0 { max_seconds / mean_seconds } else { 1.0 },
            mean_comm_seconds: per_rank.iter().map(|p| p.comm_seconds).sum::<f64>() / nranks,
            mean_wait_seconds: per_rank.iter().map(|p| p.wait_seconds).sum::<f64>() / nranks,
            mean_compute_seconds: per_rank.iter().map(|p| p.compute_seconds).sum::<f64>() / nranks,
            p2p_msgs: per_rank.iter().map(|p| p.p2p_sent_msgs).sum(),
            p2p_bytes: per_rank.iter().map(|p| p.p2p_sent_bytes).sum(),
            coll_ops: per_rank.iter().map(|p| p.coll_ops).sum(),
            coll_bytes: per_rank.iter().map(|p| p.coll_bytes).sum(),
        });
    };

    for name in order {
        let per_rank: Vec<PhaseStats> =
            profiles.iter().map(|prof| prof.get(name).copied().unwrap_or_default()).collect();
        make_row(name, per_rank);
    }
    let untagged: Vec<PhaseStats> =
        profiles.iter().zip(totals).map(|(prof, tot)| prof.untagged(tot)).collect();
    make_row(UNTAGGED, untagged);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &'static str, comm: f64, wait: f64, compute: f64, bytes: u64) -> PhaseStats {
        PhaseStats {
            name,
            spans: 1,
            comm_seconds: comm,
            wait_seconds: wait,
            compute_seconds: compute,
            p2p_sent_bytes: bytes,
            ..Default::default()
        }
    }

    #[test]
    fn untagged_is_total_minus_tagged() {
        let prof = PhaseProfile {
            phases: vec![stats("a", 1.0, 0.5, 2.0, 100), stats("b", 0.5, 0.0, 1.0, 50)],
            segments: Vec::new(),
        };
        let totals = RankStats {
            comm_seconds: 2.0,
            wait_seconds: 0.75,
            compute_seconds: 4.0,
            p2p_sent_bytes: 200,
            ..Default::default()
        };
        let u = prof.untagged(&totals);
        assert!((u.comm_seconds - 0.5).abs() < 1e-12);
        assert!((u.wait_seconds - 0.25).abs() < 1e-12);
        assert!((u.compute_seconds - 1.0).abs() < 1e-12);
        assert_eq!(u.p2p_sent_bytes, 50);
    }

    #[test]
    fn aggregate_computes_critical_path_and_imbalance() {
        let p0 =
            PhaseProfile { phases: vec![stats("sort", 1.0, 0.0, 1.0, 10)], segments: Vec::new() };
        let p1 =
            PhaseProfile { phases: vec![stats("sort", 3.0, 1.0, 2.0, 30)], segments: Vec::new() };
        let totals = vec![RankStats::default(), RankStats::default()];
        let rows = aggregate_phases(&[p0, p1], &totals);
        assert_eq!(rows.len(), 2); // sort + (untagged)
        let sort = &rows[0];
        assert_eq!(sort.name, "sort");
        assert_eq!(sort.spans, 2);
        assert!((sort.max_seconds - 6.0).abs() < 1e-12);
        assert!((sort.mean_seconds - 4.0).abs() < 1e-12);
        assert!((sort.imbalance - 1.5).abs() < 1e-12);
        assert_eq!(sort.p2p_bytes, 40);
        assert_eq!(rows[1].name, UNTAGGED);
    }
}
