//! # fcs — the coupling library interface
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! ScaFaCoS-style coupling library that connects application-independent
//! long-range solvers (the tree-based [`fmm`] and the grid-based
//! [`pmsolver`]) with a particle dynamics simulation, offering **two particle
//! data redistribution methods** (Sect. III of the paper):
//!
//! * **Method A** (default, [`Fcs::set_resort`]`(false)`): all reordering and
//!   redistribution a solver performs is hidden inside the library; the
//!   calculated potential and field values are returned in the exact original
//!   particle order and distribution.
//! * **Method B** ([`Fcs::set_resort`]`(true)`): the solver-specific order
//!   and distribution is returned to the application together with **resort
//!   indices**, and [`Fcs::resort_floats`]/[`Fcs::resort_ints`]/
//!   [`Fcs::resort_vec3`] redistribute the application's *additional*
//!   particle data (velocities, accelerations, ...) accordingly. If any
//!   process's local arrays are too small, the library falls back to
//!   restoring the original distribution; [`Fcs::resorted`] reports which
//!   happened.
//!
//! The application can additionally report the maximum distance particles
//! moved since the last execution ([`Fcs::set_max_particle_move`]); the
//! solvers then switch to cheaper redistribution strategies — the FMM to a
//! merge-based parallel sort, the particle-mesh solver to neighbourhood
//! point-to-point communication (Sect. III-B).
//!
//! ## Usage (mirrors `fcs_init` / `fcs_set_common` / `fcs_tune` / `fcs_run` /
//! `fcs_destroy`)
//!
//! ```
//! use fcs::{Fcs, SolverKind};
//! use particles::{SystemBox, Vec3};
//! use simcomm::{run, MachineModel};
//!
//! let out = run(2, MachineModel::ideal(), |comm| {
//!     let mut handle = Fcs::init(SolverKind::P2Nfft, comm.size());
//!     handle.set_common(SystemBox::cubic(4.0));
//!     handle.set_tolerance(1e-3);
//!     // Two particles per rank, alternating charges.
//!     let x = comm.rank() as f64;
//!     let pos = vec![Vec3::new(x + 0.25, 1.0, 1.0), Vec3::new(x + 0.75, 3.0, 3.0)];
//!     let charge = vec![1.0, -1.0];
//!     let id = vec![comm.rank() as u64 * 2, comm.rank() as u64 * 2 + 1];
//!     handle.tune(comm, &pos, &charge);
//!     let result = handle.run(comm, &pos, &charge, &id, usize::MAX);
//!     assert_eq!(result.potential.len(), 2);
//!     result.potential[0]
//! });
//! assert!(out.results[0].is_finite());
//! ```

#![warn(missing_docs)]

use atasp::ExchangeMode;
use ewald::{EwaldConfig, EwaldSolver};
use fmm::{FmmConfig, FmmSolver};
use particles::{MovementHint, PlaneElem, PlaneSet, RedistMethod, SolverOutput, SystemBox, Vec3};
use pmsolver::{PmConfig, PmSolver};
use simcomm::Comm;

/// The solver methods integrated behind the unique library interface.
/// (In ScaFaCoS the method is chosen by a string parameter of `fcs_init`,
/// e.g. `"fmm"` or `"p2nfft"`.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// The tree-based Fast Multipole Method (Z-order decomposition,
    /// parallel-sorting-based redistribution).
    Fmm,
    /// The grid-based particle-mesh solver (Cartesian process grid,
    /// fine-grained redistribution with ghost particles).
    P2Nfft,
    /// Classical Ewald summation: the exact (but slow) reference solver.
    /// Works on any particle distribution and never changes the particle
    /// order.
    Ewald,
}

impl std::str::FromStr for SolverKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fmm" => Ok(SolverKind::Fmm),
            "p2nfft" | "pm" | "p3m" => Ok(SolverKind::P2Nfft),
            "ewald" => Ok(SolverKind::Ewald),
            other => Err(format!("unknown solver '{other}' (expected 'fmm', 'p2nfft' or 'ewald')")),
        }
    }
}

enum SolverInstance {
    Fmm(FmmSolver),
    Pm(PmSolver),
    Ewald(EwaldSolver),
}

/// A solver handle (the analogue of the `FCS` handle type): one per rank,
/// created identically on all ranks of the communicator.
pub struct Fcs {
    kind: SolverKind,
    nprocs: usize,
    bbox: Option<SystemBox>,
    tolerance: f64,
    desired_rcut: Option<f64>,
    resort_enabled: bool,
    max_move: MovementHint,
    soft_core: Option<particles::SoftCore>,
    pencil_fft: bool,
    solver: Option<SolverInstance>,
    /// Enable cross-timestep communication-plan caching in the solvers and
    /// for the resort exchanges (on by default).
    plan_cache: bool,
    // State of the most recent run, for the query/resort functions.
    last_resorted: bool,
    last_resort_indices: Vec<u64>,
    last_new_len: usize,
    last_resort_mode: ExchangeMode,
    /// Frozen redistribution schedule for the current resort indices, shared
    /// by all `resort_*` calls and reused across runs while the indices,
    /// output length and exchange mode are unchanged.
    resort_plan: Option<atasp::ResortPlan>,
    /// Resort plans built (including rebuilds) over the handle lifetime.
    resort_plan_builds: u64,
    /// Resort calls that reused the cached plan.
    resort_plan_hits: u64,
}

impl Fcs {
    /// `fcs_init`: create a new solver instance for a world of `nprocs`
    /// ranks. Must be called identically by all ranks.
    pub fn init(kind: SolverKind, nprocs: usize) -> Self {
        Fcs {
            kind,
            nprocs,
            bbox: None,
            tolerance: 1e-3,
            desired_rcut: None,
            resort_enabled: false,
            max_move: None,
            soft_core: None,
            pencil_fft: false,
            solver: None,
            plan_cache: true,
            last_resorted: false,
            last_resort_indices: Vec::new(),
            last_new_len: 0,
            last_resort_mode: ExchangeMode::Collective,
            resort_plan: None,
            resort_plan_builds: 0,
            resort_plan_hits: 0,
        }
    }

    /// Enable or disable cross-timestep communication-plan caching (on by
    /// default): the particle-mesh ghost plan, the FMM merge-sort probe
    /// schedule, and the frozen resort schedules of the `resort_*` family.
    /// Disabling restores the pre-plan behaviour of rebuilding every schedule
    /// on every call. Must be set identically on all ranks.
    pub fn set_plan_cache(&mut self, enabled: bool) {
        self.plan_cache = enabled;
        if !enabled {
            self.resort_plan = None;
        }
        match &mut self.solver {
            Some(SolverInstance::Fmm(s)) => s.set_plan_cache(enabled),
            Some(SolverInstance::Pm(s)) => s.set_plan_cache(enabled),
            _ => {}
        }
    }

    /// Drop every cached communication plan — the solver's sort/ghost plans
    /// and the handle's frozen resort schedule — without touching tuning
    /// state. Recovery code that rewinds the particle state to an earlier
    /// snapshot must call this before replaying: cached plans carry movement
    /// accounting relative to the state they were built for, and replaying
    /// against a rewound state would mis-account it. Plans never affect the
    /// physics, so dropping them is always safe (costs only rebuild time).
    /// Must be called identically on all ranks.
    pub fn invalidate_plans(&mut self) {
        self.resort_plan = None;
        match &mut self.solver {
            Some(SolverInstance::Fmm(s)) => s.invalidate_plans(),
            Some(SolverInstance::Pm(s)) => s.invalidate_plans(),
            _ => {}
        }
    }

    /// Communication-plan cache statistics as `(builds, hits)`, aggregated
    /// over the solver's plans (ghost plan or sort plan) and the handle's
    /// resort plans.
    pub fn plan_stats(&self) -> (u64, u64) {
        let (sb, sh) = match &self.solver {
            Some(SolverInstance::Fmm(s)) => (s.plan_builds, s.plan_hits),
            Some(SolverInstance::Pm(s)) => (s.plan_builds, s.plan_hits),
            _ => (0, 0),
        };
        (sb + self.resort_plan_builds, sh + self.resort_plan_hits)
    }

    /// Which solver method this handle drives.
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// `fcs_set_common`: set the particle system properties (system box
    /// shape, offset and periodicity).
    pub fn set_common(&mut self, bbox: SystemBox) {
        self.bbox = Some(bbox);
        self.solver = None; // re-tune required
    }

    /// Target relative accuracy of the computed interactions (the paper's
    /// benchmark uses a relative total-energy error below 1e-3).
    pub fn set_tolerance(&mut self, eps: f64) {
        assert!(eps > 0.0 && eps < 1.0);
        self.tolerance = eps;
        self.solver = None;
    }

    /// Solver-specific parameter: the near-field cutoff radius of the
    /// particle-mesh solver (the paper uses a fixed cutoff of 4.8 for its
    /// 248^3 benchmark box).
    pub fn set_p2nfft_cutoff(&mut self, rcut: f64) {
        assert!(rcut > 0.0);
        self.desired_rcut = Some(rcut);
        self.solver = None;
    }

    /// Solver-specific parameter: use the 2D pencil decomposition for the
    /// particle-mesh solver's parallel FFT instead of 1D slabs. Recommended
    /// when the process count exceeds the mesh extent (the slab limitation
    /// documented in DESIGN.md).
    pub fn set_p2nfft_pencil(&mut self, enabled: bool) {
        self.pencil_fft = enabled;
        self.solver = None;
    }

    /// Optional short-range repulsive soft core added to the near-field
    /// computations of both solvers — the "additional short range
    /// interactions" a particle application couples with the long-range
    /// solver. `None` (default) keeps the pure Coulomb kernel.
    pub fn set_soft_core(&mut self, core: Option<particles::SoftCore>) {
        self.soft_core = core;
        self.solver = None;
    }

    /// Enable Method B: return the changed (solver-specific) particle order
    /// and distribution instead of restoring the original one.
    ///
    /// ```
    /// use fcs::{Fcs, SolverKind};
    /// use particles::{SystemBox, Vec3};
    ///
    /// let out = simcomm::run(2, simcomm::MachineModel::ideal(), |comm| {
    ///     let r = comm.rank() as f64;
    ///     let pos = vec![Vec3::new(1.0 + r, 1.0, 1.0), Vec3::new(1.0 + r, 2.5, 2.0)];
    ///     let charge = vec![1.0, -1.0];
    ///     let id = vec![2 * comm.rank() as u64, 2 * comm.rank() as u64 + 1];
    ///
    ///     let mut h = Fcs::init(SolverKind::Fmm, comm.size());
    ///     h.set_common(SystemBox::cubic(4.0));
    ///     h.tune(comm, &pos, &charge);
    ///     h.set_resort(true); // Method B: keep the solver's particle order
    ///     let o = h.run(comm, &pos, &charge, &id, usize::MAX);
    ///     assert!(h.resorted());
    ///     o.pos.len() // the *changed* local particle count
    /// });
    /// assert_eq!(out.results.iter().sum::<usize>(), 4); // no particles lost
    /// ```
    pub fn set_resort(&mut self, enabled: bool) {
        self.resort_enabled = enabled;
    }

    /// Report the maximum distance any particle moved since the previous
    /// `run`. Solvers use this to switch to cheaper redistribution paths
    /// (merge-based sorting / neighbourhood communication). Reset to
    /// "unknown" by passing `None`.
    ///
    /// ```
    /// use fcs::{Fcs, SolverKind};
    /// use particles::{SystemBox, Vec3};
    ///
    /// simcomm::run(2, simcomm::MachineModel::ideal(), |comm| {
    ///     let r = comm.rank() as f64;
    ///     let mut pos = vec![Vec3::new(1.0 + r, 1.0, 1.0), Vec3::new(1.0 + r, 2.5, 2.0)];
    ///     let charge = vec![1.0, -1.0];
    ///     let id = vec![2 * comm.rank() as u64, 2 * comm.rank() as u64 + 1];
    ///
    ///     let mut h = Fcs::init(SolverKind::Fmm, comm.size());
    ///     h.set_common(SystemBox::cubic(4.0));
    ///     h.tune(comm, &pos, &charge);
    ///     h.set_resort(true);
    ///     h.run(comm, &pos, &charge, &id, usize::MAX);
    ///
    ///     // Particles drifted a little since the previous execution: tell
    ///     // the library, so the next run may use the cheaper merge-based
    ///     // redistribution instead of a full parallel sort.
    ///     for p in &mut pos {
    ///         *p = *p + Vec3::new(0.01, 0.0, 0.0);
    ///     }
    ///     h.set_max_particle_move(Some(0.01));
    ///     h.run(comm, &pos, &charge, &id, usize::MAX);
    /// });
    /// ```
    pub fn set_max_particle_move(&mut self, movement: MovementHint) {
        self.max_move = movement;
    }

    /// `fcs_tune`: determine solver-specific parameters from the current
    /// particle system. The tuning results remain valid as long as the
    /// particle positions do not change "too much". Collective.
    pub fn tune(&mut self, comm: &mut Comm, pos: &[Vec3], charge: &[f64]) {
        assert_eq!(pos.len(), charge.len());
        assert_eq!(comm.size(), self.nprocs, "world size must match fcs_init");
        let bbox = self.bbox.expect("fcs_set_common must be called before fcs_tune");
        let n_total = comm.allreduce(pos.len() as u64, |a, b| a + b);
        match self.kind {
            SolverKind::Fmm => {
                let mut cfg = FmmConfig::tuned(n_total, self.tolerance);
                cfg.soft_core = self.soft_core;
                self.solver = Some(SolverInstance::Fmm(FmmSolver::new(bbox, cfg)));
            }
            SolverKind::P2Nfft => {
                let l = bbox.lengths;
                let lmin = l.x().min(l.y()).min(l.z());
                // Default cutoff: a few mean inter-particle spacings, capped
                // by the minimum-image bound and the subdomain width.
                let mean_spacing = (bbox.volume() / n_total.max(1) as f64).cbrt();
                let desired = self.desired_rcut.unwrap_or(2.8 * mean_spacing);
                let grid = simcomm::CartGrid::balanced(self.nprocs);
                let dims = grid.dims();
                let min_width = (0..3).map(|d| l[d] / dims[d] as f64).fold(f64::INFINITY, f64::min);
                let rcut = desired.min(0.49 * lmin).min(min_width);
                let mut cfg = PmConfig::tuned(&bbox, self.tolerance, rcut);
                cfg.soft_core = self.soft_core;
                cfg.pencil = self.pencil_fft;
                self.solver = Some(SolverInstance::Pm(PmSolver::new(bbox, cfg, self.nprocs)));
            }
            SolverKind::Ewald => {
                let mut cfg = EwaldConfig::tuned(&bbox, self.tolerance);
                cfg.soft_core = self.soft_core;
                self.solver = Some(SolverInstance::Ewald(EwaldSolver::new(bbox, cfg)));
            }
        }
        // A fresh solver instance starts with the handle's caching policy; any
        // previously frozen resort schedule is decomposition-stale.
        self.resort_plan = None;
        match &mut self.solver {
            Some(SolverInstance::Fmm(s)) => s.set_plan_cache(self.plan_cache),
            Some(SolverInstance::Pm(s)) => s.set_plan_cache(self.plan_cache),
            _ => {}
        }
    }

    /// `fcs_run`: compute the long-range interactions of the given local
    /// particles. Returns positions/charges/ids together with the calculated
    /// potentials and field values — in the original order (Method A, or
    /// Method B fallback) or the changed solver order (Method B). Collective.
    ///
    /// `max_local` is the capacity of the application's local particle
    /// arrays (the maximum number of particles this process can store).
    pub fn run(
        &mut self,
        comm: &mut Comm,
        pos: &[Vec3],
        charge: &[f64],
        id: &[u64],
        max_local: usize,
    ) -> SolverOutput {
        let solver = self.solver.as_mut().expect("fcs_tune must be called before fcs_run");
        let method = if self.resort_enabled {
            RedistMethod::UseChanged
        } else {
            RedistMethod::RestoreOriginal
        };
        comm.enter_phase("solver");
        let out = match solver {
            SolverInstance::Fmm(s) => {
                let o = s.run(comm, pos, charge, id, method, self.max_move, max_local);
                self.last_resort_mode = ExchangeMode::Collective;
                o
            }
            SolverInstance::Pm(s) => {
                let o = s.run(comm, pos, charge, id, method, self.max_move, max_local);
                self.last_resort_mode = if s.last_report.used_neighborhood {
                    // The solver holds the prebuilt partner list; clone it
                    // once here instead of recomputing the 26-neighbourhood.
                    s.neighborhood_mode().expect("run builds the neighbourhood").clone()
                } else {
                    ExchangeMode::Collective
                };
                o
            }
            SolverInstance::Ewald(s) => {
                let o = s.run(comm, pos, charge, id, method, self.max_move, max_local);
                self.last_resort_mode = ExchangeMode::Collective;
                o
            }
        };
        comm.exit_phase();
        self.last_resorted = out.resorted;
        self.last_resort_indices = out.resort_indices.clone();
        self.last_new_len = out.pos.len();
        out
    }

    /// Query whether the most recent `run` returned the changed particle
    /// order and distribution (`true`) or restored the original one
    /// (`false`, including the Method B capacity fallback).
    pub fn resorted(&self) -> bool {
        self.last_resorted
    }

    /// Number of local particles after the most recent `run` (the length
    /// additional data arrays will have after resorting).
    pub fn resort_len(&self) -> usize {
        self.last_new_len
    }

    /// `fcs_resort_floats`: redistribute additional per-particle `f64` data
    /// from the original order into the changed order of the most recent
    /// `run`. Must only be called when [`Fcs::resorted`] is true. Collective.
    ///
    /// ```
    /// use fcs::{Fcs, SolverKind};
    /// use particles::{SystemBox, Vec3};
    ///
    /// simcomm::run(2, simcomm::MachineModel::ideal(), |comm| {
    ///     let r = comm.rank() as f64;
    ///     let pos = vec![Vec3::new(1.0 + r, 1.0, 1.0), Vec3::new(1.0 + r, 2.5, 2.0)];
    ///     let charge = vec![1.0, -1.0];
    ///     let id = vec![2 * comm.rank() as u64, 2 * comm.rank() as u64 + 1];
    ///
    ///     let mut h = Fcs::init(SolverKind::Fmm, comm.size());
    ///     h.set_common(SystemBox::cubic(4.0));
    ///     h.tune(comm, &pos, &charge);
    ///     h.set_resort(true);
    ///     h.run(comm, &pos, &charge, &id, usize::MAX);
    ///     assert!(h.resorted());
    ///
    ///     // Additional per-particle data (here: masses, keyed by particle
    ///     // id) follows the particles into the changed distribution.
    ///     let mass: Vec<f64> = id.iter().map(|&i| 1.0 + i as f64).collect();
    ///     let mass_new = h.resort_floats(comm, &mass);
    ///     assert_eq!(mass_new.len(), h.resort_len());
    /// });
    /// ```
    pub fn resort_floats(&mut self, comm: &mut Comm, data: &[f64]) -> Vec<f64> {
        self.resort_data(comm, data)
    }

    /// `fcs_resort_ints`: like [`Fcs::resort_floats`] for `i64` data.
    pub fn resort_ints(&mut self, comm: &mut Comm, data: &[i64]) -> Vec<i64> {
        self.resort_data(comm, data)
    }

    /// Redistribute additional per-particle 3-vectors (velocities,
    /// accelerations) — the common case in the paper's integration method.
    pub fn resort_vec3(&mut self, comm: &mut Comm, data: &[Vec3]) -> Vec<Vec3> {
        self.resort_data(comm, data)
    }

    /// Generic resort of additional per-particle data.
    ///
    /// Convenience wrapper over the byte-plane path: the data is staged
    /// into a single-plane [`PlaneSet`] and moved with one byte exchange.
    /// Callers that keep their additional data in a persistent `PlaneSet`
    /// should use [`Fcs::resort_planes`] instead, which moves every
    /// registered plane in one round without the staging copies.
    #[allow(deprecated)] // staging wrapper over the per-`T` plan entry point
    pub fn resort_data<T: PlaneElem + Send>(&mut self, comm: &mut Comm, data: &[T]) -> Vec<T> {
        assert!(
            self.last_resorted,
            "resort functions require a successful Method B run (check resorted())"
        );
        assert_eq!(
            data.len(),
            self.last_resort_indices.len(),
            "additional data must match the original particle count"
        );
        let plan = self.current_resort_plan(comm);
        plan.execute(comm, &[data]).pop().expect("one channel in, one channel out")
    }

    /// The frozen redistribution schedule for the most recent run's resort
    /// indices: reused while the indices/length/mode are unchanged (also
    /// *across* runs on quiet steps where the solver reproduces the same
    /// placement), rebuilt otherwise.
    fn current_resort_plan(&mut self, comm: &mut Comm) -> &atasp::ResortPlan {
        let hit = self.plan_cache
            && self.resort_plan.as_ref().is_some_and(|pl| {
                pl.matches(&self.last_resort_indices, self.last_new_len, &self.last_resort_mode)
            });
        if hit {
            self.resort_plan_hits += 1;
        } else {
            self.resort_plan_builds += 1;
            self.resort_plan = Some(atasp::ResortPlan::build(
                comm,
                &self.last_resort_indices,
                self.last_new_len,
                &self.last_resort_mode,
            ));
        }
        self.resort_plan.as_ref().expect("plan built above")
    }

    /// Redistribute several additional per-particle data channels at once in
    /// a **single** combined exchange round.
    ///
    /// An integrator that carries velocities, accelerations and old positions
    /// through a Method B run pays one redistribution round instead of one
    /// per field. Returns one output vector per input channel, each of length
    /// [`Fcs::resort_len`]. Must only be called when [`Fcs::resorted`] is
    /// true. Collective.
    ///
    /// Deprecated: all channels share one element type `T` and each call
    /// allocates fresh output vectors. [`Fcs::resort_planes`] moves
    /// heterogeneously-typed planes of a persistent [`PlaneSet`] through the
    /// same combined exchange with no per-call allocation in steady state.
    ///
    /// ```
    /// use fcs::{Fcs, SolverKind};
    /// use particles::{SystemBox, Vec3};
    ///
    /// simcomm::run(2, simcomm::MachineModel::ideal(), |comm| {
    ///     let r = comm.rank() as f64;
    ///     let pos = vec![Vec3::new(1.0 + r, 1.0, 1.0), Vec3::new(1.0 + r, 2.5, 2.0)];
    ///     let charge = vec![1.0, -1.0];
    ///     let id = vec![2 * comm.rank() as u64, 2 * comm.rank() as u64 + 1];
    ///
    ///     let mut h = Fcs::init(SolverKind::Fmm, comm.size());
    ///     h.set_common(SystemBox::cubic(4.0));
    ///     h.tune(comm, &pos, &charge);
    ///     h.set_resort(true);
    ///     h.run(comm, &pos, &charge, &id, usize::MAX);
    ///     assert!(h.resorted());
    ///
    ///     // Velocities and accelerations follow the particles together,
    ///     // riding a single exchange.
    ///     let vel = vec![Vec3::new(r, 0.0, 0.0); 2];
    ///     let acc = vec![Vec3::new(0.0, r, 0.0); 2];
    ///     let mut moved = h.resort_all(comm, &[&vel, &acc]);
    ///     assert_eq!(moved.len(), 2);
    ///     let acc_new = moved.pop().unwrap();
    ///     assert_eq!(acc_new.len(), h.resort_len());
    /// });
    /// ```
    #[deprecated(
        since = "0.1.0",
        note = "use `Fcs::resort_planes` with a persistent `PlaneSet` — it moves \
                heterogeneously-typed planes in the same single exchange round \
                without allocating output vectors"
    )]
    #[allow(deprecated)] // staging wrapper over the per-`T` plan entry point
    pub fn resort_all<T: PlaneElem + Send>(
        &mut self,
        comm: &mut Comm,
        channels: &[&[T]],
    ) -> Vec<Vec<T>> {
        assert!(
            self.last_resorted,
            "resort functions require a successful Method B run (check resorted())"
        );
        for (c, ch) in channels.iter().enumerate() {
            assert_eq!(
                ch.len(),
                self.last_resort_indices.len(),
                "additional data channel {c} must match the original particle count"
            );
        }
        let plan = self.current_resort_plan(comm);
        plan.execute(comm, channels)
    }

    /// Redistribute every registered plane of `set` — the application's
    /// additional per-particle data in structure-of-arrays form — into the
    /// changed order of the most recent `run`, in a **single** combined byte
    /// exchange round (see [`atasp::resort_planes`]).
    ///
    /// This is the preferred multi-channel resort: planes of different
    /// element types (velocities as `Vec3`, a tag as `u64`, ...) ride one
    /// exchange, received elements land in the set's back slabs, and the
    /// commit is a pointer swap — the steady-state path allocates nothing
    /// once slabs and pooled message buffers have reached their high-water
    /// sizes. On return `set.len()` equals [`Fcs::resort_len`]. Must only be
    /// called when [`Fcs::resorted`] is true. Collective.
    ///
    /// The frozen schedule is shared with the per-`T` entry points and
    /// cached across runs (see [`Fcs::plan_stats`]).
    ///
    /// ```
    /// use fcs::{Fcs, SolverKind};
    /// use particles::{PlaneSet, SystemBox, Vec3};
    ///
    /// simcomm::run(2, simcomm::MachineModel::ideal(), |comm| {
    ///     let r = comm.rank() as f64;
    ///     let pos = vec![Vec3::new(1.0 + r, 1.0, 1.0), Vec3::new(1.0 + r, 2.5, 2.0)];
    ///     let charge = vec![1.0, -1.0];
    ///     let id = vec![2 * comm.rank() as u64, 2 * comm.rank() as u64 + 1];
    ///
    ///     let mut h = Fcs::init(SolverKind::Fmm, comm.size());
    ///     h.set_common(SystemBox::cubic(4.0));
    ///     h.tune(comm, &pos, &charge);
    ///     h.set_resort(true);
    ///     h.run(comm, &pos, &charge, &id, usize::MAX);
    ///     assert!(h.resorted());
    ///
    ///     // Velocities and a per-particle tag follow the particles
    ///     // together, riding a single byte exchange.
    ///     let mut aux = PlaneSet::new();
    ///     let vel = aux.register::<Vec3>("vel");
    ///     let tag = aux.register::<u64>("tag");
    ///     aux.resize(2);
    ///     aux.plane_mut::<Vec3>(vel).fill(Vec3::new(r, 0.0, 0.0));
    ///     aux.plane_mut::<u64>(tag).copy_from_slice(&id);
    ///     h.resort_planes(comm, &mut aux);
    ///     assert_eq!(aux.len(), h.resort_len());
    /// });
    /// ```
    pub fn resort_planes(&mut self, comm: &mut Comm, set: &mut PlaneSet) {
        assert!(
            self.last_resorted,
            "resort functions require a successful Method B run (check resorted())"
        );
        assert_eq!(
            set.len(),
            self.last_resort_indices.len(),
            "plane set must match the original particle count"
        );
        let plan = self.current_resort_plan(comm);
        plan.execute_planes(comm, set);
    }

    /// `fcs_destroy`: release the solver instance. (Rust frees resources on
    /// drop; provided for interface parity.)
    pub fn destroy(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use particles::{local_set, InitialDistribution, IonicCrystal};
    use simcomm::{run, CartGrid, MachineModel};

    fn run_solver(
        kind: SolverKind,
        p: usize,
        resort: bool,
        dist: InitialDistribution,
    ) -> (f64, Vec<bool>) {
        let c = IonicCrystal::cubic(6, 1.0, 0.15, 4);
        let bbox = c.system_box();
        let out = run(p, MachineModel::ideal(), move |comm| {
            let dims = CartGrid::balanced(p).dims();
            let set = local_set(&c, dist, comm.rank(), p, dims);
            let mut h = Fcs::init(kind, p);
            h.set_common(bbox);
            h.set_tolerance(1e-3);
            h.tune(comm, set.pos(), set.charge());
            h.set_resort(resort);
            let o = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
            let e = 0.5 * o.potential.iter().zip(&o.charge).map(|(a, q)| a * q).sum::<f64>();
            (e, h.resorted())
        });
        let energy: f64 = out.results.iter().map(|&(e, _)| e).sum();
        let resorted: Vec<bool> = out.results.iter().map(|&(_, r)| r).collect();
        (energy, resorted)
    }

    #[test]
    fn all_solvers_agree_on_energy() {
        let (e_fmm, _) = run_solver(SolverKind::Fmm, 4, false, InitialDistribution::Random);
        let (e_pm, _) = run_solver(SolverKind::P2Nfft, 4, false, InitialDistribution::Random);
        let (e_ew, _) = run_solver(SolverKind::Ewald, 4, false, InitialDistribution::Random);
        // Ewald is the exact reference: the particle-mesh solver must match it
        // to its tolerance, the FMM (cell-pair minimum-image approximation of
        // periodicity) more loosely.
        let rel_pm = (e_pm - e_ew).abs() / e_ew.abs();
        assert!(rel_pm < 3e-3, "pm {e_pm} vs ewald {e_ew} (rel {rel_pm})");
        let rel_fmm = (e_fmm - e_ew).abs() / e_ew.abs();
        assert!(rel_fmm < 5e-2, "fmm {e_fmm} vs ewald {e_ew} (rel {rel_fmm})");
    }

    #[test]
    fn method_a_and_b_identical_energy_per_solver() {
        for kind in [SolverKind::Fmm, SolverKind::P2Nfft] {
            let (ea, ra) = run_solver(kind, 4, false, InitialDistribution::Grid);
            let (eb, rb) = run_solver(kind, 4, true, InitialDistribution::Grid);
            assert!(ra.iter().all(|&r| !r));
            assert!(rb.iter().all(|&r| r), "{kind:?} must resort");
            assert!((ea - eb).abs() < 1e-9 * ea.abs(), "{kind:?}: {ea} vs {eb}");
        }
    }

    #[test]
    fn resort_floats_follow_particles() {
        // Tag every particle with a float equal to its id; after a Method B
        // run + resort_floats, tags must line up with the returned ids.
        let c = IonicCrystal::cubic(6, 1.0, 0.2, 8);
        let bbox = c.system_box();
        let p = 8;
        for kind in [SolverKind::Fmm, SolverKind::P2Nfft] {
            let c = c.clone();
            run(p, MachineModel::ideal(), move |comm| {
                let set = local_set(&c, InitialDistribution::Random, comm.rank(), p, [2, 2, 2]);
                let mut h = Fcs::init(kind, p);
                h.set_common(bbox);
                h.tune(comm, set.pos(), set.charge());
                h.set_resort(true);
                let o = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
                assert!(h.resorted());
                let tags: Vec<f64> = set.id().iter().map(|&i| i as f64).collect();
                let moved = h.resort_floats(comm, &tags);
                assert_eq!(moved.len(), o.id.len());
                for (tag, id) in moved.iter().zip(&o.id) {
                    assert_eq!(*tag, *id as f64, "{kind:?}: tag must follow its particle");
                }
                // Vec3 resorting too.
                let vtags: Vec<Vec3> = set.id().iter().map(|&i| Vec3::splat(i as f64)).collect();
                let vmoved = h.resort_vec3(comm, &vtags);
                for (tag, id) in vmoved.iter().zip(&o.id) {
                    assert_eq!(tag.x(), *id as f64);
                }
            });
        }
    }

    #[test]
    fn soft_core_consistent_across_all_solvers() {
        // The short-range repulsive core is evaluated in three different
        // near-field implementations (FMM P2P, linked cells, Ewald ring);
        // total energies must agree. Ewald is exact; the fast solvers carry
        // their usual Coulomb approximation error on top.
        let c = IonicCrystal::cubic(4, 1.0, 0.2, 19);
        let bbox = c.system_box();
        let p = 4;
        let energy = |kind: SolverKind| -> f64 {
            let c = c.clone();
            let out = run(p, MachineModel::ideal(), move |comm| {
                let dims = CartGrid::balanced(p).dims();
                let set = local_set(&c, InitialDistribution::Grid, comm.rank(), p, dims);
                let mut h = Fcs::init(kind, p);
                h.set_common(bbox);
                h.set_tolerance(1e-3);
                h.set_soft_core(Some(particles::SoftCore::for_spacing(1.0)));
                h.tune(comm, set.pos(), set.charge());
                let o = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
                0.5 * o.potential.iter().zip(&o.charge).map(|(a, q)| a * q).sum::<f64>()
            });
            out.results.iter().sum()
        };
        let e_ewald = energy(SolverKind::Ewald);
        let e_pm = energy(SolverKind::P2Nfft);
        let e_fmm = energy(SolverKind::Fmm);
        assert!((e_pm - e_ewald).abs() < 5e-3 * e_ewald.abs(), "pm {e_pm} vs ewald {e_ewald}");
        assert!((e_fmm - e_ewald).abs() < 5e-2 * e_ewald.abs(), "fmm {e_fmm} vs ewald {e_ewald}");
        // The repulsion must actually contribute (jitter 0.2 creates close
        // pairs): energy with core differs from pure Coulomb.
        let pure = {
            let c = c.clone();
            let out = run(p, MachineModel::ideal(), move |comm| {
                let dims = CartGrid::balanced(p).dims();
                let set = local_set(&c, InitialDistribution::Grid, comm.rank(), p, dims);
                let mut h = Fcs::init(SolverKind::Ewald, p);
                h.set_common(bbox);
                h.set_tolerance(1e-3);
                h.tune(comm, set.pos(), set.charge());
                let o = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
                0.5 * o.potential.iter().zip(&o.charge).map(|(a, q)| a * q).sum::<f64>()
            });
            out.results.iter().sum::<f64>()
        };
        assert!(e_ewald > pure, "repulsion must raise the energy: {e_ewald} vs {pure}");
    }

    #[test]
    fn pencil_fft_identical_physics_through_interface() {
        let c = IonicCrystal::cubic(6, 1.0, 0.15, 4);
        let bbox = c.system_box();
        let p = 6; // P exceeds the balanced grid extent along z
        let energy = |pencil: bool| -> f64 {
            let c = c.clone();
            let out = run(p, MachineModel::ideal(), move |comm| {
                let dims = CartGrid::balanced(p).dims();
                let set = local_set(&c, InitialDistribution::Grid, comm.rank(), p, dims);
                let mut h = Fcs::init(SolverKind::P2Nfft, p);
                h.set_common(bbox);
                h.set_p2nfft_pencil(pencil);
                h.tune(comm, set.pos(), set.charge());
                let o = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
                0.5 * o.potential.iter().zip(&o.charge).map(|(a, q)| a * q).sum::<f64>()
            });
            out.results.iter().sum()
        };
        let slab = energy(false);
        let pencil = energy(true);
        assert!(
            (slab - pencil).abs() < 1e-9 * slab.abs(),
            "decompositions must agree: {slab} vs {pencil}"
        );
    }

    #[test]
    fn capacity_fallback_reports_not_resorted() {
        let c = IonicCrystal::cubic(4, 1.0, 0.1, 2);
        let bbox = c.system_box();
        let p = 4;
        run(p, MachineModel::ideal(), move |comm| {
            let set = local_set(&c, InitialDistribution::Random, comm.rank(), p, [2, 2, 1]);
            let mut h = Fcs::init(SolverKind::Fmm, p);
            h.set_common(bbox);
            h.tune(comm, set.pos(), set.charge());
            h.set_resort(true);
            let o = h.run(comm, set.pos(), set.charge(), set.id(), 0);
            assert!(!h.resorted(), "capacity 0 must force the fallback");
            assert_eq!(o.id, set.id(), "fallback restores the original order");
        });
    }

    #[test]
    fn solver_kind_parsing() {
        assert_eq!("fmm".parse::<SolverKind>().unwrap(), SolverKind::Fmm);
        assert_eq!("P2NFFT".parse::<SolverKind>().unwrap(), SolverKind::P2Nfft);
        assert_eq!("p3m".parse::<SolverKind>().unwrap(), SolverKind::P2Nfft);
        assert_eq!("ewald".parse::<SolverKind>().unwrap(), SolverKind::Ewald);
        assert!("barnes-hut".parse::<SolverKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "fcs_tune must be called before fcs_run")]
    fn run_without_tune_panics() {
        run(1, MachineModel::ideal(), |comm| {
            let mut h = Fcs::init(SolverKind::Fmm, 1);
            h.set_common(SystemBox::cubic(4.0));
            h.run(comm, &[], &[], &[], usize::MAX);
        });
    }

    #[test]
    #[should_panic(expected = "resort functions require")]
    fn resort_without_method_b_panics() {
        run(1, MachineModel::ideal(), |comm| {
            let c = IonicCrystal::cubic(2, 1.0, 0.0, 0);
            let set = local_set(&c, InitialDistribution::SingleProcess, 0, 1, [1, 1, 1]);
            let mut h = Fcs::init(SolverKind::Fmm, 1);
            h.set_common(c.system_box());
            h.tune(comm, set.pos(), set.charge());
            let _ = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
            let _ = h.resort_floats(comm, &[0.0; 8]);
        });
    }

    #[test]
    fn movement_hint_is_honoured_through_interface() {
        let c = IonicCrystal::cubic(6, 1.0, 0.1, 6);
        let bbox = c.system_box();
        let p = 8;
        run(p, MachineModel::ideal(), move |comm| {
            let dims = CartGrid::balanced(p).dims();
            let set = local_set(&c, InitialDistribution::Grid, comm.rank(), p, dims);
            let mut h = Fcs::init(SolverKind::P2Nfft, p);
            h.set_common(bbox);
            h.tune(comm, set.pos(), set.charge());
            h.set_resort(true);
            let o1 = h.run(comm, set.pos(), set.charge(), set.id(), usize::MAX);
            // Re-run from the solver distribution with a tiny movement hint.
            h.set_max_particle_move(Some(1e-6));
            let o2 = h.run(comm, &o1.pos, &o1.charge, &o1.id, usize::MAX);
            assert!(h.resorted());
            // Resorting through the neighbourhood path must work.
            let tags: Vec<f64> = o1.id.iter().map(|&i| i as f64).collect();
            let moved = h.resort_floats(comm, &tags);
            for (tag, id) in moved.iter().zip(&o2.id) {
                assert_eq!(*tag, *id as f64);
            }
        });
    }
}
