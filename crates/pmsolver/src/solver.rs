//! The parallel particle-mesh Ewald solver: Cartesian-grid domain
//! decomposition with fine-grained particle redistribution and ghost
//! duplication, linked-cell near field, FFT-mesh far field, and the paper's
//! two data redistribution paths.

use atasp::{
    alltoall_specific, alltoall_specific_dup, build_resort_indices_with, decode_index,
    encode_index, ExchangeMode, GHOST_INDEX,
};
use particles::{
    grid_cell_bounds, grid_rank_of, MovementHint, RedistMethod, SolverOutput, SolverTimings,
    SystemBox, Vec3,
};
use simcomm::{CartGrid, Comm, Work};

use crate::farfield::{FarFieldPlan, MeshDecomp};
use crate::nearfield::near_field;

/// One particle as transported by the particle-mesh solver. `origin` is the
/// 64-bit index value of the paper (source rank in the upper 32 bits, source
/// position in the lower 32) or [`GHOST_INDEX`] for ghost duplicates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PmParticle {
    /// Particle position.
    pub pos: Vec3,
    /// Particle charge.
    pub charge: f64,
    /// Application-level global particle id.
    pub id: u64,
    /// Origin code or [`GHOST_INDEX`].
    pub origin: u64,
}

/// A computed particle traveling back to its origin (Method A).
#[derive(Clone, Copy, Debug)]
struct ResultParticle {
    pos: Vec3,
    charge: f64,
    id: u64,
    origin: u64,
    potential: f64,
    field: Vec3,
}

/// Static configuration of the particle-mesh solver.
#[derive(Clone, Debug, PartialEq)]
pub struct PmConfig {
    /// Mesh points per dimension (power of two).
    pub mesh: usize,
    /// B-spline charge assignment order.
    pub assign_order: usize,
    /// Ewald splitting parameter.
    pub alpha: f64,
    /// Real-space cutoff radius.
    pub rcut: f64,
    /// Optional short-range repulsive core evaluated in the near field
    /// (see [`particles::coupling::SoftCore`]). `None` = pure Coulomb.
    pub soft_core: Option<particles::SoftCore>,
    /// Use the 2D pencil decomposition for the parallel FFT instead of 1D
    /// slabs (see [`MeshDecomp`]); recommended when the process count
    /// exceeds the mesh extent.
    pub pencil: bool,
}

impl PmConfig {
    /// Choose parameters for a target relative accuracy: the cutoff is taken
    /// as `desired_rcut` (capped by the minimum-image bound), the splitting
    /// parameter from `erfc(alpha * rcut) ~ eps`, and the mesh so the
    /// reciprocal-space truncation matches.
    pub fn tuned(bbox: &SystemBox, accuracy: f64, desired_rcut: f64) -> Self {
        let l = bbox.lengths;
        let lmin = l.x().min(l.y()).min(l.z());
        let rcut = desired_rcut.min(0.49 * lmin);
        let factor = (-accuracy.ln()).sqrt().max(1.5);
        let alpha = factor / rcut;
        let lmax = l.x().max(l.y()).max(l.z());
        // Two mesh constraints: the reciprocal-space Gaussian must be
        // truncated at the same accuracy (Nyquist >= 2 alpha * factor), and
        // the mesh spacing must resolve the Gaussian for the B-spline
        // assignment (alpha * h small enough for the chosen order).
        let kspace = 2.0 * alpha * factor * lmax / std::f64::consts::PI;
        let assign_order = if accuracy >= 1e-3 { 3 } else { 4 };
        let max_alpha_h = if accuracy >= 1e-3 { 0.6 } else { 0.4 };
        let resolve = alpha * lmax / max_alpha_h;
        let mesh_min = kspace.max(resolve).ceil() as usize;
        let mesh = mesh_min.next_power_of_two().clamp(8, 512);
        PmConfig { mesh, assign_order, alpha, rcut, soft_core: None, pencil: false }
    }
}

/// Report of one particle-mesh solver execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PmRunReport {
    /// Whether neighbourhood point-to-point communication replaced the
    /// collective all-to-all for the particle redistribution (Method B with
    /// limited movement).
    pub used_neighborhood: bool,
    /// Ghost particles received by this rank.
    pub ghosts_received: u64,
    /// Particles this rank sent away during the owner redistribution.
    pub redist_sent: u64,
    /// Near-field pair interactions evaluated.
    pub near_pairs: u64,
}

/// The parallel particle-mesh Ewald solver (P2NFFT stand-in).
///
/// One instance lives on every rank; all methods taking a [`Comm`] are
/// collective.
pub struct PmSolver {
    cfg: PmConfig,
    bbox: SystemBox,
    grid: CartGrid,
    /// Report of the most recent run.
    pub last_report: PmRunReport,
}

impl PmSolver {
    /// Create a solver for `nprocs` ranks arranged in a balanced 3D grid.
    /// The box must be fully periodic. The cutoff must not exceed the
    /// smallest subdomain width (ghost exchange uses one ring of neighbours).
    pub fn new(bbox: SystemBox, cfg: PmConfig, nprocs: usize) -> Self {
        assert!(bbox.fully_periodic(), "the particle-mesh solver needs a periodic box");
        assert!(cfg.mesh.is_power_of_two(), "mesh must be a power of two");
        let grid = CartGrid::balanced(nprocs);
        let dims = grid.dims();
        let min_width = (0..3)
            .map(|d| bbox.lengths[d] / dims[d] as f64)
            .fold(f64::INFINITY, f64::min);
        assert!(
            cfg.rcut <= min_width + 1e-12,
            "cutoff {rcut} exceeds the smallest subdomain width {min_width}; \
             use fewer processes or a smaller cutoff",
            rcut = cfg.rcut
        );
        PmSolver { cfg, bbox, grid, last_report: PmRunReport::default() }
    }

    /// The solver's configuration.
    pub fn config(&self) -> &PmConfig {
        &self.cfg
    }

    /// The process grid used for the domain decomposition.
    pub fn process_grid(&self) -> &CartGrid {
        &self.grid
    }

    /// Execute the solver; see [`fmm::FmmSolver::run`](https://docs.rs) for
    /// the shared semantics of `method`, `movement` and `max_local`.
    ///
    /// With limited movement (Method B), both the owner redistribution and
    /// the resort-index construction switch from collective all-to-all to
    /// neighbourhood point-to-point communication (paper Sect. III-B).
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        comm: &mut Comm,
        pos: &[Vec3],
        charge: &[f64],
        id: &[u64],
        method: RedistMethod,
        movement: MovementHint,
        max_local: usize,
    ) -> SolverOutput {
        let n_in = pos.len();
        assert_eq!(charge.len(), n_in);
        assert_eq!(id.len(), n_in);
        let me = comm.rank();
        assert_eq!(comm.size(), self.grid.size(), "world size must match the process grid");
        self.last_report = PmRunReport::default();
        let t_start = comm.clock();
        let dims = self.grid.dims();

        // Movement heuristic: limited movement keeps every particle's new
        // owner within the holder's direct grid neighbourhood.
        let min_width = (0..3)
            .map(|d| self.bbox.lengths[d] / dims[d] as f64)
            .fold(f64::INFINITY, f64::min);
        let use_neighborhood =
            method == RedistMethod::UseChanged && movement.is_some_and(|m| m < min_width);
        self.last_report.used_neighborhood = use_neighborhood;
        let neighbors = self.grid.neighbors26(me);
        let owner_mode = if use_neighborhood {
            ExchangeMode::Neighborhood(neighbors.clone())
        } else {
            ExchangeMode::Collective
        };

        // --- Redistribute particles to their subdomain owners ---
        comm.enter_phase("sort");
        let mut records: Vec<PmParticle> = Vec::with_capacity(n_in);
        let mut targets: Vec<usize> = Vec::with_capacity(n_in);
        for i in 0..n_in {
            records.push(PmParticle {
                pos: pos[i],
                charge: charge[i],
                id: id[i],
                origin: encode_index(me, i),
            });
            targets.push(grid_rank_of(dims, &self.bbox, pos[i]));
        }
        comm.compute(Work::ParticleOp, n_in as f64);
        self.last_report.redist_sent =
            targets.iter().filter(|&&t| t != me).count() as u64;
        let mut owned = alltoall_specific(comm, &records, &targets, &owner_mode);

        // --- Sort particles into linked-cell boxes (the solver-specific
        // local order; paper: "a reordering of the particles is performed on
        // each process") ---
        let (lo, hi) = grid_cell_bounds(dims, &self.bbox, me);
        let cell_key = |p: Vec3| -> u64 {
            let mut key = 0u64;
            for d in 0..3 {
                let w = self.cfg.rcut;
                let c = (((p[d] - lo[d]) / w).floor().max(0.0) as u64).min(255);
                key = key << 8 | c;
            }
            key
        };
        owned.sort_by_key(|r| cell_key(r.pos));
        comm.compute(
            Work::SortCmp,
            (owned.len().max(2) as f64) * (owned.len().max(2) as f64).log2(),
        );
        comm.exit_phase();

        // --- Ghost exchange: duplicate boundary particles to neighbours
        comm.enter_phase("ghosts");
        // within the cutoff (always point-to-point with the 26 grid
        // neighbours; ghosts are born with an invalid index value) ---
        let rcut = self.cfg.rcut;
        let ghost_mode = ExchangeMode::Neighborhood(neighbors.clone());
        let grid = self.grid.clone();
        let bbox = self.bbox;
        let ghosts: Vec<PmParticle> = alltoall_specific_dup(
            comm,
            &owned,
            |_, rec, out| {
                for ddx in -1..=1i64 {
                    for ddy in -1..=1i64 {
                        for ddz in -1..=1i64 {
                            if ddx == 0 && ddy == 0 && ddz == 0 {
                                continue;
                            }
                            let nb = grid.shifted_rank(me, [ddx as isize, ddy as isize, ddz as isize]);
                            if nb == me {
                                continue;
                            }
                            // Distance from the particle to the face/edge/
                            // corner adjoining that neighbour.
                            let mut dist2 = 0.0;
                            for (d, dd) in [ddx, ddy, ddz].into_iter().enumerate() {
                                let g = match dd {
                                    1 => hi[d] - rec.pos[d],
                                    -1 => rec.pos[d] - lo[d],
                                    _ => 0.0,
                                };
                                dist2 += g * g;
                            }
                            if dist2 <= rcut * rcut {
                                out.push((
                                    nb,
                                    PmParticle { origin: GHOST_INDEX, ..*rec },
                                ));
                            }
                        }
                    }
                }
            },
            &ghost_mode,
        );
        // A particle may reach the same neighbour through several offsets on
        // tiny grids; deduplicate by (id, position).
        let mut ghosts = ghosts;
        ghosts.sort_by_key(|a| a.id);
        ghosts.dedup_by(|a, b| a.id == b.id && a.pos == b.pos);
        self.last_report.ghosts_received = ghosts.len() as u64;
        let _ = bbox;
        comm.exit_phase();
        let t_sorted = comm.clock();

        // --- Near field (linked cells) + far field (mesh) ---
        comm.enter_phase("near");
        let owned_pos: Vec<Vec3> = owned.iter().map(|r| r.pos).collect();
        let owned_charge: Vec<f64> = owned.iter().map(|r| r.charge).collect();
        let ghost_pos: Vec<Vec3> = ghosts.iter().map(|r| r.pos).collect();
        let ghost_charge: Vec<f64> = ghosts.iter().map(|r| r.charge).collect();
        let (mut potential, mut field, pairs) = near_field(
            &self.bbox,
            self.cfg.alpha,
            self.cfg.rcut,
            self.cfg.soft_core,
            (lo, hi),
            &owned_pos,
            &owned_charge,
            &ghost_pos,
            &ghost_charge,
        );
        comm.compute(Work::Interaction, pairs as f64);
        self.last_report.near_pairs = pairs;
        comm.exit_phase();

        comm.enter_phase("far");
        let plan = FarFieldPlan {
            mesh: self.cfg.mesh,
            assign_order: self.cfg.assign_order,
            alpha: self.cfg.alpha,
            dims,
            bbox: self.bbox,
            decomp: if self.cfg.pencil {
                MeshDecomp::Pencil
            } else {
                MeshDecomp::Slab
            },
        };
        let (far_phi, far_field) = plan.execute(comm, &owned_pos, &owned_charge);
        for i in 0..owned.len() {
            potential[i] += far_phi[i];
            field[i] += far_field[i];
        }
        comm.exit_phase();
        // Synchronize before the redistribution phase so that compute load
        // imbalance is attributed to the computation, not to the timing of
        // the redistribution that happens to follow it.
        comm.barrier();
        let t_computed = comm.clock();

        // --- Redistribution back to the application ---
        match method {
            RedistMethod::RestoreOriginal => {
                comm.enter_phase("restore");
                let mut out = self.restore_original(comm, &owned, &potential, &field, n_in);
                comm.exit_phase();
                out.timings = SolverTimings {
                    sort: t_sorted - t_start,
                    compute: t_computed - t_sorted,
                    restore: comm.clock() - t_computed,
                    resort_create: 0.0,
                    total: comm.clock() - t_start,
                };
                out
            }
            RedistMethod::UseChanged => {
                let fits = owned.len() <= max_local;
                let all_fit = comm.allreduce(fits, |a, b| a && b);
                if !all_fit {
                    comm.enter_phase("restore");
                    let mut out = self.restore_original(comm, &owned, &potential, &field, n_in);
                    comm.exit_phase();
                    out.timings = SolverTimings {
                        sort: t_sorted - t_start,
                        compute: t_computed - t_sorted,
                        restore: comm.clock() - t_computed,
                        resort_create: 0.0,
                        total: comm.clock() - t_start,
                    };
                    return out;
                }
                let origin: Vec<u64> = owned.iter().map(|r| r.origin).collect();
                comm.enter_phase("resort");
                let resort_indices =
                    build_resort_indices_with(comm, &origin, n_in, &owner_mode);
                comm.exit_phase();
                let t_resort = comm.clock();
                SolverOutput {
                    pos: owned_pos,
                    charge: owned_charge,
                    id: owned.iter().map(|r| r.id).collect(),
                    potential,
                    field,
                    resorted: true,
                    resort_indices,
                    timings: SolverTimings {
                        sort: t_sorted - t_start,
                        compute: t_computed - t_sorted,
                        restore: 0.0,
                        resort_create: t_resort - t_computed,
                        total: comm.clock() - t_start,
                    },
                }
            }
        }
    }

    /// Route computed particles back to their origin rank and position.
    fn restore_original(
        &self,
        comm: &mut Comm,
        owned: &[PmParticle],
        potential: &[f64],
        field: &[Vec3],
        original_len: usize,
    ) -> SolverOutput {
        let results: Vec<ResultParticle> = owned
            .iter()
            .enumerate()
            .map(|(i, r)| ResultParticle {
                pos: r.pos,
                charge: r.charge,
                id: r.id,
                origin: r.origin,
                potential: potential[i],
                field: field[i],
            })
            .collect();
        let targets: Vec<usize> = owned.iter().map(|r| decode_index(r.origin).0).collect();
        let received = alltoall_specific(comm, &results, &targets, &ExchangeMode::Collective);
        assert_eq!(received.len(), original_len);
        let mut out = SolverOutput {
            pos: vec![Vec3::ZERO; original_len],
            charge: vec![0.0; original_len],
            id: vec![0; original_len],
            potential: vec![0.0; original_len],
            field: vec![Vec3::ZERO; original_len],
            resorted: false,
            resort_indices: Vec::new(),
            timings: SolverTimings::default(),
        };
        for r in received {
            let (_, pos_ix) = decode_index(r.origin);
            out.pos[pos_ix] = r.pos;
            out.charge[pos_ix] = r.charge;
            out.id[pos_ix] = r.id;
            out.potential[pos_ix] = r.potential;
            out.field[pos_ix] = r.field;
        }
        comm.compute(
            Work::ByteCopy,
            (original_len * std::mem::size_of::<ResultParticle>()) as f64,
        );
        out
    }
}
