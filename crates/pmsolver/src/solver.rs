//! The parallel particle-mesh Ewald solver: Cartesian-grid domain
//! decomposition with fine-grained particle redistribution and ghost
//! duplication, linked-cell near field, FFT-mesh far field, and the paper's
//! two data redistribution paths.

use atasp::{
    alltoall_specific, build_resort_indices_with, decode_index, encode_index, ExchangeMode,
    GHOST_INDEX,
};
use particles::{
    grid_cell_bounds, grid_rank_of, MovementHint, RedistMethod, SolverOutput, SolverTimings,
    SystemBox, Vec3,
};
use simcomm::{CartGrid, Comm, CommPlan, Work};

use crate::farfield::{FarFieldCache, FarFieldPlan, MeshDecomp};
use crate::nearfield::near_field;

// TEMP instrumentation

/// One particle as transported by the particle-mesh solver. `origin` is the
/// 64-bit index value of the paper (source rank in the upper 32 bits, source
/// position in the lower 32) or [`GHOST_INDEX`] for ghost duplicates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PmParticle {
    /// Particle position.
    pub pos: Vec3,
    /// Particle charge.
    pub charge: f64,
    /// Application-level global particle id.
    pub id: u64,
    /// Origin code or [`GHOST_INDEX`].
    pub origin: u64,
}

/// A computed particle traveling back to its origin (Method A).
#[derive(Clone, Copy, Debug)]
struct ResultParticle {
    pos: Vec3,
    charge: f64,
    id: u64,
    origin: u64,
    potential: f64,
    field: Vec3,
}

/// Static configuration of the particle-mesh solver.
#[derive(Clone, Debug, PartialEq)]
pub struct PmConfig {
    /// Mesh points per dimension (power of two).
    pub mesh: usize,
    /// B-spline charge assignment order.
    pub assign_order: usize,
    /// Ewald splitting parameter.
    pub alpha: f64,
    /// Real-space cutoff radius.
    pub rcut: f64,
    /// Optional short-range repulsive core evaluated in the near field
    /// (see [`particles::coupling::SoftCore`]). `None` = pure Coulomb.
    pub soft_core: Option<particles::SoftCore>,
    /// Use the 2D pencil decomposition for the parallel FFT instead of 1D
    /// slabs (see [`MeshDecomp`]); recommended when the process count
    /// exceeds the mesh extent.
    pub pencil: bool,
}

impl PmConfig {
    /// Choose parameters for a target relative accuracy: the cutoff is taken
    /// as `desired_rcut` (capped by the minimum-image bound), the splitting
    /// parameter from `erfc(alpha * rcut) ~ eps`, and the mesh so the
    /// reciprocal-space truncation matches.
    pub fn tuned(bbox: &SystemBox, accuracy: f64, desired_rcut: f64) -> Self {
        let l = bbox.lengths;
        let lmin = l.x().min(l.y()).min(l.z());
        let rcut = desired_rcut.min(0.49 * lmin);
        let factor = (-accuracy.ln()).sqrt().max(1.5);
        let alpha = factor / rcut;
        let lmax = l.x().max(l.y()).max(l.z());
        // Two mesh constraints: the reciprocal-space Gaussian must be
        // truncated at the same accuracy (Nyquist >= 2 alpha * factor), and
        // the mesh spacing must resolve the Gaussian for the B-spline
        // assignment (alpha * h small enough for the chosen order).
        let kspace = 2.0 * alpha * factor * lmax / std::f64::consts::PI;
        let assign_order = if accuracy >= 1e-3 { 3 } else { 4 };
        let max_alpha_h = if accuracy >= 1e-3 { 0.6 } else { 0.4 };
        let resolve = alpha * lmax / max_alpha_h;
        let mesh_min = kspace.max(resolve).ceil() as usize;
        let mesh = mesh_min.next_power_of_two().clamp(8, 512);
        PmConfig { mesh, assign_order, alpha, rcut, soft_core: None, pencil: false }
    }
}

/// Report of one particle-mesh solver execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PmRunReport {
    /// Whether neighbourhood point-to-point communication replaced the
    /// collective all-to-all for the particle redistribution (Method B with
    /// limited movement).
    pub used_neighborhood: bool,
    /// Ghost particles received by this rank.
    pub ghosts_received: u64,
    /// Particles this rank sent away during the owner redistribution.
    pub redist_sent: u64,
    /// Near-field pair interactions evaluated.
    pub near_pairs: u64,
    /// Whether this run re-executed the cached ghost plan (skin-margin ghost
    /// routes and linked-cell placement) instead of rebuilding it.
    pub ghost_plan_reused: bool,
    /// Whether the resort-index exchange was skipped because all ranks
    /// detected an identity placement (quiet timestep under a valid plan).
    pub resort_exchange_skipped: bool,
    /// Whether the movement-bound guard detected a particle whose new owner
    /// lies outside the 26-neighbourhood (the movement hint under-reported
    /// the real displacement) and fell back to the collective all-to-all for
    /// this step. Only ever set on fault-injected worlds; see
    /// [`PmSolver::run`].
    pub movement_guard_fallback: bool,
}

/// Message tag of the persistent ghost-exchange plan.
const TAG_GHOSTS: u64 = 0x67_686f_7374; // "ghost"

/// Rank-dependent, decomposition-static scaffolding of the ghost plan: the
/// 26-neighbourhood and everything derivable from it alone. Built once on the
/// first run (the solver learns its rank then) and kept for the lifetime of
/// the decomposition — this removes the per-step `neighbors26` recomputation
/// and the two per-step clones of the partner list the old code paid.
struct PlanStatics {
    rank: usize,
    /// Prebuilt neighbourhood exchange mode, borrowed every step.
    neighborhood_mode: ExchangeMode,
    /// Persistent message-layer plan for the ghost exchange (partner slots in
    /// [`CommPlan::partners`] order).
    comm_plan: CommPlan,
    /// Per partner slot: the 26-stencil offsets whose shifted rank aliases to
    /// that partner (several on tiny grids with periodic wrap). Merging the
    /// aliases *here* means a particle is emitted at most once per partner,
    /// so the receiver-side `sort`+`dedup` of the old code is gone entirely.
    ghost_routes: Vec<Vec<[i64; 3]>>,
    /// Total stencil offsets across all routes (the per-particle cost of one
    /// fresh route selection).
    n_offsets: usize,
}

/// One ghost-plan epoch: the frozen per-particle routing and placement of a
/// cached ghost plan, valid while the owned particle sequence is unchanged,
/// every particle is still in its linked cell, and the movement accumulated
/// since the epoch was built stays under the skin margin the ghost selection
/// over-approximated with.
struct GhostEpoch {
    /// Owned particle ids in solver (cell-sorted) order at build time.
    ids: Vec<u64>,
    /// Linked-cell keys of those particles at build time.
    keys: Vec<u64>,
    /// Per partner slot: owned indices (solver order) duplicated there.
    sends: Vec<Vec<u32>>,
    /// Selection margin headroom beyond the cutoff.
    skin: f64,
    /// Maximum-movement bounds accumulated since the epoch was built.
    acc_move: f64,
}

/// The parallel particle-mesh Ewald solver (P2NFFT stand-in).
///
/// One instance lives on every rank; all methods taking a [`Comm`] are
/// collective.
pub struct PmSolver {
    cfg: PmConfig,
    bbox: SystemBox,
    grid: CartGrid,
    /// Enable caching of ghost-plan epochs across timesteps (and the derived
    /// quiet-step shortcuts). When off, every run rebuilds from scratch — the
    /// pre-plan behaviour, kept as the benchmark baseline.
    plan_cache: bool,
    statics: Option<PlanStatics>,
    epoch: Option<GhostEpoch>,
    /// Cross-timestep spectral tables of the far field (influence function
    /// and wave vectors per local mesh point); host-side only, bitwise
    /// invisible to results and virtual clocks.
    far_cache: Option<FarFieldCache>,
    /// Ghost-plan epochs built (including rebuilds) over the solver lifetime.
    pub plan_builds: u64,
    /// Runs that re-executed a cached ghost-plan epoch.
    pub plan_hits: u64,
    /// Movement-bound guard fallbacks over the solver lifetime (neighbourhood
    /// exchanges abandoned for the collective all-to-all).
    pub guard_fallbacks: u64,
    /// Report of the most recent run.
    pub last_report: PmRunReport,
}

impl PmSolver {
    /// Create a solver for `nprocs` ranks arranged in a balanced 3D grid.
    /// The box must be fully periodic. The cutoff must not exceed the
    /// smallest subdomain width (ghost exchange uses one ring of neighbours).
    pub fn new(bbox: SystemBox, cfg: PmConfig, nprocs: usize) -> Self {
        assert!(bbox.fully_periodic(), "the particle-mesh solver needs a periodic box");
        assert!(cfg.mesh.is_power_of_two(), "mesh must be a power of two");
        let grid = CartGrid::balanced(nprocs);
        let dims = grid.dims();
        let min_width =
            (0..3).map(|d| bbox.lengths[d] / dims[d] as f64).fold(f64::INFINITY, f64::min);
        assert!(
            cfg.rcut <= min_width + 1e-12,
            "cutoff {rcut} exceeds the smallest subdomain width {min_width}; \
             use fewer processes or a smaller cutoff",
            rcut = cfg.rcut
        );
        PmSolver {
            cfg,
            bbox,
            grid,
            plan_cache: true,
            statics: None,
            epoch: None,
            far_cache: None,
            plan_builds: 0,
            plan_hits: 0,
            guard_fallbacks: 0,
            last_report: PmRunReport::default(),
        }
    }

    /// The solver's configuration.
    pub fn config(&self) -> &PmConfig {
        &self.cfg
    }

    /// The process grid used for the domain decomposition.
    pub fn process_grid(&self) -> &CartGrid {
        &self.grid
    }

    /// Enable or disable cross-timestep ghost-plan caching (on by default).
    /// Disabling drops any cached epoch and makes every run rebuild its
    /// communication schedule from scratch, which is the pre-plan behaviour.
    pub fn set_plan_cache(&mut self, enabled: bool) {
        self.plan_cache = enabled;
        if !enabled {
            self.epoch = None;
        }
    }

    /// Drop all cached cross-timestep planning state (the ghost-plan epoch
    /// with its accumulated-movement accounting). Recovery paths that rewind
    /// the simulation call this on every rank before replaying; plan state is
    /// bitwise invisible to the physics, so dropping it is always safe. The
    /// decomposition-static scaffolding (26-neighbourhood, persistent
    /// [`CommPlan`]) carries no movement state and is kept.
    pub fn invalidate_plans(&mut self) {
        self.epoch = None;
    }

    /// The prebuilt neighbourhood exchange mode of this rank (available after
    /// the first run; the partner list is fixed per decomposition).
    pub fn neighborhood_mode(&self) -> Option<&ExchangeMode> {
        self.statics.as_ref().map(|s| &s.neighborhood_mode)
    }

    /// Epoch lifetime the skin margin is sized for, in per-step maximum
    /// movements: the plan stays valid for about this many steps at the
    /// build-time drift rate. Larger values rebuild less often but duplicate
    /// a thicker (more expensive) boundary layer every step.
    const SKIN_STEPS: f64 = 8.0;

    /// The skin margin a cached ghost plan adds beyond the cutoff: sized for
    /// [`Self::SKIN_STEPS`] steps of the build-time movement bound, capped by
    /// the headroom to the smallest subdomain width and by half the cutoff
    /// (so the extra ghost volume stays bounded). Zero means the plan cannot
    /// be cached (the cutoff fills the subdomain, or nothing moves).
    fn ghost_skin(&self, movement: f64) -> f64 {
        let dims = self.grid.dims();
        let min_width =
            (0..3).map(|d| self.bbox.lengths[d] / dims[d] as f64).fold(f64::INFINITY, f64::min);
        ((min_width - self.cfg.rcut).max(0.0))
            .min(0.5 * self.cfg.rcut)
            .min(Self::SKIN_STEPS * movement)
    }

    /// Build the rank-dependent plan scaffolding (26-neighbourhood, alias
    /// routes, persistent message plan) on the first run.
    fn ensure_statics(&mut self, comm: &mut Comm) {
        let me = comm.rank();
        if self.statics.as_ref().is_some_and(|s| s.rank == me) {
            return;
        }
        let neighbors = self.grid.neighbors26(me);
        let comm_plan = comm.plan_exchange(neighbors.clone(), TAG_GHOSTS);
        let mut ghost_routes: Vec<Vec<[i64; 3]>> =
            comm_plan.partners().iter().map(|_| Vec::new()).collect();
        let mut n_offsets = 0usize;
        for ddx in -1..=1i64 {
            for ddy in -1..=1i64 {
                for ddz in -1..=1i64 {
                    if ddx == 0 && ddy == 0 && ddz == 0 {
                        continue;
                    }
                    let nb = self.grid.shifted_rank(me, [ddx as isize, ddy as isize, ddz as isize]);
                    if nb == me {
                        continue;
                    }
                    let slot = comm_plan
                        .partners()
                        .iter()
                        .position(|&q| q == nb)
                        .expect("shifted rank is a 26-neighbour");
                    ghost_routes[slot].push([ddx, ddy, ddz]);
                    n_offsets += 1;
                }
            }
        }
        self.statics = Some(PlanStatics {
            rank: me,
            neighborhood_mode: ExchangeMode::Neighborhood(neighbors),
            comm_plan,
            ghost_routes,
            n_offsets,
        });
        self.epoch = None;
    }

    /// Execute the solver; see [`fmm::FmmSolver::run`](https://docs.rs) for
    /// the shared semantics of `method`, `movement` and `max_local`.
    ///
    /// With limited movement (Method B), both the owner redistribution and
    /// the resort-index construction switch from collective all-to-all to
    /// neighbourhood point-to-point communication (paper Sect. III-B).
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        comm: &mut Comm,
        pos: &[Vec3],
        charge: &[f64],
        id: &[u64],
        method: RedistMethod,
        movement: MovementHint,
        max_local: usize,
    ) -> SolverOutput {
        let n_in = pos.len();
        assert_eq!(charge.len(), n_in);
        assert_eq!(id.len(), n_in);
        let me = comm.rank();
        assert_eq!(comm.size(), self.grid.size(), "world size must match the process grid");
        self.last_report = PmRunReport::default();
        self.ensure_statics(comm);
        let skin_bound =
            if self.plan_cache { movement.map_or(0.0, |m| self.ghost_skin(m)) } else { 0.0 };
        let t_start = comm.clock();
        let dims = self.grid.dims();
        let rcut = self.cfg.rcut;
        let bbox = self.bbox;

        // Movement heuristic: limited movement keeps every particle's new
        // owner within the holder's direct grid neighbourhood.
        let min_width =
            (0..3).map(|d| self.bbox.lengths[d] / dims[d] as f64).fold(f64::INFINITY, f64::min);
        let use_neighborhood =
            method == RedistMethod::UseChanged && movement.is_some_and(|m| m < min_width);
        self.last_report.used_neighborhood = use_neighborhood;
        let statics = self.statics.as_mut().expect("statics built above");
        let collective = ExchangeMode::Collective;
        // --- Redistribute particles to their subdomain owners ---
        comm.enter_phase("sort");
        let mut records: Vec<PmParticle> = Vec::with_capacity(n_in);
        let mut targets: Vec<usize> = Vec::with_capacity(n_in);
        for i in 0..n_in {
            records.push(PmParticle {
                pos: pos[i],
                charge: charge[i],
                id: id[i],
                origin: encode_index(me, i),
            });
            targets.push(grid_rank_of(dims, &bbox, pos[i]));
        }
        comm.compute(Work::ParticleOp, n_in as f64);
        self.last_report.redist_sent = targets.iter().filter(|&&t| t != me).count() as u64;
        // Movement-bound guard (fault-injected worlds only): a lying movement
        // hint can select the neighbourhood exchange while some particle's
        // new owner lies outside the 26-neighbourhood — the grouped exchange
        // would panic on the unreachable target. Check the claim against the
        // actual targets (one pass plus one allreduce, piggybacking the
        // existing capacity/quiet reduction pattern) and fall back to the
        // collective all-to-all for this step when any rank sees a
        // violation, dropping the cached ghost-plan epoch whose
        // accumulated-movement accounting the lie corrupted. Both exchange
        // modes deliver identical data (received particles are ordered by
        // source rank either way), so the fallback changes cost, never
        // results. Honest hints always pass: movement below the smallest
        // subdomain width cannot carry a particle past a direct neighbour.
        let mut use_neighborhood = use_neighborhood;
        if use_neighborhood && comm.fault_active() {
            let ExchangeMode::Neighborhood(neighbors) = &statics.neighborhood_mode else {
                unreachable!("statics always hold a neighbourhood mode")
            };
            let ok_local = targets.iter().all(|&t| t == me || neighbors.contains(&t));
            comm.compute(Work::ParticleOp, n_in as f64);
            if !comm.allreduce(ok_local, |a, b| a && b) {
                use_neighborhood = false;
                self.last_report.used_neighborhood = false;
                self.last_report.movement_guard_fallback = true;
                self.guard_fallbacks += 1;
                self.epoch = None;
            }
        }
        let mut owned = alltoall_specific(
            comm,
            &records,
            &targets,
            if use_neighborhood { &statics.neighborhood_mode } else { &collective },
        );

        // --- Sort particles into linked-cell boxes (the solver-specific
        // local order; paper: "a reordering of the particles is performed on
        // each process") ---
        //
        // With a cached plan epoch, the placement permutation is part of the
        // plan: if the owned sequence is unchanged and every particle is
        // still in its linked cell (and the accumulated movement stays under
        // the epoch's skin), the data is already in solver order — the sort
        // and the ghost route selection are both skipped and the frozen
        // routes re-executed.
        let (lo, hi) = grid_cell_bounds(dims, &bbox, me);
        let cell_key = |p: Vec3| -> u64 {
            let mut key = 0u64;
            for d in 0..3 {
                let c = (((p[d] - lo[d]) / rcut).floor().max(0.0) as u64).min(255);
                key = key << 8 | c;
            }
            key
        };
        let keys: Vec<u64> = owned.iter().map(|r| cell_key(r.pos)).collect();
        comm.compute(Work::ParticleOp, owned.len() as f64);
        let plan_cache = self.plan_cache;
        let epoch_hit = match (&mut self.epoch, movement) {
            (Some(ep), Some(m)) if plan_cache => {
                let valid = ep.acc_move + m <= ep.skin
                    && ep.ids.len() == owned.len()
                    && ep.keys == keys
                    && ep.ids.iter().zip(&owned).all(|(&eid, r)| eid == r.id);
                if valid {
                    ep.acc_move += m;
                }
                valid
            }
            _ => false,
        };
        if !epoch_hit {
            owned.sort_by_key(|r| cell_key(r.pos));
            comm.compute(
                Work::SortCmp,
                (owned.len().max(2) as f64) * (owned.len().max(2) as f64).log2(),
            );
        }
        comm.exit_phase();

        // --- Ghost exchange: duplicate boundary particles to neighbours
        // within the cutoff plus the plan's skin margin (always
        // point-to-point with the 26 grid neighbours via the persistent
        // [`CommPlan`]; ghosts are born with an invalid index value).
        //
        // The skin over-approximates the selection: every particle within
        // `rcut + skin` of a boundary is duplicated, so the routes stay a
        // superset of the needed ghosts while total movement since the epoch
        // build is below the skin. Beyond-cutoff ghosts contribute nothing to
        // the near field (pairs are filtered by `rcut` exactly), and the
        // relative order of contributing ghosts is the frozen emission order
        // either way — results are bitwise identical to a fresh rebuild.
        comm.enter_phase("ghosts");
        let t_plan = comm.clock();
        let fresh_sends: Option<Vec<Vec<u32>>> = if epoch_hit {
            None
        } else {
            // Fresh route selection over the merged alias offsets (at most
            // one emission per particle and partner — the receiver never
            // needs to deduplicate).
            let margin = rcut + skin_bound;
            let mut sends: Vec<Vec<u32>> =
                statics.ghost_routes.iter().map(|_| Vec::new()).collect();
            for (j, rec) in owned.iter().enumerate() {
                for (slot, offsets) in statics.ghost_routes.iter().enumerate() {
                    let reached = offsets.iter().any(|&[ddx, ddy, ddz]| {
                        let mut dist2 = 0.0;
                        for (d, dd) in [ddx, ddy, ddz].into_iter().enumerate() {
                            let g = match dd {
                                1 => hi[d] - rec.pos[d],
                                -1 => rec.pos[d] - lo[d],
                                _ => 0.0,
                            };
                            dist2 += g * g;
                        }
                        dist2 <= margin * margin
                    });
                    if reached {
                        sends[slot].push(j as u32);
                    }
                }
            }
            comm.compute(Work::ParticleOp, (owned.len() * statics.n_offsets) as f64);
            Some(sends)
        };
        match fresh_sends {
            None => {
                self.last_report.ghost_plan_reused = true;
                self.plan_hits += 1;
            }
            Some(sends) => {
                // Snapshot the epoch when caching is possible: the sorted id
                // sequence and cell keys pin the placement, the skin bounds
                // the route validity under movement.
                if plan_cache && movement.is_some() && skin_bound > 0.0 {
                    self.plan_builds += 1;
                    // Epoch snapshot (keys recomputed in solver order).
                    comm.compute(Work::ParticleOp, owned.len() as f64);
                    let route_bytes: u64 = sends.iter().map(|s| (s.len() * 4 + 8) as u64).sum();
                    self.epoch = Some(GhostEpoch {
                        ids: owned.iter().map(|r| r.id).collect(),
                        keys: owned.iter().map(|r| cell_key(r.pos)).collect(),
                        sends,
                        skin: skin_bound,
                        acc_move: 0.0,
                    });
                    comm.note_plan_build(t_plan, route_bytes);
                } else {
                    self.epoch = Some(GhostEpoch {
                        ids: Vec::new(),
                        keys: Vec::new(),
                        sends,
                        skin: -1.0,
                        acc_move: 0.0,
                    });
                }
            }
        }
        let epoch = self.epoch.as_ref().expect("epoch set above");
        let sends = &epoch.sends;
        if epoch.skin >= 0.0 {
            // One route-plan execution per step in cacheable mode (hit or
            // just rebuilt), pairing the `plan_build` above — the partner
            // schedule's own execution is counted by `CommPlan::execute`.
            let route_bytes: u64 = sends.iter().map(|s| (s.len() * 4 + 8) as u64).sum();
            comm.note_plan_exec(t_plan, route_bytes);
        }
        let mut routed_bytes = 0u64;
        let bufs: Vec<Vec<PmParticle>> = sends
            .iter()
            .map(|ix| {
                routed_bytes += (ix.len() * std::mem::size_of::<PmParticle>()) as u64;
                ix.iter()
                    .map(|&j| PmParticle { origin: GHOST_INDEX, ..owned[j as usize] })
                    .collect()
            })
            .collect();
        comm.compute(Work::ByteCopy, routed_bytes as f64);
        let received = statics.comm_plan.execute(comm, bufs);
        let ghosts: Vec<PmParticle> = received.into_iter().flatten().collect();
        self.last_report.ghosts_received = ghosts.len() as u64;
        comm.exit_phase();
        let t_sorted = comm.clock();

        // --- Near field (linked cells) + far field (mesh) ---
        comm.enter_phase("near");
        let owned_pos: Vec<Vec3> = owned.iter().map(|r| r.pos).collect();
        let owned_charge: Vec<f64> = owned.iter().map(|r| r.charge).collect();
        let ghost_pos: Vec<Vec3> = ghosts.iter().map(|r| r.pos).collect();
        let ghost_charge: Vec<f64> = ghosts.iter().map(|r| r.charge).collect();
        let (mut potential, mut field, pairs) = near_field(
            &self.bbox,
            self.cfg.alpha,
            self.cfg.rcut,
            self.cfg.soft_core,
            (lo, hi),
            &owned_pos,
            &owned_charge,
            &ghost_pos,
            &ghost_charge,
        );
        comm.compute(Work::Interaction, pairs as f64);
        self.last_report.near_pairs = pairs;
        comm.exit_phase();

        comm.enter_phase("far");
        let plan = FarFieldPlan {
            mesh: self.cfg.mesh,
            assign_order: self.cfg.assign_order,
            alpha: self.cfg.alpha,
            dims,
            bbox: self.bbox,
            decomp: if self.cfg.pencil { MeshDecomp::Pencil } else { MeshDecomp::Slab },
        };
        let (far_phi, far_field) =
            plan.execute_cached(comm, &owned_pos, &owned_charge, &mut self.far_cache);
        for i in 0..owned.len() {
            potential[i] += far_phi[i];
            field[i] += far_field[i];
        }
        comm.exit_phase();
        // Synchronize before the redistribution phase so that compute load
        // imbalance is attributed to the computation, not to the timing of
        // the redistribution that happens to follow it.
        comm.barrier();
        let t_computed = comm.clock();

        // --- Redistribution back to the application ---
        match method {
            RedistMethod::RestoreOriginal => {
                comm.enter_phase("restore");
                let mut out = self.restore_original(comm, &owned, &potential, &field, n_in);
                comm.exit_phase();
                out.timings = SolverTimings {
                    sort: t_sorted - t_start,
                    compute: t_computed - t_sorted,
                    restore: comm.clock() - t_computed,
                    resort_create: 0.0,
                    total: comm.clock() - t_start,
                };
                out
            }
            RedistMethod::UseChanged => {
                let fits = owned.len() <= max_local;
                // Quiet-step detection (piggybacked on the fit allreduce so it
                // costs no extra collective): if every rank kept exactly its
                // original particles in their original order, the resort
                // indices are the identity and the index exchange is skipped.
                let quiet = self.plan_cache
                    && owned.len() == n_in
                    && owned.iter().enumerate().all(|(i, r)| r.origin == encode_index(me, i));
                comm.compute(Work::ParticleOp, owned.len() as f64);
                let (all_fit, all_quiet) =
                    comm.allreduce((fits, quiet), |a, b| (a.0 && b.0, a.1 && b.1));
                if !all_fit {
                    comm.enter_phase("restore");
                    let mut out = self.restore_original(comm, &owned, &potential, &field, n_in);
                    comm.exit_phase();
                    out.timings = SolverTimings {
                        sort: t_sorted - t_start,
                        compute: t_computed - t_sorted,
                        restore: comm.clock() - t_computed,
                        resort_create: 0.0,
                        total: comm.clock() - t_start,
                    };
                    return out;
                }
                comm.enter_phase("resort");
                let resort_indices: Vec<u64> = if all_quiet {
                    self.last_report.resort_exchange_skipped = true;
                    comm.compute(Work::ByteCopy, (n_in * 8) as f64);
                    (0..n_in).map(|i| encode_index(me, i)).collect()
                } else {
                    let origin: Vec<u64> = owned.iter().map(|r| r.origin).collect();
                    let owner_mode: &ExchangeMode = if use_neighborhood {
                        &self.statics.as_ref().expect("statics built above").neighborhood_mode
                    } else {
                        &collective
                    };
                    build_resort_indices_with(comm, &origin, n_in, owner_mode)
                };
                comm.exit_phase();
                let t_resort = comm.clock();
                SolverOutput {
                    pos: owned_pos,
                    charge: owned_charge,
                    id: owned.iter().map(|r| r.id).collect(),
                    potential,
                    field,
                    resorted: true,
                    resort_indices,
                    timings: SolverTimings {
                        sort: t_sorted - t_start,
                        compute: t_computed - t_sorted,
                        restore: 0.0,
                        resort_create: t_resort - t_computed,
                        total: comm.clock() - t_start,
                    },
                }
            }
        }
    }

    /// Route computed particles back to their origin rank and position.
    fn restore_original(
        &self,
        comm: &mut Comm,
        owned: &[PmParticle],
        potential: &[f64],
        field: &[Vec3],
        original_len: usize,
    ) -> SolverOutput {
        let results: Vec<ResultParticle> = owned
            .iter()
            .enumerate()
            .map(|(i, r)| ResultParticle {
                pos: r.pos,
                charge: r.charge,
                id: r.id,
                origin: r.origin,
                potential: potential[i],
                field: field[i],
            })
            .collect();
        let targets: Vec<usize> = owned.iter().map(|r| decode_index(r.origin).0).collect();
        let received = alltoall_specific(comm, &results, &targets, &ExchangeMode::Collective);
        assert_eq!(received.len(), original_len);
        let mut out = SolverOutput {
            pos: vec![Vec3::ZERO; original_len],
            charge: vec![0.0; original_len],
            id: vec![0; original_len],
            potential: vec![0.0; original_len],
            field: vec![Vec3::ZERO; original_len],
            resorted: false,
            resort_indices: Vec::new(),
            timings: SolverTimings::default(),
        };
        for r in received {
            let (_, pos_ix) = decode_index(r.origin);
            out.pos[pos_ix] = r.pos;
            out.charge[pos_ix] = r.charge;
            out.id[pos_ix] = r.id;
            out.potential[pos_ix] = r.potential;
            out.field[pos_ix] = r.field;
        }
        comm.compute(Work::ByteCopy, (original_len * std::mem::size_of::<ResultParticle>()) as f64);
        out
    }
}
