//! The Fourier-space (far-field) part of the particle-mesh Ewald solver:
//! B-spline charge assignment onto a global mesh, a slab-decomposed
//! distributed 3D FFT (from scratch), multiplication with the influence
//! function (Ewald Green's function with double B-spline deconvolution and
//! ik differentiation for the field), and back-interpolation to particles.
//!
//! Layouts:
//! * particles live on a 3D Cartesian process grid (the solver's domain
//!   decomposition);
//! * the mesh is redistributed into **x-slabs** for the first 2D transform,
//!   transposed into **y-slabs** for the transform along x, and the inverse
//!   path mirrors this — the transpose steps are the communication pattern
//!   of parallel FFT-based solvers (cf. the paper's P2NFFT).

use std::collections::HashMap;

use particles::{SystemBox, Vec3};
use simcomm::{Comm, Work};

use crate::bspline::{bspline_hat, stencil};
use crate::fft::{fft_in_place, Complex, Direction};

/// How the mesh is distributed for the parallel FFT.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MeshDecomp {
    /// 1D slabs along x: simplest, but at `P > mesh` only `mesh` ranks carry
    /// transform work (the compute-imbalance limitation noted in DESIGN.md).
    #[default]
    Slab,
    /// 2D pencils: the `P` ranks form a `p1 x p2` grid owning `(x, y)`,
    /// `(x, z)` and `(y, z)` rectangles in the three transform stages — the
    /// decomposition the real P2NFFT uses, keeping all ranks busy up to
    /// `P = mesh^2`.
    Pencil,
}

/// Cross-timestep cache of the far field's spectral tables: the
/// Hockney-Eastwood influence function and the (Nyquist-zeroed) wave vector
/// at every spectral mesh point this rank owns, in the traversal order of
/// the owning decomposition. Both are pure functions of the plan geometry
/// (mesh, assignment order, splitting parameter, box) and the rank layout,
/// so one table serves every timestep of a simulation; the solver keeps one
/// per [`crate::PmSolver`] and threads it through
/// [`FarFieldPlan::execute_cached`].
pub struct FarFieldCache {
    /// (decomp, rank, world size, mesh) the table was built for.
    key: (MeshDecomp, usize, usize, usize),
    /// `(G_opt, k)` per locally owned spectral point.
    spec: Vec<(f64, Vec3)>,
}

/// Geometry/layout of the distributed mesh computation.
#[derive(Clone, Debug)]
pub struct FarFieldPlan {
    /// Mesh points per dimension (power of two).
    pub mesh: usize,
    /// B-spline assignment order.
    pub assign_order: usize,
    /// Ewald splitting parameter.
    pub alpha: f64,
    /// Process grid extents.
    pub dims: [usize; 3],
    /// The system box.
    pub bbox: SystemBox,
    /// Mesh distribution for the parallel FFT.
    pub decomp: MeshDecomp,
}

impl FarFieldPlan {
    /// Index range `[lo, hi)` of grid coordinate `c` along dimension `d`.
    fn dim_range(&self, d: usize, c: usize) -> (usize, usize) {
        (c * self.mesh / self.dims[d], (c + 1) * self.mesh / self.dims[d])
    }

    /// Grid coordinate owning mesh index `i` along dimension `d`.
    #[cfg_attr(not(test), allow(dead_code))]
    fn dim_owner(&self, d: usize, i: usize) -> usize {
        // Floor ranges: coordinate c owns [c*M/D, (c+1)*M/D). Find c by a
        // guarded division.
        let dd = self.dims[d];
        let mut c = (i * dd) / self.mesh;
        while self.dim_range(d, c).1 <= i {
            c += 1;
        }
        while self.dim_range(d, c).0 > i {
            c -= 1;
        }
        c
    }

    /// Rank owning the grid cell with coordinates `c` (row-major).
    fn grid_rank(&self, c: [usize; 3]) -> usize {
        c[0] * self.dims[1] * self.dims[2] + c[1] * self.dims[2] + c[2]
    }

    /// x-slab `[lo, hi)` of `rank` in a world of `p` ranks.
    fn slab_range(&self, rank: usize, p: usize) -> (usize, usize) {
        (rank * self.mesh / p, (rank + 1) * self.mesh / p)
    }

    /// Rank owning x-plane `x` in a world of `p` ranks.
    fn slab_owner(&self, x: usize, p: usize) -> usize {
        let mut r = x * p / self.mesh;
        while self.slab_range(r, p).1 <= x {
            r += 1;
        }
        while self.slab_range(r, p).0 > x {
            r -= 1;
        }
        r
    }

    #[inline]
    fn pack(&self, i: usize, j: usize, k: usize) -> u64 {
        ((i * self.mesh + j) * self.mesh + k) as u64
    }

    #[inline]
    fn unpack(&self, p: u64) -> (usize, usize, usize) {
        let m = self.mesh as u64;
        ((p / (m * m)) as usize, ((p / m) % m) as usize, (p % m) as usize)
    }

    /// Signed integer frequency of mesh index `i`.
    #[inline]
    fn freq(&self, i: usize) -> i64 {
        if i <= self.mesh / 2 {
            i as i64
        } else {
            i as i64 - self.mesh as i64
        }
    }

    /// The Hockney-Eastwood *optimal* influence function at integer
    /// frequencies `(mx, my, mz)`:
    ///
    /// `G_opt(k) = sum_s W_hat(k_s)^2 G_true(k_s) / (sum_s W_hat(k_s)^2)^2`
    ///
    /// where `k_s` runs over the first aliasing images (`s` in `{-1,0,1}^3`)
    /// and `G_true(k) = 4 pi exp(-k^2/4 alpha^2) / (k^2 V)`. Compared to the
    /// plain double deconvolution, this suppresses the B-spline aliasing
    /// error near the Nyquist frequency by orders of magnitude. Zero at k=0.
    fn influence(&self, mx: i64, my: i64, mz: i64) -> f64 {
        if mx == 0 && my == 0 && mz == 0 {
            return 0.0;
        }
        let l = self.bbox.lengths;
        let two_pi = 2.0 * std::f64::consts::PI;
        let v = self.bbox.volume();
        let m = self.mesh as i64;
        let mut num = 0.0;
        let mut den = 0.0;
        for sx in -1..=1i64 {
            for sy in -1..=1i64 {
                for sz in -1..=1i64 {
                    let ax = mx + sx * m;
                    let ay = my + sy * m;
                    let az = mz + sz * m;
                    let w = bspline_hat(self.assign_order, ax, self.mesh)
                        * bspline_hat(self.assign_order, ay, self.mesh)
                        * bspline_hat(self.assign_order, az, self.mesh);
                    let w2 = w * w;
                    den += w2;
                    let kx = two_pi * ax as f64 / l.x();
                    let ky = two_pi * ay as f64 / l.y();
                    let kz = two_pi * az as f64 / l.z();
                    let k2 = kx * kx + ky * ky + kz * kz;
                    if k2 > 0.0 {
                        let g = 4.0
                            * std::f64::consts::PI
                            * (-k2 / (4.0 * self.alpha * self.alpha)).exp()
                            / (k2 * v);
                        num += w2 * g;
                    }
                }
            }
        }
        num / (den * den)
    }

    /// Physical wave vector of integer frequencies, with the Nyquist
    /// component zeroed for differentiation (keeps the ik-differentiated
    /// field real).
    fn kvec(&self, mx: i64, my: i64, mz: i64) -> Vec3 {
        let l = self.bbox.lengths;
        let two_pi = 2.0 * std::f64::consts::PI;
        let ny = (self.mesh / 2) as i64;
        let f = |m: i64, len: f64| if m == ny || m == -ny { 0.0 } else { two_pi * m as f64 / len };
        Vec3::new(f(mx, l.x()), f(my, l.y()), f(mz, l.z()))
    }
    /// Compute potentials and fields at the owned particle positions.
    ///
    /// Collective: all ranks must call it with their local particles.
    pub fn execute(&self, comm: &mut Comm, pos: &[Vec3], charge: &[f64]) -> (Vec<f64>, Vec<Vec3>) {
        let mut cache = None;
        self.execute_cached(comm, pos, charge, &mut cache)
    }

    /// [`Self::execute`] with a caller-held cross-timestep cache of the
    /// spectral tables (see [`FarFieldCache`]). The cache is validated
    /// against the plan geometry and rank layout and rebuilt on mismatch, so
    /// passing a stale cache is safe; a hit skips the per-point
    /// Hockney-Eastwood influence evaluation (27 aliasing images with three
    /// `bspline_hat` calls each), which dominates the host cost of small
    /// meshes. Results are bitwise identical with or without a cache — the
    /// table stores the exact values the fresh evaluation produces, and the
    /// modelled (virtual) compute cost is charged identically either way.
    pub fn execute_cached(
        &self,
        comm: &mut Comm,
        pos: &[Vec3],
        charge: &[f64],
        cache: &mut Option<FarFieldCache>,
    ) -> (Vec<f64>, Vec<Vec3>) {
        match self.decomp {
            MeshDecomp::Slab => self.execute_slab(comm, pos, charge, cache),
            MeshDecomp::Pencil => self.execute_pencil(comm, pos, charge, cache),
        }
    }

    /// Fetch the cached spectral table for this plan/layout, rebuilding it
    /// with `build` when absent or built for a different geometry.
    fn spectral_table<'c>(
        &self,
        cache: &'c mut Option<FarFieldCache>,
        me: usize,
        p: usize,
        build: impl FnOnce() -> Vec<(f64, Vec3)>,
    ) -> &'c [(f64, Vec3)] {
        let key = (self.decomp, me, p, self.mesh);
        if !cache.as_ref().is_some_and(|c| c.key == key) {
            *cache = Some(FarFieldCache { key, spec: build() });
        }
        &cache.as_ref().expect("cache filled above").spec
    }

    /// B-spline charge assignment: sparse per-mesh-point contributions of the
    /// local particles.
    fn assign_charges(&self, comm: &mut Comm, pos: &[Vec3], charge: &[f64]) -> HashMap<u64, f64> {
        let m = self.mesh;
        let order = self.assign_order;
        let mut contrib: HashMap<u64, f64> = HashMap::new();
        let mut wx = vec![0.0; order];
        let mut wy = vec![0.0; order];
        let mut wz = vec![0.0; order];
        for (x, &q) in pos.iter().zip(charge) {
            let t = self.bbox.normalized(*x);
            let fx = stencil(order, t.x() * m as f64, &mut wx);
            let fy = stencil(order, t.y() * m as f64, &mut wy);
            let fz = stencil(order, t.z() * m as f64, &mut wz);
            for (a, &wxa) in wx.iter().enumerate() {
                let gi = (fx + a as i64).rem_euclid(m as i64) as usize;
                for (b, &wyb) in wy.iter().enumerate() {
                    let gj = (fy + b as i64).rem_euclid(m as i64) as usize;
                    let part = q * wxa * wyb;
                    for (c, &wzc) in wz.iter().enumerate() {
                        let gk = (fz + c as i64).rem_euclid(m as i64) as usize;
                        *contrib.entry(self.pack(gi, gj, gk)).or_insert(0.0) += part * wzc;
                    }
                }
            }
        }
        comm.compute(Work::MeshPoint, (pos.len() * order * order * order) as f64);
        contrib
    }

    /// Distribute computed mesh values (phi, Ex, Ey, Ez per point) to the
    /// interpolation patches of the particle-grid owners, then interpolate
    /// potentials/fields at the local particles and apply the self-energy
    /// correction.
    fn distribute_and_interpolate(
        &self,
        comm: &mut Comm,
        owned_points: Vec<(u64, [f64; 4])>,
        pos: &[Vec3],
        charge: &[f64],
    ) -> (Vec<f64>, Vec<Vec3>) {
        let m = self.mesh;
        let order = self.assign_order;
        // Per-dimension: which grid coordinates need mesh index i (their
        // interior range expanded by the assignment order, wrapped)?
        let mut needers: [Vec<Vec<usize>>; 3] =
            [vec![Vec::new(); m], vec![Vec::new(); m], vec![Vec::new(); m]];
        for (d, need_d) in needers.iter_mut().enumerate() {
            for c in 0..self.dims[d] {
                let (lo, hi) = self.dim_range(d, c);
                if lo == hi {
                    continue;
                }
                for off in -(order as i64)..(hi - lo) as i64 + order as i64 {
                    let i = (lo as i64 + off).rem_euclid(m as i64) as usize;
                    if !need_d[i].contains(&c) {
                        need_d[i].push(c);
                    }
                }
            }
        }
        // Destination-indexed send lists (dense; empty partner buffers are
        // skipped by `alltoallv`'s sparse fast path, so passing them costs
        // nothing) — no per-point hashing.
        let p = comm.size();
        let mut sends: Vec<Vec<(u64, [f64; 4])>> = vec![Vec::new(); p];
        for (idx, rec) in owned_points {
            let (i, j, k) = self.unpack(idx);
            for &cx in &needers[0][i] {
                for &cy in &needers[1][j] {
                    for &cz in &needers[2][k] {
                        sends[self.grid_rank([cx, cy, cz])].push((idx, rec));
                    }
                }
            }
        }
        let received = comm.alltoallv(sends.into_iter().enumerate().collect());

        // Dense interpolation patch over this rank's wrapped mesh window
        // (its particle-grid range expanded by the assignment order per
        // dimension), replacing a point-keyed hash map: `maps[d][i]` is the
        // in-window offset of global mesh index `i`, or `u32::MAX` outside.
        let me = comm.rank();
        let my_c = [
            me / (self.dims[1] * self.dims[2]),
            (me / self.dims[2]) % self.dims[1],
            me % self.dims[2],
        ];
        let mut ext = [0usize; 3];
        let mut maps: [Vec<u32>; 3] = [vec![u32::MAX; m], vec![u32::MAX; m], vec![u32::MAX; m]];
        for d in 0..3 {
            let (lo, hi) = self.dim_range(d, my_c[d]);
            ext[d] = ((hi - lo) + 2 * order).min(m);
            let w0 = (lo as i64 - order as i64).rem_euclid(m as i64) as usize;
            for off in 0..ext[d] {
                maps[d][(w0 + off) % m] = off as u32;
            }
        }
        let mut patch = vec![[0.0f64; 4]; ext[0] * ext[1] * ext[2]];
        let mut filled = vec![false; patch.len()];
        for (_src, buf) in received {
            for (idx, v) in buf {
                let (i, j, k) = self.unpack(idx);
                let (ox, oy, oz) = (maps[0][i], maps[1][j], maps[2][k]);
                assert!(
                    ox != u32::MAX && oy != u32::MAX && oz != u32::MAX,
                    "mesh point ({i},{j},{k}) outside the interpolation window"
                );
                let o = (ox as usize * ext[1] + oy as usize) * ext[2] + oz as usize;
                patch[o] = v;
                filled[o] = true;
            }
        }

        let mut phi = vec![0.0; pos.len()];
        let mut field = vec![Vec3::ZERO; pos.len()];
        let mut wx = vec![0.0; order];
        let mut wy = vec![0.0; order];
        let mut wz = vec![0.0; order];
        for (pi, x) in pos.iter().enumerate() {
            let t = self.bbox.normalized(*x);
            let fx = stencil(order, t.x() * m as f64, &mut wx);
            let fy = stencil(order, t.y() * m as f64, &mut wy);
            let fz = stencil(order, t.z() * m as f64, &mut wz);
            for (a, &wxa) in wx.iter().enumerate() {
                let gi = (fx + a as i64).rem_euclid(m as i64) as usize;
                let ox = maps[0][gi] as usize;
                for (b, &wyb) in wy.iter().enumerate() {
                    let gj = (fy + b as i64).rem_euclid(m as i64) as usize;
                    let oy = maps[1][gj] as usize;
                    let wab = wxa * wyb;
                    for (c, &wzc) in wz.iter().enumerate() {
                        let gk = (fz + c as i64).rem_euclid(m as i64) as usize;
                        let oz = maps[2][gk] as usize;
                        let w = wab * wzc;
                        let o = (ox * ext[1] + oy) * ext[2] + oz;
                        if o >= filled.len() || !filled[o] {
                            panic!("mesh point ({gi},{gj},{gk}) missing from patch");
                        }
                        let v = &patch[o];
                        phi[pi] += w * v[0];
                        field[pi] += Vec3::new(v[1], v[2], v[3]) * w;
                    }
                }
            }
        }
        comm.compute(Work::MeshPoint, (pos.len() * order * order * order) as f64);

        let self_term = 2.0 * self.alpha / std::f64::consts::PI.sqrt();
        for (pi, &q) in charge.iter().enumerate() {
            phi[pi] -= self_term * q;
        }
        comm.compute(Work::ParticleOp, pos.len() as f64);
        (phi, field)
    }

    /// Slab-decomposed execution (1D decomposition along x).
    fn execute_slab(
        &self,
        comm: &mut Comm,
        pos: &[Vec3],
        charge: &[f64],
        cache: &mut Option<FarFieldCache>,
    ) -> (Vec<f64>, Vec<Vec3>) {
        let p = comm.size();
        let me = comm.rank();
        let m = self.mesh;
        let contrib = self.assign_charges(comm, pos, charge);

        // ---- Route contributions to x-slab owners and densify ----
        // x-plane → owning rank, tabulated once; destination-indexed dense
        // send lists (empty partners are skipped inside `alltoallv`).
        let plane_owner: Vec<usize> = (0..m).map(|i| self.slab_owner(i, p)).collect();
        let mut by_owner: Vec<Vec<(u64, f64)>> = vec![Vec::new(); p];
        for (&idx, &val) in &contrib {
            let (i, _, _) = self.unpack(idx);
            by_owner[plane_owner[i]].push((idx, val));
        }
        let received = comm.alltoallv(by_owner.into_iter().enumerate().collect());
        let (sx0, sx1) = self.slab_range(me, p);
        let sx = sx1 - sx0;
        // Slab layout: data[(x - sx0) * m * m + y * m + z].
        let mut slab = vec![Complex::ZERO; sx * m * m];
        for (_src, buf) in received {
            for (idx, val) in buf {
                let (i, j, k) = self.unpack(idx);
                debug_assert!((sx0..sx1).contains(&i));
                slab[((i - sx0) * m + j) * m + k].re += val;
            }
        }
        comm.compute(Work::MeshPoint, (sx * m * m) as f64);

        // ---- Forward 2D FFT (y, z) per x-plane ----
        let mut fft_ops = 0u64;
        for plane in slab.chunks_exact_mut(m * m) {
            fft_ops += fft_2d(plane, m, Direction::Forward);
        }

        // ---- Transpose to y-slabs ----
        let (sy0, sy1) = self.slab_range(me, p);
        let sy = sy1 - sy0;
        let mut sends: HashMap<usize, Vec<(u64, [f64; 2])>> = HashMap::new();
        for xi in 0..sx {
            for y in 0..m {
                let dst = self.slab_owner(y, p);
                let row = sends.entry(dst).or_default();
                for z in 0..m {
                    let c = slab[(xi * m + y) * m + z];
                    row.push((self.pack(sx0 + xi, y, z), [c.re, c.im]));
                }
            }
        }
        let received = comm.alltoallv(sends.into_iter().collect());
        // y-slab layout: data[(y - sy0) * m * m + x * m + z].
        let mut yslab = vec![Complex::ZERO; sy * m * m];
        for (_src, buf) in received {
            for (idx, [re, im]) in buf {
                let (x, y, z) = self.unpack(idx);
                debug_assert!((sy0..sy1).contains(&y));
                yslab[((y - sy0) * m + x) * m + z] = Complex::new(re, im);
            }
        }
        // ---- FFT along x (strided within the y-slab) ----
        fft_ops += fft_axis_x(&mut yslab, sy, m, Direction::Forward);

        // ---- Influence function; produce phi-hat and ik-field-hat ----
        let spec = self.spectral_table(cache, me, p, || {
            let mut spec = Vec::with_capacity(sy * m * m);
            for yi in 0..sy {
                let myf = self.freq(sy0 + yi);
                for x in 0..m {
                    let mxf = self.freq(x);
                    for z in 0..m {
                        let mzf = self.freq(z);
                        spec.push((self.influence(mxf, myf, mzf), self.kvec(mxf, myf, mzf)));
                    }
                }
            }
            spec
        });
        let mut phi_hat = vec![Complex::ZERO; sy * m * m];
        let mut ex_hat = vec![Complex::ZERO; sy * m * m];
        let mut ey_hat = vec![Complex::ZERO; sy * m * m];
        let mut ez_hat = vec![Complex::ZERO; sy * m * m];
        for (o, &(g, k)) in spec.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let ph = yslab[o].scale(g);
            phi_hat[o] = ph;
            // E-hat = -i k phi-hat: (-i)(a + bi) = b - ai.
            let mik_ph = Complex::new(ph.im, -ph.re);
            ex_hat[o] = mik_ph.scale(k.x());
            ey_hat[o] = mik_ph.scale(k.y());
            ez_hat[o] = mik_ph.scale(k.z());
        }
        comm.compute(Work::MeshPoint, (sy * m * m) as f64 * 4.0);

        // ---- Inverse FFT along x for the four spectra ----
        for arr in [&mut phi_hat, &mut ex_hat, &mut ey_hat, &mut ez_hat] {
            fft_ops += fft_axis_x(arr, sy, m, Direction::Inverse);
        }

        // ---- Transpose back to x-slabs (four values per point) ----
        let mut sends: HashMap<usize, Vec<(u64, [f64; 8])>> = HashMap::new();
        for yi in 0..sy {
            for x in 0..m {
                let dst = self.slab_owner(x, p);
                let row = sends.entry(dst).or_default();
                for z in 0..m {
                    let o = (yi * m + x) * m + z;
                    row.push((
                        self.pack(x, sy0 + yi, z),
                        [
                            phi_hat[o].re,
                            phi_hat[o].im,
                            ex_hat[o].re,
                            ex_hat[o].im,
                            ey_hat[o].re,
                            ey_hat[o].im,
                            ez_hat[o].re,
                            ez_hat[o].im,
                        ],
                    ));
                }
            }
        }
        let received = comm.alltoallv(sends.into_iter().collect());
        let mut xphi = vec![Complex::ZERO; sx * m * m];
        let mut xex = vec![Complex::ZERO; sx * m * m];
        let mut xey = vec![Complex::ZERO; sx * m * m];
        let mut xez = vec![Complex::ZERO; sx * m * m];
        for (_src, buf) in received {
            for (idx, v) in buf {
                let (x, y, z) = self.unpack(idx);
                let o = ((x - sx0) * m + y) * m + z;
                xphi[o] = Complex::new(v[0], v[1]);
                xex[o] = Complex::new(v[2], v[3]);
                xey[o] = Complex::new(v[4], v[5]);
                xez[o] = Complex::new(v[6], v[7]);
            }
        }
        // ---- Inverse 2D FFT (y, z) per x-plane ----
        for arr in [&mut xphi, &mut xex, &mut xey, &mut xez] {
            for plane in arr.chunks_exact_mut(m * m) {
                fft_ops += fft_2d(plane, m, Direction::Inverse);
            }
        }
        comm.compute(Work::FftPoint, fft_ops as f64);

        // ---- Patch distribution + interpolation ----
        let mut owned_points = Vec::with_capacity(sx * m * m);
        for xi in 0..sx {
            for j in 0..m {
                for k in 0..m {
                    let o = (xi * m + j) * m + k;
                    owned_points.push((
                        self.pack(sx0 + xi, j, k),
                        [xphi[o].re, xex[o].re, xey[o].re, xez[o].re],
                    ));
                }
            }
        }
        self.distribute_and_interpolate(comm, owned_points, pos, charge)
    }

    /// Pencil-decomposed execution (2D decomposition): the `P` ranks form a
    /// `p1 x p2` grid; the three transform stages own z-, y- and x-pencils
    /// respectively, so every rank carries transform work up to `P = mesh^2`.
    fn execute_pencil(
        &self,
        comm: &mut Comm,
        pos: &[Vec3],
        charge: &[f64],
        cache: &mut Option<FarFieldCache>,
    ) -> (Vec<f64>, Vec<Vec3>) {
        let p = comm.size();
        let me = comm.rank();
        let m = self.mesh;
        let grid = simcomm::balanced_dims(p, 2);
        let (p1, p2) = (grid[0], grid[1]);
        let (a_me, b_me) = (me / p2, me % p2);
        // Floor ranges of the mesh over p1 / p2 along a given axis.
        let range =
            |c: usize, parts: usize| -> (usize, usize) { (c * m / parts, (c + 1) * m / parts) };
        let owner = |i: usize, parts: usize| -> usize {
            let mut c = (i * parts) / m;
            while range(c, parts).1 <= i {
                c += 1;
            }
            while range(c, parts).0 > i {
                c -= 1;
            }
            c
        };
        let rank_of = |a: usize, b: usize| a * p2 + b;

        let contrib = self.assign_charges(comm, pos, charge);

        // ---- Stage A: z-pencils (x in XA[a], y in YB[b], full z) ----
        let (ax0, ax1) = range(a_me, p1);
        let (ay0, ay1) = range(b_me, p2);
        let (anx, any) = (ax1 - ax0, ay1 - ay0);
        let mut by_owner: HashMap<usize, Vec<(u64, f64)>> = HashMap::new();
        for (&idx, &val) in &contrib {
            let (i, j, _) = self.unpack(idx);
            by_owner.entry(rank_of(owner(i, p1), owner(j, p2))).or_default().push((idx, val));
        }
        let received = comm.alltoallv(by_owner.into_iter().collect());
        // Layout: zp[((xi * any) + yj) * m + z], z contiguous.
        let mut zp = vec![Complex::ZERO; anx * any * m];
        for (_src, buf) in received {
            for (idx, val) in buf {
                let (i, j, k) = self.unpack(idx);
                debug_assert!((ax0..ax1).contains(&i) && (ay0..ay1).contains(&j));
                zp[((i - ax0) * any + (j - ay0)) * m + k].re += val;
            }
        }
        comm.compute(Work::MeshPoint, (anx * any * m) as f64);

        // ---- FFT along z ----
        let mut fft_ops = 0u64;
        for line in zp.chunks_exact_mut(m) {
            fft_ops += fft_in_place(line, Direction::Forward);
        }

        // ---- Transpose A -> B: y-pencils (x in XA[a] unchanged, z in ZB[b],
        // full y). Traffic stays within each p1-row. ----
        let (bz0, bz1) = range(b_me, p2);
        let bnz = bz1 - bz0;
        let mut sends: HashMap<usize, Vec<(u64, [f64; 2])>> = HashMap::new();
        for xi in 0..anx {
            for yj in 0..any {
                for z in 0..m {
                    let c = zp[(xi * any + yj) * m + z];
                    let dst = rank_of(a_me, owner(z, p2));
                    sends
                        .entry(dst)
                        .or_default()
                        .push((self.pack(ax0 + xi, ay0 + yj, z), [c.re, c.im]));
                }
            }
        }
        let received = comm.alltoallv(sends.into_iter().collect());
        // Layout: yp[((xi * bnz) + zk) * m + y], y contiguous.
        let mut yp = vec![Complex::ZERO; anx * bnz * m];
        for (_src, buf) in received {
            for (idx, [re, im]) in buf {
                let (i, j, k) = self.unpack(idx);
                debug_assert!((ax0..ax1).contains(&i) && (bz0..bz1).contains(&k));
                yp[((i - ax0) * bnz + (k - bz0)) * m + j] = Complex::new(re, im);
            }
        }

        // ---- FFT along y ----
        for line in yp.chunks_exact_mut(m) {
            fft_ops += fft_in_place(line, Direction::Forward);
        }

        // ---- Transpose B -> C: x-pencils (y in YA[a], z in ZB[b] unchanged,
        // full x). Traffic stays within each p2-column. ----
        let (cy0, cy1) = range(a_me, p1);
        let cny = cy1 - cy0;
        let mut sends: HashMap<usize, Vec<(u64, [f64; 2])>> = HashMap::new();
        for xi in 0..anx {
            for zk in 0..bnz {
                for y in 0..m {
                    let c = yp[(xi * bnz + zk) * m + y];
                    let dst = rank_of(owner(y, p1), b_me);
                    sends
                        .entry(dst)
                        .or_default()
                        .push((self.pack(ax0 + xi, y, bz0 + zk), [c.re, c.im]));
                }
            }
        }
        let received = comm.alltoallv(sends.into_iter().collect());
        // Layout: xp[((yj * bnz) + zk) * m + x], x contiguous.
        let mut xp = vec![Complex::ZERO; cny * bnz * m];
        for (_src, buf) in received {
            for (idx, [re, im]) in buf {
                let (i, j, k) = self.unpack(idx);
                debug_assert!((cy0..cy1).contains(&j) && (bz0..bz1).contains(&k));
                xp[((j - cy0) * bnz + (k - bz0)) * m + i] = Complex::new(re, im);
            }
        }

        // ---- FFT along x ----
        for line in xp.chunks_exact_mut(m) {
            fft_ops += fft_in_place(line, Direction::Forward);
        }

        // ---- Influence function in the x-pencil layout ----
        let n_local = cny * bnz * m;
        let spec = self.spectral_table(cache, me, p, || {
            let mut spec = Vec::with_capacity(n_local);
            for yj in 0..cny {
                let myf = self.freq(cy0 + yj);
                for zk in 0..bnz {
                    let mzf = self.freq(bz0 + zk);
                    for x in 0..m {
                        let mxf = self.freq(x);
                        spec.push((self.influence(mxf, myf, mzf), self.kvec(mxf, myf, mzf)));
                    }
                }
            }
            spec
        });
        let mut phi_hat = vec![Complex::ZERO; n_local];
        let mut ex_hat = vec![Complex::ZERO; n_local];
        let mut ey_hat = vec![Complex::ZERO; n_local];
        let mut ez_hat = vec![Complex::ZERO; n_local];
        for (o, &(g, k)) in spec.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let ph = xp[o].scale(g);
            phi_hat[o] = ph;
            let mik_ph = Complex::new(ph.im, -ph.re);
            ex_hat[o] = mik_ph.scale(k.x());
            ey_hat[o] = mik_ph.scale(k.y());
            ez_hat[o] = mik_ph.scale(k.z());
        }
        comm.compute(Work::MeshPoint, n_local as f64 * 4.0);

        // ---- Inverse FFT along x for the four spectra ----
        for arr in [&mut phi_hat, &mut ex_hat, &mut ey_hat, &mut ez_hat] {
            for line in arr.chunks_exact_mut(m) {
                fft_ops += fft_in_place(line, Direction::Inverse);
            }
        }

        // ---- Transpose C -> B (four spectra packed) ----
        let mut sends: HashMap<usize, Vec<(u64, [f64; 8])>> = HashMap::new();
        for yj in 0..cny {
            for zk in 0..bnz {
                for x in 0..m {
                    let o = (yj * bnz + zk) * m + x;
                    let dst = rank_of(owner(x, p1), b_me);
                    sends.entry(dst).or_default().push((
                        self.pack(x, cy0 + yj, bz0 + zk),
                        [
                            phi_hat[o].re,
                            phi_hat[o].im,
                            ex_hat[o].re,
                            ex_hat[o].im,
                            ey_hat[o].re,
                            ey_hat[o].im,
                            ez_hat[o].re,
                            ez_hat[o].im,
                        ],
                    ));
                }
            }
        }
        let received = comm.alltoallv(sends.into_iter().collect());
        let nb = anx * bnz * m;
        let mut bphi = vec![Complex::ZERO; nb];
        let mut bex = vec![Complex::ZERO; nb];
        let mut bey = vec![Complex::ZERO; nb];
        let mut bez = vec![Complex::ZERO; nb];
        for (_src, buf) in received {
            for (idx, v) in buf {
                let (i, j, k) = self.unpack(idx);
                let o = ((i - ax0) * bnz + (k - bz0)) * m + j;
                bphi[o] = Complex::new(v[0], v[1]);
                bex[o] = Complex::new(v[2], v[3]);
                bey[o] = Complex::new(v[4], v[5]);
                bez[o] = Complex::new(v[6], v[7]);
            }
        }

        // ---- Inverse FFT along y ----
        for arr in [&mut bphi, &mut bex, &mut bey, &mut bez] {
            for line in arr.chunks_exact_mut(m) {
                fft_ops += fft_in_place(line, Direction::Inverse);
            }
        }

        // ---- Transpose B -> A ----
        let mut sends: HashMap<usize, Vec<(u64, [f64; 8])>> = HashMap::new();
        for xi in 0..anx {
            for zk in 0..bnz {
                for y in 0..m {
                    let o = (xi * bnz + zk) * m + y;
                    let dst = rank_of(a_me, owner(y, p2));
                    sends.entry(dst).or_default().push((
                        self.pack(ax0 + xi, y, bz0 + zk),
                        [
                            bphi[o].re, bphi[o].im, bex[o].re, bex[o].im, bey[o].re, bey[o].im,
                            bez[o].re, bez[o].im,
                        ],
                    ));
                }
            }
        }
        let received = comm.alltoallv(sends.into_iter().collect());
        let na = anx * any * m;
        let mut aphi = vec![Complex::ZERO; na];
        let mut aex = vec![Complex::ZERO; na];
        let mut aey = vec![Complex::ZERO; na];
        let mut aez = vec![Complex::ZERO; na];
        for (_src, buf) in received {
            for (idx, v) in buf {
                let (i, j, k) = self.unpack(idx);
                let o = ((i - ax0) * any + (j - ay0)) * m + k;
                aphi[o] = Complex::new(v[0], v[1]);
                aex[o] = Complex::new(v[2], v[3]);
                aey[o] = Complex::new(v[4], v[5]);
                aez[o] = Complex::new(v[6], v[7]);
            }
        }

        // ---- Inverse FFT along z ----
        for arr in [&mut aphi, &mut aex, &mut aey, &mut aez] {
            for line in arr.chunks_exact_mut(m) {
                fft_ops += fft_in_place(line, Direction::Inverse);
            }
        }
        comm.compute(Work::FftPoint, fft_ops as f64);

        // ---- Patch distribution + interpolation ----
        let mut owned_points = Vec::with_capacity(na);
        for xi in 0..anx {
            for yj in 0..any {
                for z in 0..m {
                    let o = (xi * any + yj) * m + z;
                    owned_points.push((
                        self.pack(ax0 + xi, ay0 + yj, z),
                        [aphi[o].re, aex[o].re, aey[o].re, aez[o].re],
                    ));
                }
            }
        }
        self.distribute_and_interpolate(comm, owned_points, pos, charge)
    }
}

/// 2D FFT of an `m x m` plane stored row-major (rows along the second index).
fn fft_2d(plane: &mut [Complex], m: usize, dir: Direction) -> u64 {
    debug_assert_eq!(plane.len(), m * m);
    let mut ops = 0;
    // Rows (contiguous).
    for row in plane.chunks_exact_mut(m) {
        ops += fft_in_place(row, dir);
    }
    // Columns (strided): gather/scatter through a temp buffer.
    let mut col = vec![Complex::ZERO; m];
    for c in 0..m {
        for r in 0..m {
            col[r] = plane[r * m + c];
        }
        ops += fft_in_place(&mut col, dir);
        for r in 0..m {
            plane[r * m + c] = col[r];
        }
    }
    ops
}

/// FFT along the x axis of a y-slab array laid out as
/// `data[(y_local * m + x) * m + z]`.
fn fft_axis_x(data: &mut [Complex], sy: usize, m: usize, dir: Direction) -> u64 {
    let mut ops = 0;
    let mut line = vec![Complex::ZERO; m];
    for yi in 0..sy {
        for z in 0..m {
            for x in 0..m {
                line[x] = data[(yi * m + x) * m + z];
            }
            ops += fft_in_place(&mut line, dir);
            for x in 0..m {
                data[(yi * m + x) * m + z] = line[x];
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use particles::reference::{ewald, EwaldParams};
    use particles::IonicCrystal;
    use simcomm::{run, MachineModel};

    #[test]
    fn dim_ranges_partition_mesh() {
        let plan = FarFieldPlan {
            mesh: 32,
            assign_order: 3,
            alpha: 1.0,
            dims: [3, 2, 5],
            bbox: SystemBox::cubic(8.0),
            decomp: MeshDecomp::default(),
        };
        for d in 0..3 {
            let mut covered = 0;
            for c in 0..plan.dims[d] {
                let (lo, hi) = plan.dim_range(d, c);
                assert_eq!(lo, covered);
                covered = hi;
                for i in lo..hi {
                    assert_eq!(plan.dim_owner(d, i), c);
                }
            }
            assert_eq!(covered, 32);
        }
    }

    #[test]
    fn slab_ranges_partition_mesh() {
        let plan = FarFieldPlan {
            mesh: 16,
            assign_order: 2,
            alpha: 1.0,
            dims: [1, 1, 1],
            bbox: SystemBox::cubic(4.0),
            decomp: MeshDecomp::default(),
        };
        for p in [1usize, 3, 16, 40] {
            let mut covered = 0;
            for r in 0..p {
                let (lo, hi) = plan.slab_range(r, p);
                assert_eq!(lo, covered);
                covered = hi;
                for x in lo..hi {
                    assert_eq!(plan.slab_owner(x, p), r);
                }
            }
            assert_eq!(covered, 16, "p={p}");
        }
    }

    #[test]
    fn influence_zero_at_origin_and_positive() {
        let plan = FarFieldPlan {
            mesh: 32,
            assign_order: 3,
            alpha: 1.2,
            dims: [2, 2, 2],
            bbox: SystemBox::cubic(8.0),
            decomp: MeshDecomp::default(),
        };
        assert_eq!(plan.influence(0, 0, 0), 0.0);
        assert!(plan.influence(1, 0, 0) > 0.0);
        assert!(plan.influence(1, 2, 3) > 0.0);
        // Decays for large k.
        assert!(plan.influence(14, 14, 14) < plan.influence(1, 1, 1));
    }

    #[test]
    fn pencil_matches_slab() {
        // Identical physics from both decompositions, at several process
        // counts including P > mesh extents along one axis.
        let c = IonicCrystal::cubic(4, 1.0, 0.17, 12);
        let bbox = c.system_box();
        let n = c.n();
        let alpha = 6.0 / bbox.lengths.x();
        let mut pos_all = Vec::new();
        let mut charge_all = Vec::new();
        for i in 0..n as u64 {
            let (x, q) = c.particle(i);
            pos_all.push(x);
            charge_all.push(q);
        }
        for p in [1usize, 4, 6, 9] {
            let dims = {
                let d = simcomm::balanced_dims(p, 3);
                [d[0], d[1], d[2]]
            };
            let pos_all = pos_all.clone();
            let charge_all = charge_all.clone();
            let out = run(p, MachineModel::ideal(), move |comm| {
                let me = comm.rank();
                let mut pos = Vec::new();
                let mut charge = Vec::new();
                for (x, q) in pos_all.iter().zip(&charge_all) {
                    if particles::grid_rank_of(dims, &bbox, *x) == me {
                        pos.push(*x);
                        charge.push(*q);
                    }
                }
                let mut plan = FarFieldPlan {
                    mesh: 8,
                    assign_order: 3,
                    alpha,
                    dims,
                    bbox,
                    decomp: MeshDecomp::Slab,
                };
                let (phi_s, field_s) = plan.execute(comm, &pos, &charge);
                plan.decomp = MeshDecomp::Pencil;
                let (phi_p, field_p) = plan.execute(comm, &pos, &charge);
                (phi_s, field_s, phi_p, field_p)
            });
            for (phi_s, field_s, phi_p, field_p) in &out.results {
                for (a, b) in phi_s.iter().zip(phi_p) {
                    assert!((a - b).abs() < 1e-10 * a.abs().max(1.0), "p={p}: {a} vs {b}");
                }
                for (a, b) in field_s.iter().zip(field_p) {
                    assert!((*a - *b).norm() < 1e-10, "p={p}");
                }
            }
        }
    }

    #[test]
    fn pencil_spreads_fft_work_beyond_mesh_ranks() {
        // With P > mesh, the slab decomposition idles most ranks during the
        // transforms while pencils keep them busy; compare per-rank modelled
        // compute spread (max/mean of compute_seconds).
        let c = IonicCrystal::cubic(4, 1.0, 0.1, 5);
        let bbox = c.system_box();
        let n = c.n();
        let p = 16; // mesh = 8 < P
        let imbalance = |decomp: MeshDecomp| -> f64 {
            let c = c.clone();
            let out = run(p, MachineModel::juqueen_like(), move |comm| {
                let dims = {
                    let d = simcomm::balanced_dims(p, 3);
                    [d[0], d[1], d[2]]
                };
                let me = comm.rank();
                let mut pos = Vec::new();
                let mut charge = Vec::new();
                for i in 0..n as u64 {
                    let (x, q) = c.particle(i);
                    if particles::grid_rank_of(dims, &bbox, x) == me {
                        pos.push(x);
                        charge.push(q);
                    }
                }
                let plan = FarFieldPlan {
                    mesh: 8,
                    assign_order: 3,
                    alpha: 6.0 / bbox.lengths.x(),
                    dims,
                    bbox,
                    decomp,
                };
                let _ = plan.execute(comm, &pos, &charge);
                comm.stats().compute_seconds
            });
            let max = out.results.iter().cloned().fold(0.0, f64::max);
            let mean = out.results.iter().sum::<f64>() / p as f64;
            max / mean
        };
        let slab = imbalance(MeshDecomp::Slab);
        let pencil = imbalance(MeshDecomp::Pencil);
        assert!(
            pencil < slab,
            "pencils must balance better than slabs at P > mesh: {pencil} vs {slab}"
        );
    }

    /// Far field + analytic real-space remainder must reproduce Ewald.
    #[test]
    fn far_field_matches_ewald_k_space() {
        // Single rank: compare the mesh far field against the exact
        // reciprocal-space Ewald sum (plus self term) for a small crystal.
        let c = IonicCrystal::cubic(4, 1.0, 0.13, 21);
        let bbox = c.system_box();
        let n = c.n();
        let mut pos = Vec::new();
        let mut charge = Vec::new();
        for i in 0..n as u64 {
            let (x, q) = c.particle(i);
            pos.push(x);
            charge.push(q);
        }
        let l = bbox.lengths.x();
        let alpha = 7.0 / l;
        // Reference: Ewald with a negligible real-space part is exactly the
        // k-space + self contribution.
        let want = ewald(&pos, &charge, &bbox, EwaldParams { alpha, rcut: 1e-9, kmax: 14 });
        let plan = FarFieldPlan {
            mesh: 64,
            assign_order: 4,
            alpha,
            dims: [1, 1, 1],
            bbox,
            decomp: MeshDecomp::default(),
        };
        let out = run(1, MachineModel::ideal(), |comm| plan.execute(comm, &pos, &charge));
        let (phi, field) = &out.results[0];
        let scale =
            (want.potential.iter().map(|x| x * x).sum::<f64>() / n as f64).sqrt().max(1e-12);
        for i in 0..n {
            assert!(
                (phi[i] - want.potential[i]).abs() < 2e-3 * scale.max(want.potential[i].abs()),
                "i={i}: {a} vs {b}",
                a = phi[i],
                b = want.potential[i]
            );
            assert!(
                (field[i] - want.field[i]).norm() < 5e-3 * scale,
                "field i={i}: {a:?} vs {b:?}",
                a = field[i],
                b = want.field[i]
            );
        }
    }

    #[test]
    fn far_field_independent_of_process_count() {
        let c = IonicCrystal::cubic(4, 1.0, 0.2, 8);
        let bbox = c.system_box();
        let n = c.n();
        let alpha = 6.0 / bbox.lengths.x();
        let mut pos_all = Vec::new();
        let mut charge_all = Vec::new();
        for i in 0..n as u64 {
            let (x, q) = c.particle(i);
            pos_all.push(x);
            charge_all.push(q);
        }
        // Serial reference.
        let plan1 = FarFieldPlan {
            mesh: 32,
            assign_order: 3,
            alpha,
            dims: [1, 1, 1],
            bbox,
            decomp: MeshDecomp::default(),
        };
        let serial =
            run(1, MachineModel::ideal(), |comm| plan1.execute(comm, &pos_all, &charge_all));
        let (phi_ref, _) = &serial.results[0];

        // Parallel: grid distribution over 8 ranks.
        let dims = [2, 2, 2];
        let out = run(8, MachineModel::ideal(), |comm| {
            let me = comm.rank();
            let mut pos = Vec::new();
            let mut charge = Vec::new();
            let mut ids = Vec::new();
            for i in 0..n as u64 {
                let (x, q) = c.particle(i);
                if particles::grid_rank_of(dims, &bbox, x) == me {
                    pos.push(x);
                    charge.push(q);
                    ids.push(i);
                }
            }
            let plan = FarFieldPlan {
                mesh: 32,
                assign_order: 3,
                alpha,
                dims,
                bbox,
                decomp: MeshDecomp::default(),
            };
            let (phi, _) = plan.execute(comm, &pos, &charge);
            (ids, phi)
        });
        for (ids, phi) in &out.results {
            for (id, ph) in ids.iter().zip(phi) {
                let want = phi_ref[*id as usize];
                assert!((ph - want).abs() < 1e-9 * want.abs().max(1.0), "id {id}: {ph} vs {want}");
            }
        }
    }
}
