//! Cardinal B-spline charge assignment weights (the "window functions" of
//! particle-mesh methods: order 1 = NGP, 2 = CIC, 3 = TSC, ...), plus their
//! Fourier transforms for the deconvolution in the influence function.

/// Evaluate the centered cardinal B-spline `M_p` at `x` (support `[0, p]`),
/// via the Cox-de Boor recursion.
pub fn bspline(p: usize, x: f64) -> f64 {
    assert!(p >= 1);
    if x < 0.0 || x >= p as f64 {
        return 0.0;
    }
    if p == 1 {
        return 1.0;
    }
    (x * bspline(p - 1, x) + (p as f64 - x) * bspline(p - 1, x - 1.0)) / (p as f64 - 1.0)
}

/// Assignment stencil for a particle at fractional mesh coordinate `u`
/// (in mesh units, unbounded): returns the first mesh index and the `p`
/// weights for indices `first, first+1, ..., first+p-1`.
///
/// Convention: for even `p` the stencil is centered between the two nearest
/// points of `floor(u)`, for odd `p` on the nearest point — the standard
/// particle-mesh layouts (CIC, TSC, ...).
pub fn stencil(p: usize, u: f64, weights: &mut [f64]) -> i64 {
    debug_assert_eq!(weights.len(), p);
    // Shift so that the spline argument u - first covers (0, p).
    let first = if p.is_multiple_of(2) {
        u.floor() as i64 - (p as i64 / 2 - 1)
    } else {
        u.round() as i64 - (p as i64 - 1) / 2
    };
    // Weight on grid point g is M_p evaluated at (u - g) shifted into the
    // spline's support [0, p]; the chosen `first` centers the stencil so all
    // nonzero weights are covered.
    for (j, w) in weights.iter_mut().enumerate() {
        let g = first + j as i64;
        *w = bspline(p, u - g as f64 + p as f64 / 2.0);
    }
    first
}

/// Fourier transform of the order-`p` B-spline at integer frequency `m` on a
/// mesh of `n` points: `[sinc(pi m / n)]^p` (the deconvolution denominator).
pub fn bspline_hat(p: usize, m: i64, n: usize) -> f64 {
    if m == 0 {
        return 1.0;
    }
    let x = std::f64::consts::PI * m as f64 / n as f64;
    (x.sin() / x).powi(p as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bspline_box_and_triangle() {
        // Order 1: box on [0,1).
        assert_eq!(bspline(1, 0.5), 1.0);
        assert_eq!(bspline(1, 1.5), 0.0);
        // Order 2: triangle peaking at 1.
        assert!((bspline(2, 1.0) - 1.0).abs() < 1e-12);
        assert!((bspline(2, 0.5) - 0.5).abs() < 1e-12);
        assert!((bspline(2, 1.5) - 0.5).abs() < 1e-12);
        assert_eq!(bspline(2, 2.0), 0.0);
    }

    #[test]
    fn bspline_smoothness_and_symmetry() {
        for p in 2..=5usize {
            let c = p as f64 / 2.0;
            let mut x = 0.05;
            while x < c {
                let left = bspline(p, c - x);
                let right = bspline(p, c + x);
                assert!((left - right).abs() < 1e-12, "p={p} x={x}");
                x += 0.1;
            }
        }
    }

    #[test]
    fn stencil_partition_of_unity() {
        for p in 1..=4usize {
            let mut w = vec![0.0; p];
            for k in 0..50 {
                let u = 3.0 + k as f64 * 0.137;
                stencil(p, u, &mut w);
                let sum: f64 = w.iter().sum();
                assert!((sum - 1.0).abs() < 1e-10, "p={p} u={u}: weights {w:?} sum {sum}");
                assert!(w.iter().all(|&x| x >= -1e-12), "negative weight p={p} u={u}");
            }
        }
    }

    #[test]
    fn stencil_reproduces_linear_functions() {
        // sum_g w_g * g == u for p >= 2 (first-moment preservation).
        for p in 2..=4usize {
            let mut w = vec![0.0; p];
            for k in 0..20 {
                let u = 5.0 + k as f64 * 0.217;
                let first = stencil(p, u, &mut w);
                let mean: f64 =
                    w.iter().enumerate().map(|(j, &x)| x * (first + j as i64) as f64).sum();
                assert!((mean - u).abs() < 1e-10, "p={p} u={u} mean {mean}");
            }
        }
    }

    #[test]
    fn stencil_cic_matches_manual() {
        // p=2 (cloud-in-cell): weights (1-f, f) on floor(u), floor(u)+1.
        let mut w = [0.0; 2];
        let first = stencil(2, 7.3, &mut w);
        assert_eq!(first, 7);
        assert!((w[0] - 0.7).abs() < 1e-12);
        assert!((w[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn bspline_hat_limits() {
        assert_eq!(bspline_hat(3, 0, 32), 1.0);
        // Decreases with |m| and with order.
        let a = bspline_hat(2, 4, 32);
        let b = bspline_hat(2, 8, 32);
        assert!(b < a);
        let c = bspline_hat(4, 8, 32);
        assert!(c < b);
        assert!(a > 0.0 && c > 0.0);
    }
}
