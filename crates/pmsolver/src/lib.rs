//! # pmsolver — a parallel particle-mesh Ewald solver (P2NFFT stand-in)
//!
//! From-scratch member of the Ewald-splitting particle-mesh family the
//! paper's P2NFFT solver belongs to (Sect. II-C), with the same *data
//! handling*: the particle system is distributed uniformly over a Cartesian
//! process grid using a fine-grained data redistribution operation that
//! duplicates boundary particles as **ghosts** (each copy carrying a 64-bit
//! index value: source rank in the upper 32 bits, source position in the
//! lower 32, ghosts marked invalid); real-space contributions use a
//! linked-cell algorithm within the cutoff; Fourier-space contributions use
//! B-spline charge assignment and a distributed FFT implemented from
//! scratch (1D slab or 2D pencil decomposition, see [`MeshDecomp`]) with a
//! Hockney-Eastwood optimal influence function and ik differentiation.
//!
//! After the computation the solver either restores the original particle
//! order and distribution (Method A) or returns the changed grid
//! distribution with resort indices (Method B); with limited particle
//! movement the redistribution switches from collective all-to-all to
//! neighbourhood point-to-point communication (Sect. III-B).

#![warn(missing_docs)]

mod bspline;
mod farfield;
mod fft;
mod nearfield;
mod solver;

pub use bspline::{bspline, bspline_hat, stencil};
pub use farfield::{FarFieldCache, FarFieldPlan, MeshDecomp};
pub use fft::{dft_reference, fft_in_place, fft_rows, Complex, Direction};
pub use nearfield::near_field;
pub use solver::{PmConfig, PmParticle, PmRunReport, PmSolver};

#[cfg(test)]
mod tests {
    use super::*;
    use particles::reference::madelung_energy_per_ion;
    use particles::{local_set, InitialDistribution, IonicCrystal, RedistMethod, SystemBox};
    use simcomm::{run, CartGrid, MachineModel};

    fn crystal_energy(p: usize, cells: usize, jitter: f64, method: RedistMethod) -> f64 {
        let c = IonicCrystal::cubic(cells, 1.0, jitter, 77);
        let bbox = c.system_box();
        let cfg = PmConfig::tuned(&bbox, 1e-4, (0.49 * bbox.lengths.x()).min(3.0));
        let out = run(p, MachineModel::ideal(), move |comm| {
            let dims = CartGrid::balanced(p).dims();
            let set = local_set(&c, InitialDistribution::Grid, comm.rank(), p, dims);
            let mut solver = PmSolver::new(bbox, cfg.clone(), p);
            let o = solver.run(comm, set.pos(), set.charge(), set.id(), method, None, usize::MAX);
            0.5 * o.potential.iter().zip(&o.charge).map(|(a, q)| a * q).sum::<f64>()
        });
        out.results.iter().sum()
    }

    #[test]
    fn reproduces_madelung_constant_serial() {
        let energy = crystal_energy(1, 4, 0.0, RedistMethod::RestoreOriginal);
        let want = madelung_energy_per_ion(1.0) * 64.0;
        let rel = (energy - want).abs() / want.abs();
        assert!(rel < 1e-3, "energy {energy} vs {want}, rel {rel}");
    }

    #[test]
    fn reproduces_madelung_constant_parallel() {
        let energy = crystal_energy(8, 4, 0.0, RedistMethod::RestoreOriginal);
        let want = madelung_energy_per_ion(1.0) * 64.0;
        let rel = (energy - want).abs() / want.abs();
        assert!(rel < 1e-3, "energy {energy} vs {want}, rel {rel}");
    }

    #[test]
    fn method_a_and_b_compute_identical_energies() {
        let ea = crystal_energy(4, 6, 0.15, RedistMethod::RestoreOriginal);
        let eb = crystal_energy(4, 6, 0.15, RedistMethod::UseChanged);
        assert!((ea - eb).abs() < 1e-9 * ea.abs(), "{ea} vs {eb}");
    }

    #[test]
    fn method_a_restores_exact_input_order() {
        let c = IonicCrystal::cubic(6, 1.0, 0.2, 3);
        let bbox = c.system_box();
        let cfg = PmConfig::tuned(&bbox, 1e-3, 2.0);
        let p = 4;
        run(p, MachineModel::ideal(), move |comm| {
            let set = local_set(&c, InitialDistribution::Random, comm.rank(), p, [2, 2, 1]);
            let mut solver = PmSolver::new(bbox, cfg.clone(), p);
            let o = solver.run(
                comm,
                set.pos(),
                set.charge(),
                set.id(),
                RedistMethod::RestoreOriginal,
                None,
                usize::MAX,
            );
            assert!(!o.resorted);
            assert_eq!(o.pos, set.pos());
            assert_eq!(o.charge, set.charge());
            assert_eq!(o.id, set.id());
        });
    }

    #[test]
    fn method_b_resort_indices_route_additional_data() {
        let c = IonicCrystal::cubic(6, 1.0, 0.2, 5);
        let bbox = c.system_box();
        let cfg = PmConfig::tuned(&bbox, 1e-3, 2.0);
        let p = 8;
        let out = run(p, MachineModel::ideal(), move |comm| {
            let set = local_set(&c, InitialDistribution::Random, comm.rank(), p, [2, 2, 2]);
            let mut solver = PmSolver::new(bbox, cfg.clone(), p);
            let o = solver.run(
                comm,
                set.pos(),
                set.charge(),
                set.id(),
                RedistMethod::UseChanged,
                None,
                usize::MAX,
            );
            assert!(o.resorted);
            assert_eq!(o.resort_indices.len(), set.len());
            // Resorting the original ids must match the changed order (in
            // particular, ghosts are not part of the returned particles).
            let moved_ids = atasp::resort(
                comm,
                set.id(),
                &o.resort_indices,
                o.id.len(),
                &atasp::ExchangeMode::Collective,
            );
            assert_eq!(moved_ids, o.id);
            // All returned particles must live in this rank's subdomain.
            let dims = CartGrid::balanced(p).dims();
            for &x in &o.pos {
                assert_eq!(particles::grid_rank_of(dims, &bbox, x), comm.rank());
            }
            o.id.len()
        });
        let total: usize = out.results.iter().sum();
        assert_eq!(total, 216);
    }

    #[test]
    fn neighborhood_mode_matches_collective() {
        // Start from the solver's own grid distribution, jitter positions a
        // little, and re-run with a movement hint: the neighbourhood path
        // must produce identical results to the collective path.
        let c = IonicCrystal::cubic(6, 1.0, 0.1, 11);
        let bbox = c.system_box();
        let cfg = PmConfig::tuned(&bbox, 1e-3, 1.5);
        let p = 8;
        let out = run(p, MachineModel::ideal(), move |comm| {
            let dims = CartGrid::balanced(p).dims();
            let set = local_set(&c, InitialDistribution::Grid, comm.rank(), p, dims);
            let mut solver = PmSolver::new(bbox, cfg.clone(), p);
            let o1 = solver.run(
                comm,
                set.pos(),
                set.charge(),
                set.id(),
                RedistMethod::UseChanged,
                None,
                usize::MAX,
            );
            assert!(!solver.last_report.used_neighborhood);
            // Move every particle slightly (deterministic pseudo-jitter).
            let moved: Vec<particles::Vec3> = o1
                .pos
                .iter()
                .zip(&o1.id)
                .map(|(&x, &id)| {
                    let h = particles::systems::splitmix64(id ^ 0xfeed);
                    let d = particles::Vec3::new(
                        ((h & 0xff) as f64 / 255.0 - 0.5) * 0.05,
                        (((h >> 8) & 0xff) as f64 / 255.0 - 0.5) * 0.05,
                        (((h >> 16) & 0xff) as f64 / 255.0 - 0.5) * 0.05,
                    );
                    bbox.wrap(x + d)
                })
                .collect();
            let o_coll = solver.run(
                comm,
                &moved,
                &o1.charge,
                &o1.id,
                RedistMethod::UseChanged,
                None,
                usize::MAX,
            );
            assert!(!solver.last_report.used_neighborhood);
            let o_neigh = solver.run(
                comm,
                &moved,
                &o1.charge,
                &o1.id,
                RedistMethod::UseChanged,
                Some(0.05),
                usize::MAX,
            );
            assert!(solver.last_report.used_neighborhood);
            (o_coll, o_neigh)
        });
        for (a, b) in out.results {
            assert_eq!(a.id, b.id);
            assert_eq!(a.pos, b.pos);
            assert_eq!(a.resort_indices, b.resort_indices);
            for (x, y) in a.potential.iter().zip(&b.potential) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn movement_guard_falls_back_to_collective_on_lying_hint() {
        use simcomm::{run_faulted, FaultPlan};
        // A 4x2x2 grid has non-neighbouring rank pairs along x. Shift every
        // particle by half the box in x (two subdomains), but pass a tiny
        // movement hint: a lie. On a fault-injected world the guard must
        // detect the out-of-neighbourhood targets, fall back to the
        // collective exchange for that step, and produce output identical to
        // an honest collective run; an honest small-movement step afterwards
        // must still take the neighbourhood path with no fallback.
        let c = IonicCrystal::cubic(6, 1.0, 0.05, 13);
        let bbox = c.system_box();
        let cfg = PmConfig::tuned(&bbox, 1e-3, 1.5);
        let p = 16;
        // Fault-active plan with no comm-level injections: only the guard
        // engages.
        let plan = FaultPlan { seed: 3, hint_lie_prob: 1.0, ..FaultPlan::none() };
        run_faulted(p, MachineModel::ideal(), plan, move |comm| {
            let dims = CartGrid::balanced(p).dims();
            assert_eq!(dims, [4, 2, 2]);
            let set = local_set(&c, InitialDistribution::Grid, comm.rank(), p, dims);
            let mut solver = PmSolver::new(bbox, cfg.clone(), p);
            let o1 = solver.run(
                comm,
                set.pos(),
                set.charge(),
                set.id(),
                RedistMethod::UseChanged,
                None,
                usize::MAX,
            );
            let shift = particles::Vec3::new(0.5 * bbox.lengths.x(), 0.0, 0.0);
            let moved: Vec<particles::Vec3> =
                o1.pos.iter().map(|&x| bbox.wrap(x + shift)).collect();
            // Honest collective reference on the shifted data.
            let o_coll = solver.run(
                comm,
                &moved,
                &o1.charge,
                &o1.id,
                RedistMethod::UseChanged,
                None,
                usize::MAX,
            );
            assert!(!solver.last_report.used_neighborhood);
            assert_eq!(solver.guard_fallbacks, 0);
            // The lie: claim almost nothing moved.
            let o_guard = solver.run(
                comm,
                &moved,
                &o1.charge,
                &o1.id,
                RedistMethod::UseChanged,
                Some(1e-3),
                usize::MAX,
            );
            assert!(
                solver.last_report.movement_guard_fallback,
                "the guard must detect out-of-neighbourhood targets"
            );
            assert!(!solver.last_report.used_neighborhood);
            assert_eq!(solver.guard_fallbacks, 1);
            assert_eq!(o_guard.id, o_coll.id, "fallback must deliver the collective result");
            assert_eq!(o_guard.pos, o_coll.pos);
            assert_eq!(o_guard.resort_indices, o_coll.resort_indices);
            assert_eq!(o_guard.potential, o_coll.potential, "identical exchange, identical bits");
            // An honest small step keeps the neighbourhood path guard-free.
            let o_honest = solver.run(
                comm,
                &o_guard.pos,
                &o_guard.charge,
                &o_guard.id,
                RedistMethod::UseChanged,
                Some(1e-3),
                usize::MAX,
            );
            assert!(solver.last_report.used_neighborhood);
            assert!(!solver.last_report.movement_guard_fallback);
            assert_eq!(solver.guard_fallbacks, 1, "no new fallback on an honest step");
            o_honest.id.len()
        });
    }

    #[test]
    fn capacity_fallback_restores_original() {
        let c = IonicCrystal::cubic(4, 1.0, 0.1, 9);
        let bbox = c.system_box();
        let cfg = PmConfig::tuned(&bbox, 1e-3, 1.5);
        let p = 2;
        run(p, MachineModel::ideal(), move |comm| {
            let set = local_set(&c, InitialDistribution::Random, comm.rank(), p, [2, 1, 1]);
            let mut solver = PmSolver::new(bbox, cfg.clone(), p);
            let o = solver.run(
                comm,
                set.pos(),
                set.charge(),
                set.id(),
                RedistMethod::UseChanged,
                None,
                0, // force fallback
            );
            assert!(!o.resorted);
            assert_eq!(o.id, set.id());
            assert!(o.resort_indices.is_empty());
        });
    }

    #[test]
    fn tuned_config_is_consistent() {
        let bbox = SystemBox::cubic(248.0);
        let cfg = PmConfig::tuned(&bbox, 1e-3, 4.8);
        assert!((cfg.rcut - 4.8).abs() < 1e-12, "paper cutoff fits the box");
        assert!(cfg.mesh.is_power_of_two());
        assert!(cfg.alpha * cfg.rcut >= 2.0);
        // Tighter accuracy -> denser mesh and higher order.
        let tight = PmConfig::tuned(&bbox, 1e-6, 4.8);
        assert!(tight.mesh >= cfg.mesh);
        assert!(tight.assign_order >= cfg.assign_order);
    }
}
