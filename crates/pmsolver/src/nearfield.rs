//! Real-space (near-field) part of the particle-mesh Ewald solver: the
//! erfc-screened Coulomb interactions of all pairs within the cutoff radius,
//! evaluated with a linked-cell algorithm over the local subdomain plus ghost
//! particles (paper Sect. II-C: "computations are performed with a linked
//! cell algorithm that sorts all particles into boxes of size of the cutoff
//! radius").

use particles::math::{erfc, M_2_SQRTPI};
use particles::{SystemBox, Vec3};

/// Compute near-field potentials and fields for `owned` particles; `ghosts`
/// contribute as sources only. Returns per-owned-particle `(potential,
/// field)` plus the number of pair interactions evaluated (for work
/// accounting).
///
/// Positions may be periodic images; all displacements go through the
/// minimum-image convention, which is exact as long as `rcut` is at most half
/// the shortest box edge.
#[allow(clippy::too_many_arguments)]
pub fn near_field(
    bbox: &SystemBox,
    alpha: f64,
    rcut: f64,
    soft_core: Option<particles::SoftCore>,
    region: (Vec3, Vec3),
    owned_pos: &[Vec3],
    owned_charge: &[f64],
    ghost_pos: &[Vec3],
    ghost_charge: &[f64],
) -> (Vec<f64>, Vec<Vec3>, u64) {
    let l = bbox.lengths;
    assert!(
        rcut <= 0.5 * l.x().min(l.y()).min(l.z()) + 1e-12,
        "near-field cutoff must satisfy the minimum-image condition"
    );
    let n_owned = owned_pos.len();
    let n_all = n_owned + ghost_pos.len();
    let (lo, hi) = region;
    let center = (lo + hi) * 0.5;

    // Linked cells. Along dimensions where the region covers the whole
    // (periodic) box there are no ghosts, so the cell grid itself wraps;
    // otherwise the region is expanded by rcut to hold the ghosts.
    let mut ncell = [0usize; 3];
    let mut cell_w = [0.0f64; 3];
    let mut origin = Vec3::ZERO;
    let mut wraps = [false; 3];
    for d in 0..3 {
        wraps[d] = bbox.periodic[d] && (hi[d] - lo[d]) >= l[d] - 1e-9;
        let span = if wraps[d] { hi[d] - lo[d] } else { (hi[d] - lo[d]) + 2.0 * rcut };
        ncell[d] = ((span / rcut).floor() as usize).max(1);
        cell_w[d] = span / ncell[d] as f64;
        origin[d] = if wraps[d] { lo[d] } else { lo[d] - rcut };
    }
    let cell_coords = |p: Vec3| -> [usize; 3] {
        // Localize the (possibly wrapped) position relative to the region.
        let rel = center + bbox.min_image(p, center);
        let mut c = [0usize; 3];
        for d in 0..3 {
            let x = ((rel[d] - origin[d]) / cell_w[d]).floor();
            c[d] = (x.max(0.0) as usize).min(ncell[d] - 1);
        }
        c
    };
    let cell_of = |p: Vec3| -> usize {
        let c = cell_coords(p);
        (c[0] * ncell[1] + c[1]) * ncell[2] + c[2]
    };

    // Head/next linked lists over the combined particle set. Positions and
    // charges are concatenated up front so the hot pair loop indexes flat
    // slices instead of branching between the owned and ghost halves.
    let total_cells = ncell[0] * ncell[1] * ncell[2];
    let mut head = vec![usize::MAX; total_cells];
    let mut next = vec![usize::MAX; n_all];
    let mut all_pos = Vec::with_capacity(n_all);
    all_pos.extend_from_slice(owned_pos);
    all_pos.extend_from_slice(ghost_pos);
    let mut all_charge = Vec::with_capacity(n_all);
    all_charge.extend_from_slice(owned_charge);
    all_charge.extend_from_slice(ghost_charge);
    // Cell of every owned particle, remembered from the list build so the
    // interaction loop does not recompute `cell_coords` (a min-image call).
    let mut owned_cell = vec![0usize; n_owned];
    for (i, nx) in next.iter_mut().enumerate() {
        let c = cell_of(all_pos[i]);
        if i < n_owned {
            owned_cell[i] = c;
        }
        *nx = head[c];
        head[c] = i;
    }

    // Neighbour stencil per *cell*, not per particle: every particle in a
    // cell visits the same distinct neighbouring cells (wrapped dimensions
    // may alias several offsets onto the same cell on tiny grids), so the
    // sorted, deduplicated visit lists are built once for each cell. Flat
    // arena + offsets; `visits[c]` is `arena[offs[c]..offs[c + 1]]`.
    let mut visit_arena: Vec<usize> = Vec::with_capacity(total_cells * 27);
    let mut visit_offs: Vec<usize> = Vec::with_capacity(total_cells + 1);
    visit_offs.push(0);
    for c0 in 0..ncell[0] {
        for c1 in 0..ncell[1] {
            for c2 in 0..ncell[2] {
                let ci = [c0, c1, c2];
                let start = visit_arena.len();
                for dx in -1..=1i64 {
                    for dy in -1..=1i64 {
                        for dz in -1..=1i64 {
                            let mut c = [0usize; 3];
                            let mut ok = true;
                            for (d, dd) in [dx, dy, dz].into_iter().enumerate() {
                                let raw = ci[d] as i64 + dd;
                                if wraps[d] {
                                    c[d] = raw.rem_euclid(ncell[d] as i64) as usize;
                                } else if raw < 0 || raw >= ncell[d] as i64 {
                                    ok = false;
                                    break;
                                } else {
                                    c[d] = raw as usize;
                                }
                            }
                            if ok {
                                visit_arena.push((c[0] * ncell[1] + c[1]) * ncell[2] + c[2]);
                            }
                        }
                    }
                }
                visit_arena[start..].sort_unstable();
                let mut w = start;
                for r in start..visit_arena.len() {
                    if r == start || visit_arena[r] != visit_arena[w - 1] {
                        visit_arena[w] = visit_arena[r];
                        w += 1;
                    }
                }
                visit_arena.truncate(w);
                visit_offs.push(w);
            }
        }
    }

    let rcut2 = rcut * rcut;
    let mut potential = vec![0.0; n_owned];
    let mut field = vec![Vec3::ZERO; n_owned];
    let mut pairs = 0u64;
    for i in 0..n_owned {
        let pi = owned_pos[i];
        let ci = owned_cell[i];
        // One reciprocal per receiver instead of two divides per pair in the
        // soft-core branch below.
        let inv_qi = soft_core.as_ref().map(|core| (core.epsilon / owned_charge[i], core.sigma));
        for &cell in &visit_arena[visit_offs[ci]..visit_offs[ci + 1]] {
            let mut j = head[cell];
            while j != usize::MAX {
                if j != i {
                    let d = bbox.min_image(pi, all_pos[j]);
                    let r2 = d.norm2();
                    if r2 <= rcut2 && r2 > 0.0 {
                        let r = r2.sqrt();
                        let inv_r = 1.0 / r;
                        let inv_r2 = inv_r * inv_r;
                        let qj = all_charge[j];
                        let e = erfc(alpha * r) * inv_r;
                        let de = (e + alpha * M_2_SQRTPI * (-alpha * alpha * r2).exp()) * inv_r2;
                        potential[i] += qj * e;
                        field[i] += d * (qj * de);
                        if let Some((eps_qi, sigma)) = inv_qi {
                            // Pair repulsion folded into the potential/field
                            // channels (divided by the receiving charge so
                            // 0.5*q*phi and q*E give pair energy and force).
                            let s2 = (sigma * inv_r) * (sigma * inv_r);
                            let s6 = s2 * s2 * s2;
                            let u = eps_qi * s6 * s6;
                            potential[i] += u;
                            field[i] += d * (12.0 * u * inv_r2);
                        }
                        pairs += 1;
                    }
                }
                j = next[j];
            }
        }
    }
    (potential, field, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(
        bbox: &SystemBox,
        alpha: f64,
        rcut: f64,
        owned: &[(Vec3, f64)],
        all: &[(Vec3, f64)],
    ) -> (Vec<f64>, Vec<Vec3>) {
        let mut pot = vec![0.0; owned.len()];
        let mut field = vec![Vec3::ZERO; owned.len()];
        for (i, &(pi, _)) in owned.iter().enumerate() {
            for &(pj, qj) in all {
                let d = bbox.min_image(pi, pj);
                let r2 = d.norm2();
                if r2 == 0.0 || r2 > rcut * rcut {
                    continue;
                }
                let r = r2.sqrt();
                let e = erfc(alpha * r) / r;
                let de = e / r2 + alpha * M_2_SQRTPI * (-alpha * alpha * r2).exp() / r2;
                pot[i] += qj * e;
                field[i] += d * (qj * de);
            }
        }
        (pot, field)
    }

    fn hash_pos(i: u64, l: f64) -> Vec3 {
        let h = |x: u64| -> f64 {
            let mut v = x.wrapping_mul(0x9e3779b97f4a7c15);
            v ^= v >> 29;
            v = v.wrapping_mul(0xbf58476d1ce4e5b9);
            (v >> 11) as f64 / (1u64 << 53) as f64 * l
        };
        Vec3::new(h(i * 3 + 1), h(i * 3 + 2), h(i * 3 + 3))
    }

    #[test]
    fn linked_cells_match_brute_force() {
        let bbox = SystemBox::cubic(10.0);
        let alpha = 0.8;
        let rcut = 2.5;
        // Owned region: half the box; ghosts everywhere else (as sources).
        let region = (Vec3::ZERO, Vec3::new(5.0, 10.0, 10.0));
        let mut owned = Vec::new();
        let mut ghosts = Vec::new();
        for i in 0..300u64 {
            let p = hash_pos(i, 10.0);
            let q = if i % 2 == 0 { 1.0 } else { -1.0 };
            if p.x() < 5.0 {
                owned.push((p, q));
            } else {
                ghosts.push((p, q));
            }
        }
        let (op, oq): (Vec<Vec3>, Vec<f64>) = owned.iter().cloned().unzip();
        let (gp, gq): (Vec<Vec3>, Vec<f64>) = ghosts.iter().cloned().unzip();
        let (pot, field, pairs) = near_field(&bbox, alpha, rcut, None, region, &op, &oq, &gp, &gq);
        let all: Vec<(Vec3, f64)> = owned.iter().chain(&ghosts).cloned().collect();
        let (wpot, wfield) = brute_force(&bbox, alpha, rcut, &owned, &all);
        assert!(pairs > 0);
        for i in 0..owned.len() {
            assert!(
                (pot[i] - wpot[i]).abs() < 1e-12 * wpot[i].abs().max(1.0),
                "i={i}: {a} vs {b}",
                a = pot[i],
                b = wpot[i]
            );
            assert!((field[i] - wfield[i]).norm() < 1e-12);
        }
    }

    #[test]
    fn wrapped_pairs_are_found() {
        // Two particles across the periodic boundary, within rcut.
        let bbox = SystemBox::cubic(10.0);
        let region = (Vec3::ZERO, Vec3::splat(10.0));
        let pos = vec![Vec3::new(0.2, 5.0, 5.0), Vec3::new(9.9, 5.0, 5.0)];
        let charge = vec![1.0, 1.0];
        let (pot, _, pairs) = near_field(&bbox, 0.5, 2.0, None, region, &pos, &charge, &[], &[]);
        assert_eq!(pairs, 2);
        let r = 0.3;
        let want = erfc(0.5 * r) / r;
        assert!((pot[0] - want).abs() < 1e-12);
        assert!((pot[1] - want).abs() < 1e-12);
    }

    #[test]
    fn pairs_beyond_cutoff_ignored() {
        let bbox = SystemBox::cubic(20.0);
        let region = (Vec3::ZERO, Vec3::splat(20.0));
        let pos = vec![Vec3::new(1.0, 1.0, 1.0), Vec3::new(9.0, 9.0, 9.0)];
        let charge = vec![1.0, -1.0];
        let (pot, field, pairs) =
            near_field(&bbox, 0.5, 3.0, None, region, &pos, &charge, &[], &[]);
        assert_eq!(pairs, 0);
        assert!(pot.iter().all(|&p| p == 0.0));
        assert!(field.iter().all(|f| f.norm() == 0.0));
    }

    #[test]
    fn ghost_only_sources_do_not_receive() {
        let bbox = SystemBox::cubic(10.0);
        let region = (Vec3::ZERO, Vec3::splat(5.0));
        let op = vec![Vec3::new(2.0, 2.0, 2.0)];
        let oq = vec![1.0];
        let gp = vec![Vec3::new(2.5, 2.0, 2.0)];
        let gq = vec![-1.0];
        let (pot, _, pairs) = near_field(&bbox, 1.0, 2.0, None, region, &op, &oq, &gp, &gq);
        assert_eq!(pot.len(), 1, "ghosts must not receive results");
        assert_eq!(pairs, 1);
        assert!(pot[0] < 0.0);
    }
}
