//! A from-scratch complex FFT (iterative radix-2 Cooley-Tukey) — the
//! transform kernel of the particle-mesh far field. No external FFT crate is
//! used; mesh extents are required to be powers of two.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number (the crate avoids external dependencies for this).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{i theta}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `X_k = sum_n x_n e^{-2 pi i n k / N}` (no normalization).
    Forward,
    /// `x_n = sum_k X_k e^{+2 pi i n k / N}` (no normalization; a
    /// forward-then-inverse round trip scales by `N`).
    Inverse,
}

/// In-place 1D FFT of a power-of-two-length buffer. Returns the number of
/// butterfly operations performed (for work accounting).
pub fn fft_in_place(data: &mut [Complex], dir: Direction) -> u64 {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return 0;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut butterflies = 0u64;
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w = w * wlen;
                butterflies += 1;
            }
            i += len;
        }
        len <<= 1;
    }
    butterflies
}

/// FFT each length-`n` row of a contiguous buffer of `rows * n` values.
pub fn fft_rows(data: &mut [Complex], n: usize, dir: Direction) -> u64 {
    assert_eq!(data.len() % n, 0);
    let mut ops = 0;
    for row in data.chunks_exact_mut(n) {
        ops += fft_in_place(row, dir);
    }
    ops
}

/// Naive DFT for testing.
pub fn dft_reference(data: &[Complex], dir: Direction) -> Vec<Complex> {
    let n = data.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in data.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc += x * Complex::cis(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut h = seed;
        (0..n)
            .map(|_| {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                Complex::new(a, b)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x = test_signal(n, 42);
            let mut fast = x.clone();
            fft_in_place(&mut fast, Direction::Forward);
            let slow = dft_reference(&x, Direction::Forward);
            for (f, s) in fast.iter().zip(&slow) {
                assert!((*f - *s).norm2().sqrt() < 1e-9 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_scales_by_n() {
        let n = 64;
        let x = test_signal(n, 7);
        let mut y = x.clone();
        fft_in_place(&mut y, Direction::Forward);
        fft_in_place(&mut y, Direction::Inverse);
        for (a, b) in x.iter().zip(&y) {
            let back = b.scale(1.0 / n as f64);
            assert!((*a - back).norm2().sqrt() < 1e-12);
        }
    }

    #[test]
    fn parseval_identity() {
        let n = 256;
        let x = test_signal(n, 3);
        let time_energy: f64 = x.iter().map(|c| c.norm2()).sum();
        let mut y = x;
        fft_in_place(&mut y, Direction::Forward);
        let freq_energy: f64 = y.iter().map(|c| c.norm2()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-10 * time_energy);
    }

    #[test]
    fn impulse_becomes_flat_spectrum() {
        let n = 16;
        let mut x = vec![Complex::ZERO; n];
        x[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut x, Direction::Forward);
        for c in &x {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_has_single_bin() {
        let n = 32;
        let freq = 5;
        let x: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * (freq * j) as f64 / n as f64))
            .collect();
        let mut y = x;
        fft_in_place(&mut y, Direction::Forward);
        for (k, c) in y.iter().enumerate() {
            let mag = c.norm2().sqrt();
            if k == freq {
                assert!((mag - n as f64).abs() < 1e-9);
            } else {
                assert!(mag < 1e-9, "leakage at bin {k}: {mag}");
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a = test_signal(n, 1);
        let b = test_signal(n, 2);
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a;
        let mut fb = b;
        let mut fs = sum;
        fft_in_place(&mut fa, Direction::Forward);
        fft_in_place(&mut fb, Direction::Forward);
        fft_in_place(&mut fs, Direction::Forward);
        for i in 0..n {
            assert!(((fa[i] + fb[i]) - fs[i]).norm2().sqrt() < 1e-10);
        }
    }

    #[test]
    fn rows_transform_independently() {
        let n = 8;
        let rows = 3;
        let mut data = test_signal(n * rows, 9);
        let expect: Vec<Complex> =
            data.chunks_exact(n).flat_map(|row| dft_reference(row, Direction::Forward)).collect();
        fft_rows(&mut data, n, Direction::Forward);
        for (a, b) in data.iter().zip(&expect) {
            assert!((*a - *b).norm2().sqrt() < 1e-9);
        }
    }

    #[test]
    fn butterfly_count_is_n_log_n() {
        let mut x = test_signal(64, 4);
        let ops = fft_in_place(&mut x, Direction::Forward);
        assert_eq!(ops, 64 / 2 * 6); // (n/2) log2(n)
    }
}
